.PHONY: build test bench-eog bench-eog-quick bench-sweep bench-sweep-quick bench-share bench-share-quick bench-prune bench-prune-quick trace-baselines trace-gate

build:
	cargo build --release

test:
	cargo test -q

# Full EOG microbenchmark sweep (all shapes at 10^2..10^4) plus the
# end-to-end stress/wmm suite comparison under zpre vs zpre-dfs-check.
# Appends NDJSON measurements to BENCH_EOG.json so the perf trajectory
# accumulates across commits.
bench-eog: build
	./target/release/eog-bench --suite --tag "$${TAG:-local}"

# Quick smoke variant for CI: small sizes, quick-scale suite, results to
# a scratch file instead of the tracked BENCH_EOG.json.
bench-eog-quick: build
	./target/release/eog-bench --quick --suite --tag ci-smoke --out /tmp/eog-smoke.json

# Scratch vs incremental bound-sweep comparison on the stress + wmm
# families (plus loopy marker-frame tasks). Asserts identical verdicts
# pair by pair, appends per-task rows and family aggregates to
# BENCH_SWEEP.json, and fails unless the stress+wmm aggregate sweep is
# >= 1.5x faster than per-bound scratch.
bench-sweep: build
	./target/release/sweep-bench --tag "$${TAG:-local}"

# Quick smoke variant for CI: quick-scale families, scratch output file.
bench-sweep-quick: build
	./target/release/sweep-bench --quick --tag ci-smoke --out /tmp/sweep-smoke.json

# Shared vs isolated portfolio comparison on the stress + wmm families
# (plus a contended family generating heavy lemma traffic). Asserts
# identical verdicts pair by pair, appends per-task rows and family
# aggregates to BENCH_SHARE.json, and fails unless the shared aggregate
# wall clock stays within tolerance of isolated with non-zero import hits.
bench-share: build
	./target/release/share-bench --tag "$${TAG:-local}"

# Quick smoke variant for CI: quick-scale families, scratch output file,
# looser timing bar (tiny tasks make portfolio timing noisy).
bench-share-quick: build
	./target/release/share-bench --quick --tag ci-smoke --tolerance 50 --out /tmp/share-smoke.json

# Pruned vs unpruned encoding comparison on the stress + wmm families plus
# the lock-heavy pthread and join-heavy contended families. Asserts
# identical verdicts pair by pair, appends per-task rows and family
# aggregates to BENCH_PRUNE.json, and fails unless the lock/join-heavy
# families show a positive interference-variable reduction with the pruned
# aggregate wall clock within tolerance of unpruned.
bench-prune: build
	./target/release/prune-bench --tag "$${TAG:-local}"

# Quick smoke variant for CI: quick-scale families, scratch output file,
# looser timing bar (tiny tasks make encode-time jitter dominate).
bench-prune-quick: build
	./target/release/prune-bench --quick --tag ci-smoke --tolerance 50 --out /tmp/prune-smoke.json

# --- Trace analytics & the telemetry regression gate -------------------
#
# Baselines are one-line `metrics` NDJSON files checked in under
# tests/baselines/, one per example program, produced by the fixed recipe
# below (--mm all --incremental --max-bound 4, default seed). All gated
# metrics (solver work counters, distribution percentiles, quality shares)
# are deterministic for a fixed seed; wall-clock metrics ride along but
# stay informational in the gate.

TRACE_EXAMPLES := $(wildcard examples/programs/*.zc)
TRACE_GATE_DIR := target/trace-gate

# Re-record the checked-in baselines. Run after a change that legitimately
# shifts solver telemetry, and commit the diff.
trace-baselines: build
	@mkdir -p tests/baselines
	@for prog in $(TRACE_EXAMPLES); do \
		name=$$(basename $$prog .zc); \
		./target/release/zpre-cli verify $$prog --mm all --incremental \
			--max-bound 4 --trace-out /tmp/baseline_$$name.ndjson \
			>/dev/null 2>&1 || test $$? -eq 1 || exit 1; \
		./target/release/zpre-cli trace stats /tmp/baseline_$$name.ndjson \
			--json > tests/baselines/$$name.metrics.json; \
		echo "recorded tests/baselines/$$name.metrics.json"; \
	done

# The CI telemetry regression gate: rerun the baseline recipe on every
# example, diff against the checked-in baseline at +-20%, and fail on any
# gated regression. Traces and flamegraphs land in $(TRACE_GATE_DIR) so CI
# can upload them as artifacts.
trace-gate: build
	@mkdir -p $(TRACE_GATE_DIR)
	@fail=0; for prog in $(TRACE_EXAMPLES); do \
		name=$$(basename $$prog .zc); \
		./target/release/zpre-cli verify $$prog --mm all --incremental \
			--max-bound 4 --trace-out $(TRACE_GATE_DIR)/$$name.ndjson \
			>/dev/null 2>&1 || test $$? -eq 1 || exit 1; \
		./target/release/zpre-cli trace check $(TRACE_GATE_DIR)/$$name.ndjson \
			> /dev/null || exit 1; \
		./target/release/zpre-cli trace flame $(TRACE_GATE_DIR)/$$name.ndjson \
			--out $(TRACE_GATE_DIR)/$$name.folded 2> /dev/null; \
		echo "== $$name"; \
		./target/release/zpre-cli trace diff \
			tests/baselines/$$name.metrics.json \
			$(TRACE_GATE_DIR)/$$name.ndjson --gate-tolerance 20% \
			| tee $(TRACE_GATE_DIR)/$$name.diff.txt | tail -1; \
		./target/release/zpre-cli trace diff \
			tests/baselines/$$name.metrics.json \
			$(TRACE_GATE_DIR)/$$name.ndjson --gate-tolerance 20% --json \
			> $(TRACE_GATE_DIR)/$$name.diff.ndjson || fail=1; \
	done; \
	test $$fail -eq 0 || { echo "trace-gate: telemetry regressed"; exit 1; }
