.PHONY: build test bench-eog bench-eog-quick bench-sweep bench-sweep-quick

build:
	cargo build --release

test:
	cargo test -q

# Full EOG microbenchmark sweep (all shapes at 10^2..10^4) plus the
# end-to-end stress/wmm suite comparison under zpre vs zpre-dfs-check.
# Appends NDJSON measurements to BENCH_EOG.json so the perf trajectory
# accumulates across commits.
bench-eog: build
	./target/release/eog-bench --suite --tag "$${TAG:-local}"

# Quick smoke variant for CI: small sizes, quick-scale suite, results to
# a scratch file instead of the tracked BENCH_EOG.json.
bench-eog-quick: build
	./target/release/eog-bench --quick --suite --tag ci-smoke --out /tmp/eog-smoke.json

# Scratch vs incremental bound-sweep comparison on the stress + wmm
# families (plus loopy marker-frame tasks). Asserts identical verdicts
# pair by pair, appends per-task rows and family aggregates to
# BENCH_SWEEP.json, and fails unless the stress+wmm aggregate sweep is
# >= 1.5x faster than per-bound scratch.
bench-sweep: build
	./target/release/sweep-bench --tag "$${TAG:-local}"

# Quick smoke variant for CI: quick-scale families, scratch output file.
bench-sweep-quick: build
	./target/release/sweep-bench --quick --tag ci-smoke --out /tmp/sweep-smoke.json
