//! Quickstart: build a small multi-threaded program, verify it under every
//! memory model with the interference-guided strategy, and inspect the
//! solver statistics.
//!
//! ```sh
//! cargo run --release -p zpre --example quickstart
//! ```

use zpre::prelude::*;

fn main() {
    // A racy counter: two workers increment `cnt` without synchronization.
    // The classic lost-update interleaving makes `cnt == 2` fail.
    let inc = vec![assign("r", v("cnt")), assign("cnt", add(v("r"), c(1)))];
    let racy = ProgramBuilder::new("racy-counter")
        .shared("cnt", 0)
        .thread("worker-1", inc.clone())
        .thread("worker-2", inc.clone())
        .main(vec![
            spawn(1),
            spawn(2),
            join(1),
            join(2),
            assert_(eq(v("cnt"), c(2))),
        ])
        .build();

    // The same program with a mutex around the increment is correct.
    let guarded: Vec<Stmt> = [lock("m")]
        .into_iter()
        .chain(inc)
        .chain([unlock("m")])
        .collect();
    let locked = ProgramBuilder::new("locked-counter")
        .shared("cnt", 0)
        .mutex("m")
        .thread("worker-1", guarded.clone())
        .thread("worker-2", guarded)
        .main(vec![
            spawn(1),
            spawn(2),
            join(1),
            join(2),
            assert_(eq(v("cnt"), c(2))),
        ])
        .build();

    println!(
        "{:<16} {:<5} {:<8} {:>10} {:>12} {:>10}",
        "program", "mm", "verdict", "decisions", "propagations", "conflicts"
    );
    for program in [&racy, &locked] {
        for mm in MemoryModel::ALL {
            let opts = VerifyOptions::new(mm, Strategy::Zpre);
            let out = verify(program, &opts);
            println!(
                "{:<16} {:<5} {:<8} {:>10} {:>12} {:>10}",
                program.name,
                mm.name(),
                out.verdict.to_string(),
                out.stats.decisions,
                out.stats.propagations,
                out.stats.conflicts,
            );
            // Counterexample executions are re-validated internally: an
            // `unsafe` verdict here is a checked concurrent execution.
        }
    }

    // Compare the baseline (pure VSIDS) against ZPRE on the safe instance —
    // proving safety is where the interference-first order shines.
    println!("\nbaseline vs ZPRE- vs ZPRE on the locked counter (SC):");
    for strategy in [Strategy::Baseline, Strategy::ZpreMinus, Strategy::Zpre] {
        let out = verify(&locked, &VerifyOptions::new(MemoryModel::Sc, strategy));
        println!(
            "  {:<10} {:>10.2?} ({} decisions, {} conflicts)",
            strategy.name(),
            out.solve_time,
            out.stats.decisions,
            out.stats.conflicts
        );
    }
}
