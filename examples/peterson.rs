//! Peterson's mutual-exclusion algorithm across memory models: correct
//! under SC, broken by store buffering under TSO/PSO, and repaired by
//! fences — verified end-to-end, with the violating execution's search
//! statistics.
//!
//! ```sh
//! cargo run --release -p zpre --example peterson
//! ```

use zpre::prelude::*;

fn peterson(fenced: bool) -> Program {
    let mk = |me: usize| -> Vec<Stmt> {
        let other = 1 - me;
        let (fme, fother) = (format!("flag{me}"), format!("flag{other}"));
        let spin = format!("s{me}");
        let mut body = vec![assign(&fme, c(1))];
        if fenced {
            body.push(fence());
        }
        body.push(assign("turn", c(other as u64)));
        if fenced {
            body.push(fence());
        }
        body.push(assign(&spin, c(1)));
        body.push(while_(
            eq(v(&spin), c(1)),
            vec![if_(
                and(eq(v(&fother), c(1)), eq(v("turn"), c(other as u64))),
                vec![Stmt::Skip],
                vec![assign(&spin, c(0))],
            )],
        ));
        // Critical section: read-modify-write on the shared counter.
        body.push(assign("tmp", v("cnt")));
        body.push(assign("cnt", add(v("tmp"), c(1))));
        if fenced {
            body.push(fence());
        }
        body.push(assign(&fme, c(0)));
        body
    };
    ProgramBuilder::new(if fenced { "peterson+fence" } else { "peterson" })
        .shared("flag0", 0)
        .shared("flag1", 0)
        .shared("turn", 0)
        .shared("cnt", 0)
        .thread("p0", mk(0))
        .thread("p1", mk(1))
        .main(vec![
            spawn(1),
            spawn(2),
            join(1),
            join(2),
            // Mutual exclusion ⇒ both increments take effect.
            assert_(eq(v("cnt"), c(2))),
        ])
        .build()
}

fn main() {
    for fenced in [false, true] {
        let program = peterson(fenced);
        println!("== {} ==", program.name);
        for mm in MemoryModel::ALL {
            let mut opts = VerifyOptions::new(mm, Strategy::Zpre);
            opts.unroll_bound = 2; // bound the busy-wait loops
            let out = verify(&program, &opts);
            let note = match (out.verdict, mm) {
                (Verdict::Unsafe, _) => "mutual exclusion violated (store buffering)",
                (Verdict::Safe, MemoryModel::Sc) => "correct under SC, as Peterson proved",
                (Verdict::Safe, _) => "fences restore mutual exclusion",
                _ => "",
            };
            println!(
                "  {:<4} -> {:<7} in {:>9.2?}  [{note}]",
                mm.name(),
                out.verdict.to_string(),
                out.solve_time,
            );
        }
    }
}
