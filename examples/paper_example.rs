//! The paper's running example (Figures 2–4): a three-threaded program
//! where `t1` and `t2` increment each other's variable and `main` asserts
//! that not both observation registers stayed zero.
//!
//! The example is *safe under SC* — every interleaving writes at least one
//! of `m`, `n` with a non-zero value — and this binary shows the exact
//! artifacts the paper discusses: the interference-variable inventory
//! (`V_rf`, `V_ws` with the paper's naming scheme), the generated decision
//! order, and the per-strategy search statistics.
//!
//! ```sh
//! cargo run --release -p zpre --example paper_example
//! ```

use zpre::{decision_order, Refinements, Strategy, VerifyOptions};
use zpre_prog::build::*;
use zpre_prog::{to_ssa, unroll_program, MemoryModel};
use zpre_sat::{NoGuide, Solver};
use zpre_smt::{OrderTheory, VarKind};

fn main() {
    // Figure 2 (left), with m and n mirrored into shared variables so the
    // final assertion can read them.
    let program = ProgramBuilder::new("fig2")
        .shared("x", 0)
        .shared("y", 0)
        .shared("m", 0)
        .shared("n", 0)
        .thread(
            "t1",
            vec![assign("x", add(v("y"), c(1))), assign("m", v("y"))],
        )
        .thread(
            "t2",
            vec![assign("y", add(v("x"), c(1))), assign("n", v("x"))],
        )
        .main(vec![
            spawn(1),
            spawn(2),
            join(1),
            join(2),
            assert_(not(and(eq(v("m"), c(0)), eq(v("n"), c(0))))),
        ])
        .build();

    println!("{}", zpre_prog::pretty::pretty_program(&program));

    // Encode once to display the Boolean-abstraction taxonomy of §3.2.
    let unrolled = unroll_program(&program, 1);
    let ssa = to_ssa(&unrolled);
    let mut solver: Solver<OrderTheory, NoGuide> = Solver::with_parts(OrderTheory::new(), NoGuide);
    let enc = zpre_encoder::encode(&ssa, MemoryModel::Sc, &mut solver);

    let counts = enc.registry.class_counts();
    println!("Boolean abstraction (SC):");
    println!("  events                 : {}", ssa.events.len());
    println!("  V_ssa (data-path bits) : {}", counts.ssa);
    println!("  V_ord (ordering atoms) : {}", counts.ord);
    println!("  V_rf  (read-from)      : {}", counts.rf);
    println!("  V_ws  (write-serial.)  : {}", counts.ws);

    println!("\ninterference variables (paper naming: rf_<rt>_<ri>_<wt>_<wi>):");
    for (var, info) in enc.registry.interference_vars() {
        let detail = match info.kind {
            VarKind::Rf { external, writes } => format!(
                "rf, {}, #write = {writes}",
                if external { "external" } else { "internal" }
            ),
            VarKind::Ws => "ws".to_string(),
            _ => unreachable!(),
        };
        println!(
            "  {:>5}  {:<24} ({detail})",
            format!("v{}", var.index()),
            info.name
        );
    }

    println!("\ndecision order (H1–H4):");
    let order = decision_order(&enc.registry, Refinements::all());
    for (rank, vi) in order.iter().take(12).enumerate() {
        let info = enc.registry.info(zpre_sat::Var::new(*vi)).unwrap();
        println!("  {:>3}. {}", rank + 1, info.name);
    }
    if order.len() > 12 {
        println!("  ... ({} more)", order.len() - 12);
    }

    // Verify under all memory models and strategies.
    println!("\nverification (the example is safe in every model):");
    for mm in MemoryModel::ALL {
        for strategy in Strategy::MAIN {
            let out = zpre::verify(&program, &VerifyOptions::new(mm, strategy));
            println!(
                "  {:<4} {:<9} -> {:<7} ({:>5} decisions, {:>4} conflicts, {:?})",
                mm.name(),
                strategy.name(),
                out.verdict.to_string(),
                out.stats.decisions,
                out.stats.conflicts,
                out.solve_time,
            );
        }
    }
}
