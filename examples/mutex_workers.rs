//! Scaling study: mutex-protected worker counters of growing size, solved
//! with the baseline and the interference-guided strategies. Shows how the
//! search-space gap grows with the number of interference variables — the
//! paper's central claim in miniature.
//!
//! ```sh
//! cargo run --release -p zpre --example mutex_workers
//! ```

use std::time::Duration;
use zpre::prelude::*;

fn counter(workers: usize, incs: usize) -> Program {
    let body = |w: usize| -> Vec<Stmt> {
        let mut stmts = Vec::new();
        for i in 0..incs {
            let r = format!("r{w}_{i}");
            stmts.push(lock("m"));
            stmts.push(assign(&r, v("cnt")));
            stmts.push(assign("cnt", add(v(&r), c(1))));
            stmts.push(unlock("m"));
        }
        stmts
    };
    let mut b = ProgramBuilder::new(&format!("counter-{workers}x{incs}"))
        .shared("cnt", 0)
        .mutex("m");
    for w in 0..workers {
        b = b.thread(&format!("w{w}"), body(w));
    }
    let total = (workers * incs) as u64;
    let mut main_body: Vec<Stmt> = (1..=workers).map(spawn).collect();
    main_body.extend((1..=workers).map(join));
    main_body.push(assert_(eq(v("cnt"), c(total))));
    b.main(main_body).build()
}

fn main() {
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>12} | speedup",
        "instance", "rf+ws vars", "baseline", "zpre-", "zpre"
    );
    for (workers, incs) in [(2, 1), (2, 2), (3, 1), (3, 2), (4, 1), (4, 2)] {
        let program = counter(workers, incs);
        let mut times = Vec::new();
        let mut itf = 0;
        for strategy in Strategy::MAIN {
            let opts = VerifyOptions {
                max_conflicts: Some(500_000),
                timeout: Some(Duration::from_secs(60)),
                ..VerifyOptions::new(MemoryModel::Sc, strategy)
            };
            let out = verify(&program, &opts);
            assert_eq!(out.verdict, Verdict::Safe, "locked counter must be safe");
            itf = out.class_counts.rf + out.class_counts.ws;
            times.push(out.solve_time);
        }
        let speedup = times[0].as_secs_f64() / times[2].as_secs_f64().max(1e-9);
        println!(
            "{:<14} {:>10} {:>12.2?} {:>12.2?} {:>12.2?} | {:>6.2}x",
            program.name, itf, times[0], times[1], times[2], speedup
        );
    }
}
