//! Weak-memory litmus tour: run the classic litmus shapes under SC, TSO and
//! PSO, with and without fences, and print the verdict matrix — the
//! behaviour table that distinguishes the three memory models.
//!
//! ```sh
//! cargo run --release -p zpre --example litmus_wmm
//! ```

use zpre::prelude::*;

/// Builds one litmus program from its two thread bodies and property.
fn litmus(
    name: &str,
    shared: &[(&str, u64)],
    t1: Vec<Stmt>,
    t2: Vec<Stmt>,
    property: zpre_prog::BoolExpr,
) -> Program {
    let mut b = ProgramBuilder::new(name);
    for &(n, init) in shared {
        b = b.shared(n, init);
    }
    b.thread("t1", t1)
        .thread("t2", t2)
        .main(vec![
            spawn(1),
            spawn(2),
            join(1),
            join(2),
            assert_(property),
        ])
        .build()
}

fn main() {
    let mut programs: Vec<Program> = Vec::new();

    for fenced in [false, true] {
        let f: Vec<Stmt> = if fenced { vec![fence()] } else { vec![] };
        let tag = if fenced { "+fence" } else { "" };

        // SB — store buffering: both threads may read the old values when
        // their stores are still buffered.
        programs.push(litmus(
            &format!("SB{tag}"),
            &[("x", 0), ("y", 0), ("r1", 0), ("r2", 0)],
            [assign("x", c(1))]
                .into_iter()
                .chain(f.clone())
                .chain([assign("r1", v("y"))])
                .collect(),
            [assign("y", c(1))]
                .into_iter()
                .chain(f.clone())
                .chain([assign("r2", v("x"))])
                .collect(),
            not(and(eq(v("r1"), c(0)), eq(v("r2"), c(0)))),
        ));

        // MP — message passing: the flag must not overtake the data.
        programs.push(litmus(
            &format!("MP{tag}"),
            &[("data", 0), ("flag", 0), ("seen", 0), ("val", 0)],
            [assign("data", c(42))]
                .into_iter()
                .chain(f.clone())
                .chain([assign("flag", c(1))])
                .collect(),
            vec![assign("seen", v("flag")), assign("val", v("data"))],
            or(eq(v("seen"), c(0)), eq(v("val"), c(42))),
        ));

        // LB — load buffering: forbidden in every store-buffer model.
        programs.push(litmus(
            &format!("LB{tag}"),
            &[("x", 0), ("y", 0), ("r1", 0), ("r2", 0)],
            [assign("r1", v("y"))]
                .into_iter()
                .chain(f.clone())
                .chain([assign("x", c(1))])
                .collect(),
            [assign("r2", v("x"))]
                .into_iter()
                .chain(f.clone())
                .chain([assign("y", c(1))])
                .collect(),
            not(and(eq(v("r1"), c(1)), eq(v("r2"), c(1)))),
        ));

        // 2+2W — write reordering: only PSO lets both variables end at 1.
        programs.push(litmus(
            &format!("2+2W{tag}"),
            &[("x", 0), ("y", 0)],
            [assign("x", c(1))]
                .into_iter()
                .chain(f.clone())
                .chain([assign("y", c(2))])
                .collect(),
            [assign("y", c(1))]
                .into_iter()
                .chain(f.clone())
                .chain([assign("x", c(2))])
                .collect(),
            not(and(eq(v("x"), c(1)), eq(v("y"), c(1)))),
        ));
    }

    println!(
        "{:<10} {:>8} {:>8} {:>8}   (safe = forbidden outcome unreachable)",
        "litmus", "SC", "TSO", "PSO"
    );
    for p in &programs {
        let mut row = format!("{:<10}", p.name);
        for mm in MemoryModel::ALL {
            let out = verify(p, &VerifyOptions::new(mm, Strategy::Zpre));
            row.push_str(&format!(" {:>8}", out.verdict.to_string()));
        }
        println!("{row}");
    }
    println!("\nExpected: SB unsafe under TSO+PSO; MP and 2+2W unsafe under PSO;");
    println!("LB safe everywhere; every fenced variant safe everywhere.");
}
