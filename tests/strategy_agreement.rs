//! Heuristics must never change satisfiability: every strategy (baseline,
//! ZPRE⁻, ZPRE, and all ablations) must return the same verdict on every
//! task under every memory model.

use zpre::{verify, verify_portfolio, PortfolioOptions, Strategy, Verdict, VerifyOptions};
use zpre_prog::MemoryModel;
use zpre_workloads::{suite, Scale};

#[test]
fn all_strategies_agree_on_the_quick_suite() {
    for task in suite(Scale::Quick) {
        for mm in MemoryModel::ALL {
            let verdicts: Vec<(Strategy, Verdict)> = Strategy::ALL
                .iter()
                .map(|&s| {
                    let opts = VerifyOptions {
                        unroll_bound: task.unroll_bound,
                        ..VerifyOptions::new(mm, s)
                    };
                    (s, verify(&task.program, &opts).verdict)
                })
                .collect();
            let first = verdicts[0].1;
            assert_ne!(first, Verdict::Unknown, "{} {mm} did not finish", task.name);
            for (s, v) in &verdicts {
                assert_eq!(*v, first, "{} {mm}: {s} disagrees", task.name);
            }
            // ... and with the generator's ground truth.
            assert!(
                task.expected.matches(mm, first),
                "{} {mm}: verdict {first:?} contradicts ground truth",
                task.name
            );
        }
    }
}

#[test]
fn portfolio_agrees_with_single_strategy_zpre() {
    // The portfolio may pick any winner, but its verdict must be the one
    // plain ZPRE produces (which the sweep above ties to every other
    // strategy and to ground truth).
    for task in suite(Scale::Quick) {
        for mm in MemoryModel::ALL {
            let opts = VerifyOptions {
                unroll_bound: task.unroll_bound,
                ..VerifyOptions::new(mm, Strategy::Zpre)
            };
            let single = verify(&task.program, &opts).verdict;
            let folio = verify_portfolio(&task.program, &PortfolioOptions::new(opts));
            assert_eq!(
                folio.verdict(),
                single,
                "{} {mm}: portfolio (winner {:?}) disagrees with zpre",
                task.name,
                folio.winner
            );
            assert!(
                folio.winner.is_some(),
                "{} {mm}: portfolio undecided",
                task.name
            );
        }
    }
}

#[test]
fn verdicts_are_seed_independent() {
    // The random polarity must not affect the answer.
    for task in suite(Scale::Quick).into_iter().take(6) {
        for seed in [0u64, 7, 0xFEED] {
            let opts = VerifyOptions {
                unroll_bound: task.unroll_bound,
                seed,
                ..VerifyOptions::new(MemoryModel::Tso, Strategy::Zpre)
            };
            let v = verify(&task.program, &opts).verdict;
            assert!(
                task.expected.matches(MemoryModel::Tso, v),
                "{} seed {seed}",
                task.name
            );
        }
    }
}

#[test]
fn guided_strategies_actually_guide() {
    // On interference-rich tasks, ZPRE's guide must answer decisions.
    let task = suite(Scale::Quick)
        .into_iter()
        .find(|t| t.name.contains("counter"))
        .expect("counter task in quick suite");
    let opts = VerifyOptions {
        unroll_bound: task.unroll_bound,
        ..VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre)
    };
    let out = verify(&task.program, &opts);
    assert!(out.stats.guided_decisions > 0, "guide never consulted");
}
