//! End-to-end resilience of the batch-verification harness, over the
//! public `zpre` API and across all three memory models.
//!
//! The bar (from the issue): kill the batch at an arbitrary journal-write
//! boundary, `--resume`, and the union of both runs' verdicts must be
//! identical to an uninterrupted run; a task exceeding its memory cap must
//! come back as `Unknown` with `Memory` exhaustion and the full degradation
//! ladder on record; and every chaos fault must fail closed — degraded
//! verdicts are acceptable, flipped or crashed ones are not.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use zpre::{
    run_batch, BatchFault, BatchOptions, BatchTask, ExhaustionReason, LadderRung, Strategy,
    Verdict, VerifyError,
};
use zpre_prog::build::*;
use zpre_prog::{MemoryModel, Program};

fn tmp_journal(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "zpre-it-batch-{tag}-{}-{n}.ndjson",
        std::process::id()
    ))
}

/// Two threads race on `cnt`: unsafe under every memory model.
fn racy() -> Program {
    let inc = vec![assign("r", v("cnt")), assign("cnt", add(v("r"), c(1)))];
    ProgramBuilder::new("racy")
        .shared("cnt", 0)
        .thread("w1", inc.clone())
        .thread("w2", inc)
        .main(vec![
            spawn(1),
            spawn(2),
            join(1),
            join(2),
            assert_(eq(v("cnt"), c(2))),
        ])
        .build()
}

/// Lock-protected increments: safe under every memory model.
fn locked() -> Program {
    let inc = vec![
        lock("m"),
        assign("r", v("cnt")),
        assign("cnt", add(v("r"), c(1))),
        unlock("m"),
    ];
    ProgramBuilder::new("locked")
        .shared("cnt", 0)
        .mutex("m")
        .thread("w1", inc.clone())
        .thread("w2", inc)
        .main(vec![
            spawn(1),
            spawn(2),
            join(1),
            join(2),
            assert_(eq(v("cnt"), c(2))),
        ])
        .build()
}

/// Sequential loop whose assertion first fails at unwind bound 3: the
/// bound-sweep has to walk several frames, so kills can land mid-sweep.
fn kstar3() -> Program {
    ProgramBuilder::new("kstar3")
        .width(8)
        .shared("x", 0)
        .main(vec![
            while_(lt(v("x"), c(3)), vec![assign("x", add(v("x"), c(1)))]),
            assert_(ne(v("x"), c(3))),
        ])
        .build()
}

/// The test batch: three programs × SC/TSO/PSO.
fn batch() -> Vec<BatchTask> {
    let mut out = Vec::new();
    for mm in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
        out.push(BatchTask::new(racy(), mm, Strategy::Zpre, 4));
        out.push(BatchTask::new(locked(), mm, Strategy::Zpre, 4));
        out.push(BatchTask::new(kstar3(), mm, Strategy::Zpre, 6));
    }
    out
}

fn fast_opts() -> BatchOptions {
    BatchOptions {
        backoff: Duration::ZERO,
        ..BatchOptions::default()
    }
}

/// Uninterrupted reference run, shared by the equivalence tests.
fn clean_verdicts() -> Vec<(String, Verdict, u32)> {
    run_batch(&batch(), &fast_opts()).verdicts()
}

#[test]
fn batch_covers_all_memory_models_with_expected_verdicts() {
    let out = run_batch(&batch(), &fast_opts());
    assert!(!out.interrupted);
    assert_eq!(out.reports.len(), 9);
    for r in &out.reports {
        let (name, verdict) = (r.key.split('@').next().unwrap(), r.verdict);
        match name {
            "racy" => assert_eq!(verdict, Verdict::Unsafe, "{}", r.key),
            "locked" => assert_eq!(verdict, Verdict::Safe, "{}", r.key),
            "kstar3" => {
                assert_eq!(verdict, Verdict::Unsafe, "{}", r.key);
                assert_eq!(r.bound, 3, "{}: k* = 3", r.key);
            }
            other => panic!("unexpected task {other}"),
        }
    }
}

/// The acceptance bar for resource sandboxing: a task that cannot fit in
/// its memory cap is reported as `Unknown` with `Memory` exhaustion, the
/// batch keeps going, and every rung of the degradation ladder is on
/// record (nothing silently skipped, nothing crashed).
#[test]
fn memory_capped_task_is_unknown_memory_with_full_ladder() {
    let opts = BatchOptions {
        max_memory: Some(1024),
        ..fast_opts()
    };
    let out = run_batch(&batch(), &opts);
    assert!(!out.interrupted, "a memory cap must not stop the batch");
    assert_eq!(out.reports.len(), 9);
    for r in &out.reports {
        assert_eq!(r.verdict, Verdict::Unknown, "{}", r.key);
        assert_eq!(r.exhaustion, Some(ExhaustionReason::Memory), "{}", r.key);
        assert_eq!(
            r.as_error(),
            Some(VerifyError::Exhausted(ExhaustionReason::Memory)),
            "{}",
            r.key
        );
        let rungs: Vec<LadderRung> = r.ladder.iter().map(|rec| rec.rung).collect();
        assert_eq!(
            rungs,
            vec![
                LadderRung::Primary,
                LadderRung::ZpreMinus,
                LadderRung::Baseline,
                LadderRung::ReducedBound
            ],
            "{}",
            r.key
        );
    }
}

/// Chaos matrix: every batch fault fails closed. A faulted run may degrade
/// tasks to `Unknown`, but any definitive verdict it does report must match
/// the clean run, and the harness itself must survive.
#[test]
fn chaos_matrix_fails_closed() {
    let clean = clean_verdicts();
    for fault in BatchFault::ALL {
        let path = tmp_journal(fault.name());
        let faulted = run_batch(
            &batch(),
            &BatchOptions {
                journal: Some(path.clone()),
                fault: Some(fault),
                ..fast_opts()
            },
        );
        for r in &faulted.reports {
            if r.verdict != Verdict::Unknown {
                assert!(
                    clean.contains(&(r.key.clone(), r.verdict, r.bound)),
                    "{}: fault {} flipped a definitive verdict",
                    r.key,
                    fault.name()
                );
            }
        }
        // Resume after the fault: the batch must complete with verdicts
        // identical to the clean run. Only the journal-corruption fault
        // re-fires on resume (that is where it acts); re-arming the kill
        // would just kill the resume too.
        if matches!(
            fault,
            BatchFault::MidBatchKill(_) | BatchFault::CorruptJournal
        ) {
            let resumed = run_batch(
                &batch(),
                &BatchOptions {
                    journal: Some(path.clone()),
                    resume: true,
                    fault: matches!(fault, BatchFault::CorruptJournal).then_some(fault),
                    ..fast_opts()
                },
            );
            assert!(!resumed.interrupted, "resume after {}", fault.name());
            assert_eq!(resumed.verdicts(), clean, "resume after {}", fault.name());
        }
        let _ = std::fs::remove_file(&path);
    }
}

/// A journal whose final line was torn mid-append (crash between `write`
/// and the newline) must be tolerated: the torn line is dropped and its
/// work re-derived, never a parse crash or a wrong verdict.
#[test]
fn torn_final_journal_line_resumes_soundly() {
    let clean = clean_verdicts();
    let path = tmp_journal("torn");
    run_batch(
        &batch(),
        &BatchOptions {
            journal: Some(path.clone()),
            ..fast_opts()
        },
    );
    let text = std::fs::read_to_string(&path).unwrap();
    let trimmed = text.trim_end();
    let last_start = trimmed.rfind('\n').map_or(0, |i| i + 1);
    let mut keep = last_start + (trimmed.len() - last_start) / 2;
    while keep > 0 && !trimmed.is_char_boundary(keep) {
        keep -= 1;
    }
    std::fs::write(&path, &trimmed[..keep]).unwrap();

    let resumed = run_batch(
        &batch(),
        &BatchOptions {
            journal: Some(path.clone()),
            resume: true,
            ..fast_opts()
        },
    );
    assert!(!resumed.interrupted);
    assert_eq!(resumed.verdicts(), clean);
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Kill/resume equivalence at a random write boundary: killing the
    /// batch at the `kill_at`-th journal append and resuming yields
    /// exactly the uninterrupted run's verdicts — for every kill point,
    /// including ones that land mid-sweep inside a task.
    #[test]
    fn killed_batch_resumes_to_clean_verdicts(kill_at in 0u64..24) {
        let clean = clean_verdicts();
        let path = tmp_journal("prop-kill");
        let killed = run_batch(
            &batch(),
            &BatchOptions {
                journal: Some(path.clone()),
                fault: Some(BatchFault::MidBatchKill(kill_at)),
                ..fast_opts()
            },
        );
        let resumed = run_batch(
            &batch(),
            &BatchOptions {
                journal: Some(path.clone()),
                resume: true,
                ..fast_opts()
            },
        );
        let _ = std::fs::remove_file(&path);
        // A kill past the last write is a no-op; either way the resumed
        // (or never-interrupted) run must land on the clean verdicts.
        if killed.interrupted {
            prop_assert!(killed.reports.len() < 9 || killed.verdicts() == clean);
        }
        prop_assert!(!resumed.interrupted);
        prop_assert_eq!(resumed.verdicts(), clean);
    }
}
