//! The incremental bound sweep must be indistinguishable from per-bound
//! scratch BMC: for every workload family, sweeping `k = 1..=K` inside one
//! solver (assumption frames over a horizon encoding) returns the same
//! verdict, at the same bound, with the same per-bound verdict sequence,
//! as re-encoding and solving each bound from scratch.

use zpre::{try_verify_sweep, verify_bmc, Strategy, VerifyOptions};
use zpre_prog::build::*;
use zpre_prog::MemoryModel;
use zpre_workloads::{suite, Scale, Subcat};

const HORIZON: u32 = 6;

/// Runs both drivers on `program` and checks frame-by-frame agreement.
fn assert_sweep_matches_scratch(
    name: &str,
    program: &zpre_prog::Program,
    unroll_bound: u32,
    mm: MemoryModel,
) {
    let opts = VerifyOptions {
        unroll_bound,
        max_bound: HORIZON,
        ..VerifyOptions::new(mm, Strategy::Zpre)
    };
    let scratch = verify_bmc(program, HORIZON, &opts);
    let sweep = try_verify_sweep(program, &opts).unwrap_or_else(|e| panic!("{name} {mm}: {e}"));
    assert_eq!(
        sweep.verdict, scratch.verdict,
        "{name} {mm}: sweep verdict diverges from scratch BMC"
    );
    assert_eq!(
        sweep.bound, scratch.bound,
        "{name} {mm}: sweep decided at a different bound than scratch BMC"
    );
    // The per-bound verdict sequences agree frame by frame. A loop-free
    // program collapses to one frame on both sides; otherwise both drivers
    // stop at the same bound, so the sequences have equal length.
    assert_eq!(
        sweep.frames.len(),
        scratch.per_bound.len(),
        "{name} {mm}: sweep solved a different number of bounds"
    );
    for (f, (b, out)) in sweep.frames.iter().zip(&scratch.per_bound) {
        assert_eq!(f.bound, *b, "{name} {mm}: bound order diverged");
        assert_eq!(
            f.verdict, out.verdict,
            "{name} {mm}: bound {b} verdict diverges from scratch"
        );
    }
}

/// Every family of the quick suite, under every memory model: the
/// acceptance bar from the issue ("incremental sweep k=1..6 verdicts
/// identical to per-bound scratch on every workload family").
#[test]
fn sweep_matches_scratch_on_every_family() {
    let tasks = suite(Scale::Quick);
    let mut seen: Vec<Subcat> = Vec::new();
    for task in &tasks {
        if !seen.contains(&task.subcat) {
            seen.push(task.subcat);
        }
        for mm in MemoryModel::ALL {
            assert_sweep_matches_scratch(&task.name, &task.program, task.unroll_bound, mm);
        }
    }
    assert_eq!(
        seen.len(),
        Subcat::ALL.len(),
        "quick suite no longer covers every family; the equivalence bar shrank"
    );
}

/// Loopy programs exercise the marker frames proper (the suite's stress and
/// wmm families are loop-free and collapse to one frame), including a bug
/// only reachable at `k* = 3` and a loop that stays safe at every bound.
#[test]
fn sweep_matches_scratch_on_loopy_programs() {
    let kstar3 = ProgramBuilder::new("kstar3")
        .shared("x", 0)
        .main(vec![
            while_(lt(v("x"), c(3)), vec![assign("x", add(v("x"), c(1)))]),
            assert_(ne(v("x"), c(3))),
        ])
        .build();
    let safe_loop = ProgramBuilder::new("safe-loop")
        .width(8)
        .shared("x", 0)
        .main(vec![
            while_(lt(v("x"), c(10)), vec![assign("x", add(v("x"), c(1)))]),
            assert_(le(v("x"), c(10))),
        ])
        .build();
    let threaded_loop = ProgramBuilder::new("threaded-loop")
        .shared("cnt", 0)
        .thread(
            "w",
            vec![while_(
                lt(v("cnt"), c(2)),
                vec![assign("cnt", add(v("cnt"), c(1)))],
            )],
        )
        .main(vec![spawn(1), join(1), assert_(ne(v("cnt"), c(2)))])
        .build();
    for (name, p) in [
        ("kstar3", &kstar3),
        ("safe-loop", &safe_loop),
        ("threaded-loop", &threaded_loop),
    ] {
        for mm in MemoryModel::ALL {
            assert_sweep_matches_scratch(name, p, HORIZON, mm);
        }
    }
}
