//! Memory-model semantics at the suite level:
//!
//! - relaxation monotonicity: behaviours(SC) ⊆ behaviours(TSO) ⊆
//!   behaviours(PSO), so safety verdicts can only *weaken* along that
//!   chain (the paper: "all the false tasks in SC are still false in TSO
//!   and PSO, and some true tasks flip to false");
//! - PSO's preserved program order is a subset of TSO's;
//! - the paper's running example is itself a store-buffering shape that
//!   flips from safe (SC) to unsafe (TSO/PSO).

use std::collections::BTreeSet;
use zpre::{verify, Strategy, Verdict, VerifyOptions};
use zpre_encoder::po_pairs;
use zpre_prog::{to_ssa, unroll_program, MemoryModel};
use zpre_workloads::{suite, Scale};

#[test]
fn safety_is_monotone_in_relaxation() {
    for task in suite(Scale::Quick) {
        let verdict = |mm| {
            let opts = VerifyOptions {
                unroll_bound: task.unroll_bound,
                ..VerifyOptions::new(mm, Strategy::Zpre)
            };
            verify(&task.program, &opts).verdict
        };
        let sc = verdict(MemoryModel::Sc);
        let tso = verdict(MemoryModel::Tso);
        let pso = verdict(MemoryModel::Pso);
        // unsafe under SC ⇒ unsafe under TSO ⇒ unsafe under PSO.
        if sc == Verdict::Unsafe {
            assert_eq!(tso, Verdict::Unsafe, "{}", task.name);
        }
        if tso == Verdict::Unsafe {
            assert_eq!(pso, Verdict::Unsafe, "{}", task.name);
        }
        // equivalently: safe under PSO ⇒ safe under TSO ⇒ safe under SC.
        if pso == Verdict::Safe {
            assert_eq!(tso, Verdict::Safe, "{}", task.name);
        }
        if tso == Verdict::Safe {
            assert_eq!(sc, Verdict::Safe, "{}", task.name);
        }
    }
}

#[test]
fn true_tasks_flip_to_false_but_never_the_reverse() {
    // Aggregate version of the paper's Table 3 observation.
    let mut sc_false = 0;
    let mut tso_false = 0;
    let mut pso_false = 0;
    for task in suite(Scale::Quick) {
        let verdict = |mm| {
            let opts = VerifyOptions {
                unroll_bound: task.unroll_bound,
                ..VerifyOptions::new(mm, Strategy::Zpre)
            };
            verify(&task.program, &opts).verdict
        };
        if verdict(MemoryModel::Sc) == Verdict::Unsafe {
            sc_false += 1;
        }
        if verdict(MemoryModel::Tso) == Verdict::Unsafe {
            tso_false += 1;
        }
        if verdict(MemoryModel::Pso) == Verdict::Unsafe {
            pso_false += 1;
        }
    }
    assert!(sc_false <= tso_false, "{sc_false} > {tso_false}");
    assert!(tso_false <= pso_false, "{tso_false} > {pso_false}");
    assert!(pso_false > sc_false, "relaxation never exposed a new bug");
}

#[test]
fn pso_preserved_order_is_a_subset_of_tso() {
    let mut strictly_fewer_somewhere = false;
    for task in suite(Scale::Quick) {
        let unrolled = unroll_program(&task.program, task.unroll_bound);
        let ssa = to_ssa(&unrolled);
        let tso: BTreeSet<(usize, usize)> = po_pairs(&ssa, MemoryModel::Tso).into_iter().collect();
        let pso: BTreeSet<(usize, usize)> = po_pairs(&ssa, MemoryModel::Pso).into_iter().collect();
        assert!(
            pso.is_subset(&tso),
            "{}: PSO preserves a pair TSO relaxes",
            task.name
        );
        if pso.len() < tso.len() {
            strictly_fewer_somewhere = true;
        }
    }
    assert!(
        strictly_fewer_somewhere,
        "PSO never relaxed anything beyond TSO"
    );
}

#[test]
fn paper_example_is_a_store_buffering_shape() {
    // Fig. 2's program: the reads into m and n can both bypass the pending
    // cross writes once W→R reordering is allowed, so it is safe under SC
    // and unsafe under TSO and PSO — the same flip as the SB litmus.
    use zpre_prog::build::*;
    let program = ProgramBuilder::new("fig2")
        .shared("x", 0)
        .shared("y", 0)
        .shared("m", 0)
        .shared("n", 0)
        .thread(
            "t1",
            vec![assign("x", add(v("y"), c(1))), assign("m", v("y"))],
        )
        .thread(
            "t2",
            vec![assign("y", add(v("x"), c(1))), assign("n", v("x"))],
        )
        .main(vec![
            spawn(1),
            spawn(2),
            join(1),
            join(2),
            assert_(not(and(eq(v("m"), c(0)), eq(v("n"), c(0))))),
        ])
        .build();
    let verdict = |mm| verify(&program, &VerifyOptions::new(mm, Strategy::Zpre)).verdict;
    assert_eq!(verdict(MemoryModel::Sc), Verdict::Safe);
    assert_eq!(verdict(MemoryModel::Tso), Verdict::Unsafe);
    assert_eq!(verdict(MemoryModel::Pso), Verdict::Unsafe);
}

#[test]
fn fences_restore_safety_on_every_fenceable_quick_task() {
    // Every unsafe-under-WMM litmus in the quick suite has a fenced sibling
    // that is safe everywhere; check the pairing holds end to end.
    let tasks = suite(Scale::Quick);
    for task in &tasks {
        if !task.name.contains("-fence") {
            continue;
        }
        for mm in MemoryModel::ALL {
            let opts = VerifyOptions {
                unroll_bound: task.unroll_bound,
                ..VerifyOptions::new(mm, Strategy::Zpre)
            };
            let v = verify(&task.program, &opts).verdict;
            if let Some(expected_safe) = task.expected.get(mm) {
                assert_eq!(v == Verdict::Safe, expected_safe, "{} {mm}", task.name);
            }
        }
    }
}
