//! End-to-end certification tests: certified verdicts carry independently
//! checked evidence, injected faults are rejected fail-closed, and
//! certified verdicts agree with the explicit-state oracle on random
//! programs.

use proptest::prelude::*;
use zpre::{
    try_verify, try_verify_ssa, Certificate, Fault, Strategy as SolveStrategy, Verdict,
    VerifyError, VerifyOptions,
};
use zpre_prog::build::*;
use zpre_prog::interp::{check_sc, Limits, Outcome};
use zpre_prog::{flatten, to_ssa, unroll_program, MemoryModel, Program, Stmt};

fn racy() -> Program {
    let inc = vec![assign("r", v("cnt")), assign("cnt", add(v("r"), c(1)))];
    ProgramBuilder::new("racy")
        .shared("cnt", 0)
        .thread("w1", inc.clone())
        .thread("w2", inc)
        .main(vec![
            spawn(1),
            spawn(2),
            join(1),
            join(2),
            assert_(eq(v("cnt"), c(2))),
        ])
        .build()
}

fn locked() -> Program {
    let inc = vec![
        lock("m"),
        assign("r", v("cnt")),
        assign("cnt", add(v("r"), c(1))),
        unlock("m"),
    ];
    ProgramBuilder::new("locked")
        .shared("cnt", 0)
        .mutex("m")
        .thread("w1", inc.clone())
        .thread("w2", inc)
        .main(vec![
            spawn(1),
            spawn(2),
            join(1),
            join(2),
            assert_(eq(v("cnt"), c(2))),
        ])
        .build()
}

fn certified_opts(mm: MemoryModel, strategy: SolveStrategy) -> VerifyOptions {
    let mut opts = VerifyOptions::new(mm, strategy);
    opts.certify = true;
    opts
}

/// Safe verdicts carry a RUP-checked proof whose theory lemmas were all
/// re-justified by the standalone cycle checker — under every memory model
/// and every main strategy.
#[test]
fn certified_safe_proofs_check_out() {
    let mut saw_lemmas = false;
    for mm in MemoryModel::ALL {
        for strategy in SolveStrategy::MAIN {
            let out = try_verify(&locked(), &certified_opts(mm, strategy))
                .unwrap_or_else(|e| panic!("{mm} {strategy}: {e}"));
            assert_eq!(out.verdict, Verdict::Safe, "{mm} {strategy}");
            match out.certificate {
                Some(Certificate::Safe {
                    lemmas_checked,
                    proof_steps,
                }) => {
                    assert!(proof_steps > 0, "{mm} {strategy}: empty proof");
                    saw_lemmas |= lemmas_checked > 0;
                }
                other => panic!("{mm} {strategy}: expected Safe certificate, got {other:?}"),
            }
        }
    }
    // At least one configuration must have exercised the lemma re-checker,
    // otherwise the fault matrix below tests nothing.
    assert!(saw_lemmas, "no configuration produced theory lemmas");
}

/// Unsafe verdicts replay through the concrete interpreter — under every
/// memory model (exercising the SC, TSO and PSO replay machines).
#[test]
fn certified_unsafe_witnesses_replay() {
    for mm in MemoryModel::ALL {
        let out = try_verify(&racy(), &certified_opts(mm, SolveStrategy::Zpre))
            .unwrap_or_else(|e| panic!("{mm}: {e}"));
        assert_eq!(out.verdict, Verdict::Unsafe, "{mm}");
        match out.certificate {
            Some(Certificate::Unsafe { replayed_steps }) => {
                assert!(replayed_steps > 0, "{mm}: empty schedule");
            }
            other => panic!("{mm}: expected Unsafe certificate, got {other:?}"),
        }
    }
}

/// A certified Unsafe verdict without the original program (SSA-only entry
/// point) fails closed instead of fabricating a certificate.
#[test]
fn ssa_only_certified_unsafe_fails_closed() {
    let ssa = to_ssa(&unroll_program(&racy(), 2));
    let err = try_verify_ssa(&ssa, &certified_opts(MemoryModel::Sc, SolveStrategy::Zpre))
        .expect_err("certified Unsafe without a flat program must fail");
    assert!(
        matches!(
            err,
            VerifyError::Certification {
                stage: "replay",
                ..
            }
        ),
        "{err}"
    );
}

/// The fault matrix: every injected fault is either rejected fail-closed
/// by the certifier (when it corrupts that verdict's evidence) or provably
/// harmless (verdict and certificate unchanged). Nothing ever panics.
#[test]
fn fault_matrix_fails_closed() {
    // Which faults corrupt which verdict's certification artifacts.
    let hits_safe = |f: Fault| {
        matches!(
            f,
            Fault::DropLemmas | Fault::ForgeLemma | Fault::TruncateProof(_)
        )
    };
    let hits_unsafe = |f: Fault| matches!(f, Fault::FlipModelBit);

    for fault in Fault::ALL {
        for (program, verdict) in [(locked(), Verdict::Safe), (racy(), Verdict::Unsafe)] {
            let mut opts = certified_opts(MemoryModel::Sc, SolveStrategy::Zpre);
            opts.fault = Some(fault);
            let result = try_verify(&program, &opts);
            let should_fail = match verdict {
                Verdict::Safe => hits_safe(fault),
                Verdict::Unsafe => hits_unsafe(fault),
                Verdict::Unknown => unreachable!(),
            };
            if should_fail {
                let err =
                    result.expect_err(&format!("{} on {} must be rejected", fault.name(), verdict));
                assert!(
                    matches!(err, VerifyError::Certification { .. }),
                    "{}: wrong error class: {err}",
                    fault.name()
                );
            } else {
                let out = result.unwrap_or_else(|e| {
                    panic!("{} on {} must be harmless: {e}", fault.name(), verdict)
                });
                assert_eq!(out.verdict, verdict, "{}", fault.name());
                assert!(out.certificate.is_some(), "{}", fault.name());
            }
        }
    }
}

/// `DropLemmas` specifically: the control run must contain theory lemmas
/// (otherwise the fault has nothing to drop and the matrix entry is
/// vacuous), and dropping their justifications must be detected.
#[test]
fn dropped_lemma_justifications_are_detected() {
    let opts = certified_opts(MemoryModel::Sc, SolveStrategy::Zpre);
    let out = try_verify(&locked(), &opts).expect("control run certifies");
    let Some(Certificate::Safe { lemmas_checked, .. }) = out.certificate else {
        panic!("expected Safe certificate");
    };
    assert!(lemmas_checked > 0, "control proof carries no theory lemmas");

    let mut faulty = opts;
    faulty.fault = Some(Fault::DropLemmas);
    let err = try_verify(&locked(), &faulty).expect_err("dropped lemmas must be detected");
    assert!(
        matches!(err, VerifyError::Certification { stage: "lemma", .. }),
        "{err}"
    );
}

// ---------------------------------------------------------------------------
// Random programs: certified verdicts agree with the explicit-state oracle.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum MiniStmt {
    StoreConst(usize, u64),
    StoreAdd(usize, usize, u64),
    LoadStore(usize, u64),
    CondStore(usize, u64, usize, u64),
    LockedInc(usize),
}

const VARS: [&str; 2] = ["x", "y"];

fn arb_stmt() -> impl Strategy<Value = MiniStmt> {
    prop_oneof![
        (0..2usize, 0..4u64).prop_map(|(v, k)| MiniStmt::StoreConst(v, k)),
        (0..2usize, 0..2usize, 0..3u64).prop_map(|(a, b, k)| MiniStmt::StoreAdd(a, b, k)),
        (0..2usize, 0..3u64).prop_map(|(v, k)| MiniStmt::LoadStore(v, k)),
        (0..2usize, 0..2u64, 0..2usize, 1..4u64)
            .prop_map(|(v, k, o, k2)| MiniStmt::CondStore(v, k, o, k2)),
        (0..2usize).prop_map(MiniStmt::LockedInc),
    ]
}

fn lower(thread: usize, stmts: &[MiniStmt]) -> Vec<Stmt> {
    let mut out = Vec::new();
    for (i, s) in stmts.iter().enumerate() {
        let local = format!("l{thread}_{i}");
        match s {
            MiniStmt::StoreConst(v_, k) => out.push(assign(VARS[*v_], c(*k))),
            MiniStmt::StoreAdd(a, b_, k) => out.push(assign(VARS[*a], add(v(VARS[*b_]), c(*k)))),
            MiniStmt::LoadStore(v_, k) => {
                out.push(assign(&local, v(VARS[*v_])));
                out.push(assign(VARS[*v_], add(v(&local), c(*k))));
            }
            MiniStmt::CondStore(v_, k, o, k2) => out.push(when(
                eq(v(VARS[*v_]), c(*k)),
                vec![assign(VARS[*o], c(*k2))],
            )),
            MiniStmt::LockedInc(v_) => {
                out.push(lock("m"));
                out.push(assign(&local, v(VARS[*v_])));
                out.push(assign(VARS[*v_], add(v(&local), c(1))));
                out.push(unlock("m"));
            }
        }
    }
    out
}

fn arb_program() -> impl Strategy<Value = Program> {
    (
        prop::collection::vec(arb_stmt(), 1..3),
        prop::collection::vec(arb_stmt(), 1..3),
        0..2usize,
        0..4u64,
        any::<bool>(),
    )
        .prop_map(|(t1, t2, avar, aconst, eq_prop)| {
            let prop_expr = if eq_prop {
                eq(v(VARS[avar]), c(aconst))
            } else {
                ne(v(VARS[avar]), c(aconst))
            };
            ProgramBuilder::new("random")
                .width(4)
                .shared("x", 0)
                .shared("y", 0)
                .mutex("m")
                .thread("t1", lower(1, &t1))
                .thread("t2", lower(2, &t2))
                .main(vec![
                    spawn(1),
                    spawn(2),
                    join(1),
                    join(2),
                    assert_(prop_expr),
                ])
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Certified verdicts agree with exhaustive interleaving enumeration,
    /// and every definitive verdict carries the matching certificate kind.
    #[test]
    fn certified_verdicts_match_oracle(program in arb_program()) {
        let fp = flatten(&unroll_program(&program, 1));
        let oracle = check_sc(&fp, Limits::default());
        prop_assume!(oracle != Outcome::ResourceLimit);
        let mut opts = certified_opts(MemoryModel::Sc, SolveStrategy::Zpre);
        opts.unroll_bound = 1;
        let out = try_verify(&program, &opts).map_err(|e| {
            TestCaseError::Fail(format!(
                "certification failed: {e}\n{}",
                zpre_prog::pretty::pretty_program(&program)
            ))
        })?;
        prop_assert_eq!(
            out.verdict == Verdict::Safe,
            oracle == Outcome::Safe,
            "smt {:?} vs oracle {:?}\n{}",
            out.verdict,
            oracle,
            zpre_prog::pretty::pretty_program(&program)
        );
        match (out.verdict, &out.certificate) {
            (Verdict::Safe, Some(Certificate::Safe { .. })) => {}
            (Verdict::Unsafe, Some(Certificate::Unsafe { .. })) => {}
            (v, c) => prop_assert!(false, "verdict {v} with certificate {c:?}"),
        }
    }
}
