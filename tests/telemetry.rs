//! Observability integration tests: the `zpre-obs` event stream must make
//! the paper's hypotheses *visible*, not just implemented.
//!
//! H1 says interference variables (`V_rf ∪ V_ws`) are decided before
//! everything else; here the traced decision stream itself is checked to
//! lead with interference classes. The NDJSON export must carry phase
//! spans for every pipeline stage so `--trace-out` files are useful for
//! postmortem profiling.

use zpre::prelude::*;
use zpre::{verify_portfolio, PortfolioOptions, Strategy, VerifyOptions};
use zpre_obs::{ndjson, EventKind, Phase, Recorder, TraceConfig, VarClass};

fn racy_counter(workers: usize) -> Program {
    let inc = vec![assign("r", v("cnt")), assign("cnt", add(v("r"), c(1)))];
    let mut b = ProgramBuilder::new("racy").shared("cnt", 0);
    for w in 0..workers {
        b = b.thread(&format!("w{w}"), inc.clone());
    }
    let mut main: Vec<Stmt> = (1..=workers).map(spawn).collect();
    main.extend((1..=workers).map(join));
    main.push(assert_(eq(v("cnt"), c(workers as u64))));
    b.main(main).build()
}

fn locked_counter(workers: usize) -> Program {
    let inc = vec![
        lock("m"),
        assign("r", v("cnt")),
        assign("cnt", add(v("r"), c(1))),
        unlock("m"),
    ];
    let mut b = ProgramBuilder::new("locked").shared("cnt", 0).mutex("m");
    for w in 0..workers {
        b = b.thread(&format!("w{w}"), inc.clone());
    }
    let mut main: Vec<Stmt> = (1..=workers).map(spawn).collect();
    main.extend((1..=workers).map(join));
    main.push(assert_(eq(v("cnt"), c(workers as u64))));
    b.main(main).build()
}

fn traced_verify(program: &Program, mm: MemoryModel, strategy: Strategy) -> Recorder {
    let rec = Recorder::new(TraceConfig {
        events: true,
        decision_sample: 1,
    });
    let mut opts = VerifyOptions::new(mm, strategy);
    opts.recorder = Some(rec.clone());
    verify(program, &opts);
    rec
}

/// H1 in the telemetry: with the ZPRE guide, the decision stream leads
/// with interference-class variables. Formally: if the run made `k`
/// interference decisions in total, at least 90% of the *first* `k`
/// decision events must be interference-class.
#[test]
fn zpre_decision_stream_is_interference_first() {
    for mm in MemoryModel::ALL {
        for program in [racy_counter(3), locked_counter(2)] {
            let rec = traced_verify(&program, mm, Strategy::Zpre);
            let snap = rec.snapshot();
            let classes: Vec<VarClass> = snap
                .events
                .iter()
                .filter_map(|e| match e.kind {
                    EventKind::Decision { class, .. } => Some(class),
                    _ => None,
                })
                .collect();
            let k = classes.iter().filter(|c| c.is_interference()).count();
            if k == 0 {
                continue; // solved by propagation alone; nothing to rank
            }
            let leading = classes[..k].iter().filter(|c| c.is_interference()).count();
            let share = leading as f64 / k as f64;
            assert!(
                share >= 0.9,
                "{} under {}: only {:.0}% of the first {} decisions were \
                 interference-class ({} of {})",
                program.name,
                mm.name(),
                share * 100.0,
                k,
                leading,
                k
            );
        }
    }
}

/// The unguided baseline must NOT show the interference-first pattern on a
/// program with plenty of non-interference variables — otherwise the H1
/// check above would be vacuous.
#[test]
fn baseline_decision_stream_is_not_interference_first() {
    let program = racy_counter(3);
    let rec = traced_verify(&program, MemoryModel::Sc, Strategy::Baseline);
    let counters = rec.counters();
    assert!(
        counters.interference_decisions() < counters.total_decisions(),
        "baseline decided interference variables exclusively; H1 telemetry \
         comparison is vacuous"
    );
}

/// Every pipeline stage must land in the NDJSON export: unroll, SSA,
/// encode, bit-blast and solve spans (parse is absent because the program
/// comes from the builder, not the text frontend).
#[test]
fn ndjson_export_carries_all_pipeline_phases() {
    let rec = traced_verify(&racy_counter(2), MemoryModel::Tso, Strategy::Zpre);
    let text = ndjson::to_ndjson(&rec.snapshot());
    let report = ndjson::validate(&text).expect("emitted trace validates");
    for phase in ["unroll", "ssa", "encode", "blast", "solve"] {
        assert!(
            report.phases_seen.iter().any(|p| p == phase),
            "phase {phase} missing from trace (saw {:?})",
            report.phases_seen
        );
    }
    // Encode spans carry the memory model as their label.
    let parsed = ndjson::from_ndjson(&text).expect("round-trip");
    assert!(parsed
        .spans
        .iter()
        .any(|s| s.phase == Phase::Encode && s.label.as_deref() == Some("tso")));
}

/// A portfolio run attributes spans and events to members and records the
/// race outcome (winner flag, per-member decision counts) in one buffer.
#[test]
fn portfolio_trace_attributes_members() {
    let rec = Recorder::new(TraceConfig {
        events: true,
        decision_sample: 1,
    });
    let mut base = VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre);
    base.recorder = Some(rec.clone());
    let folio = verify_portfolio(&racy_counter(2), &PortfolioOptions::new(base));
    let snap = rec.snapshot();
    assert!(
        !snap.members.is_empty(),
        "portfolio run recorded no member telemetry"
    );
    let winners: Vec<&str> = snap
        .members
        .iter()
        .filter(|m| m.winner)
        .map(|m| m.name.as_str())
        .collect();
    assert_eq!(winners.len(), 1, "exactly one winner, got {winners:?}");
    assert_eq!(Some(winners[0]), folio.winner.as_deref());
    // Solver events carry the member label they came from.
    assert!(
        snap.events.iter().any(|e| e.member.is_some()),
        "no event was attributed to a portfolio member"
    );
    // The NDJSON round-trip preserves member records.
    let text = ndjson::to_ndjson(&snap);
    let report = ndjson::validate(&text).expect("portfolio trace validates");
    assert_eq!(report.members, snap.members.len());
}
