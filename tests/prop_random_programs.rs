//! Property-based end-to-end validation: random small concurrent programs
//! are verified by the SMT pipeline and cross-checked against exhaustive
//! interleaving enumeration (SC) and across strategies.

use proptest::prelude::*;
use zpre::{verify, Strategy as SolveStrategy, Verdict, VerifyOptions};
use zpre_prog::build::*;
use zpre_prog::interp::{check_sc, Limits, Outcome};
use zpre_prog::{flatten, unroll_program, MemoryModel, Program, Stmt};

/// A tiny statement language over two shared variables and per-thread
/// locals, rich enough to exercise rf/ws/fr, guards and the data path.
#[derive(Clone, Debug)]
enum MiniStmt {
    /// shared[var] := const
    StoreConst(usize, u64),
    /// shared[var] := shared[other] + const
    StoreAdd(usize, usize, u64),
    /// local := shared[var]
    LoadLocal(usize),
    /// shared[var] := local + const
    StoreLocal(usize, u64),
    /// if (shared[var] == const) { shared[other] := const2 }
    CondStore(usize, u64, usize, u64),
    /// lock-protected increment of shared[var]
    LockedInc(usize),
}

const VARS: [&str; 2] = ["x", "y"];

fn arb_stmt() -> impl Strategy<Value = MiniStmt> {
    prop_oneof![
        (0..2usize, 0..4u64).prop_map(|(v, k)| MiniStmt::StoreConst(v, k)),
        (0..2usize, 0..2usize, 0..3u64).prop_map(|(a, b, k)| MiniStmt::StoreAdd(a, b, k)),
        (0..2usize).prop_map(MiniStmt::LoadLocal),
        (0..2usize, 0..3u64).prop_map(|(v, k)| MiniStmt::StoreLocal(v, k)),
        (0..2usize, 0..2u64, 0..2usize, 1..4u64)
            .prop_map(|(v, k, o, k2)| MiniStmt::CondStore(v, k, o, k2)),
        (0..2usize).prop_map(MiniStmt::LockedInc),
    ]
}

fn lower(thread: usize, stmts: &[MiniStmt]) -> Vec<Stmt> {
    let local = format!("l{thread}");
    let mut out = Vec::new();
    for (i, s) in stmts.iter().enumerate() {
        match s {
            MiniStmt::StoreConst(v_, k) => out.push(assign(VARS[*v_], c(*k))),
            MiniStmt::StoreAdd(a, b_, k) => out.push(assign(VARS[*a], add(v(VARS[*b_]), c(*k)))),
            MiniStmt::LoadLocal(v_) => out.push(assign(&local, v(VARS[*v_]))),
            MiniStmt::StoreLocal(v_, k) => out.push(assign(VARS[*v_], add(v(&local), c(*k)))),
            MiniStmt::CondStore(v_, k, o, k2) => out.push(when(
                eq(v(VARS[*v_]), c(*k)),
                vec![assign(VARS[*o], c(*k2))],
            )),
            MiniStmt::LockedInc(v_) => {
                let r = format!("r{thread}_{i}");
                out.push(lock("m"));
                out.push(assign(&r, v(VARS[*v_])));
                out.push(assign(VARS[*v_], add(v(&r), c(1))));
                out.push(unlock("m"));
            }
        }
    }
    out
}

fn arb_program() -> impl Strategy<Value = Program> {
    (
        prop::collection::vec(arb_stmt(), 1..4),
        prop::collection::vec(arb_stmt(), 1..4),
        0..2usize,
        0..4u64,
        any::<bool>(),
    )
        .prop_map(|(t1, t2, avar, aconst, eq_prop)| {
            let prop_expr = if eq_prop {
                eq(v(VARS[avar]), c(aconst))
            } else {
                ne(v(VARS[avar]), c(aconst))
            };
            ProgramBuilder::new("random")
                .width(4)
                .shared("x", 0)
                .shared("y", 0)
                .mutex("m")
                .thread("t1", lower(1, &t1))
                .thread("t2", lower(2, &t2))
                .main(vec![
                    spawn(1),
                    spawn(2),
                    join(1),
                    join(2),
                    assert_(prop_expr),
                ])
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The SMT verdict under SC equals exhaustive interleaving enumeration.
    #[test]
    fn smt_matches_oracle_under_sc(program in arb_program()) {
        let fp = flatten(&unroll_program(&program, 1));
        let oracle = check_sc(&fp, Limits::default());
        prop_assume!(oracle != Outcome::ResourceLimit);
        let out = verify(&program, &VerifyOptions::new(MemoryModel::Sc, SolveStrategy::Zpre));
        prop_assert_eq!(
            out.verdict == Verdict::Safe,
            oracle == Outcome::Safe,
            "smt {:?} vs oracle {:?}\n{}",
            out.verdict,
            oracle,
            zpre_prog::pretty::pretty_program(&program)
        );
    }

    /// Baseline and guided strategies agree under every memory model
    /// (the heuristic must not change satisfiability), and the verdicts
    /// respect relaxation monotonicity.
    #[test]
    fn strategies_agree_and_models_are_monotone(program in arb_program()) {
        let mut per_mm = Vec::new();
        for mm in MemoryModel::ALL {
            let mut verdicts = Vec::new();
            for strategy in [SolveStrategy::Baseline, SolveStrategy::ZpreMinus, SolveStrategy::Zpre] {
                let out = verify(&program, &VerifyOptions::new(mm, strategy));
                verdicts.push(out.verdict);
            }
            prop_assert_eq!(verdicts[0], verdicts[1]);
            prop_assert_eq!(verdicts[1], verdicts[2]);
            per_mm.push(verdicts[0]);
        }
        // SC unsafe ⇒ TSO unsafe ⇒ PSO unsafe.
        if per_mm[0] == Verdict::Unsafe {
            prop_assert_eq!(per_mm[1], Verdict::Unsafe);
        }
        if per_mm[1] == Verdict::Unsafe {
            prop_assert_eq!(per_mm[2], Verdict::Unsafe);
        }
    }
}
