//! The statically pruned encoding must be indistinguishable from the
//! historic unpruned encoding: for every workload family, under every
//! memory model, verification with the interference-pruning pass on
//! returns the same verdict as with the pass off — and every pruning
//! justification survives the independent `check_report` re-verification.

use zpre::{try_verify, Strategy, Verdict, VerifyOptions};
use zpre_prog::{to_ssa, unroll_program, MemoryModel};
use zpre_workloads::{suite, Scale, Subcat};

/// Runs `program` pruned and unpruned and checks verdict agreement.
fn assert_prune_agrees(name: &str, task: &zpre_workloads::Task, mm: MemoryModel) -> (u64, u64) {
    let pruned_opts = VerifyOptions {
        unroll_bound: task.unroll_bound,
        max_bound: task.unroll_bound,
        certify: true,
        ..VerifyOptions::new(mm, Strategy::Zpre)
    };
    let unpruned_opts = VerifyOptions {
        prune: false,
        ..pruned_opts.clone()
    };
    let pruned = try_verify(&task.program, &pruned_opts)
        .unwrap_or_else(|e| panic!("{name} {mm}: pruned run failed: {e}"));
    let unpruned = try_verify(&task.program, &unpruned_opts)
        .unwrap_or_else(|e| panic!("{name} {mm}: unpruned run failed: {e}"));
    assert_ne!(
        pruned.verdict,
        Verdict::Unknown,
        "{name} {mm}: pruned run must reach a verdict"
    );
    assert_eq!(
        pruned.verdict, unpruned.verdict,
        "{name} {mm}: pruned and unpruned encodings disagree"
    );

    // Count the pass's effect on this instance so the suite can assert the
    // pruning is not vacuous overall.
    let ssa = to_ssa(&unroll_program(&task.program, task.unroll_bound));
    let report = zpre_analysis::analyze(&ssa, mm);
    let checked = zpre_analysis::check_report(&ssa, &report)
        .unwrap_or_else(|e| panic!("{name} {mm}: justification rejected by checker: {e}"));
    // One check per individually justified pair plus one per resolved-read
    // chain — nothing the analysis claimed goes unexamined.
    let resolved = report.resolved.iter().filter(|r| r.is_some()).count();
    assert_eq!(
        checked,
        report.pruned_rf.len() + report.pruned_ws.len() + resolved,
        "{name} {mm}: checker visited a different number of claims than the report holds"
    );
    let c = &report.counters;
    let pruned_vars = c.rf_pruned + c.ws_pruned + c.ws_serialized;
    (pruned_vars, checked as u64)
}

/// Every family of the quick suite, under every memory model: the
/// acceptance bar from the issue ("pruned and unpruned encodings agree
/// verdict-for-verdict on every workload family under SC, TSO, and PSO").
#[test]
fn pruned_matches_unpruned_on_every_family() {
    let tasks = suite(Scale::Quick);
    let mut seen: Vec<Subcat> = Vec::new();
    let mut total_pruned = 0u64;
    let mut total_checked = 0u64;
    for task in &tasks {
        if !seen.contains(&task.subcat) {
            seen.push(task.subcat);
        }
        for mm in MemoryModel::ALL {
            let (pruned_vars, checked) = assert_prune_agrees(&task.name, task, mm);
            total_pruned += pruned_vars;
            total_checked += checked;
        }
    }
    assert_eq!(
        seen.len(),
        Subcat::ALL.len(),
        "quick suite no longer covers every family; the equivalence bar shrank"
    );
    assert!(
        total_pruned > 0,
        "the pruning pass removed no interference variable anywhere in the suite"
    );
    assert!(
        total_checked > 0,
        "the independent checker re-verified no justification anywhere in the suite"
    );
}

/// The `zpre-noprune` strategy ablation is the same oracle as
/// `prune: false`: both must agree with the pruned default.
#[test]
fn noprune_strategy_is_equivalent_oracle() {
    let tasks = suite(Scale::Quick);
    for task in tasks.iter().take(4) {
        for mm in MemoryModel::ALL {
            let base = VerifyOptions {
                unroll_bound: task.unroll_bound,
                max_bound: task.unroll_bound,
                ..VerifyOptions::new(mm, Strategy::Zpre)
            };
            let via_strategy = VerifyOptions {
                strategy: Strategy::ZpreNoPrune,
                ..base.clone()
            };
            let pruned = try_verify(&task.program, &base)
                .unwrap_or_else(|e| panic!("{} {mm}: {e}", task.name));
            let ablated = try_verify(&task.program, &via_strategy)
                .unwrap_or_else(|e| panic!("{} {mm}: {e}", task.name));
            assert_eq!(
                pruned.verdict, ablated.verdict,
                "{} {mm}: zpre-noprune ablation diverges from the pruned default",
                task.name
            );
        }
    }
}
