//! Cross-validation of the SMT pipeline against the explicit-state oracles:
//! every small-suite verdict must agree with exhaustive interleaving
//! enumeration (SC) and with the operational store-buffer models (TSO/PSO).

use zpre::{verify, Strategy, Verdict, VerifyOptions};
use zpre_prog::interp::{check_sc, Limits, Outcome};
use zpre_prog::wmm::check_wmm;
use zpre_prog::{flatten, unroll_program, MemoryModel};
use zpre_workloads::{oracle_suite, Task};

fn oracle_outcome(task: &Task, mm: MemoryModel) -> Outcome {
    let unrolled = unroll_program(&task.program, task.unroll_bound);
    let fp = flatten(&unrolled);
    let limits = Limits {
        max_states: 30_000_000,
        ..Limits::default()
    };
    match mm {
        MemoryModel::Sc => check_sc(&fp, limits),
        _ => check_wmm(&fp, mm, limits),
    }
}

fn smt_verdict(task: &Task, mm: MemoryModel) -> Verdict {
    let opts = VerifyOptions {
        unroll_bound: task.unroll_bound,
        ..VerifyOptions::new(mm, Strategy::Zpre)
    };
    verify(&task.program, &opts).verdict
}

#[test]
fn sc_verdicts_match_exhaustive_enumeration() {
    for task in oracle_suite() {
        let oracle = oracle_outcome(&task, MemoryModel::Sc);
        if oracle == Outcome::ResourceLimit {
            continue; // too big for the oracle; covered by ground truth
        }
        let smt = smt_verdict(&task, MemoryModel::Sc);
        assert_eq!(
            smt == Verdict::Safe,
            oracle == Outcome::Safe,
            "{}: smt={smt:?} oracle={oracle:?}",
            task.name
        );
    }
}

#[test]
fn tso_verdicts_match_store_buffer_model() {
    for task in oracle_suite() {
        let oracle = oracle_outcome(&task, MemoryModel::Tso);
        if oracle == Outcome::ResourceLimit {
            continue;
        }
        let smt = smt_verdict(&task, MemoryModel::Tso);
        assert_eq!(
            smt == Verdict::Safe,
            oracle == Outcome::Safe,
            "{}: smt={smt:?} oracle={oracle:?}",
            task.name
        );
    }
}

#[test]
fn pso_verdicts_match_store_buffer_model() {
    for task in oracle_suite() {
        let oracle = oracle_outcome(&task, MemoryModel::Pso);
        if oracle == Outcome::ResourceLimit {
            continue;
        }
        let smt = smt_verdict(&task, MemoryModel::Pso);
        assert_eq!(
            smt == Verdict::Safe,
            oracle == Outcome::Safe,
            "{}: smt={smt:?} oracle={oracle:?}",
            task.name
        );
    }
}

#[test]
fn generator_ground_truth_matches_oracles() {
    // The `expected` fields of the oracle suite must themselves agree with
    // the oracles — guarding against wrong ground-truth annotations.
    for task in oracle_suite() {
        for mm in MemoryModel::ALL {
            let Some(expected_safe) = task.expected.get(mm) else {
                continue;
            };
            let oracle = oracle_outcome(&task, mm);
            if oracle == Outcome::ResourceLimit {
                continue;
            }
            assert_eq!(
                oracle == Outcome::Safe,
                expected_safe,
                "{} under {mm}: annotation says safe={expected_safe}, oracle says {oracle:?}",
                task.name
            );
        }
    }
}
