//! End-to-end pipeline tests: program → unroll → SSA → encode → CDCL(T) →
//! verdict, across memory models and strategies.

use zpre::prelude::*;
use zpre::{Strategy, Verdict, VerifyOptions};

fn racy_counter(workers: usize) -> Program {
    let inc = vec![assign("r", v("cnt")), assign("cnt", add(v("r"), c(1)))];
    let mut b = ProgramBuilder::new("racy").shared("cnt", 0);
    for w in 0..workers {
        b = b.thread(&format!("w{w}"), inc.clone());
    }
    let mut main: Vec<Stmt> = (1..=workers).map(spawn).collect();
    main.extend((1..=workers).map(join));
    main.push(assert_(eq(v("cnt"), c(workers as u64))));
    b.main(main).build()
}

fn locked_counter(workers: usize) -> Program {
    let inc = vec![
        lock("m"),
        assign("r", v("cnt")),
        assign("cnt", add(v("r"), c(1))),
        unlock("m"),
    ];
    let mut b = ProgramBuilder::new("locked").shared("cnt", 0).mutex("m");
    for w in 0..workers {
        b = b.thread(&format!("w{w}"), inc.clone());
    }
    let mut main: Vec<Stmt> = (1..=workers).map(spawn).collect();
    main.extend((1..=workers).map(join));
    main.push(assert_(eq(v("cnt"), c(workers as u64))));
    b.main(main).build()
}

#[test]
fn verdicts_across_all_models_and_strategies() {
    for mm in MemoryModel::ALL {
        for strategy in Strategy::ALL {
            let opts = VerifyOptions::new(mm, strategy);
            assert_eq!(
                verify(&racy_counter(2), &opts).verdict,
                Verdict::Unsafe,
                "racy {mm} {strategy}"
            );
            assert_eq!(
                verify(&locked_counter(2), &opts).verdict,
                Verdict::Safe,
                "locked {mm} {strategy}"
            );
        }
    }
}

#[test]
fn interference_guidance_reduces_decisions_on_safe_instances() {
    // On the 3-worker safe counter the interference-first order must cut
    // the number of decisions — the paper's core claim (Table 2).
    let program = locked_counter(3);
    let base = verify(
        &program,
        &VerifyOptions::new(MemoryModel::Sc, Strategy::Baseline),
    );
    let zpre = verify(
        &program,
        &VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre),
    );
    assert_eq!(base.verdict, Verdict::Safe);
    assert_eq!(zpre.verdict, Verdict::Safe);
    assert!(
        zpre.stats.decisions < base.stats.decisions,
        "zpre {} >= baseline {}",
        zpre.stats.decisions,
        base.stats.decisions
    );
    assert!(zpre.stats.guided_decisions > 0);
}

#[test]
fn outcome_metrics_are_populated() {
    let out = verify(
        &locked_counter(2),
        &VerifyOptions::new(MemoryModel::Tso, Strategy::Zpre),
    );
    assert!(out.num_events > 0);
    assert!(out.num_solver_vars > 0);
    assert!(out.class_counts.rf > 0);
    assert!(out.class_counts.ws > 0);
    assert!(out.class_counts.ord > 0);
    assert!(out.class_counts.ssa > 0);
    assert!(out.encode_time.as_nanos() > 0);
}

#[test]
fn interference_count_is_stable_across_memory_models() {
    // §5.2: changing the memory model does not affect the number of
    // interference variables, only the ordering constraints.
    let program = locked_counter(2);
    let counts: Vec<(usize, usize)> = MemoryModel::ALL
        .iter()
        .map(|&mm| {
            let out = verify(&program, &VerifyOptions::new(mm, Strategy::Zpre));
            (out.class_counts.rf, out.class_counts.ws)
        })
        .collect();
    assert_eq!(counts[0], counts[1]);
    assert_eq!(counts[1], counts[2]);
}

#[test]
fn unroll_bound_controls_loop_depth() {
    // A loop that counts to 4: with bound 2 the unwinding assumption cuts
    // all complete executions (vacuously safe); with bound 4 the violation
    // appears.
    let program = ProgramBuilder::new("loop")
        .shared("x", 0)
        .main(vec![
            while_(lt(v("x"), c(4)), vec![assign("x", add(v("x"), c(1)))]),
            assert_(ne(v("x"), c(4))),
        ])
        .build();
    let mut opts = VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre);
    opts.unroll_bound = 2;
    assert_eq!(verify(&program, &opts).verdict, Verdict::Safe);
    opts.unroll_bound = 4;
    assert_eq!(verify(&program, &opts).verdict, Verdict::Unsafe);
}

#[test]
fn wide_datapath_works() {
    // 32-bit arithmetic: (x = 70000) * 3 wraps nowhere; assert exact value.
    let program = ProgramBuilder::new("wide")
        .width(32)
        .shared("x", 0)
        .main(vec![
            assign("x", mul(c(70_000), c(3))),
            assert_(eq(v("x"), c(210_000))),
        ])
        .build();
    let out = verify(
        &program,
        &VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre),
    );
    assert_eq!(out.verdict, Verdict::Safe);
}

#[test]
fn seeds_change_polarities_but_not_verdicts() {
    let program = locked_counter(2);
    let mut verdicts = Vec::new();
    for seed in [1u64, 42, 0xDEAD, u64::MAX] {
        let opts = VerifyOptions {
            seed,
            ..VerifyOptions::new(MemoryModel::Pso, Strategy::Zpre)
        };
        verdicts.push(verify(&program, &opts).verdict);
    }
    assert!(verdicts.iter().all(|&v| v == Verdict::Safe));
}
