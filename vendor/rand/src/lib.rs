//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to a crates registry, so the workspace
//! vendors a minimal, dependency-free implementation of exactly the API
//! surface zpre uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the
//! `RngExt` extension methods `random_range` / `random_bool`. The generator
//! is a splitmix64 stream — deterministic per seed, which is all the seeded
//! workload generators require (statistical quality far beyond "not visibly
//! patterned" is not needed there).

use std::ops::Range;

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Pseudo-random generators: the raw stream plus derived samplers.
pub trait RngExt {
    /// Next 64 raw bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open range. Panics if the range is empty.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 bits of mantissa gives a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// Types uniformly sampleable from a half-open range.
pub trait SampleUniform: Copy {
    /// A uniform value in `[lo, hi)`.
    fn sample<R: RngExt + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngExt + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "random_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is < 2^-64 * span: irrelevant for the small
                // spans the workload generators draw from.
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// The "standard" generator: here a splitmix64 stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng { state }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = rng.random_range(0usize..6);
            assert!(v < 6);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all bucket values reachable");
        for _ in 0..100 {
            let v = rng.random_range(1..4u64);
            assert!((1..4).contains(&v));
        }
    }

    #[test]
    fn bool_probabilities() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let heads = (0..2000).filter(|_| rng.random_bool(0.5)).count();
        assert!((700..1300).contains(&heads), "got {heads}/2000 heads");
    }
}
