//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no access to a crates registry, so the workspace
//! vendors a minimal property-testing engine covering the API zpre's tests
//! use: the `proptest!` / `prop_oneof!` / `prop_assert*` / `prop_assume!`
//! macros, the [`strategy::Strategy`] combinators (`prop_map`,
//! `prop_flat_map`, `prop_recursive`, `boxed`), range / tuple / `Just` /
//! `any::<T>()` strategies, and `prop::collection::vec`.
//!
//! Differences from real proptest, deliberately accepted: no shrinking (a
//! failing case panics with the assertion message; rerun under the same
//! deterministic per-test seed to reproduce), and rejected cases
//! (`prop_assume!`) simply retry with a global retry cap.

pub mod test_runner {
    //! Deterministic case generation and the pass/fail/reject protocol.

    /// Per-test configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases each property must pass.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Outcome of one generated case (other than plain success).
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case did not satisfy a `prop_assume!`; draw a fresh one.
        Reject,
        /// A `prop_assert*` failed with this message.
        Fail(String),
    }

    /// Deterministic splitmix64 generator, seeded from the test's path so
    /// every run of a given test replays the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from `name` (FNV-1a), typically `module_path!() :: test`.
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// Next 64 raw bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "TestRng::below(0)");
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and its combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no shrinking; a strategy is just a
    /// cloneable generator function over a [`TestRng`].
    pub trait Strategy: Clone {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Value) -> O + Clone,
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            S: Strategy,
            F: Fn(Self::Value) -> S + Clone,
            Self: Sized,
        {
            FlatMap { base: self, f }
        }

        /// Recursive strategies: `self` is the leaf, `recurse` wraps an
        /// inner strategy into a compound one, nesting at most `depth`
        /// levels. The size-tuning parameters of real proptest are accepted
        /// and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        {
            Recursive {
                leaf: self.boxed(),
                recurse: Rc::new(move |inner| recurse(inner).boxed()),
                depth,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe mirror of [`Strategy`] backing [`BoxedStrategy`].
    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O + Clone,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2 + Clone,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between alternatives; built by `prop_oneof!`.
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union { options: self.options.clone() }
        }
    }

    impl<V> Union<V> {
        /// A union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// See [`Strategy::prop_recursive`].
    pub struct Recursive<V> {
        leaf: BoxedStrategy<V>,
        recurse: Rc<dyn Fn(BoxedStrategy<V>) -> BoxedStrategy<V>>,
        depth: u32,
    }

    impl<V> Clone for Recursive<V> {
        fn clone(&self) -> Self {
            Recursive {
                leaf: self.leaf.clone(),
                recurse: Rc::clone(&self.recurse),
                depth: self.depth,
            }
        }
    }

    impl<V: 'static> Strategy for Recursive<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            // Bottom out at depth 0; otherwise take the leaf early 1/4 of
            // the time so generated sizes vary.
            if self.depth == 0 || rng.below(4) == 0 {
                self.leaf.generate(rng)
            } else {
                let inner = Recursive {
                    leaf: self.leaf.clone(),
                    recurse: Rc::clone(&self.recurse),
                    depth: self.depth - 1,
                };
                (self.recurse)(inner.boxed()).generate(rng)
            }
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);
}

pub mod arbitrary {
    //! `any::<T>()` for the primitive types zpre's tests draw.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// The strategy `any` returns.
        type Strategy: Strategy<Value = Self>;

        /// The canonical strategy over all values of `Self`.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Full-range generator for a primitive; parameterised by type below.
    #[derive(Clone, Debug, Default)]
    pub struct AnyPrim<T>(std::marker::PhantomData<T>);

    impl Arbitrary for bool {
        type Strategy = AnyPrim<bool>;

        fn arbitrary() -> Self::Strategy {
            AnyPrim(std::marker::PhantomData)
        }
    }

    impl Strategy for AnyPrim<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = AnyPrim<$t>;

                fn arbitrary() -> Self::Strategy {
                    AnyPrim(std::marker::PhantomData)
                }
            }

            impl Strategy for AnyPrim<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for collection strategies.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    /// `Vec`s of `element`-generated values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The customary glob import, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// Namespace alias so `prop::collection::vec` resolves as it does with
    /// real proptest.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` accepted random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                while passed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(16).saturating_add(256),
                        "proptest: too many rejected cases in {}",
                        stringify!($name),
                    );
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                            continue;
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(m)) => {
                            panic!("proptest case failed: {}", m)
                        }
                    }
                }
            }
        )*
    };
}

/// Uniform choice between the listed strategies (all must share a value
/// type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts inside a `proptest!` body; failure aborts the test with the
/// condition (or the given formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`: {:?} != {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{}: {:?} != {:?}", format!($($fmt)+), l, r);
    }};
}

/// Discards the current case (drawing a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..=10, y in 0..7u64) {
            prop_assert!((3..=10).contains(&x));
            prop_assert!(y < 7);
        }

        #[test]
        fn tuples_vec_and_assume(
            v in prop::collection::vec((0usize..5, any::<bool>()), 1..=4),
            n in 0..100u32,
        ) {
            prop_assume!(n != 13);
            prop_assert!(!v.is_empty() && v.len() <= 4);
            prop_assert!(v.iter().all(|&(a, _)| a < 5));
            prop_assert_eq!(n == 13, false);
        }
    }

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(u64),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn oneof_map_flat_map_recursive(
            t in (0..16u64).prop_map(Tree::Leaf).prop_recursive(3, 24, 2, |inner| {
                prop_oneof![
                    (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(a.into(), b.into())),
                    Just(Tree::Leaf(99)),
                ]
            }),
            w in (1usize..4).prop_flat_map(|n| prop::collection::vec(Just(n), n..=n)),
        ) {
            prop_assert!(depth(&t) <= 3);
            prop_assert_eq!(w.len(), w[0]);
        }
    }
}
