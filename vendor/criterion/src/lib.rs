//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no access to a crates registry, so the workspace
//! vendors a minimal benchmark runner covering the API the `zpre-bench`
//! benches use: `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `finish`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a plain
//! mean-over-samples timer — adequate for eyeballing relative strategy
//! cost, with none of criterion's statistics.

use std::time::{Duration, Instant};

/// Entry point handed to each benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup { _parent: self, name, sample_size: 20 }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `routine` and prints a one-line summary.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        routine(&mut b);
        let total: Duration = b.samples.iter().sum();
        let mean = total.checked_div(b.samples.len().max(1) as u32).unwrap_or_default();
        println!(
            "  {}/{id}: mean {:.3} ms over {} samples",
            self.name,
            mean.as_secs_f64() * 1e3,
            b.samples.len()
        );
        self
    }

    /// Ends the group (printing nothing extra; kept for API parity).
    pub fn finish(self) {}
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` once as warm-up, then `sample_size` timed times.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` from one or more `criterion_group!` names.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0;
        group.bench_function("id", |b| b.iter(|| calls += 1));
        group.finish();
        // One warm-up plus three samples.
        assert_eq!(calls, 4);
    }
}
