//! Offline stand-in for the `rayon` crate.
//!
//! The build container has no access to a crates registry, so the workspace
//! vendors a minimal replacement for the one pattern zpre uses:
//! `slice.par_iter().map(f).collect::<Vec<_>>()`. Items are split into
//! contiguous chunks, one per available core, and mapped on scoped threads;
//! the chunk results are concatenated in order, so `collect` preserves input
//! order exactly as rayon's indexed parallel iterators do.

use std::num::NonZeroUsize;

/// The customary import surface.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Conversion of `&self` into a parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// The referenced item type.
    type Item: Sync + 'a;

    /// A parallel iterator over `&self`'s items.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each item through `f` (in parallel once collected).
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap { items: self.items, f }
    }
}

/// The result of [`ParIter::map`]; consumed by [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Runs the map on scoped worker threads and gathers the results in
    /// input order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: From<Vec<R>>,
    {
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
            .min(self.items.len().max(1));
        if threads <= 1 {
            return C::from(self.items.iter().map(&self.f).collect());
        }
        let chunk = self.items.len().div_ceil(threads);
        let f = &self.f;
        let mut out: Vec<R> = Vec::with_capacity(self.items.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk)
                .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                out.extend(h.join().expect("rayon stub worker panicked"));
            }
        });
        C::from(out)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_input_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [41u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }
}
