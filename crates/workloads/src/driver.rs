//! The `driver-races` family: interrupt-handler and device-state races.

use crate::task::{Expected, Scale, Subcat, Task};
use crate::util::harness_program;
use zpre_prog::build::*;
use zpre_prog::Stmt;

/// Two interrupt handlers race to service one pending IRQ: both can read
/// `pending == 1` before either clears it, so the service counter can
/// reach 2. The atomic (test-and-clear) variant is safe.
fn irq(handlers: usize, atomic_tac: bool) -> Task {
    let name = format!(
        "driver-races/irq-{handlers}-{}",
        if atomic_tac { "atomic" } else { "racy" }
    );
    let handler = |h: usize| -> Vec<Stmt> {
        let p = format!("p{h}");
        let s = format!("s{h}");
        let inner = vec![
            assign(&p, v("pending")),
            when(
                eq(v(&p), c(1)),
                vec![
                    assign("pending", c(0)),
                    assign(&s, v("serviced")),
                    assign("serviced", add(v(&s), c(1))),
                ],
            ),
        ];
        if atomic_tac {
            atomic(inner)
        } else {
            inner
        }
    };
    let mut threads: Vec<(String, Vec<Stmt>)> =
        vec![("device".to_string(), vec![assign("pending", c(1))])];
    for h in 0..handlers {
        threads.push((format!("handler{h}"), handler(h)));
    }
    let prog = harness_program(
        &name,
        8,
        &[("pending", 0), ("serviced", 0)],
        &[],
        threads,
        le(v("serviced"), c(1)),
    );
    let expected = if atomic_tac {
        Expected::safe_all()
    } else {
        Expected::unsafe_all()
    };
    Task::new(&name, Subcat::DriverRaces, prog, 1, expected)
}

/// Open/close state machine: `users` threads increment `open_count` under
/// a lock and the device is torn down only when the count returns to zero.
fn open_close(users: usize, locked: bool) -> Task {
    let name = format!(
        "driver-races/openclose-{users}-{}",
        if locked { "locked" } else { "racy" }
    );
    let user = |u: usize| -> Vec<Stmt> {
        let (r1, r2) = (format!("o{u}"), format!("c{u}"));
        let mut s = Vec::new();
        if locked {
            s.push(lock("l"));
        }
        s.push(assign(&r1, v("open_count")));
        s.push(assign("open_count", add(v(&r1), c(1))));
        if locked {
            s.push(unlock("l"));
        }
        // ... use the device ... then close:
        if locked {
            s.push(lock("l"));
        }
        s.push(assign(&r2, v("open_count")));
        s.push(assign("open_count", sub(v(&r2), c(1))));
        if locked {
            s.push(unlock("l"));
        }
        s
    };
    let threads: Vec<(String, Vec<Stmt>)> =
        (0..users).map(|u| (format!("user{u}"), user(u))).collect();
    let prog = harness_program(
        &name,
        8,
        &[("open_count", 0)],
        if locked { &["l"] } else { &[] },
        threads,
        eq(v("open_count"), c(0)),
    );
    let expected = if locked {
        Expected::safe_all()
    } else {
        Expected::unsafe_all()
    };
    Task::new(&name, Subcat::DriverRaces, prog, 1, expected)
}

/// All `driver-races` tasks.
pub fn tasks(scale: Scale) -> Vec<Task> {
    match scale {
        Scale::Quick => vec![irq(2, false), irq(2, true)],
        Scale::Full => vec![
            irq(2, false),
            irq(2, true),
            irq(3, false),
            irq(3, true),
            irq(4, false),
            irq(4, true),
            open_close(2, true),
            open_close(2, false),
            open_close(3, true),
            open_close(3, false),
            open_close(4, true),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_validate() {
        for t in tasks(Scale::Full) {
            assert_eq!(t.program.validate(), Ok(()), "{}", t.name);
        }
    }

    #[test]
    fn oracle_agrees() {
        use zpre_prog::interp::{check_sc, Limits, Outcome};
        for t in [
            irq(2, false),
            irq(2, true),
            open_close(2, true),
            open_close(2, false),
        ] {
            let u = zpre_prog::unroll_program(&t.program, t.unroll_bound);
            let fp = zpre_prog::flatten(&u);
            let got = check_sc(&fp, Limits::default());
            assert_eq!(got == Outcome::Safe, t.expected.sc.unwrap(), "{}", t.name);
        }
    }
}
