//! The `ldv-races` family: Linux-driver style registration races
//! (data prepared, then a ready flag published; readers check the flag).

use crate::task::{Expected, Scale, Subcat, Task};
use crate::util::harness_program;
use zpre_prog::build::*;
use zpre_prog::Stmt;

/// Handler registration: the driver prepares `cfg` fields and publishes
/// `registered = 1`; the kernel thread calls the handler only when it sees
/// the flag. Without a fence (or lock) the publish can overtake the data
/// under PSO.
fn register(fields: usize, sync: Sync) -> Task {
    let name = format!("ldv-races/register-{fields}-{}", sync.tag());
    let mut driver: Vec<Stmt> = Vec::new();
    if sync == Sync::Lock {
        driver.push(lock("l"));
    }
    for i in 0..fields {
        driver.push(assign(&format!("cfg{i}"), c(i as u64 + 10)));
    }
    if sync == Sync::Fence {
        driver.push(fence());
    }
    driver.push(assign("registered", c(1)));
    if sync == Sync::Lock {
        driver.push(unlock("l"));
    }

    let mut kernel: Vec<Stmt> = Vec::new();
    if sync == Sync::Lock {
        kernel.push(lock("l"));
    }
    kernel.push(assign("seen", v("registered")));
    let mut call = Vec::new();
    for i in 0..fields {
        call.push(assign(&format!("k{i}"), v(&format!("cfg{i}"))));
    }
    kernel.push(when(eq(v("seen"), c(1)), call));
    if sync == Sync::Lock {
        kernel.push(unlock("l"));
    }

    let mut shared: Vec<(String, u64)> =
        vec![("registered".to_string(), 0), ("seen".to_string(), 0)];
    for i in 0..fields {
        shared.push((format!("cfg{i}"), 0));
        shared.push((format!("k{i}"), 0));
    }
    let shared_refs: Vec<(&str, u64)> = shared.iter().map(|(n, i)| (n.as_str(), *i)).collect();
    // If the handler ran, every field it read must be initialized.
    let mut prop = b(true);
    for i in 0..fields {
        prop = and(prop, eq(v(&format!("k{i}")), c(i as u64 + 10)));
    }
    let prog = harness_program(
        &name,
        8,
        &shared_refs,
        if sync == Sync::Lock { &["l"] } else { &[] },
        vec![
            ("driver".to_string(), driver),
            ("kernel".to_string(), kernel),
        ],
        or(eq(v("seen"), c(0)), prop),
    );
    let expected = match sync {
        Sync::None => Expected::of(true, true, false), // MP shape
        Sync::Fence | Sync::Lock => Expected::safe_all(),
    };
    Task::new(&name, Subcat::LdvRaces, prog, 1, expected)
}

/// Reference-count race: two threads do get/put on a counter without a
/// lock — the classic lost-update race (unsafe everywhere). The locked
/// variant is safe.
fn refcount(locked: bool) -> Task {
    let name = format!(
        "ldv-races/refcount-{}",
        if locked { "locked" } else { "racy" }
    );
    let op = |w: usize, delta_pos: bool| -> Vec<Stmt> {
        let r = format!("r{w}");
        let expr = if delta_pos {
            add(v(&r), c(1))
        } else {
            sub(v(&r), c(1))
        };
        let mut s = Vec::new();
        if locked {
            s.push(lock("l"));
        }
        s.push(assign(&r, v("refs")));
        s.push(assign("refs", expr));
        if locked {
            s.push(unlock("l"));
        }
        s
    };
    let prog = harness_program(
        &name,
        8,
        &[("refs", 1)],
        if locked { &["l"] } else { &[] },
        vec![
            ("get".to_string(), op(0, true)),
            ("put".to_string(), op(1, false)),
        ],
        eq(v("refs"), c(1)),
    );
    let expected = if locked {
        Expected::safe_all()
    } else {
        Expected::unsafe_all()
    };
    Task::new(&name, Subcat::LdvRaces, prog, 1, expected)
}

/// All `ldv-races` tasks.
pub fn tasks(scale: Scale) -> Vec<Task> {
    match scale {
        Scale::Quick => vec![register(1, Sync::None), refcount(true)],
        Scale::Full => vec![
            register(1, Sync::None),
            register(1, Sync::Fence),
            register(1, Sync::Lock),
            register(2, Sync::None),
            register(2, Sync::Fence),
            register(2, Sync::Lock),
            refcount(true),
            refcount(false),
        ],
    }
}

/// Synchronization flavor of the registration pattern.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Sync {
    /// No synchronization (publish may overtake data under PSO).
    None,
    /// Fence between data and publish.
    Fence,
    /// Both sides under one lock.
    Lock,
}

impl Sync {
    fn tag(self) -> &'static str {
        match self {
            Sync::None => "plain",
            Sync::Fence => "fence",
            Sync::Lock => "lock",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_validate() {
        for t in tasks(Scale::Full) {
            assert_eq!(t.program.validate(), Ok(()), "{}", t.name);
        }
    }

    #[test]
    fn oracle_agrees() {
        use zpre_prog::interp::{check_sc, Limits, Outcome};
        use zpre_prog::wmm::check_wmm;
        use zpre_prog::MemoryModel;
        for t in [
            register(1, Sync::None),
            register(1, Sync::Fence),
            refcount(false),
        ] {
            let u = zpre_prog::unroll_program(&t.program, t.unroll_bound);
            let fp = zpre_prog::flatten(&u);
            assert_eq!(
                check_sc(&fp, Limits::default()) == Outcome::Safe,
                t.expected.sc.unwrap(),
                "{} SC",
                t.name
            );
            for mm in [MemoryModel::Tso, MemoryModel::Pso] {
                let got = check_wmm(&fp, mm, Limits::default());
                assert_eq!(
                    got == Outcome::Safe,
                    t.expected.get(mm).unwrap(),
                    "{} {mm}",
                    t.name
                );
            }
        }
    }
}
