//! The `divine` family: token-ring coordination programs.

use crate::task::{Expected, Scale, Subcat, Task};
use crate::util::harness_program;
use zpre_prog::build::*;
use zpre_prog::Stmt;

/// `n` threads pass a token: thread `i` spins (bounded) until
/// `token == i+1`, then sets `token = i+2`. All traffic is on a single
/// variable, which stays coherent under TSO/PSO, so the ring is safe in
/// every model.
fn ring(n: usize) -> Task {
    let name = format!("divine/ring-{n}");
    let mut threads: Vec<(String, Vec<Stmt>)> = Vec::new();
    for i in 0..n {
        let my = (i + 1) as u64;
        let seen = format!("seen{i}");
        threads.push((
            format!("node{i}"),
            vec![
                assign(&seen, v("token")),
                while_(ne(v(&seen), c(my)), vec![assign(&seen, v("token"))]),
                assign("token", c(my + 1)),
            ],
        ));
    }
    let prog = harness_program(
        &name,
        8,
        &[("token", 1)],
        &[],
        threads,
        eq(v("token"), c(n as u64 + 1)),
    );
    Task::new(
        &name,
        Subcat::Divine,
        prog,
        (2 * n) as u32,
        Expected::safe_all(),
    )
}

/// A broken ring: two nodes race for the same token value, so the final
/// token can skip a step.
fn ring_broken(n: usize) -> Task {
    let name = format!("divine/ring-broken-{n}");
    let mut threads: Vec<(String, Vec<Stmt>)> = Vec::new();
    for i in 0..n {
        // Both node 0 and node 1 wait for token == 1 (the race).
        let my = if i == 0 { 1 } else { i as u64 };
        let seen = format!("seen{i}");
        threads.push((
            format!("node{i}"),
            vec![
                assign(&seen, v("token")),
                while_(ne(v(&seen), c(my)), vec![assign(&seen, v("token"))]),
                assign("token", add(v(&seen), c(1))),
            ],
        ));
    }
    let prog = harness_program(
        &name,
        8,
        &[("token", 1)],
        &[],
        threads,
        eq(v("token"), c(n as u64 + 1)),
    );
    Task::new(
        &name,
        Subcat::Divine,
        prog,
        (2 * n) as u32,
        Expected::unsafe_all(),
    )
}

/// All `divine` tasks.
pub fn tasks(scale: Scale) -> Vec<Task> {
    match scale {
        Scale::Quick => vec![ring(2), ring_broken(2)],
        Scale::Full => vec![
            ring(2),
            ring(3),
            ring(4),
            ring_broken(2),
            ring_broken(3),
            ring_broken(4),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_validate() {
        for t in tasks(Scale::Full) {
            assert_eq!(t.program.validate(), Ok(()), "{}", t.name);
        }
    }

    #[test]
    fn oracle_agrees() {
        use zpre_prog::interp::{check_sc, Limits, Outcome};
        for t in [ring(2), ring_broken(2)] {
            let u = zpre_prog::unroll_program(&t.program, t.unroll_bound);
            let fp = zpre_prog::flatten(&u);
            let got = check_sc(&fp, Limits::default());
            assert_eq!(got == Outcome::Safe, t.expected.sc.unwrap(), "{}", t.name);
        }
    }
}
