//! The `nondet` family: nondeterministic inputs with assume/assert.

use crate::task::{Expected, Scale, Subcat, Task};
use crate::util::harness_program;
use zpre_prog::build::*;
use zpre_prog::Stmt;

/// Single-threaded arithmetic over a nondet input: `x < bound` assumed,
/// assert `x·x + x ≠ target`. Safe iff no solution exists below the bound.
fn arith(width: u32, bound: u64, target: u64, safe: bool) -> Task {
    let name = format!("nondet/arith-w{width}-b{bound}-t{target}");
    let prog = ProgramBuilder::new(&name)
        .width(width)
        .shared("x", 0)
        .main(vec![
            assign("x", nondet("k")),
            assume(lt(v("x"), c(bound))),
            assert_(ne(add(mul(v("x"), v("x")), v("x")), c(target))),
        ])
        .build();
    let e = if safe {
        Expected::safe_all()
    } else {
        Expected::unsafe_all()
    };
    Task::new(&name, Subcat::Nondet, prog, 1, e)
}

/// Two workers add bounded nondet amounts under a lock; the sum is bounded
/// by the sum of the bounds. `slack = 0` is tight (safe); a negative slack
/// (checking a smaller bound) is violable.
fn bounded_sum(b1: u64, b2: u64, check: u64) -> Task {
    let name = format!("nondet/sum-{b1}-{b2}-le{check}");
    let worker = |w: usize, bound: u64| -> Vec<Stmt> {
        let amt = format!("amt{w}");
        let r = format!("r{w}");
        vec![
            assign(&amt, nondet(&format!("n{w}"))),
            assume(le(v(&amt), c(bound))),
            lock("m"),
            assign(&r, v("total")),
            assign("total", add(v(&r), v(&amt))),
            unlock("m"),
        ]
    };
    let prog = harness_program(
        &name,
        4,
        &[("total", 0)],
        &["m"],
        vec![
            ("w0".to_string(), worker(0, b1)),
            ("w1".to_string(), worker(1, b2)),
        ],
        le(v("total"), c(check)),
    );
    let e = if b1 + b2 <= check {
        Expected::safe_all()
    } else {
        Expected::unsafe_all()
    };
    Task::new(&name, Subcat::Nondet, prog, 1, e)
}

/// A nondet Boolean selects which of two threads wrote last; the assertion
/// accepts both outcomes (safe) or only one (unsafe).
fn selector(accept_both: bool) -> Task {
    let name = format!(
        "nondet/selector-{}",
        if accept_both { "both" } else { "one" }
    );
    let t1 = vec![when(nondet_bool("go1"), vec![assign("x", c(1))])];
    let t2 = vec![assign("x", c(2))];
    let property = if accept_both {
        or(or(eq(v("x"), c(0)), eq(v("x"), c(1))), eq(v("x"), c(2)))
    } else {
        eq(v("x"), c(2))
    };
    let prog = harness_program(
        &name,
        4,
        &[("x", 0)],
        &[],
        vec![("t1".to_string(), t1), ("t2".to_string(), t2)],
        property,
    );
    let e = if accept_both {
        Expected::safe_all()
    } else {
        Expected::unsafe_all()
    };
    Task::new(&name, Subcat::Nondet, prog, 1, e)
}

/// All `nondet` tasks.
pub fn tasks(scale: Scale) -> Vec<Task> {
    // x² + x over width 4 (mod 16): x=3 → 12; no x<3 hits 12.
    match scale {
        Scale::Quick => vec![arith(4, 4, 12, false), arith(4, 3, 12, true)],
        Scale::Full => vec![
            arith(4, 4, 12, false),
            arith(4, 3, 12, true),
            arith(8, 10, 90, false), // x=9 → 90
            arith(8, 9, 90, true),
            bounded_sum(3, 3, 6),
            bounded_sum(3, 3, 5),
            bounded_sum(2, 3, 5),
            selector(true),
            selector(false),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_validate() {
        for t in tasks(Scale::Full) {
            assert_eq!(t.program.validate(), Ok(()), "{}", t.name);
        }
    }

    #[test]
    fn oracle_agrees_on_narrow_instances() {
        use zpre_prog::interp::{check_sc, Limits, Outcome};
        for t in [
            arith(4, 4, 12, false),
            arith(4, 3, 12, true),
            bounded_sum(3, 3, 6),
            bounded_sum(3, 3, 5),
            selector(true),
            selector(false),
        ] {
            let u = zpre_prog::unroll_program(&t.program, t.unroll_bound);
            let fp = zpre_prog::flatten(&u);
            let got = check_sc(&fp, Limits::default());
            assert_eq!(got == Outcome::Safe, t.expected.sc.unwrap(), "{}", t.name);
        }
    }
}
