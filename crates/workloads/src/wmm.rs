//! The `wmm` family: weak-memory litmus tests.
//!
//! This is the paper's dominant subcategory (898 of 1084 programs). We
//! generate the classic litmus shapes with known verdicts under the
//! po-relaxation models (verified against the operational store-buffer
//! checkers in the test-suite):
//!
//! | shape  | SC   | TSO    | PSO    | fenced |
//! |--------|------|--------|--------|--------|
//! | SB     | safe | unsafe | unsafe | safe   |
//! | MP     | safe | safe   | unsafe | safe   |
//! | S      | safe | safe   | unsafe | safe   |
//! | LB     | safe | safe   | safe   | safe   |
//! | 2+2W   | safe | safe   | unsafe | safe   |
//! | IRIW   | safe | safe   | safe   | safe   |
//! | WRC    | safe | safe   | safe   | safe   |
//! | CoRR   | safe | safe   | safe   | safe   |
//!
//! Each shape is emitted plain and fenced, with growing *ballast* (extra
//! cross-thread accesses) to scale instance size without changing the
//! verdict.

use crate::task::{Expected, Scale, Subcat, Task};
use crate::util::{ballast, harness_program};
use zpre_prog::build::*;
use zpre_prog::Stmt;

fn fence_if(yes: bool) -> Vec<Stmt> {
    if yes {
        vec![fence()]
    } else {
        Vec::new()
    }
}

fn with_ballast(
    mut t1: Vec<Stmt>,
    mut t2: Vec<Stmt>,
    shared: Vec<(&str, u64)>,
    b: usize,
) -> (Vec<Stmt>, Vec<Stmt>, Vec<(String, u64)>) {
    let bl = ballast("z", b);
    t1.extend(bl.writer);
    t2.extend(bl.reader);
    let mut sh: Vec<(String, u64)> = shared
        .into_iter()
        .map(|(n, i)| (n.to_string(), i))
        .collect();
    sh.extend(bl.shared);
    (t1, t2, sh)
}

fn two_thread(
    name: &str,
    t1: Vec<Stmt>,
    t2: Vec<Stmt>,
    shared: Vec<(&str, u64)>,
    b: usize,
    property: zpre_prog::BoolExpr,
    expected: Expected,
) -> Task {
    let (t1, t2, sh) = with_ballast(t1, t2, shared, b);
    let shared_refs: Vec<(&str, u64)> = sh.iter().map(|(n, i)| (n.as_str(), *i)).collect();
    let prog = harness_program(
        name,
        8,
        &shared_refs,
        &[],
        vec![("t1".to_string(), t1), ("t2".to_string(), t2)],
        property,
    );
    Task::new(name, Subcat::Wmm, prog, 1, expected)
}

/// Store buffering.
fn sb(fenced: bool, b: usize) -> Task {
    let name = format!("wmm/sb{}-b{b}", if fenced { "-fence" } else { "" });
    let mut t1 = vec![assign("x", c(1))];
    t1.extend(fence_if(fenced));
    t1.push(assign("r1", v("y")));
    let mut t2 = vec![assign("y", c(1))];
    t2.extend(fence_if(fenced));
    t2.push(assign("r2", v("x")));
    let expected = if fenced {
        Expected::safe_all()
    } else {
        Expected::of(true, false, false)
    };
    two_thread(
        &name,
        t1,
        t2,
        vec![("x", 0), ("y", 0), ("r1", 0), ("r2", 0)],
        b,
        not(and(eq(v("r1"), c(0)), eq(v("r2"), c(0)))),
        expected,
    )
}

/// Message passing.
fn mp(fenced: bool, b: usize) -> Task {
    let name = format!("wmm/mp{}-b{b}", if fenced { "-fence" } else { "" });
    let mut t1 = vec![assign("data", c(42))];
    t1.extend(fence_if(fenced));
    t1.push(assign("flag", c(1)));
    let t2 = vec![assign("seen", v("flag")), assign("val", v("data"))];
    let expected = if fenced {
        Expected::safe_all()
    } else {
        Expected::of(true, true, false)
    };
    two_thread(
        &name,
        t1,
        t2,
        vec![("data", 0), ("flag", 0), ("seen", 0), ("val", 0)],
        b,
        or(eq(v("seen"), c(0)), eq(v("val"), c(42))),
        expected,
    )
}

/// Test S: write-order vs. dependent write.
fn s_shape(fenced: bool, b: usize) -> Task {
    let name = format!("wmm/s{}-b{b}", if fenced { "-fence" } else { "" });
    let mut t1 = vec![assign("x", c(2))];
    t1.extend(fence_if(fenced));
    t1.push(assign("y", c(1)));
    let t2 = vec![
        assign("ry", v("y")),
        when(eq(v("ry"), c(1)), vec![assign("x", c(1))]),
    ];
    // Forbidden: t2 saw y==1 yet the final value of x is 2 (t1's first
    // write overtook its second and t2's dependent write).
    let expected = if fenced {
        Expected::safe_all()
    } else {
        Expected::of(true, true, false)
    };
    two_thread(
        &name,
        t1,
        t2,
        vec![("x", 0), ("y", 0), ("ry", 0)],
        b,
        not(and(eq(v("ry"), c(1)), eq(v("x"), c(2)))),
        expected,
    )
}

/// Load buffering (forbidden in every store-buffer model).
fn lb(fenced: bool, b: usize) -> Task {
    let name = format!("wmm/lb{}-b{b}", if fenced { "-fence" } else { "" });
    let mut t1 = vec![assign("r1", v("y"))];
    t1.extend(fence_if(fenced));
    t1.push(assign("x", c(1)));
    let mut t2 = vec![assign("r2", v("x"))];
    t2.extend(fence_if(fenced));
    t2.push(assign("y", c(1)));
    two_thread(
        &name,
        t1,
        t2,
        vec![("x", 0), ("y", 0), ("r1", 0), ("r2", 0)],
        b,
        not(and(eq(v("r1"), c(1)), eq(v("r2"), c(1)))),
        Expected::safe_all(),
    )
}

/// 2+2W: both variables end with the *first* writes.
fn two_plus_two_w(fenced: bool, b: usize) -> Task {
    let name = format!("wmm/2+2w{}-b{b}", if fenced { "-fence" } else { "" });
    let mut t1 = vec![assign("x", c(1))];
    t1.extend(fence_if(fenced));
    t1.push(assign("y", c(2)));
    let mut t2 = vec![assign("y", c(1))];
    t2.extend(fence_if(fenced));
    t2.push(assign("x", c(2)));
    let expected = if fenced {
        Expected::safe_all()
    } else {
        Expected::of(true, true, false)
    };
    two_thread(
        &name,
        t1,
        t2,
        vec![("x", 0), ("y", 0)],
        b,
        not(and(eq(v("x"), c(1)), eq(v("y"), c(1)))),
        expected,
    )
}

/// Coherence of reads to one location.
fn corr(b: usize) -> Task {
    let name = format!("wmm/corr-b{b}");
    let t1 = vec![assign("x", c(1)), assign("x", c(2))];
    let t2 = vec![assign("r1", v("x")), assign("r2", v("x"))];
    two_thread(
        &name,
        t1,
        t2,
        vec![("x", 0), ("r1", 0), ("r2", 0)],
        b,
        not(and(eq(v("r1"), c(2)), eq(v("r2"), c(1)))),
        Expected::safe_all(),
    )
}

/// IRIW: independent reads of independent writes (4 threads).
fn iriw(b: usize) -> Task {
    let name = format!("wmm/iriw-b{b}");
    let t1 = vec![assign("x", c(1))];
    let t2 = vec![assign("y", c(1))];
    let mut t3 = vec![assign("a1", v("x")), assign("a2", v("y"))];
    let mut t4 = vec![assign("b1", v("y")), assign("b2", v("x"))];
    let bl = ballast("z", b);
    t3.extend(bl.writer);
    t4.extend(bl.reader);
    let mut shared: Vec<(String, u64)> = ["x", "y", "a1", "a2", "b1", "b2"]
        .iter()
        .map(|n| (n.to_string(), 0))
        .collect();
    shared.extend(bl.shared);
    let shared_refs: Vec<(&str, u64)> = shared.iter().map(|(n, i)| (n.as_str(), *i)).collect();
    // Forbidden: the two reader threads observe the writes in opposite
    // orders (impossible with a single shared memory).
    let prog = harness_program(
        &name,
        8,
        &shared_refs,
        &[],
        vec![
            ("w1".to_string(), t1),
            ("w2".to_string(), t2),
            ("r1".to_string(), t3),
            ("r2".to_string(), t4),
        ],
        not(and(
            and(eq(v("a1"), c(1)), eq(v("a2"), c(0))),
            and(eq(v("b1"), c(1)), eq(v("b2"), c(0))),
        )),
    );
    Task::new(&name, Subcat::Wmm, prog, 1, Expected::safe_all())
}

/// WRC: write-to-read causality (3 threads).
fn wrc(b: usize) -> Task {
    let name = format!("wmm/wrc-b{b}");
    let t1 = vec![assign("x", c(1))];
    let mut t2 = vec![
        assign("rx", v("x")),
        when(eq(v("rx"), c(1)), vec![assign("y", c(1))]),
    ];
    let mut t3 = vec![assign("ry", v("y")), assign("rx2", v("x"))];
    let bl = ballast("z", b);
    t2.extend(bl.writer);
    t3.extend(bl.reader);
    let mut shared: Vec<(String, u64)> = ["x", "y", "rx", "ry", "rx2"]
        .iter()
        .map(|n| (n.to_string(), 0))
        .collect();
    shared.extend(bl.shared);
    let shared_refs: Vec<(&str, u64)> = shared.iter().map(|(n, i)| (n.as_str(), *i)).collect();
    let prog = harness_program(
        &name,
        8,
        &shared_refs,
        &[],
        vec![
            ("w".to_string(), t1),
            ("fwd".to_string(), t2),
            ("obs".to_string(), t3),
        ],
        not(and(eq(v("ry"), c(1)), eq(v("rx2"), c(0)))),
    );
    Task::new(&name, Subcat::Wmm, prog, 1, Expected::safe_all())
}

/// A grid of `n` independent SB pairs inside two threads; the property
/// quantifies over every pair, so the instance grows with `n` while the
/// verdict stays that of plain/fenced SB.
fn sb_grid(n: usize, fenced: bool) -> Task {
    let name = format!("wmm/sb-grid{}-{n}", if fenced { "-fence" } else { "" });
    let mut t1 = Vec::new();
    let mut t2 = Vec::new();
    let mut shared: Vec<(String, u64)> = Vec::new();
    let mut prop = b(true);
    for i in 0..n {
        let (x, y) = (format!("x{i}"), format!("y{i}"));
        let (r1, r2) = (format!("r1_{i}"), format!("r2_{i}"));
        shared.extend([
            (x.clone(), 0),
            (y.clone(), 0),
            (r1.clone(), 0),
            (r2.clone(), 0),
        ]);
        t1.push(assign(&x, c(1)));
        if fenced {
            t1.push(fence());
        }
        t1.push(assign(&r1, v(&y)));
        t2.push(assign(&y, c(1)));
        if fenced {
            t2.push(fence());
        }
        t2.push(assign(&r2, v(&x)));
        prop = and(prop, not(and(eq(v(&r1), c(0)), eq(v(&r2), c(0)))));
    }
    let shared_refs: Vec<(&str, u64)> = shared.iter().map(|(n, i)| (n.as_str(), *i)).collect();
    let prog = harness_program(
        &name,
        8,
        &shared_refs,
        &[],
        vec![("t1".to_string(), t1), ("t2".to_string(), t2)],
        prop,
    );
    let expected = if fenced {
        Expected::safe_all()
    } else {
        Expected::of(true, false, false)
    };
    Task::new(&name, Subcat::Wmm, prog, 1, expected)
}

/// All `wmm` tasks at the given scale.
pub fn tasks(scale: Scale) -> Vec<Task> {
    let ballasts: &[usize] = match scale {
        Scale::Quick => &[0],
        Scale::Full => &[0, 2, 4, 8],
    };
    let mut out = Vec::new();
    for &b in ballasts {
        for fenced in [false, true] {
            out.push(sb(fenced, b));
            out.push(mp(fenced, b));
            out.push(s_shape(fenced, b));
            out.push(lb(fenced, b));
            out.push(two_plus_two_w(fenced, b));
        }
        out.push(corr(b));
        out.push(iriw(b));
        out.push(wrc(b));
    }
    if scale == Scale::Full {
        for n in [2, 3, 4, 5, 6, 7, 8, 9] {
            out.push(sb_grid(n, false));
            out.push(sb_grid(n, true));
        }
    }
    out
}

/// Programs small enough for the operational store-buffer oracle
/// (no ballast; used by cross-validation tests).
pub fn oracle_tasks() -> Vec<Task> {
    let mut out = Vec::new();
    for fenced in [false, true] {
        out.push(sb(fenced, 0));
        out.push(mp(fenced, 0));
        out.push(s_shape(fenced, 0));
        out.push(lb(fenced, 0));
        out.push(two_plus_two_w(fenced, 0));
    }
    out.push(corr(0));
    out.push(wrc(0));
    out
}

/// Validation hook used by tests.
pub fn all_programs_validate() -> bool {
    tasks(Scale::Full)
        .iter()
        .all(|t| t.program.validate().is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_validate() {
        assert!(all_programs_validate());
    }

    #[test]
    fn names_are_unique() {
        let ts = tasks(Scale::Full);
        let names: std::collections::BTreeSet<&str> = ts.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names.len(), ts.len());
    }

    #[test]
    fn full_scale_is_larger_than_quick() {
        assert!(tasks(Scale::Full).len() > tasks(Scale::Quick).len());
    }

    fn prog(t: &Task) -> zpre_prog::FlatProgram {
        let u = zpre_prog::unroll_program(&t.program, t.unroll_bound);
        zpre_prog::flatten(&u)
    }

    /// Every litmus verdict table entry must agree with the operational
    /// store-buffer models.
    #[test]
    fn verdicts_match_operational_models() {
        use zpre_prog::interp::{check_sc, Limits, Outcome};
        use zpre_prog::wmm::check_wmm;
        use zpre_prog::MemoryModel;
        for t in oracle_tasks() {
            let fp = prog(&t);
            let sc = check_sc(&fp, Limits::default());
            assert_eq!(
                sc == Outcome::Safe,
                t.expected.sc.unwrap(),
                "{} under SC",
                t.name
            );
            for mm in [MemoryModel::Tso, MemoryModel::Pso] {
                let got = check_wmm(&fp, mm, Limits::default());
                assert_ne!(got, Outcome::ResourceLimit, "{} under {mm}", t.name);
                let expected_safe = t.expected.get(mm).unwrap();
                assert_eq!(got == Outcome::Safe, expected_safe, "{} under {mm}", t.name);
            }
        }
    }
}
