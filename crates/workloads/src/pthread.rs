//! The `pthread` family: worker threads, mutexes, and counters.

use crate::task::{Expected, Scale, Subcat, Task};
use crate::util::harness_program;
use zpre_prog::build::*;
use zpre_prog::Stmt;

/// `workers` threads each increment a shared counter `incs` times.
/// With the mutex the final value is exact (safe); without it lost updates
/// make the assertion fail (unsafe) in every memory model.
fn counter(workers: usize, incs: usize, locked: bool) -> Task {
    let name = format!(
        "pthread/counter-{}x{}-{}",
        workers,
        incs,
        if locked { "locked" } else { "racy" }
    );
    let body = |w: usize| -> Vec<Stmt> {
        let mut stmts = Vec::new();
        for i in 0..incs {
            let r = format!("r{w}_{i}");
            if locked {
                stmts.push(lock("m"));
            }
            stmts.push(assign(&r, v("cnt")));
            stmts.push(assign("cnt", add(v(&r), c(1))));
            if locked {
                stmts.push(unlock("m"));
            }
        }
        stmts
    };
    let threads: Vec<(String, Vec<Stmt>)> =
        (0..workers).map(|w| (format!("w{w}"), body(w))).collect();
    let total = (workers * incs) as u64;
    let prog = harness_program(
        &name,
        8,
        &[("cnt", 0)],
        if locked { &["m"] } else { &[] },
        threads,
        eq(v("cnt"), c(total)),
    );
    let expected = if locked {
        Expected::safe_all()
    } else {
        Expected::unsafe_all()
    };
    Task::new(&name, Subcat::Pthread, prog, 1, expected)
}

/// Bank account: a depositor and a withdrawer under one lock; the balance
/// ends exactly at `init + d*k - w*k`.
fn bank(rounds: usize, locked: bool) -> Task {
    let name = format!(
        "pthread/bank-{}r-{}",
        rounds,
        if locked { "locked" } else { "racy" }
    );
    let mk = |delta_pos: bool, w: usize| -> Vec<Stmt> {
        let mut stmts = Vec::new();
        for i in 0..rounds {
            let r = format!("b{w}_{i}");
            if locked {
                stmts.push(lock("m"));
            }
            stmts.push(assign(&r, v("bal")));
            let expr = if delta_pos {
                add(v(&r), c(5))
            } else {
                sub(v(&r), c(3))
            };
            stmts.push(assign("bal", expr));
            if locked {
                stmts.push(unlock("m"));
            }
        }
        stmts
    };
    let expected_bal = 100u64
        .wrapping_add(5 * rounds as u64)
        .wrapping_sub(3 * rounds as u64)
        & 0xff;
    let prog = harness_program(
        &name,
        8,
        &[("bal", 100)],
        if locked { &["m"] } else { &[] },
        vec![
            ("depositor".to_string(), mk(true, 0)),
            ("withdrawer".to_string(), mk(false, 1)),
        ],
        eq(v("bal"), c(expected_bal)),
    );
    let expected = if locked {
        Expected::safe_all()
    } else {
        Expected::unsafe_all()
    };
    Task::new(&name, Subcat::Pthread, prog, 1, expected)
}

/// Two locks protecting two counters; threads take them in a fixed order
/// (no deadlock in this encoding) and maintain `a + b == 2·rounds·workers`.
fn two_locks(workers: usize, rounds: usize) -> Task {
    let name = format!("pthread/twolocks-{workers}x{rounds}");
    let body = |w: usize| -> Vec<Stmt> {
        let mut stmts = Vec::new();
        for i in 0..rounds {
            let (ra, rb) = (format!("a{w}_{i}"), format!("b{w}_{i}"));
            stmts.push(lock("ma"));
            stmts.push(assign(&ra, v("a")));
            stmts.push(assign("a", add(v(&ra), c(1))));
            stmts.push(unlock("ma"));
            stmts.push(lock("mb"));
            stmts.push(assign(&rb, v("b")));
            stmts.push(assign("b", add(v(&rb), c(1))));
            stmts.push(unlock("mb"));
        }
        stmts
    };
    let threads: Vec<(String, Vec<Stmt>)> =
        (0..workers).map(|w| (format!("w{w}"), body(w))).collect();
    let total = (workers * rounds) as u64;
    let prog = harness_program(
        &name,
        8,
        &[("a", 0), ("b", 0)],
        &["ma", "mb"],
        threads,
        and(eq(v("a"), c(total)), eq(v("b"), c(total))),
    );
    Task::new(&name, Subcat::Pthread, prog, 1, Expected::safe_all())
}

/// All `pthread` tasks at the given scale.
pub fn tasks(scale: Scale) -> Vec<Task> {
    match scale {
        Scale::Quick => vec![counter(2, 1, true), counter(2, 1, false), bank(1, true)],
        Scale::Full => vec![
            counter(2, 1, true),
            counter(2, 1, false),
            counter(2, 2, true),
            counter(2, 2, false),
            counter(3, 1, true),
            counter(3, 1, false),
            counter(3, 2, true),
            counter(2, 3, false),
            counter(4, 2, true),
            counter(4, 2, false),
            counter(3, 3, true),
            counter(5, 2, true),
            bank(1, true),
            bank(1, false),
            bank(2, true),
            bank(2, false),
            bank(3, true),
            bank(3, false),
            two_locks(2, 1),
            two_locks(2, 2),
            two_locks(3, 2),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_validate() {
        for t in tasks(Scale::Full) {
            assert_eq!(t.program.validate(), Ok(()), "{}", t.name);
        }
    }

    #[test]
    fn oracle_agrees_on_small_instances() {
        use zpre_prog::interp::{check_sc, Limits, Outcome};
        for t in [
            counter(2, 1, true),
            counter(2, 1, false),
            bank(1, true),
            bank(1, false),
        ] {
            let u = zpre_prog::unroll_program(&t.program, t.unroll_bound);
            let fp = zpre_prog::flatten(&u);
            let got = check_sc(&fp, Limits::default());
            assert_eq!(got == Outcome::Safe, t.expected.sc.unwrap(), "{}", t.name);
        }
    }
}
