//! The `lit` family: classic mutual-exclusion algorithms from the
//! literature (Peterson, Dekker), plain and fenced.
//!
//! Both algorithms guarantee mutual exclusion under SC but are broken by
//! store buffering (the flag write may be delayed past the other thread's
//! flag read), so the plain variants are unsafe under TSO and PSO — the
//! classic motivating example for fence synthesis.

use crate::task::{Expected, Scale, Subcat, Task};
use crate::util::harness_program;
use zpre_prog::build::*;
use zpre_prog::Stmt;

/// Critical section body: a read-increment-write on `cnt`, done `work`
/// times. If mutual exclusion holds the final counter is exact.
fn cs_body(thread: usize, work: usize) -> Vec<Stmt> {
    let mut stmts = Vec::new();
    for i in 0..work {
        let r = format!("c{thread}_{i}");
        stmts.push(assign(&r, v("cnt")));
        stmts.push(assign("cnt", add(v(&r), c(1))));
    }
    stmts
}

/// Peterson's algorithm for two threads.
fn peterson(fenced: bool, work: usize) -> Task {
    let name = format!("lit/peterson{}-w{work}", if fenced { "-fence" } else { "" });
    let mk = |me: usize| -> Vec<Stmt> {
        let other = 1 - me;
        let (fme, fother) = (format!("flag{me}"), format!("flag{other}"));
        let spin = format!("s{me}");
        let mut body = vec![assign(&fme, c(1))];
        if fenced {
            body.push(fence());
        }
        body.push(assign("turn", c(other as u64)));
        if fenced {
            body.push(fence());
        }
        // while (flag[other] == 1 && turn == other) {}
        body.push(assign(&spin, c(1)));
        body.push(while_(
            eq(v(&spin), c(1)),
            vec![if_(
                and(eq(v(&fother), c(1)), eq(v("turn"), c(other as u64))),
                vec![Stmt::Skip],
                vec![assign(&spin, c(0))],
            )],
        ));
        body.extend(cs_body(me, work));
        if fenced {
            // Release fence: the CS writes must commit before the flag drop
            // (PSO would otherwise reorder them).
            body.push(fence());
        }
        body.push(assign(&fme, c(0)));
        body
    };
    let total = (2 * work) as u64;
    let prog = harness_program(
        &name,
        8,
        &[("flag0", 0), ("flag1", 0), ("turn", 0), ("cnt", 0)],
        &[],
        vec![("p0".to_string(), mk(0)), ("p1".to_string(), mk(1))],
        eq(v("cnt"), c(total)),
    );
    let expected = if fenced {
        Expected::safe_all()
    } else {
        Expected::of(true, false, false)
    };
    Task::new(&name, Subcat::Lit, prog, 2, expected)
}

/// Dekker's algorithm (first software mutual exclusion), simplified to the
/// bounded-entry form used in SV-COMP.
fn dekker(fenced: bool, work: usize) -> Task {
    let name = format!("lit/dekker{}-w{work}", if fenced { "-fence" } else { "" });
    let mk = |me: usize| -> Vec<Stmt> {
        let other = 1 - me;
        let (fme, fother) = (format!("want{me}"), format!("want{other}"));
        let spin = format!("s{me}");
        let mut body = vec![assign(&fme, c(1))];
        if fenced {
            body.push(fence());
        }
        // while (want[other]) { if (turn != me) { want[me]=0; wait turn; want[me]=1; } }
        body.push(assign(&spin, v(&fother)));
        body.push(while_(
            eq(v(&spin), c(1)),
            vec![
                if_(
                    ne(v("turn"), c(me as u64)),
                    {
                        let mut retry = vec![
                            assign(&fme, c(0)),
                            assign(&spin, ite(eq(v("turn"), c(me as u64)), c(0), c(1))),
                            assign(&fme, c(1)),
                        ];
                        if fenced {
                            retry.push(fence());
                        }
                        retry
                    },
                    vec![],
                ),
                assign(&spin, v(&fother)),
            ],
        ));
        body.extend(cs_body(me, work));
        if fenced {
            body.push(fence());
        }
        body.push(assign("turn", c(other as u64)));
        body.push(assign(&fme, c(0)));
        body
    };
    let total = (2 * work) as u64;
    let prog = harness_program(
        &name,
        8,
        &[("want0", 0), ("want1", 0), ("turn", 0), ("cnt", 0)],
        &[],
        vec![("d0".to_string(), mk(0)), ("d1".to_string(), mk(1))],
        eq(v("cnt"), c(total)),
    );
    let expected = if fenced {
        Expected::safe_all()
    } else {
        Expected::of(true, false, false)
    };
    Task::new(&name, Subcat::Lit, prog, 2, expected)
}

/// All `lit` tasks.
pub fn tasks(scale: Scale) -> Vec<Task> {
    match scale {
        Scale::Quick => vec![peterson(false, 1), peterson(true, 1)],
        Scale::Full => vec![
            peterson(false, 1),
            peterson(true, 1),
            peterson(false, 2),
            peterson(true, 2),
            peterson(false, 3),
            peterson(true, 3),
            dekker(false, 1),
            dekker(true, 1),
            dekker(false, 2),
            dekker(true, 2),
            dekker(false, 3),
            dekker(true, 3),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_validate() {
        for t in tasks(Scale::Full) {
            assert_eq!(t.program.validate(), Ok(()), "{}", t.name);
        }
    }

    /// Peterson/Dekker verdicts (safe under SC, broken plain / repaired by
    /// fences under TSO+PSO) — checked against the operational models.
    #[test]
    fn verdicts_match_operational_models() {
        use zpre_prog::interp::{check_sc, Limits, Outcome};
        use zpre_prog::wmm::check_wmm;
        use zpre_prog::MemoryModel;
        let lim = Limits {
            max_states: 50_000_000,
            ..Limits::default()
        };
        for t in [
            peterson(false, 1),
            peterson(true, 1),
            dekker(false, 1),
            dekker(true, 1),
        ] {
            let u = zpre_prog::unroll_program(&t.program, t.unroll_bound);
            let fp = zpre_prog::flatten(&u);
            let sc = check_sc(&fp, lim);
            assert_eq!(sc == Outcome::Safe, t.expected.sc.unwrap(), "{} SC", t.name);
            for mm in [MemoryModel::Tso, MemoryModel::Pso] {
                let got = check_wmm(&fp, mm, lim);
                assert_ne!(got, Outcome::ResourceLimit, "{} {mm}", t.name);
                assert_eq!(
                    got == Outcome::Safe,
                    t.expected.get(mm).unwrap(),
                    "{} {mm}",
                    t.name
                );
            }
        }
    }
}
