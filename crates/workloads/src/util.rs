//! Shared scaffolding for the workload generators.

use zpre_prog::build::*;
use zpre_prog::{BoolExpr, Program, Stmt};

/// Builds the standard benchmark shape: declare shared variables, spawn all
/// worker threads, join them, assert `property` in main.
pub fn harness_program(
    name: &str,
    width: u32,
    shared: &[(&str, u64)],
    mutexes: &[&str],
    workers: Vec<(String, Vec<Stmt>)>,
    property: BoolExpr,
) -> Program {
    let mut b = ProgramBuilder::new(name).width(width);
    for &(n, init) in shared {
        b = b.shared(n, init);
    }
    for &m in mutexes {
        b = b.mutex(m);
    }
    let n = workers.len();
    for (wname, body) in workers {
        b = b.thread(&wname, body);
    }
    let mut main_body: Vec<Stmt> = (1..=n).map(spawn).collect();
    main_body.extend((1..=n).map(join));
    main_body.push(assert_(property));
    b.main(main_body).build()
}

/// Ballast: `count` extra shared variables with a write in one thread and a
/// read in the other. They do not influence the property but add
/// interference variables (rf/ws selectors) to scale the instance.
pub struct Ballast {
    /// Extra shared declarations.
    pub shared: Vec<(String, u64)>,
    /// Statements appended to the writer thread.
    pub writer: Vec<Stmt>,
    /// Statements appended to the reader thread.
    pub reader: Vec<Stmt>,
}

/// Generates `count` ballast variables with the given name `prefix`.
pub fn ballast(prefix: &str, count: usize) -> Ballast {
    let mut shared = Vec::new();
    let mut writer = Vec::new();
    let mut reader = Vec::new();
    for i in 0..count {
        let var = format!("{prefix}{i}");
        shared.push((var.clone(), 0));
        // The writer stores twice (creating a ws pair), the reader loads.
        writer.push(assign(&var, c(i as u64 + 1)));
        writer.push(assign(&var, c(i as u64 + 2)));
        reader.push(assign(&format!("{prefix}r{i}"), v(&var)));
    }
    Ballast {
        shared,
        writer,
        reader,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zpre_prog::Stmt;

    #[test]
    fn harness_shape() {
        let p = harness_program(
            "t",
            8,
            &[("x", 0)],
            &["m"],
            vec![("w".to_string(), vec![assign("x", c(1))])],
            eq(v("x"), c(1)),
        );
        assert_eq!(p.validate(), Ok(()));
        assert_eq!(p.threads.len(), 2);
        assert!(matches!(p.threads[0].body[0], Stmt::Spawn(1)));
        assert!(matches!(p.threads[0].body[1], Stmt::Join(1)));
        assert!(matches!(p.threads[0].body[2], Stmt::Assert(_)));
    }

    #[test]
    fn ballast_counts() {
        let b = ballast("z", 3);
        assert_eq!(b.shared.len(), 3);
        assert_eq!(b.writer.len(), 6);
        assert_eq!(b.reader.len(), 3);
    }
}
