//! # zpre-workloads — synthetic SV-COMP *ConcurrencySafety*-style suite
//!
//! The paper evaluates on 1070 C programs from SV-COMP 2019's
//! *ConcurrencySafety* category; that corpus cannot be shipped or parsed
//! here, so this crate generates structurally equivalent programs per
//! subcategory (see DESIGN.md for the substitution note): weak-memory
//! litmus sweeps (`wmm`, the dominant family), mutex/counter programs
//! (`pthread`), atomic sections (`atomic`), pipelines and reductions
//! (`ext`), Peterson/Dekker (`lit`), nondeterministic inputs (`nondet`),
//! token rings (`divine`), driver-style races (`ldv-races`,
//! `driver-races`) and parallel sums (`C-DAC`).
//!
//! Every generator knows its ground-truth verdict per memory model by
//! construction, and the small instances are cross-validated against the
//! explicit-state oracles in `zpre-prog` by this crate's tests.

#![warn(missing_docs)]

pub mod atomic;
pub mod cdac;
pub mod divine;
pub mod driver;
pub mod ext;
pub mod ldv;
pub mod lit;
pub mod nondet;
pub mod pthread;
pub mod stress;
pub mod suite;
pub mod task;
pub mod util;
pub mod wmm;

pub use suite::{oracle_suite, subcategory, suite};
pub use task::{Expected, Scale, Subcat, Task};
