//! The `stress` family: seeded pseudo-random concurrent programs.
//!
//! Unlike the hand-shaped families, these programs have no designed
//! verdict — they exist to exercise the pipeline on unstructured
//! interference patterns (mixed guarded/unguarded accesses, conditional
//! writes, partial locking) the way SV-COMP's generated subfamilies do.
//! Ground truth under SC is established for the small instances by the
//! exhaustive oracle in this module's tests; the harness checks only
//! cross-strategy agreement on the rest.

use crate::task::{Expected, Scale, Subcat, Task};
use crate::util::harness_program;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use zpre_prog::build::*;
use zpre_prog::{BoolExpr, IntExpr, Stmt};

const VARS: [&str; 3] = ["x", "y", "z"];

fn rand_expr(rng: &mut StdRng, local: &str) -> IntExpr {
    match rng.random_range(0..6) {
        0 => c(rng.random_range(0..8)),
        1 => v(VARS[rng.random_range(0..VARS.len())]),
        2 => v(local),
        3 => add(v(local), c(rng.random_range(1..4))),
        4 => add(
            v(VARS[rng.random_range(0..VARS.len())]),
            c(rng.random_range(0..4)),
        ),
        _ => bxor(v(local), c(rng.random_range(0..8))),
    }
}

fn rand_cond(rng: &mut StdRng, local: &str) -> BoolExpr {
    let lhs = if rng.random_bool(0.5) {
        v(VARS[rng.random_range(0..VARS.len())])
    } else {
        v(local)
    };
    let rhs = c(rng.random_range(0..6));
    match rng.random_range(0..4) {
        0 => eq(lhs, rhs),
        1 => ne(lhs, rhs),
        2 => lt(lhs, rhs),
        _ => ge(lhs, rhs),
    }
}

fn rand_stmts(rng: &mut StdRng, thread: usize, len: usize, allow_locks: bool) -> Vec<Stmt> {
    let local = format!("l{thread}");
    let mut out = Vec::new();
    for i in 0..len {
        match rng.random_range(0..10) {
            0..=3 => {
                // Shared store.
                let tgt = VARS[rng.random_range(0..VARS.len())];
                let e = rand_expr(rng, &local);
                out.push(assign(tgt, e));
            }
            4..=5 => {
                // Local load.
                out.push(assign(&local, v(VARS[rng.random_range(0..VARS.len())])));
            }
            6 => {
                // Conditional store.
                let cond = rand_cond(rng, &local);
                let tgt = VARS[rng.random_range(0..VARS.len())];
                let val = c(rng.random_range(0..8));
                out.push(when(cond, vec![assign(tgt, val)]));
            }
            7 if allow_locks => {
                // Locked read-modify-write.
                let tgt = VARS[rng.random_range(0..VARS.len())];
                let r = format!("r{thread}_{i}");
                out.push(lock("m"));
                out.push(assign(&r, v(tgt)));
                out.push(assign(tgt, add(v(&r), c(1))));
                out.push(unlock("m"));
            }
            _ => {
                // Local computation.
                let e = rand_expr(rng, &local);
                out.push(assign(&local, e));
            }
        }
    }
    out
}

/// One random task. Deterministic per `(seed, threads, len)`.
pub fn stress(seed: u64, threads: usize, len: usize) -> Task {
    let mut rng = StdRng::seed_from_u64(seed);
    let allow_locks = rng.random_bool(0.6);
    let workers: Vec<(String, Vec<Stmt>)> = (0..threads)
        .map(|t| {
            (
                format!("s{t}"),
                rand_stmts(&mut rng, t + 1, len, allow_locks),
            )
        })
        .collect();
    // Property: some random comparison over a shared variable — may or may
    // not hold; the point is the search, not the verdict.
    let target = VARS[rng.random_range(0..VARS.len())];
    let bound = rng.random_range(0..10);
    let property = if rng.random_bool(0.5) {
        le(v(target), c(bound))
    } else {
        ne(v(target), c(bound))
    };
    let name = format!("stress/s{seed}-{threads}x{len}");
    let prog = harness_program(
        &name,
        4,
        &[("x", 0), ("y", 1), ("z", 2)],
        if allow_locks { &["m"] } else { &[] },
        workers,
        property,
    );
    Task::new(&name, Subcat::Stress, prog, 1, Expected::unknown())
}

/// All `stress` tasks.
pub fn tasks(scale: Scale) -> Vec<Task> {
    match scale {
        Scale::Quick => vec![stress(1, 2, 3), stress(2, 2, 3)],
        Scale::Full => (0..12)
            .map(|i| stress(100 + i, 2 + (i as usize % 2), 3 + (i as usize % 4)))
            // The tail of the ladder: instances big enough that cycle-check
            // cost is a visible share of the solve.
            .chain([
                stress(200, 3, 8),
                stress(201, 4, 8),
                stress(202, 4, 10),
                stress(203, 4, 14),
                stress(204, 5, 14),
                stress(205, 6, 12),
            ])
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = stress(7, 2, 4);
        let b = stress(7, 2, 4);
        assert_eq!(a.program, b.program);
        let c_ = stress(8, 2, 4);
        assert_ne!(a.program, c_.program);
    }

    #[test]
    fn programs_validate() {
        for t in tasks(Scale::Full) {
            assert_eq!(t.program.validate(), Ok(()), "{}", t.name);
        }
    }

    /// The SMT verdict matches exhaustive enumeration on every small
    /// stress instance (width 4 keeps the oracle tractable).
    #[test]
    fn smt_matches_oracle_on_small_instances() {
        use zpre_prog::interp::{check_sc, Limits, Outcome};
        for seed in 0..8 {
            let t = stress(seed, 2, 3);
            let u = zpre_prog::unroll_program(&t.program, t.unroll_bound);
            let fp = zpre_prog::flatten(&u);
            let oracle = check_sc(&fp, Limits::default());
            if oracle == Outcome::ResourceLimit {
                continue;
            }
            let out = zpre::verify(
                &t.program,
                &zpre::VerifyOptions::new(zpre_prog::MemoryModel::Sc, zpre::Strategy::Zpre),
            );
            assert_eq!(
                out.verdict == zpre::Verdict::Safe,
                oracle == Outcome::Safe,
                "{}: smt={:?} oracle={:?}",
                t.name,
                out.verdict,
                oracle
            );
        }
    }
}
