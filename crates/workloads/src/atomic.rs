//! The `atomic` family: `__VERIFIER_atomic` section programs.

use crate::task::{Expected, Scale, Subcat, Task};
use crate::util::harness_program;
use zpre_prog::build::*;
use zpre_prog::Stmt;

/// Counter increments inside atomic sections (safe), or with one worker's
/// section removed (unsafe).
fn counter(workers: usize, broken: bool) -> Task {
    let name = format!(
        "atomic/counter-{}{}",
        workers,
        if broken { "-broken" } else { "" }
    );
    let body = |w: usize| -> Vec<Stmt> {
        let r = format!("r{w}");
        let inner = vec![assign(&r, v("cnt")), assign("cnt", add(v(&r), c(1)))];
        if broken && w == 0 {
            inner // first worker forgets the atomic section
        } else {
            atomic(inner)
        }
    };
    let threads: Vec<(String, Vec<Stmt>)> =
        (0..workers).map(|w| (format!("w{w}"), body(w))).collect();
    let prog = harness_program(
        &name,
        8,
        &[("cnt", 0)],
        &[],
        threads,
        eq(v("cnt"), c(workers as u64)),
    );
    let expected = if broken {
        Expected::unsafe_all()
    } else {
        Expected::safe_all()
    };
    Task::new(&name, Subcat::Atomic, prog, 1, expected)
}

/// Invariant `x + y == 10` maintained by atomic transfers between `x` and
/// `y`; the checker thread snapshots both atomically.
fn transfer(rounds: usize, broken: bool) -> Task {
    let name = format!(
        "atomic/transfer-{}r{}",
        rounds,
        if broken { "-broken" } else { "" }
    );
    let mut mover = Vec::new();
    for i in 0..rounds {
        let (rx, ry) = (format!("x{i}"), format!("y{i}"));
        let inner = vec![
            assign(&rx, v("x")),
            assign(&ry, v("y")),
            assign("x", sub(v(&rx), c(1))),
            assign("y", add(v(&ry), c(1))),
        ];
        mover.extend(if broken { inner } else { atomic(inner) });
    }
    let checker = atomic(vec![assign("sx", v("x")), assign("sy", v("y"))]);
    let prog = harness_program(
        &name,
        8,
        &[("x", 10), ("y", 0), ("sx", 0), ("sy", 0)],
        &[],
        vec![
            ("mover".to_string(), mover),
            ("checker".to_string(), checker),
        ],
        eq(add(v("sx"), v("sy")), c(10)),
    );
    let expected = if broken {
        Expected::unsafe_all()
    } else {
        Expected::safe_all()
    };
    Task::new(&name, Subcat::Atomic, prog, 1, expected)
}

/// All `atomic` tasks.
pub fn tasks(scale: Scale) -> Vec<Task> {
    match scale {
        Scale::Quick => vec![counter(2, false), counter(2, true)],
        Scale::Full => vec![
            counter(2, false),
            counter(2, true),
            counter(3, false),
            counter(3, true),
            counter(4, false),
            counter(4, true),
            transfer(1, false),
            transfer(1, true),
            transfer(2, false),
            transfer(2, true),
            transfer(3, false),
            transfer(3, true),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_validate() {
        for t in tasks(Scale::Full) {
            assert_eq!(t.program.validate(), Ok(()), "{}", t.name);
        }
    }

    #[test]
    fn oracle_agrees_on_small_instances() {
        use zpre_prog::interp::{check_sc, Limits, Outcome};
        for t in [
            counter(2, false),
            counter(2, true),
            transfer(1, false),
            transfer(1, true),
        ] {
            let u = zpre_prog::unroll_program(&t.program, t.unroll_bound);
            let fp = zpre_prog::flatten(&u);
            let got = check_sc(&fp, Limits::default());
            assert_eq!(got == Outcome::Safe, t.expected.sc.unwrap(), "{}", t.name);
        }
    }
}
