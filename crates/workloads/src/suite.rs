//! The assembled benchmark suite.

use crate::task::{Scale, Subcat, Task};
use crate::{atomic, cdac, divine, driver, ext, ldv, lit, nondet, pthread, stress, wmm};

/// All tasks of every family at the given scale. The family proportions
/// loosely mirror the SV-COMP *ConcurrencySafety* category the paper
/// evaluates on — `wmm` dominates.
pub fn suite(scale: Scale) -> Vec<Task> {
    let mut out = Vec::new();
    out.extend(wmm::tasks(scale));
    out.extend(pthread::tasks(scale));
    out.extend(atomic::tasks(scale));
    out.extend(ext::tasks(scale));
    out.extend(lit::tasks(scale));
    out.extend(nondet::tasks(scale));
    out.extend(divine::tasks(scale));
    out.extend(ldv::tasks(scale));
    out.extend(driver::tasks(scale));
    out.extend(cdac::tasks(scale));
    out.extend(stress::tasks(scale));
    out
}

/// Tasks of one subcategory.
pub fn subcategory(scale: Scale, subcat: Subcat) -> Vec<Task> {
    suite(scale)
        .into_iter()
        .filter(|t| t.subcat == subcat)
        .collect()
}

/// Small-state tasks suitable for the explicit-state oracles (used by the
/// cross-validation tests): the quick suite plus the litmus oracle set.
pub fn oracle_suite() -> Vec<Task> {
    let mut out = suite(Scale::Quick);
    out.extend(wmm::oracle_tasks());
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out.dedup_by(|a, b| a.name == b.name);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_suite_has_every_subcategory() {
        let tasks = suite(Scale::Full);
        for sc in Subcat::ALL {
            assert!(
                tasks.iter().any(|t| t.subcat == sc),
                "missing subcategory {sc}"
            );
        }
    }

    #[test]
    fn wmm_dominates_like_the_paper() {
        let tasks = suite(Scale::Full);
        let wmm_count = tasks.iter().filter(|t| t.subcat == Subcat::Wmm).count();
        for sc in Subcat::ALL {
            if sc != Subcat::Wmm {
                let n = tasks.iter().filter(|t| t.subcat == sc).count();
                assert!(wmm_count > n, "{sc} outnumbers wmm");
            }
        }
    }

    #[test]
    fn names_are_globally_unique() {
        let tasks = suite(Scale::Full);
        let names: std::collections::BTreeSet<&str> =
            tasks.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names.len(), tasks.len());
    }

    #[test]
    fn all_programs_validate() {
        for t in suite(Scale::Full) {
            assert_eq!(t.program.validate(), Ok(()), "{}", t.name);
        }
    }

    #[test]
    fn full_suite_size() {
        let n = suite(Scale::Full).len();
        assert!(n >= 100, "full suite has only {n} tasks");
    }
}
