//! Benchmark task descriptors.

use zpre::Verdict;
use zpre_prog::{MemoryModel, Program};

/// Benchmark subcategory, mirroring the SV-COMP *ConcurrencySafety*
/// families the paper evaluates on (§5, "Benchmarks").
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Subcat {
    /// pthread-style worker/mutex programs.
    Pthread,
    /// `__VERIFIER_atomic` section programs.
    Atomic,
    /// Weak-memory litmus tests (the paper's dominant family, 898/1084).
    Wmm,
    /// Larger synthetic programs (the `ext` family).
    Ext,
    /// Classic mutual-exclusion algorithms (`lit`: Dekker, Peterson, …).
    Lit,
    /// Nondeterministic-input programs.
    Nondet,
    /// Token-ring style programs (the `divine` family).
    Divine,
    /// Linux-driver style races (`ldv-races`).
    LdvRaces,
    /// Device/driver register races (`driver-races`).
    DriverRaces,
    /// Parallel-computation kernels (`C-DAC`).
    Cdac,
    /// Seeded pseudo-random programs (unstructured interference).
    Stress,
}

impl Subcat {
    /// All subcategories in display order.
    pub const ALL: [Subcat; 11] = [
        Subcat::Pthread,
        Subcat::Atomic,
        Subcat::Wmm,
        Subcat::Ext,
        Subcat::Lit,
        Subcat::Nondet,
        Subcat::Divine,
        Subcat::LdvRaces,
        Subcat::DriverRaces,
        Subcat::Cdac,
        Subcat::Stress,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Subcat::Pthread => "pthread",
            Subcat::Atomic => "atomic",
            Subcat::Wmm => "wmm",
            Subcat::Ext => "ext",
            Subcat::Lit => "lit",
            Subcat::Nondet => "nondet",
            Subcat::Divine => "divine",
            Subcat::LdvRaces => "ldv-races",
            Subcat::DriverRaces => "driver-races",
            Subcat::Cdac => "C-DAC",
            Subcat::Stress => "stress",
        }
    }
}

impl std::fmt::Display for Subcat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Known ground-truth verdict per memory model (`true` = safe), if the
/// generator knows it by construction.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Expected {
    /// Under sequential consistency.
    pub sc: Option<bool>,
    /// Under total store order.
    pub tso: Option<bool>,
    /// Under partial store order.
    pub pso: Option<bool>,
}

impl Expected {
    /// Safe under every model.
    pub fn safe_all() -> Expected {
        Expected {
            sc: Some(true),
            tso: Some(true),
            pso: Some(true),
        }
    }

    /// Unsafe under every model.
    pub fn unsafe_all() -> Expected {
        Expected {
            sc: Some(false),
            tso: Some(false),
            pso: Some(false),
        }
    }

    /// Explicit per-model verdicts.
    pub fn of(sc: bool, tso: bool, pso: bool) -> Expected {
        Expected {
            sc: Some(sc),
            tso: Some(tso),
            pso: Some(pso),
        }
    }

    /// Unknown everywhere.
    pub fn unknown() -> Expected {
        Expected::default()
    }

    /// The expectation for one memory model.
    pub fn get(&self, mm: MemoryModel) -> Option<bool> {
        match mm {
            MemoryModel::Sc => self.sc,
            MemoryModel::Tso => self.tso,
            MemoryModel::Pso => self.pso,
        }
    }

    /// `true` if `verdict` is consistent with the expectation under `mm`.
    pub fn matches(&self, mm: MemoryModel, verdict: Verdict) -> bool {
        match (self.get(mm), verdict) {
            (None, _) | (_, Verdict::Unknown) => true,
            (Some(safe), v) => (v == Verdict::Safe) == safe,
        }
    }
}

/// One benchmark task.
#[derive(Clone, Debug)]
pub struct Task {
    /// Unique name, e.g. `wmm/sb-3`.
    pub name: String,
    /// Subcategory.
    pub subcat: Subcat,
    /// The program (with loops; unrolled by the verifier).
    pub program: Program,
    /// BMC unroll bound for this task.
    pub unroll_bound: u32,
    /// Known verdicts, if any.
    pub expected: Expected,
}

impl Task {
    /// Creates a task.
    pub fn new(
        name: impl Into<String>,
        subcat: Subcat,
        program: Program,
        unroll_bound: u32,
        expected: Expected,
    ) -> Task {
        Task {
            name: name.into(),
            subcat,
            program,
            unroll_bound,
            expected,
        }
    }
}

/// Suite size selector.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Scale {
    /// A handful of tasks per family — CI-friendly.
    Quick,
    /// The full laptop-scale sweep used by the benchmark harness.
    Full,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_matching() {
        let e = Expected::of(true, true, false);
        assert!(e.matches(MemoryModel::Sc, Verdict::Safe));
        assert!(!e.matches(MemoryModel::Sc, Verdict::Unsafe));
        assert!(e.matches(MemoryModel::Pso, Verdict::Unsafe));
        assert!(!e.matches(MemoryModel::Pso, Verdict::Safe));
        assert!(e.matches(MemoryModel::Tso, Verdict::Unknown));
        assert!(Expected::unknown().matches(MemoryModel::Sc, Verdict::Safe));
    }

    #[test]
    fn subcat_names_are_unique() {
        let names: std::collections::BTreeSet<&str> =
            Subcat::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), Subcat::ALL.len());
    }
}
