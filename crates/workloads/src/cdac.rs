//! The `C-DAC` family: parallel-computation kernels (partial sums).

use crate::task::{Expected, Scale, Subcat, Task};
use crate::util::harness_program;
use zpre_prog::build::*;
use zpre_prog::Stmt;

/// `workers` threads each add a chunk of `chunk` constants into a shared
/// accumulator under a lock; main checks the exact total.
fn parsum(workers: usize, chunk: usize, locked: bool) -> Task {
    let name = format!(
        "C-DAC/parsum-{workers}x{chunk}-{}",
        if locked { "locked" } else { "racy" }
    );
    let mut total: u64 = 0;
    let mut threads = Vec::new();
    for w in 0..workers {
        let mut body: Vec<Stmt> = Vec::new();
        // Compute the chunk sum locally...
        let acc = format!("acc{w}");
        body.push(assign(&acc, c(0)));
        for i in 0..chunk {
            let val = (w * chunk + i + 1) as u64;
            total = (total + val) & 0xff;
            body.push(assign(&acc, add(v(&acc), c(val))));
        }
        // ...then merge into the shared accumulator.
        let r = format!("r{w}");
        if locked {
            body.push(lock("m"));
        }
        body.push(assign(&r, v("sum")));
        body.push(assign("sum", add(v(&r), v(&acc))));
        if locked {
            body.push(unlock("m"));
        }
        threads.push((format!("w{w}"), body));
    }
    let prog = harness_program(
        &name,
        8,
        &[("sum", 0)],
        if locked { &["m"] } else { &[] },
        threads,
        eq(v("sum"), c(total)),
    );
    let expected = if locked {
        Expected::safe_all()
    } else {
        Expected::unsafe_all()
    };
    Task::new(&name, Subcat::Cdac, prog, 1, expected)
}

/// All `C-DAC` tasks.
pub fn tasks(scale: Scale) -> Vec<Task> {
    match scale {
        Scale::Quick => vec![parsum(2, 2, true)],
        Scale::Full => vec![
            parsum(2, 2, true),
            parsum(2, 2, false),
            parsum(3, 2, true),
            parsum(3, 2, false),
            parsum(2, 4, true),
            parsum(2, 4, false),
            parsum(4, 2, true),
            parsum(4, 2, false),
            parsum(4, 3, true),
            parsum(3, 4, true),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_validate() {
        for t in tasks(Scale::Full) {
            assert_eq!(t.program.validate(), Ok(()), "{}", t.name);
        }
    }

    #[test]
    fn oracle_agrees() {
        use zpre_prog::interp::{check_sc, Limits, Outcome};
        for t in [parsum(2, 2, true), parsum(2, 2, false)] {
            let u = zpre_prog::unroll_program(&t.program, t.unroll_bound);
            let fp = zpre_prog::flatten(&u);
            let got = check_sc(&fp, Limits::default());
            assert_eq!(got == Outcome::Safe, t.expected.sc.unwrap(), "{}", t.name);
        }
    }
}
