//! The `ext` family: larger synthetic programs — flag-chained pipelines
//! and datapath-heavy reduction kernels.

use crate::task::{Expected, Scale, Subcat, Task};
use crate::util::harness_program;
use zpre_prog::build::*;

/// A pipeline of `stages` threads. Stage `i` busy-waits (bounded) for
/// `flag_{i-1}`, computes `v_i = v_{i-1} + i`, publishes `flag_i`.
/// With fences between the data write and the flag write the chain is an
/// MP-chain: safe everywhere; without fences it breaks under PSO.
fn pipeline(stages: usize, fenced: bool) -> Task {
    let name = format!(
        "ext/pipeline-{}{}",
        stages,
        if fenced { "-fence" } else { "" }
    );
    let mut shared: Vec<(String, u64)> = vec![("v0".to_string(), 1), ("flag0".to_string(), 1)];
    for i in 1..=stages {
        shared.push((format!("v{i}"), 0));
        shared.push((format!("flag{i}"), 0));
    }
    let mut threads = Vec::new();
    for i in 1..=stages {
        let (fprev, vprev) = (format!("flag{}", i - 1), format!("v{}", i - 1));
        let (fcur, vcur) = (format!("flag{i}"), format!("v{i}"));
        let seen = format!("seen{i}");
        let mut body = vec![
            // Bounded spin on the previous stage's flag.
            assign(&seen, v(&fprev)),
            while_(eq(v(&seen), c(0)), vec![assign(&seen, v(&fprev))]),
            assign(&vcur, add(v(&vprev), c(i as u64))),
        ];
        if fenced {
            body.push(fence());
        }
        body.push(assign(&fcur, c(1)));
        threads.push((format!("stage{i}"), body));
    }
    // v_n = 1 + 1 + 2 + … + n.
    let expect = 1 + (stages * (stages + 1) / 2) as u64;
    let last_flag = format!("flag{stages}");
    let last_v = format!("v{stages}");
    let shared_refs: Vec<(&str, u64)> = shared.iter().map(|(n, i)| (n.as_str(), *i)).collect();
    let prog = harness_program(
        &name,
        8,
        &shared_refs,
        &[],
        threads,
        or(eq(v(&last_flag), c(0)), eq(v(&last_v), c(expect))),
    );
    let expected = if fenced {
        Expected::safe_all()
    } else {
        Expected::of(true, true, false)
    };
    Task::new(&name, Subcat::Ext, prog, 2, expected)
}

/// Datapath-heavy reduction: each worker computes a small polynomial of its
/// id and adds it to a shared accumulator under a lock. The final assertion
/// checks the exact sum — lots of SSA bits for the solver to chew on, which
/// is exactly where interference-first decisions pay off.
fn reduce(workers: usize, correct: bool) -> Task {
    reduce_w(workers, correct, 8)
}

/// [`reduce`] with an explicit word width (wider = heavier data path).
fn reduce_w(workers: usize, correct: bool, width: u32) -> Task {
    let name = format!(
        "ext/reduce-{}{}{}",
        workers,
        if width == 8 {
            String::new()
        } else {
            format!("-w{width}")
        },
        if correct { "" } else { "-bad" }
    );
    let mut threads = Vec::new();
    let mut total: u64 = 0;
    for w in 0..workers {
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let ww = w as u64 + 2;
        let contrib = (ww * ww + 3 * ww) & mask;
        total = (total + contrib) & mask;
        let r = format!("r{w}");
        let p = format!("p{w}");
        threads.push((
            format!("w{w}"),
            vec![
                // p = w² + 3w computed from a nondet-free expression chain.
                assign(&p, add(mul(c(ww), c(ww)), mul(c(3), c(ww)))),
                lock("m"),
                assign(&r, v("sum")),
                assign("sum", add(v(&r), v(&p))),
                unlock("m"),
            ],
        ));
    }
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let target = if correct { total } else { (total + 1) & mask };
    let prog = harness_program(
        &name,
        width,
        &[("sum", 0)],
        &["m"],
        threads,
        eq(v("sum"), c(target)),
    );
    let expected = if correct {
        Expected::safe_all()
    } else {
        Expected::unsafe_all()
    };
    Task::new(&name, Subcat::Ext, prog, 1, expected)
}

/// All `ext` tasks.
pub fn tasks(scale: Scale) -> Vec<Task> {
    match scale {
        Scale::Quick => vec![pipeline(2, true), reduce(2, true)],
        Scale::Full => vec![
            pipeline(2, false),
            pipeline(2, true),
            pipeline(3, false),
            pipeline(3, true),
            pipeline(4, false),
            pipeline(4, true),
            reduce(2, true),
            reduce(2, false),
            reduce(3, true),
            reduce(3, false),
            reduce(4, true),
            reduce_w(3, true, 16),
            reduce_w(3, false, 16),
            reduce_w(4, true, 16),
            reduce_w(3, true, 32),
            reduce_w(3, false, 32),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_validate() {
        for t in tasks(Scale::Full) {
            assert_eq!(t.program.validate(), Ok(()), "{}", t.name);
        }
    }

    #[test]
    fn reduce_totals_are_consistent() {
        // reduce(2): contributions (2²+6)=10, (3²+9)=18 → 28.
        let t = reduce(2, true);
        let s = zpre_prog::pretty::pretty_program(&t.program);
        assert!(s.contains("(sum == 28)"), "{s}");
    }
}
