//! The bounded-model-checking driver loop.
//!
//! The paper's experimental setup generates one SMT instance per loop
//! unrolling bound (1..6) and solves each: if the bound is below the
//! minimal violating depth `k*` the instance is unsatisfiable, at or above
//! it the instance is satisfiable. This module packages that loop: iterate
//! bounds upward until a violation is found or the bound budget is
//! exhausted.

use crate::verifier::{verify, Verdict, VerifyOptions, VerifyOutcome};
use zpre_prog::Program;

/// Result of a BMC sweep.
#[derive(Debug)]
pub struct BmcOutcome {
    /// Overall verdict: `Unsafe` as soon as some bound is satisfiable,
    /// `Safe` if every bound up to the maximum is unsatisfiable
    /// (i.e. *safe up to the bound*), `Unknown` if a bound's budget ran out.
    pub verdict: Verdict,
    /// The bound at which the verdict was established (the paper's `k*`
    /// for `Unsafe`; the maximal bound for `Safe`).
    pub bound: u32,
    /// Per-bound outcomes, in increasing bound order.
    pub per_bound: Vec<(u32, VerifyOutcome)>,
}

/// Runs BMC with bounds `1..=max_bound` (skipping redundant re-encodings
/// for loop-free programs, where every bound yields the same instance —
/// the deduplication the paper applies to its SMT files).
pub fn verify_bmc(prog: &Program, max_bound: u32, opts: &VerifyOptions) -> BmcOutcome {
    let mut per_bound = Vec::new();
    let loop_free = !prog.has_loops();
    let mut bound = 1;
    loop {
        let o = VerifyOptions {
            unroll_bound: bound,
            ..opts.clone()
        };
        let out = verify(prog, &o);
        let verdict = out.verdict;
        per_bound.push((bound, out));
        match verdict {
            Verdict::Unsafe => {
                return BmcOutcome {
                    verdict: Verdict::Unsafe,
                    bound,
                    per_bound,
                };
            }
            Verdict::Unknown => {
                return BmcOutcome {
                    verdict: Verdict::Unknown,
                    bound,
                    per_bound,
                };
            }
            Verdict::Safe => {
                if loop_free || bound >= max_bound {
                    return BmcOutcome {
                        verdict: Verdict::Safe,
                        bound,
                        per_bound,
                    };
                }
                bound += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;
    use zpre_prog::build::*;
    use zpre_prog::MemoryModel;

    /// A loop must run exactly 3 times before the bug is reachable:
    /// `k* = 3` in the paper's notation.
    fn needs_three_iterations() -> zpre_prog::Program {
        ProgramBuilder::new("kstar3")
            .shared("x", 0)
            .main(vec![
                while_(lt(v("x"), c(3)), vec![assign("x", add(v("x"), c(1)))]),
                assert_(ne(v("x"), c(3))),
            ])
            .build()
    }

    #[test]
    fn finds_minimal_violating_bound() {
        let opts = VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre);
        let out = verify_bmc(&needs_three_iterations(), 6, &opts);
        assert_eq!(out.verdict, Verdict::Unsafe);
        assert_eq!(out.bound, 3, "k* should be 3");
        // Bounds 1 and 2 were unsat.
        assert_eq!(out.per_bound.len(), 3);
        assert_eq!(out.per_bound[0].1.verdict, Verdict::Safe);
        assert_eq!(out.per_bound[1].1.verdict, Verdict::Safe);
    }

    #[test]
    fn safe_up_to_bound() {
        let opts = VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre);
        let out = verify_bmc(&needs_three_iterations(), 2, &opts);
        assert_eq!(out.verdict, Verdict::Safe);
        assert_eq!(out.bound, 2);
    }

    #[test]
    fn loop_free_programs_solve_once() {
        let p = ProgramBuilder::new("loopfree")
            .shared("x", 0)
            .main(vec![assign("x", c(1)), assert_(eq(v("x"), c(1)))])
            .build();
        let opts = VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre);
        let out = verify_bmc(&p, 6, &opts);
        assert_eq!(out.verdict, Verdict::Safe);
        assert_eq!(
            out.per_bound.len(),
            1,
            "no duplicate instances for loop-free programs"
        );
    }

    #[test]
    fn budget_exhaustion_stops_the_sweep() {
        let inc = vec![
            lock("m"),
            assign("r", v("cnt")),
            assign("cnt", add(v("r"), c(1))),
            unlock("m"),
        ];
        let p = ProgramBuilder::new("hard")
            .shared("cnt", 0)
            .mutex("m")
            .thread("w1", inc.clone())
            .thread("w2", inc.clone())
            .thread("w3", inc)
            .main(vec![
                spawn(1),
                spawn(2),
                spawn(3),
                join(1),
                join(2),
                join(3),
                assert_(eq(v("cnt"), c(3))),
            ])
            .build();
        let opts = VerifyOptions {
            max_conflicts: Some(1),
            ..VerifyOptions::new(MemoryModel::Sc, Strategy::Baseline)
        };
        let out = verify_bmc(&p, 6, &opts);
        assert_eq!(out.verdict, Verdict::Unknown);
    }
}
