//! Decision-order generation (§4.1 of the paper).
//!
//! The frontend names interference variables in a special fashion
//! (`rf_<rt>_<ri>_<wt>_<wi>` / `ws_…`) and records their class and
//! `#write` counts; this module turns that metadata into the *decision
//! order* — a priority list consumed by the enhanced `decide()` (a
//! [`zpre_sat::PriorityListGuide`] consulted before VSIDS):
//!
//! - **H1** — interference variables before everything else (implicit: only
//!   interference variables enter the list; everything else falls through
//!   to the solver's default heuristics, exactly as in Fig. 5);
//! - **H2** — read-from variables before write-serialization variables;
//! - **H3** — external RF (read/write in different threads) before
//!   internal RF;
//! - **H4** — among RF variables, larger `#write` first.
//!
//! `ZPRE⁻` applies H1 only (interference variables in registration order);
//! `ZPRE` applies H1–H4.

use zpre_sat::Var;
use zpre_smt::{VarKind, VarRegistry};

/// Which refinements to apply on top of H1.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Refinements {
    /// H2: RF variables before WS variables.
    pub rf_before_ws: bool,
    /// H3: external RF before internal RF.
    pub external_first: bool,
    /// H4: RF variables with more candidate writes first.
    pub more_writes_first: bool,
}

impl Refinements {
    /// All refinements on — the full `ZPRE` order.
    pub fn all() -> Refinements {
        Refinements {
            rf_before_ws: true,
            external_first: true,
            more_writes_first: true,
        }
    }

    /// No refinements — the `ZPRE⁻` order (H1 only).
    pub fn none() -> Refinements {
        Refinements {
            rf_before_ws: false,
            external_first: false,
            more_writes_first: false,
        }
    }
}

/// The paper's `prior_to(v₁, v₂)`: `true` when `v₁` must be decided before
/// `v₂`. Both must be interference variables.
pub fn prior_to(k1: VarKind, k2: VarKind, refinements: Refinements) -> bool {
    debug_assert!(k1.is_interference() && k2.is_interference());
    match (k1, k2) {
        // Case 1: RF variables are prior to WS variables.
        (VarKind::Rf { .. }, VarKind::Ws) => refinements.rf_before_ws,
        (VarKind::Ws, VarKind::Rf { .. }) => false,
        // Cases 2–3: among RF variables.
        (
            VarKind::Rf {
                external: e1,
                writes: n1,
            },
            VarKind::Rf {
                external: e2,
                writes: n2,
            },
        ) => {
            if refinements.external_first && e1 != e2 {
                return e1;
            }
            if refinements.more_writes_first && n1 != n2 {
                return n1 > n2;
            }
            false
        }
        // Case 4 (default): no priority between WS variables.
        (VarKind::Ws, VarKind::Ws) => false,
        _ => false,
    }
}

/// Builds the decision order: interference variables sorted by
/// [`prior_to`], stable in registration order (so `Refinements::none()`
/// yields exactly the `ZPRE⁻` list). Returns raw variable indices for a
/// [`zpre_sat::PriorityListGuide`].
pub fn decision_order(registry: &VarRegistry, refinements: Refinements) -> Vec<u32> {
    let mut vars: Vec<(Var, VarKind)> = registry
        .interference_vars()
        .map(|(v, info)| (v, info.kind))
        .collect();
    // `prior_to` is a strict *partial* order, so comparing incomparable
    // pairs by index does not give `sort_by` the total order it requires
    // (e.g. under H4-only, rf(w=5, idx 100) < rf(w=2, idx 1) < ws(idx 50)
    // < rf(w=5, idx 100) is a cycle). Instead sort by a tiered key — kind
    // tier, locality, descending writes, index — which is total by
    // construction and linearly extends `prior_to` for every refinement
    // combination: inactive refinements contribute a constant, and
    // incomparable pairs fall through to the registration index.
    vars.sort_by_key(|&(v, k)| {
        let (tier, locality, writes_rank) = match k {
            VarKind::Rf { external, writes } => (
                0u8,
                u8::from(refinements.external_first && !external),
                if refinements.more_writes_first {
                    u32::MAX - writes
                } else {
                    0
                },
            ),
            _ => (u8::from(refinements.rf_before_ws), 0, 0),
        };
        (tier, locality, writes_rank, v.index())
    });
    vars.into_iter().map(|(v, _)| v.index() as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use zpre_smt::VarRegistry;

    fn rf(external: bool, writes: u32) -> VarKind {
        VarKind::Rf { external, writes }
    }

    #[test]
    fn rf_prior_to_ws() {
        let r = Refinements::all();
        assert!(prior_to(rf(true, 1), VarKind::Ws, r));
        assert!(!prior_to(VarKind::Ws, rf(true, 1), r));
    }

    #[test]
    fn external_prior_to_internal() {
        let r = Refinements::all();
        assert!(prior_to(rf(true, 1), rf(false, 9), r));
        assert!(!prior_to(rf(false, 9), rf(true, 1), r));
    }

    #[test]
    fn more_writes_first_within_same_locality() {
        let r = Refinements::all();
        assert!(prior_to(rf(true, 5), rf(true, 2), r));
        assert!(!prior_to(rf(true, 2), rf(true, 5), r));
        assert!(!prior_to(rf(true, 3), rf(true, 3), r));
    }

    #[test]
    fn prior_to_is_a_strict_partial_order() {
        // Irreflexive and asymmetric over a sample of kinds; transitivity
        // by exhaustive triples.
        let kinds = [
            rf(true, 3),
            rf(true, 1),
            rf(false, 3),
            rf(false, 1),
            VarKind::Ws,
        ];
        let r = Refinements::all();
        for &a in &kinds {
            assert!(!prior_to(a, a, r), "irreflexive {a:?}");
            for &b in &kinds {
                assert!(
                    !(prior_to(a, b, r) && prior_to(b, a, r)),
                    "asymmetric {a:?} {b:?}"
                );
                for &c in &kinds {
                    if prior_to(a, b, r) && prior_to(b, c, r) {
                        assert!(prior_to(a, c, r), "transitive {a:?} {b:?} {c:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn no_refinements_keeps_registration_order() {
        let mut reg = VarRegistry::new();
        reg.register(Var::new(0), VarKind::Ws, "ws_0");
        reg.register(Var::new(1), rf(true, 2), "rf_1");
        reg.register(Var::new(2), VarKind::Ssa, "ssa");
        reg.register(Var::new(3), rf(false, 1), "rf_3");
        let order = decision_order(&reg, Refinements::none());
        assert_eq!(order, vec![0, 1, 3]); // interference only, as registered
    }

    #[test]
    fn full_order_sorts_by_heuristics() {
        let mut reg = VarRegistry::new();
        reg.register(Var::new(0), VarKind::Ws, "ws_a");
        reg.register(Var::new(1), rf(false, 4), "rf_int");
        reg.register(Var::new(2), rf(true, 1), "rf_ext_small");
        reg.register(Var::new(3), rf(true, 7), "rf_ext_big");
        reg.register(Var::new(4), VarKind::Ssa, "ssa");
        let order = decision_order(&reg, Refinements::all());
        // external big, external small, internal, ws.
        assert_eq!(order, vec![3, 2, 1, 0]);
    }

    /// Every `Refinements` combination, one randomized registry each: the
    /// produced order must be a permutation of the interference variables
    /// that linearly extends `prior_to` (no pair may appear in an order the
    /// partial order forbids). Regression for the old non-total `sort_by`
    /// comparator, which could panic or mis-order under partial refinement
    /// combinations.
    #[test]
    fn every_refinement_combo_linearly_extends_prior_to() {
        let all_combos = (0..8).map(|bits| Refinements {
            rf_before_ws: bits & 1 != 0,
            external_first: bits & 2 != 0,
            more_writes_first: bits & 4 != 0,
        });
        for (combo_idx, refinements) in all_combos.enumerate() {
            // Deterministic xorshift64* stream per combination.
            let mut state: u64 = 0x9E37_79B9 + combo_idx as u64;
            let mut next = move || {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                state.wrapping_mul(0x2545_F491_4F6C_DD1D)
            };
            let mut reg = VarRegistry::new();
            let mut kinds: Vec<Option<VarKind>> = Vec::new();
            for i in 0..60u32 {
                let kind = match next() % 4 {
                    0 => VarKind::Ws,
                    1 => VarKind::Ssa,
                    _ => rf(next() % 2 == 0, (next() % 6) as u32),
                };
                reg.register(Var::new(i), kind, format!("v{i}"));
                kinds.push(if kind.is_interference() {
                    Some(kind)
                } else {
                    None
                });
            }
            let order = decision_order(&reg, refinements);
            // Permutation of exactly the interference variables.
            let mut expected: Vec<u32> = (0..60).filter(|&i| kinds[i as usize].is_some()).collect();
            let mut got = order.clone();
            got.sort_unstable();
            expected.sort_unstable();
            assert_eq!(got, expected, "combo {refinements:?} lost/duplicated vars");
            // Linear extension: no later element may be prior to an
            // earlier one.
            for i in 0..order.len() {
                for j in (i + 1)..order.len() {
                    let (ka, kb) = (
                        kinds[order[i] as usize].unwrap(),
                        kinds[order[j] as usize].unwrap(),
                    );
                    assert!(
                        !prior_to(kb, ka, refinements),
                        "combo {refinements:?}: {kb:?} (pos {j}) is prior_to \
                         {ka:?} (pos {i}) but ordered after it"
                    );
                }
            }
        }
    }

    /// The exact cycle from the issue report: under H4-only (plus
    /// `rf_before_ws: false`), the old comparator had
    /// rf(w=5) < rf(w=2) < ws < rf(w=5). The tiered key must order the two
    /// RF variables by writes regardless of where WS lands.
    #[test]
    fn h4_only_cycle_from_issue_is_ordered_consistently() {
        let refinements = Refinements {
            rf_before_ws: false,
            external_first: false,
            more_writes_first: true,
        };
        let mut reg = VarRegistry::new();
        reg.register(Var::new(1), rf(false, 2), "rf_small");
        reg.register(Var::new(50), VarKind::Ws, "ws");
        reg.register(Var::new(100), rf(false, 5), "rf_big");
        let order = decision_order(&reg, refinements);
        let pos = |v: u32| order.iter().position(|&x| x == v).unwrap();
        assert!(
            pos(100) < pos(1),
            "rf with more writes must precede rf with fewer: {order:?}"
        );
    }

    #[test]
    fn h4_only_orders_by_writes_ignoring_locality() {
        let mut reg = VarRegistry::new();
        reg.register(Var::new(0), rf(false, 9), "rf_int_big");
        reg.register(Var::new(1), rf(true, 2), "rf_ext_small");
        let refinements = Refinements {
            rf_before_ws: true,
            external_first: false,
            more_writes_first: true,
        };
        let order = decision_order(&reg, refinements);
        assert_eq!(order, vec![0, 1]);
    }
}
