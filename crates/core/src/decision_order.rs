//! Decision-order generation (§4.1 of the paper).
//!
//! The frontend names interference variables in a special fashion
//! (`rf_<rt>_<ri>_<wt>_<wi>` / `ws_…`) and records their class and
//! `#write` counts; this module turns that metadata into the *decision
//! order* — a priority list consumed by the enhanced `decide()` (a
//! [`zpre_sat::PriorityListGuide`] consulted before VSIDS):
//!
//! - **H1** — interference variables before everything else (implicit: only
//!   interference variables enter the list; everything else falls through
//!   to the solver's default heuristics, exactly as in Fig. 5);
//! - **H2** — read-from variables before write-serialization variables;
//! - **H3** — external RF (read/write in different threads) before
//!   internal RF;
//! - **H4** — among RF variables, larger `#write` first.
//!
//! `ZPRE⁻` applies H1 only (interference variables in registration order);
//! `ZPRE` applies H1–H4.

use std::cmp::Ordering;
use zpre_sat::Var;
use zpre_smt::{VarKind, VarRegistry};

/// Which refinements to apply on top of H1.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Refinements {
    /// H2: RF variables before WS variables.
    pub rf_before_ws: bool,
    /// H3: external RF before internal RF.
    pub external_first: bool,
    /// H4: RF variables with more candidate writes first.
    pub more_writes_first: bool,
}

impl Refinements {
    /// All refinements on — the full `ZPRE` order.
    pub fn all() -> Refinements {
        Refinements { rf_before_ws: true, external_first: true, more_writes_first: true }
    }

    /// No refinements — the `ZPRE⁻` order (H1 only).
    pub fn none() -> Refinements {
        Refinements { rf_before_ws: false, external_first: false, more_writes_first: false }
    }
}

/// The paper's `prior_to(v₁, v₂)`: `true` when `v₁` must be decided before
/// `v₂`. Both must be interference variables.
pub fn prior_to(k1: VarKind, k2: VarKind, refinements: Refinements) -> bool {
    debug_assert!(k1.is_interference() && k2.is_interference());
    match (k1, k2) {
        // Case 1: RF variables are prior to WS variables.
        (VarKind::Rf { .. }, VarKind::Ws) => refinements.rf_before_ws,
        (VarKind::Ws, VarKind::Rf { .. }) => false,
        // Cases 2–3: among RF variables.
        (
            VarKind::Rf { external: e1, writes: n1 },
            VarKind::Rf { external: e2, writes: n2 },
        ) => {
            if refinements.external_first && e1 != e2 {
                return e1;
            }
            if refinements.more_writes_first && n1 != n2 {
                return n1 > n2;
            }
            false
        }
        // Case 4 (default): no priority between WS variables.
        (VarKind::Ws, VarKind::Ws) => false,
        _ => false,
    }
}

/// Builds the decision order: interference variables sorted by
/// [`prior_to`], stable in registration order (so `Refinements::none()`
/// yields exactly the `ZPRE⁻` list). Returns raw variable indices for a
/// [`zpre_sat::PriorityListGuide`].
pub fn decision_order(registry: &VarRegistry, refinements: Refinements) -> Vec<u32> {
    let mut vars: Vec<(Var, VarKind)> = registry
        .interference_vars()
        .map(|(v, info)| (v, info.kind))
        .collect();
    vars.sort_by(|&(va, ka), &(vb, kb)| {
        if prior_to(ka, kb, refinements) {
            Ordering::Less
        } else if prior_to(kb, ka, refinements) {
            Ordering::Greater
        } else {
            va.index().cmp(&vb.index()) // stable, deterministic
        }
    });
    vars.into_iter().map(|(v, _)| v.index() as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use zpre_smt::VarRegistry;

    fn rf(external: bool, writes: u32) -> VarKind {
        VarKind::Rf { external, writes }
    }

    #[test]
    fn rf_prior_to_ws() {
        let r = Refinements::all();
        assert!(prior_to(rf(true, 1), VarKind::Ws, r));
        assert!(!prior_to(VarKind::Ws, rf(true, 1), r));
    }

    #[test]
    fn external_prior_to_internal() {
        let r = Refinements::all();
        assert!(prior_to(rf(true, 1), rf(false, 9), r));
        assert!(!prior_to(rf(false, 9), rf(true, 1), r));
    }

    #[test]
    fn more_writes_first_within_same_locality() {
        let r = Refinements::all();
        assert!(prior_to(rf(true, 5), rf(true, 2), r));
        assert!(!prior_to(rf(true, 2), rf(true, 5), r));
        assert!(!prior_to(rf(true, 3), rf(true, 3), r));
    }

    #[test]
    fn prior_to_is_a_strict_partial_order() {
        // Irreflexive and asymmetric over a sample of kinds; transitivity
        // by exhaustive triples.
        let kinds = [
            rf(true, 3),
            rf(true, 1),
            rf(false, 3),
            rf(false, 1),
            VarKind::Ws,
        ];
        let r = Refinements::all();
        for &a in &kinds {
            assert!(!prior_to(a, a, r), "irreflexive {a:?}");
            for &b in &kinds {
                assert!(
                    !(prior_to(a, b, r) && prior_to(b, a, r)),
                    "asymmetric {a:?} {b:?}"
                );
                for &c in &kinds {
                    if prior_to(a, b, r) && prior_to(b, c, r) {
                        assert!(prior_to(a, c, r), "transitive {a:?} {b:?} {c:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn no_refinements_keeps_registration_order() {
        let mut reg = VarRegistry::new();
        reg.register(Var::new(0), VarKind::Ws, "ws_0");
        reg.register(Var::new(1), rf(true, 2), "rf_1");
        reg.register(Var::new(2), VarKind::Ssa, "ssa");
        reg.register(Var::new(3), rf(false, 1), "rf_3");
        let order = decision_order(&reg, Refinements::none());
        assert_eq!(order, vec![0, 1, 3]); // interference only, as registered
    }

    #[test]
    fn full_order_sorts_by_heuristics() {
        let mut reg = VarRegistry::new();
        reg.register(Var::new(0), VarKind::Ws, "ws_a");
        reg.register(Var::new(1), rf(false, 4), "rf_int");
        reg.register(Var::new(2), rf(true, 1), "rf_ext_small");
        reg.register(Var::new(3), rf(true, 7), "rf_ext_big");
        reg.register(Var::new(4), VarKind::Ssa, "ssa");
        let order = decision_order(&reg, Refinements::all());
        // external big, external small, internal, ws.
        assert_eq!(order, vec![3, 2, 1, 0]);
    }

    #[test]
    fn h4_only_orders_by_writes_ignoring_locality() {
        let mut reg = VarRegistry::new();
        reg.register(Var::new(0), rf(false, 9), "rf_int_big");
        reg.register(Var::new(1), rf(true, 2), "rf_ext_small");
        let refinements = Refinements {
            rf_before_ws: true,
            external_first: false,
            more_writes_first: true,
        };
        let order = decision_order(&reg, refinements);
        assert_eq!(order, vec![0, 1]);
    }
}
