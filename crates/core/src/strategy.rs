//! Solving strategies: the baseline, `ZPRE⁻`, `ZPRE`, and the ablations.

use crate::decision_order::Refinements;

/// A solving strategy — which decision heuristics drive the search.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Strategy {
    /// The solver's default heuristics only (VSIDS + phase saving) — the
    /// "Z3" role in the paper's comparison.
    Baseline,
    /// H1 only: interference variables first, in registration order
    /// (the paper's `ZPRE⁻`).
    ZpreMinus,
    /// H1–H4: the full interference-relation decision order (`ZPRE`).
    Zpre,
    /// Ablation: H1 + H2 (RF before WS) without locality/#write ranking.
    ZpreH2,
    /// Ablation: H1 + H2 + H3 (adds external-before-internal).
    ZpreH3,
    /// Ablation: full ZPRE but deciding interference variables always true
    /// instead of with a random polarity.
    ZpreFixedTrue,
    /// Ablation: full ZPRE with the order theory's one-step reverse
    /// propagation disabled.
    ZpreNoReverseProp,
    /// Ablation: full ZPRE with the order theory's incremental cycle
    /// detection replaced by the old per-assertion full DFS (the
    /// before/after reference for the EOG engine's telemetry counters).
    ZpreDfsCheck,
    /// Ablation: full ZPRE with the static interference-pruning pass
    /// disabled (the historic unpruned encoding). The oracle for the
    /// pruned/unpruned equivalence comparisons.
    ZpreNoPrune,
    /// The control-flow ("branching") heuristic of §5.2's *Other Attempts*:
    /// prioritize event-guard variables instead of interference variables.
    BranchCond,
}

impl Strategy {
    /// The three strategies the paper's Table 3 compares.
    pub const MAIN: [Strategy; 3] = [Strategy::Baseline, Strategy::ZpreMinus, Strategy::Zpre];

    /// All strategies, including ablations.
    pub const ALL: [Strategy; 10] = [
        Strategy::Baseline,
        Strategy::ZpreMinus,
        Strategy::Zpre,
        Strategy::ZpreH2,
        Strategy::ZpreH3,
        Strategy::ZpreFixedTrue,
        Strategy::ZpreNoReverseProp,
        Strategy::ZpreDfsCheck,
        Strategy::ZpreNoPrune,
        Strategy::BranchCond,
    ];

    /// Display name (used in tables and CSV output).
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Baseline => "baseline",
            Strategy::ZpreMinus => "zpre-",
            Strategy::Zpre => "zpre",
            Strategy::ZpreH2 => "zpre-h2",
            Strategy::ZpreH3 => "zpre-h3",
            Strategy::ZpreFixedTrue => "zpre-fixed-true",
            Strategy::ZpreNoReverseProp => "zpre-no-revprop",
            Strategy::ZpreDfsCheck => "zpre-dfs-check",
            Strategy::ZpreNoPrune => "zpre-noprune",
            Strategy::BranchCond => "branch-cond",
        }
    }

    /// Whether an interference priority list is installed at all.
    pub fn uses_interference_order(self) -> bool {
        !matches!(self, Strategy::Baseline | Strategy::BranchCond)
    }

    /// Which H2–H4 refinements the strategy applies.
    pub fn refinements(self) -> Refinements {
        match self {
            Strategy::ZpreMinus => Refinements::none(),
            Strategy::ZpreH2 => Refinements {
                rf_before_ws: true,
                external_first: false,
                more_writes_first: false,
            },
            Strategy::ZpreH3 => Refinements {
                rf_before_ws: true,
                external_first: true,
                more_writes_first: false,
            },
            Strategy::Zpre
            | Strategy::ZpreFixedTrue
            | Strategy::ZpreNoReverseProp
            | Strategy::ZpreDfsCheck
            | Strategy::ZpreNoPrune => Refinements::all(),
            Strategy::Baseline | Strategy::BranchCond => Refinements::none(),
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let names: std::collections::BTreeSet<&str> =
            Strategy::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), Strategy::ALL.len());
    }

    #[test]
    fn refinement_mapping() {
        assert_eq!(Strategy::Zpre.refinements(), Refinements::all());
        assert_eq!(Strategy::ZpreMinus.refinements(), Refinements::none());
        assert!(Strategy::ZpreH2.refinements().rf_before_ws);
        assert!(!Strategy::ZpreH2.refinements().external_first);
        assert!(Strategy::ZpreH3.refinements().external_first);
        assert!(!Strategy::ZpreH3.refinements().more_writes_first);
    }

    #[test]
    fn baseline_has_no_interference_order() {
        assert!(!Strategy::Baseline.uses_interference_order());
        assert!(!Strategy::BranchCond.uses_interference_order());
        assert!(Strategy::Zpre.uses_interference_order());
        assert!(Strategy::ZpreMinus.uses_interference_order());
    }
}
