//! # zpre — interference relation-guided SMT solving for multi-threaded
//! program verification
//!
//! A from-scratch Rust reproduction of Fan, Liu & He,
//! *Interference Relation-Guided SMT Solving for Multi-Threaded Program
//! Verification* (PPoPP 2022), together with every substrate the system
//! needs: a CDCL(T) solver core (`zpre-sat`), an event-order theory
//! (`zpre-smt`), a bit-blaster (`zpre-bv`), a concurrent-program BMC
//! front-end (`zpre-prog`), and the partial-order encoder
//! (`zpre-encoder`).
//!
//! This crate is the paper's contribution proper:
//!
//! - [`decision_order`] — the H1–H4 heuristics producing the interference
//!   decision order (`prior_to` of §4.1);
//! - [`strategy`] — baseline / `ZPRE⁻` / `ZPRE` / ablation strategies;
//! - [`verifier`] — the end-to-end pipeline with the enhanced `decide()`
//!   installed into the CDCL(T) loop (Fig. 5), plus deep validation of
//!   extracted counterexample executions.
//!
//! ## Quickstart
//!
//! ```
//! use zpre::prelude::*;
//!
//! // Two threads race on `cnt`; the assertion can fail.
//! let inc = vec![assign("r", v("cnt")), assign("cnt", add(v("r"), c(1)))];
//! let program = ProgramBuilder::new("racy-counter")
//!     .shared("cnt", 0)
//!     .thread("w1", inc.clone())
//!     .thread("w2", inc)
//!     .main(vec![
//!         spawn(1), spawn(2), join(1), join(2),
//!         assert_(eq(v("cnt"), c(2))),
//!     ])
//!     .build();
//!
//! let opts = VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre);
//! let outcome = verify(&program, &opts);
//! assert_eq!(outcome.verdict, Verdict::Unsafe);
//! ```

#![warn(missing_docs)]

pub mod bmc;
pub mod certify;
pub mod decision_order;
pub mod errors;
pub mod faults;
pub mod harness;
pub mod incremental;
pub mod portfolio;
pub mod strategy;
pub mod trace;
pub mod verifier;

pub use bmc::{verify_bmc, BmcOutcome};
pub use certify::Certificate;
pub use decision_order::{decision_order, prior_to, Refinements};
pub use errors::VerifyError;
pub use faults::{BatchFault, Fault};
pub use harness::{
    run_batch, BatchOptions, BatchOutcome, BatchTask, LadderRung, RungRecord, TaskReport,
};
pub use incremental::{
    try_verify_sweep, try_verify_sweep_full, try_verify_sweep_resumed, verify_sweep, FrameOutcome,
    SweepOutcome,
};
pub use portfolio::{
    verify_portfolio, verify_ssa_portfolio, MemberResult, PortfolioMember, PortfolioOptions,
    PortfolioOutcome,
};
pub use strategy::Strategy;
pub use trace::{Trace, TraceStep};
pub use verifier::{
    try_verify, try_verify_ssa, verify, verify_ssa, Verdict, VerifyOptions, VerifyOutcome,
};
pub use zpre_sat::{ExhaustionReason, ShareConfig, ShareSpec};

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use crate::{
        try_verify, verify, verify_portfolio, Certificate, PortfolioOptions, PortfolioOutcome,
        Strategy, Verdict, VerifyError, VerifyOptions, VerifyOutcome,
    };
    pub use zpre_prog::build::*;
    pub use zpre_prog::{MemoryModel, Program, Stmt};
}
