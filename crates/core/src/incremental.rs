//! Incremental bound-sweep verification: one solver across unwind bounds.
//!
//! Where [`crate::verify_bmc`] builds a fresh solver per bound, this driver
//! encodes the program **once** at the sweep horizon `K`
//! (`VerifyOptions::max_bound`) with unwinding markers and derives each
//! bound `k = 1..=K` as an assumption *frame* (see `zpre_encoder::sweep`):
//! frame `k` is solved with `solve_with_assumptions([g_k, ¬g_1, …,
//! ¬g_{k−1}])`, so learnt clauses, saved phases, EVSIDS activity, and the
//! order theory's fixed program-order skeleton and topological levels all
//! carry over from the bounds already refuted.
//!
//! Loop-free programs collapse to a single frame — every bound yields the
//! same instance, the same deduplication [`crate::verify_bmc`] applies.

use crate::decision_order::decision_order;
use crate::errors::VerifyError;
use crate::strategy::Strategy;
use crate::verifier::{validate_model, Verdict, VerifyOptions};
use std::sync::Arc;
use std::time::{Duration, Instant};
use zpre_encoder::{encode_sweep_opts, estimate_cnf, EncodeError};
use zpre_obs::{Phase, VarClass};
use zpre_prog::{to_ssa_traced, unroll_program_sweep, Program};
use zpre_sat::{Budget, ExhaustionReason, PriorityListGuide, SolveResult, Solver, Stats};
use zpre_smt::{ClassCounts, OrderTheory, VarKind};

/// One frame (= one bound) of an incremental sweep.
#[derive(Clone, Debug)]
pub struct FrameOutcome {
    /// The unroll bound this frame restricted the instance to.
    pub bound: u32,
    /// Frame verdict: `Safe` = unsatisfiable at this bound.
    pub verdict: Verdict,
    /// Time spent in this frame's solve call.
    pub solve_time: Duration,
    /// Conflicts spent by this frame alone.
    pub conflicts: u64,
    /// Decisions spent by this frame alone.
    pub decisions: u64,
    /// Propagations spent by this frame alone.
    pub propagations: u64,
    /// Learnt clauses already in the database when this frame's solve
    /// started — the state inherited from earlier frames.
    pub reused_learnts: u64,
    /// Conflicts spent by earlier frames when this frame's solve started.
    pub reused_conflicts: u64,
    /// Which budget ran out when the frame verdict is `Unknown`; `None` on
    /// definitive frames.
    pub exhaustion: Option<ExhaustionReason>,
}

/// Result of an incremental bound sweep.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// Overall verdict: `Unsafe` as soon as some bound is satisfiable,
    /// `Safe` if every bound up to the horizon is unsatisfiable, `Unknown`
    /// if a frame's budget ran out.
    pub verdict: Verdict,
    /// The bound at which the verdict was established (`k*` for `Unsafe`;
    /// the horizon for `Safe` — or 1 for loop-free programs, whose single
    /// frame answers for every bound, matching [`verify_bmc`]'s
    /// deduplicated loop).
    ///
    /// [`verify_bmc`]: crate::bmc::verify_bmc
    pub bound: u32,
    /// Per-frame outcomes, in increasing bound order.
    pub frames: Vec<FrameOutcome>,
    /// Final cumulative solver statistics (all frames).
    pub stats: Stats,
    /// Time spent unrolling + SSA + encoding the horizon instance.
    pub encode_time: Duration,
    /// Total time across all frame solves.
    pub solve_time: Duration,
    /// Number of global events in the horizon instance.
    pub num_events: usize,
    /// Variable counts per class in the horizon instance.
    pub class_counts: ClassCounts,
    /// Total solver variables (including frame activation vars).
    pub num_solver_vars: usize,
    /// `true` when the program is loop-free and one frame covered every
    /// bound of the sweep.
    pub loop_free: bool,
    /// Counterexample trace (on `Unsafe`, when requested).
    pub trace: Option<crate::trace::Trace>,
}

/// Runs an incremental bound sweep over `1..=opts.max_bound`.
///
/// # Panics
///
/// Panics on any [`VerifyError`] — use [`try_verify_sweep`] for a typed
/// result.
pub fn verify_sweep(prog: &Program, opts: &VerifyOptions) -> SweepOutcome {
    match try_verify_sweep(prog, opts) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// Runs an incremental bound sweep over `1..=opts.max_bound`, reporting
/// failures as typed errors.
///
/// Certification is not supported on sweeps (the proof log would span
/// several assumption solves); `opts.certify` is ignored here.
pub fn try_verify_sweep(prog: &Program, opts: &VerifyOptions) -> Result<SweepOutcome, VerifyError> {
    sweep_impl(prog, opts, true, 1, &mut |_| {})
}

/// Like [`try_verify_sweep`], but solves **every** frame `1..=max_bound`
/// instead of stopping at the first violating bound — the paper's
/// evaluation protocol, where each benchmark is solved at every unroll
/// bound. The overall verdict and bound still report the first non-`Safe`
/// frame (a violation stays reachable at every larger bound, so later
/// frames confirm rather than revise it). Frames after a budget-exhausted
/// (`Unknown`) frame are still skipped: their budgets would exhaust the
/// same way.
///
/// A counterexample trace, when requested, is extracted from the *last*
/// solved frame's model, which may witness a deeper unrolling than the
/// reported bound.
pub fn try_verify_sweep_full(
    prog: &Program,
    opts: &VerifyOptions,
) -> Result<SweepOutcome, VerifyError> {
    sweep_impl(prog, opts, false, 1, &mut |_| {})
}

/// Resumable sweep: starts solving at `start_bound` (frames below it are
/// encoded but not solved — the caller already knows their verdicts, e.g.
/// from a checkpoint journal), and reports each solved frame to `on_frame`
/// *before* moving on, so a caller can journal per-frame progress and a
/// later resume can skip exactly the frames that finished.
///
/// Reusing journaled frame verdicts across runs is sound because a frame's
/// verdict depends only on (program, memory model, bound) — not on the
/// strategy, the sweep horizon, or what other frames ran first (the frame
/// equisatisfiability invariant of `zpre_encoder::sweep`, cross-checked by
/// the `sweep_equivalence` integration suite).
///
/// The returned outcome's `frames` contain only the frames this call
/// solved; `verdict`/`bound` summarize those frames alone, with bounds
/// below `start_bound` assumed `Safe` (a sweep only proceeds past a frame
/// it proved safe).
pub fn try_verify_sweep_resumed(
    prog: &Program,
    opts: &VerifyOptions,
    start_bound: u32,
    on_frame: &mut dyn FnMut(&FrameOutcome),
) -> Result<SweepOutcome, VerifyError> {
    sweep_impl(prog, opts, true, start_bound.max(1), on_frame)
}

fn sweep_impl(
    prog: &Program,
    opts: &VerifyOptions,
    stop_early: bool,
    start_bound: u32,
    on_frame: &mut dyn FnMut(&FrameOutcome),
) -> Result<SweepOutcome, VerifyError> {
    let t0 = Instant::now();
    let rec = opts.recorder.as_ref();
    let max_bound = opts.max_bound.max(1);
    let loop_free = !prog.has_loops();

    let sw = {
        let _span = rec.map(|r| r.span_labeled(Phase::Unroll, Some("sweep")));
        unroll_program_sweep(prog, max_bound)
    };
    let ssa = to_ssa_traced(&sw.program, rec);

    let mut theory = OrderTheory::new();
    if opts.strategy == Strategy::ZpreNoReverseProp {
        theory.set_propagate_reverse(false);
    }
    if opts.strategy == Strategy::ZpreDfsCheck {
        theory.set_full_dfs_check(true);
    }
    let guide = PriorityListGuide::new(Vec::new(), opts.seed);
    let mut solver: Solver<OrderTheory, PriorityListGuide> = Solver::with_parts(theory, guide);
    // Pre-blast guard: refuse a horizon encoding whose estimated footprint
    // already exceeds the memory budget, before allocating any of it.
    if let Some(cap) = opts.max_memory {
        let est = estimate_cnf(&ssa, opts.mm).map_err(VerifyError::Encode)?;
        if est.bytes() > cap {
            return Err(VerifyError::Encode(EncodeError::EncodingTooLarge {
                estimated_bytes: est.bytes(),
                cap_bytes: cap,
            }));
        }
    }
    // Static interference pruning on the horizon encoding: the report's
    // justifications rest on fixed program-order edges and guard
    // implications, which frames never weaken, so one analysis at the
    // horizon serves every bound (see `encode_sweep_opts`).
    let prune_on = opts.prune && opts.strategy != Strategy::ZpreNoPrune;
    let report = if prune_on {
        let rep = zpre_analysis::analyze(&ssa, opts.mm);
        if let Some(r) = rec {
            let c = &rep.counters;
            r.record_prune(
                c.rf_pruned,
                c.rf_kept,
                c.ws_pruned,
                c.ws_serialized,
                c.reads_resolved,
                c.local_vars,
            );
        }
        if opts.certify {
            zpre_analysis::check_report(&ssa, &rep).map_err(|reason| {
                VerifyError::Certification {
                    stage: "prune",
                    reason,
                }
            })?;
        }
        Some(rep)
    } else {
        None
    };
    let mut enc = encode_sweep_opts(&ssa, opts.mm, max_bound, &mut solver, rec, report.as_ref())?;

    if let Some(r) = rec {
        let mut classes = vec![VarClass::Other; solver.num_vars()];
        for (v, info) in enc.base.registry.iter() {
            classes[v.index()] = match info.kind {
                VarKind::Rf { external: true, .. } => VarClass::ExternalRf,
                VarKind::Rf {
                    external: false, ..
                } => VarClass::InternalRf,
                VarKind::Ws => VarClass::Ws,
                _ => VarClass::Other,
            };
        }
        r.set_var_classes(classes);
        let sink: Arc<dyn zpre_obs::EventSink> = Arc::new(r.clone());
        solver.set_event_sink(Some(sink.clone()));
        solver.theory.set_event_sink(Some(sink));
    }

    // The H1–H4 interference order is horizon-wide: every frame's
    // interference variables exist after the single base encoding, so the
    // priority list is installed once and serves all bounds.
    let order: Vec<u32> = if opts.strategy.uses_interference_order() {
        decision_order(&enc.base.registry, opts.strategy.refinements())
    } else if opts.strategy == Strategy::BranchCond {
        let mut seen = std::collections::HashSet::new();
        enc.base
            .guard_lits
            .iter()
            .map(|l| l.var().index() as u32)
            .filter(|v| seen.insert(*v))
            .collect()
    } else {
        Vec::new()
    };
    let mut guide = PriorityListGuide::new(order, opts.seed);
    if opts.strategy == Strategy::ZpreFixedTrue {
        guide = guide.with_fixed_polarity(true);
    }
    solver.guide = guide;

    let encode_time = t0.elapsed();
    let num_events = ssa.events.len();
    let class_counts = enc.base.registry.class_counts();

    // Loop-free programs have no markers: frame 1 already is the full
    // instance, and every other bound would re-solve it verbatim.
    let last_bound = if loop_free { 1 } else { max_bound };
    let start = start_bound.min(last_bound);
    let mut frames: Vec<FrameOutcome> = Vec::new();
    let mut verdict = Verdict::Safe;
    let mut decided = last_bound;
    let mut solve_time = Duration::ZERO;

    // Frames must exist in order 1..=K for the assumption prefixes; on a
    // resume, the already-decided bounds are encoded without being solved.
    for k in 1..start {
        enc.encode_frame(k, &mut solver);
    }
    for k in start..=last_bound {
        enc.encode_frame(k, &mut solver);
        // Budgets are per frame: the per-call conflict accounting and the
        // one-shot deadline arming both reset with a fresh Budget.
        let mut budget = Budget::with_limits(opts.max_conflicts, opts.timeout);
        if let Some(token) = &opts.cancel {
            budget = budget.with_cancel(token.clone());
        }
        if let Some(cap) = opts.max_memory {
            budget = budget.with_max_memory(cap);
        }
        solver.set_budget(budget);

        let before = *solver.stats();
        if let Some(r) = rec {
            r.record_frame(before.learnt_clauses, before.conflicts);
        }
        let label = format!("k={k}");
        let span = rec.map(|r| r.span_labeled(Phase::Solve, Some(&label)));
        let t1 = Instant::now();
        let result = solver.solve_with_assumptions(&enc.assumptions(k));
        if let Some(s) = span {
            s.close();
        }
        let frame_time = t1.elapsed();
        solve_time += frame_time;
        if let Some(r) = rec {
            r.record_frame_solved(frame_time.as_micros() as u64);
        }
        let after = *solver.stats();

        let frame_verdict = match result {
            SolveResult::Sat => Verdict::Unsafe,
            SolveResult::Unsat => Verdict::Safe,
            SolveResult::Unknown => Verdict::Unknown,
        };
        if frame_verdict == Verdict::Unsafe && opts.validate_models {
            let _validate_span = rec.map(|r| r.span(Phase::Validate));
            validate_model(&ssa, &enc.base, &solver, opts.mm)
                .map_err(VerifyError::ModelValidation)?;
        }
        frames.push(FrameOutcome {
            bound: k,
            verdict: frame_verdict,
            solve_time: frame_time,
            conflicts: after.conflicts - before.conflicts,
            decisions: after.decisions - before.decisions,
            propagations: after.propagations - before.propagations,
            reused_learnts: before.learnt_clauses,
            reused_conflicts: before.conflicts,
            exhaustion: solver.exhaustion(),
        });
        on_frame(frames.last().expect("frame just pushed"));
        // The overall verdict is the first non-Safe frame's; a full sweep
        // keeps solving later frames without revising it.
        if verdict == Verdict::Safe {
            decided = k;
            verdict = frame_verdict;
        }
        if frame_verdict == Verdict::Unknown || (stop_early && frame_verdict != Verdict::Safe) {
            break;
        }
    }
    // A loop-free sweep's single frame answers for the whole horizon; the
    // reported bound stays 1, matching `verify_bmc`'s deduplicated loop.

    let trace = (verdict == Verdict::Unsafe && opts.want_trace)
        .then(|| crate::trace::extract_trace(&ssa, &enc.base, &solver, opts.mm));

    let mut stats = *solver.stats();
    let cs = solver.theory.cycle_stats();
    stats.eog_checks = cs.checks;
    stats.eog_accepted_o1 = cs.accepted_o1;
    stats.eog_visited = cs.visited;
    stats.eog_promoted = cs.promoted;

    Ok(SweepOutcome {
        verdict,
        bound: decided,
        frames,
        stats,
        encode_time,
        solve_time,
        num_events,
        class_counts,
        num_solver_vars: solver.num_vars(),
        loop_free,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bmc::verify_bmc;
    use zpre_prog::build::*;
    use zpre_prog::MemoryModel;

    /// `k* = 3`: the loop must run three times before the bug is reachable.
    fn kstar3() -> Program {
        ProgramBuilder::new("kstar3")
            .width(8)
            .shared("x", 0)
            .main(vec![
                while_(lt(v("x"), c(3)), vec![assign("x", add(v("x"), c(1)))]),
                assert_(ne(v("x"), c(3))),
            ])
            .build()
    }

    fn racy() -> Program {
        let inc = vec![assign("r", v("cnt")), assign("cnt", add(v("r"), c(1)))];
        ProgramBuilder::new("race")
            .shared("cnt", 0)
            .thread("w1", inc.clone())
            .thread("w2", inc)
            .main(vec![
                spawn(1),
                spawn(2),
                join(1),
                join(2),
                assert_(eq(v("cnt"), c(2))),
            ])
            .build()
    }

    #[test]
    fn sweep_finds_kstar_and_matches_scratch() {
        let mut opts = VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre);
        opts.max_bound = 6;
        let sweep = verify_sweep(&kstar3(), &opts);
        assert_eq!(sweep.verdict, Verdict::Unsafe);
        assert_eq!(sweep.bound, 3, "k* = 3");
        assert_eq!(sweep.frames.len(), 3);

        let scratch = verify_bmc(&kstar3(), 6, &opts);
        assert_eq!(scratch.verdict, Verdict::Unsafe);
        assert_eq!(scratch.bound, sweep.bound);
        for (f, (b, o)) in sweep.frames.iter().zip(&scratch.per_bound) {
            assert_eq!(f.bound, *b);
            assert_eq!(f.verdict, o.verdict, "bound {b}");
        }
    }

    /// The full sweep keeps solving past the violating bound: a bug at
    /// `k* = 3` is confirmed by every deeper frame (violations are
    /// monotone in the bound — a deeper frame only enables more
    /// iterations), while the reported verdict and bound stay `k*`.
    #[test]
    fn full_sweep_solves_every_frame() {
        let mut opts = VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre);
        opts.max_bound = 5;
        let sweep = try_verify_sweep_full(&kstar3(), &opts).unwrap();
        assert_eq!(sweep.verdict, Verdict::Unsafe);
        assert_eq!(sweep.bound, 3, "first violating frame decides");
        assert_eq!(sweep.frames.len(), 5, "full sweep solves every bound");
        for f in &sweep.frames {
            let expect = if f.bound < 3 {
                Verdict::Safe
            } else {
                Verdict::Unsafe
            };
            assert_eq!(f.verdict, expect, "bound {}", f.bound);
        }
    }

    #[test]
    fn later_frames_inherit_solver_state() {
        let mut opts = VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre);
        opts.max_bound = 4;
        let sweep = verify_sweep(&kstar3(), &opts);
        assert!(sweep.frames.len() >= 2);
        assert_eq!(sweep.frames[0].reused_learnts, 0);
        assert_eq!(sweep.frames[0].reused_conflicts, 0);
        // Frame telemetry is cumulative-consistent: what frame k+1 sees at
        // entry is what frames 1..=k spent.
        for w in sweep.frames.windows(2) {
            assert_eq!(
                w[1].reused_conflicts,
                w[0].reused_conflicts + w[0].conflicts
            );
        }
    }

    #[test]
    fn loop_free_sweep_solves_one_frame() {
        let mut opts = VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre);
        opts.max_bound = 6;
        let sweep = verify_sweep(&racy(), &opts);
        assert!(sweep.loop_free);
        assert_eq!(sweep.frames.len(), 1);
        assert_eq!(sweep.verdict, Verdict::Unsafe);
    }

    #[test]
    fn safe_program_is_safe_at_every_bound() {
        let p = ProgramBuilder::new("safe-loop")
            .width(8)
            .shared("x", 0)
            .main(vec![
                while_(lt(v("x"), c(3)), vec![assign("x", add(v("x"), c(1)))]),
                assert_(le(v("x"), c(3))),
            ])
            .build();
        let mut opts = VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre);
        opts.max_bound = 5;
        let sweep = verify_sweep(&p, &opts);
        assert_eq!(sweep.verdict, Verdict::Safe);
        assert_eq!(sweep.bound, 5);
        assert_eq!(sweep.frames.len(), 5);
        assert!(sweep.frames.iter().all(|f| f.verdict == Verdict::Safe));
    }

    #[test]
    fn sweep_trace_extraction_works() {
        let mut opts = VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre);
        opts.max_bound = 4;
        opts.want_trace = true;
        let sweep = verify_sweep(&kstar3(), &opts);
        assert_eq!(sweep.verdict, Verdict::Unsafe);
        let trace = sweep.trace.expect("trace requested");
        assert!(!trace.steps.is_empty());
    }

    #[test]
    fn resumed_sweep_matches_uninterrupted_tail() {
        let mut opts = VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre);
        opts.max_bound = 6;
        let full = verify_sweep(&kstar3(), &opts);
        assert_eq!(full.frames.len(), 3, "k*=3 under stop-early");

        // Resume from bound 3 as if frames 1–2 came from a journal: the
        // solved tail must reproduce the same per-bound verdicts.
        let mut seen: Vec<(u32, Verdict)> = Vec::new();
        let resumed = try_verify_sweep_resumed(&kstar3(), &opts, 3, &mut |f| {
            seen.push((f.bound, f.verdict));
        })
        .unwrap();
        assert_eq!(resumed.verdict, Verdict::Unsafe);
        assert_eq!(resumed.bound, 3);
        assert_eq!(resumed.frames.len(), 1);
        assert_eq!(resumed.frames[0].bound, 3);
        assert_eq!(resumed.frames[0].verdict, Verdict::Unsafe);
        assert_eq!(
            seen,
            vec![(3, Verdict::Unsafe)],
            "callback per solved frame"
        );
    }

    #[test]
    fn frame_exhaustion_is_reported() {
        let mut opts = VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre);
        opts.max_bound = 4;
        opts.max_conflicts = Some(0);
        // The pruned encoding of kstar3 solves within zero conflicts; this
        // test is about exhaustion reporting, so keep the instance hard.
        opts.prune = false;
        let sweep = verify_sweep(&kstar3(), &opts);
        assert_eq!(sweep.verdict, Verdict::Unknown);
        let last = sweep.frames.last().unwrap();
        assert_eq!(last.verdict, Verdict::Unknown);
        assert_eq!(last.exhaustion, Some(ExhaustionReason::Conflicts));
    }

    #[test]
    fn per_frame_budget_is_not_cumulative() {
        // A conflict budget generous enough for any single frame must let
        // the sweep finish even though the *sum* over frames exceeds it.
        let mut opts = VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre);
        opts.max_bound = 6;
        opts.max_conflicts = None;
        let free = verify_sweep(&kstar3(), &opts);
        let worst = free.frames.iter().map(|f| f.conflicts).max().unwrap();
        let total: u64 = free.frames.iter().map(|f| f.conflicts).sum();
        if total > worst {
            opts.max_conflicts = Some(worst + 1);
            let capped = verify_sweep(&kstar3(), &opts);
            assert_eq!(capped.verdict, free.verdict);
            assert_eq!(capped.bound, free.bound);
        }
    }
}
