//! Verdict certification: independent evidence checking for both verdicts.
//!
//! A verifier bug should never silently become a wrong verdict. With
//! [`crate::VerifyOptions::certify`] enabled, each definitive verdict is
//! re-established from first principles by machinery that shares as little
//! code as possible with the solving pipeline:
//!
//! - **Safe** — the solver's DRAT proof is re-checked by forward RUP over
//!   the logged input CNF. Theory lemmas (clauses the order theory asserted
//!   from event-order-graph cycles) are not trusted: each one must carry a
//!   journaled justification — the cycle itself — that the standalone
//!   re-walker in `zpre_smt::certcheck` confirms edge by edge. Once every
//!   lemma is re-justified, `CNF ∧ lemmas ⊢ ⊥` propositionally, which is
//!   exactly unsatisfiability of the verification condition.
//! - **Unsafe** — the extracted witness is replayed through the concrete
//!   buffered-store machine in `zpre_prog::replay`: the model's event order
//!   becomes a schedule, its nondeterministic inputs become concrete
//!   values, and the replay must drive the flat program into an assertion
//!   that concretely fires.
//!
//! Both checks fail closed: any divergence is a typed
//! [`VerifyError::Certification`], and the fault-injection matrix in
//! `tests/` exercises exactly these rejection paths.

use crate::errors::VerifyError;
use crate::faults::{self, Fault};
use crate::trace::Trace;
use std::collections::{HashMap, HashSet};
use zpre_bv::lits_to_u64;
use zpre_encoder::Encoded;
use zpre_obs::{Phase, Recorder};
use zpre_prog::{replay, FlatProgram, MemoryModel, ReplayOp, ScheduleStep, SsaProgram};
use zpre_sat::{Lit, PriorityListGuide, ProofStep, Solver};
use zpre_smt::{check_lemma_against, OrderTheory, TheoryLemma};

/// Independent evidence that a verdict is correct.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Certificate {
    /// The Safe verdict's proof was RUP-checked end to end.
    Safe {
        /// Distinct theory lemmas whose justifying cycles were re-walked.
        lemmas_checked: usize,
        /// Total steps of the checked proof.
        proof_steps: usize,
    },
    /// The Unsafe verdict's witness was replayed concretely.
    Unsafe {
        /// Scheduled global events the replay confirmed.
        replayed_steps: usize,
    },
}

impl Certificate {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        match self {
            Certificate::Safe {
                lemmas_checked,
                proof_steps,
            } => format!(
                "proof RUP-checked ({proof_steps} steps, {lemmas_checked} theory lemmas re-justified)"
            ),
            Certificate::Unsafe { replayed_steps } => {
                format!("witness replayed concretely ({replayed_steps} scheduled events)")
            }
        }
    }
}

fn norm(clause: &[Lit]) -> Vec<Lit> {
    let mut c = clause.to_vec();
    c.sort_unstable();
    c.dedup();
    c
}

/// Certifies a Safe verdict: re-justifies every theory lemma via the
/// standalone cycle checker, then forward-RUP-checks the full proof
/// against the logged CNF with the validated lemmas as axioms.
pub(crate) fn certify_safe(
    solver: &mut Solver<OrderTheory, PriorityListGuide>,
    fault: Option<Fault>,
    rec: Option<&Recorder>,
) -> Result<Certificate, VerifyError> {
    let _certify_span = rec.map(|r| r.span(Phase::Certify));
    let reject = |stage, reason: String| VerifyError::Certification { stage, reason };
    let mut proof = solver
        .take_proof()
        .ok_or_else(|| reject("proof", "proof logging was not enabled".to_string()))?;
    let mut journal = solver.theory.take_lemmas();
    if let Some(f) = fault {
        faults::corrupt_proof(f, &mut proof, &mut journal);
    }

    // Index the journal by normalized clause: certification matches lemma
    // proof steps to justifications by content, so stale journal entries
    // (from branches the solver later backtracked) are harmless extras.
    let mut by_clause: HashMap<Vec<Lit>, Vec<&TheoryLemma>> = HashMap::new();
    for lemma in &journal {
        by_clause
            .entry(norm(&lemma.clause))
            .or_default()
            .push(lemma);
    }

    // Re-justify every lemma step. The theory has backtracked to the root
    // by now, so only atom registrations and fixed program-order edges
    // remain — exactly the ground truth the re-walker needs.
    let mut valid: HashSet<Vec<Lit>> = HashSet::new();
    let mut lemmas_checked = 0usize;
    for step in &proof.steps {
        let ProofStep::Lemma(clause) = step else {
            continue;
        };
        let key = norm(clause);
        if valid.contains(&key) {
            continue;
        }
        let entries = by_clause.get(&key).map(Vec::as_slice).unwrap_or(&[]);
        if entries.is_empty() {
            return Err(reject(
                "lemma",
                format!("theory lemma {clause:?} has no journaled justification"),
            ));
        }
        let mut last_reason = String::new();
        let ok = entries
            .iter()
            .any(|l| match check_lemma_against(&solver.theory, l) {
                Ok(()) => true,
                Err(e) => {
                    last_reason = e;
                    false
                }
            });
        if !ok {
            return Err(reject(
                "lemma",
                format!("theory lemma {clause:?} rejected: {last_reason}"),
            ));
        }
        valid.insert(key);
        lemmas_checked += 1;
    }

    let proof_steps = proof.steps.len();
    zpre_sat::proof::check_with_lemmas(solver.logged_cnf(), &proof, |clause| {
        valid.contains(&norm(clause))
    })
    .map_err(|i| {
        let reason = if i == proof_steps {
            "proof never derives the empty clause".to_string()
        } else {
            format!("RUP check failed at proof step {i} of {proof_steps}")
        };
        reject("proof", reason)
    })?;

    Ok(Certificate::Safe {
        lemmas_checked,
        proof_steps,
    })
}

/// Certifies an Unsafe verdict: turns the extracted trace into a schedule
/// plus concrete nondeterministic inputs and replays it through the
/// buffered-store machine; the replay must end in a fired assertion.
#[allow(clippy::too_many_arguments)]
pub(crate) fn certify_unsafe(
    ssa: &SsaProgram,
    enc: &Encoded,
    solver: &Solver<OrderTheory, PriorityListGuide>,
    mm: MemoryModel,
    flat: &FlatProgram,
    trace: &Trace,
    fault: Option<Fault>,
    rec: Option<&Recorder>,
) -> Result<Certificate, VerifyError> {
    let _certify_span = rec.map(|r| r.span(Phase::Certify));
    let reject = |reason: String| VerifyError::Certification {
        stage: "replay",
        reason,
    };
    if ssa.shared_names != flat.shared_names {
        return Err(reject(
            "flat program and SSA program disagree on shared variables".to_string(),
        ));
    }

    // The schedule: the model's executed events in clock order, minus the
    // initializer writes (the flat program has no initializer instructions;
    // `shared_init` supplies those values, and every scheduled event is
    // ordered after the initializers by construction).
    let num_inits = ssa.shared_names.len();
    let mut schedule: Vec<ScheduleStep> = trace
        .steps
        .iter()
        .filter(|s| s.event >= num_inits)
        .map(|s| ScheduleStep {
            thread: s.thread,
            op: s.op.clone(),
        })
        .collect();

    if fault == Some(Fault::FlipModelBit) {
        let target = schedule.iter_mut().find_map(|s| match &mut s.op {
            ReplayOp::Write { value, .. } | ReplayOp::Read { value, .. } => Some(value),
            _ => None,
        });
        if let Some(value) = target {
            *value ^= 1;
        }
    }

    // Concrete nondeterministic inputs, read off the model. SSA names a
    // nondet `nd!{name}` / `ndb!{name}`; the flat lowering binds the same
    // occurrence to the local `%nd_{name}` / `%nb_{name}`.
    let bv_val = |name: &str| -> u64 {
        enc.blaster
            .bv_inputs
            .get(name)
            .map(|bits| lits_to_u64(bits, |l| solver.model_value(l).is_true()))
            .unwrap_or(0)
    };
    let mut nondet_ints: HashMap<String, u64> = HashMap::new();
    for full in &ssa.nondet_names {
        let name = full.strip_prefix("nd!").unwrap_or(full);
        nondet_ints.insert(format!("%nd_{name}"), bv_val(full));
    }
    let mut nondet_bools: HashMap<String, bool> = HashMap::new();
    for (full, &l) in &enc.blaster.bool_inputs {
        if let Some(name) = full.strip_prefix("ndb!") {
            nondet_bools.insert(format!("%nb_{name}"), solver.model_value(l).is_true());
        }
    }

    let _replay_span = rec.map(|r| r.span(Phase::Replay));
    match replay(flat, mm, &schedule, &nondet_ints, &nondet_bools) {
        Ok(_violation) => Ok(Certificate::Unsafe {
            replayed_steps: schedule.len(),
        }),
        Err(e) => Err(reject(e.to_string())),
    }
}
