//! Typed verification errors: every failure mode of the pipeline that used
//! to be a panic, as a value the caller can match on.
//!
//! The `try_*` entry points of [`crate::verifier`] return these; the
//! panicking wrappers (`verify`, `verify_ssa`) preserve the historical
//! behaviour by unwrapping. The portfolio layer additionally converts a
//! member that panics despite all of this into [`VerifyError::MemberPanic`]
//! via `catch_unwind`, so one bad member degrades the race instead of
//! crashing it.

use std::fmt;
use zpre_encoder::EncodeError;
use zpre_sat::ExhaustionReason;

/// Why a verification run could not produce a trustworthy verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// The input program is malformed (e.g. references an unknown thread).
    InvalidProgram(String),
    /// The encoder rejected the SSA program.
    Encode(EncodeError),
    /// A `Sat` model failed the deep validation pass — the solver, theory,
    /// blaster, and encoder disagree about what the model means.
    ModelValidation(String),
    /// Verdict certification failed: the proof, a theory lemma, or the
    /// witness replay could not be independently confirmed.
    Certification {
        /// Which certification stage rejected the verdict
        /// (`"proof"`, `"lemma"`, or `"replay"`).
        stage: &'static str,
        /// Human-readable rejection reason.
        reason: String,
    },
    /// A portfolio member panicked and was quarantined.
    MemberPanic {
        /// The member's display name.
        member: String,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// Every attempt to decide the task ran out of resources: the batch
    /// harness exhausted its whole degradation ladder and the bottom rung
    /// still returned `Unknown` for this reason.
    Exhausted(ExhaustionReason),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::InvalidProgram(msg) => write!(f, "invalid program: {msg}"),
            VerifyError::Encode(e) => write!(f, "encoding failed: {e}"),
            VerifyError::ModelValidation(msg) => {
                write!(f, "extracted execution failed validation: {msg}")
            }
            VerifyError::Certification { stage, reason } => {
                write!(f, "certification failed at {stage} stage: {reason}")
            }
            VerifyError::MemberPanic { member, message } => {
                write!(f, "portfolio member {member} panicked: {message}")
            }
            VerifyError::Exhausted(reason) => {
                write!(f, "resources exhausted ({reason})")
            }
        }
    }
}

impl std::error::Error for VerifyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VerifyError::Encode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EncodeError> for VerifyError {
    fn from(e: EncodeError) -> VerifyError {
        VerifyError::Encode(e)
    }
}
