//! Resilient batch verification: run a list of (program × memory model ×
//! strategy × bound-sweep) tasks to completion no matter what individual
//! tasks do.
//!
//! Three layers keep a batch alive:
//!
//! 1. **Resource sandboxing** — every task runs under the caller's budgets
//!    ([`BatchOptions::max_conflicts`] / `timeout` / `max_memory`); the
//!    memory cap engages both the pre-blast CNF estimator
//!    ([`zpre_encoder::estimate_cnf`]) and the solver's stride-polled
//!    footprint check, so an oversized task aborts with a structured
//!    reason instead of taking the process down.
//! 2. **Retry/degradation ladder** — a task whose rung exhausts or panics
//!    is retried with exponential backoff (transient reasons only), then
//!    degraded down a fixed ladder: primary strategy → `ZPRE⁻` → plain
//!    VSIDS baseline → a halved sweep horizon → `Unknown(reason)`. Every
//!    rung attempt is recorded in the task's [`RungRecord`] trail.
//! 3. **Checkpoint/resume** — with a journal configured, every solved
//!    frame and finished task is appended as one fsync'd NDJSON line.
//!    [`BatchOptions::resume`] replays the journal, skips finished tasks,
//!    and restarts a half-finished sweep at its first unsolved frame. A
//!    torn final line (crash mid-append) is dropped, not fatal.
//!
//! Ladder soundness: every rung solves the *same* instance family — a
//! frame's verdict depends only on (program, memory model, bound), never
//! on the strategy or the horizon (the frame-equisatisfiability invariant
//! of `zpre_encoder::sweep`, cross-checked by the `sweep_equivalence` and
//! `strategy_agreement` suites). Degrading the strategy or halving the
//! horizon can therefore change *whether* an answer is reached, never
//! *which* answer; the reduced-bound rung additionally narrows the claim
//! (its `Safe` covers a shorter sweep, which the harness reports via the
//! rung trail). Journaled frame verdicts are reusable across runs and
//! rungs for the same reason.
//!
//! Fault injection ([`BatchFault`]) extends the certification-layer
//! [`crate::faults::Fault`] machinery to this layer: member OOM, deadline
//! skew, a deterministic mid-batch kill, and journal corruption. The chaos
//! matrix in `tests/` asserts each one degrades fail-closed.

use crate::errors::VerifyError;
use crate::faults::BatchFault;
use crate::incremental::try_verify_sweep_resumed;
use crate::strategy::Strategy;
use crate::verifier::{Verdict, VerifyOptions};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use zpre_obs::metrics::{rss_bytes, MetricsRegistry};
use zpre_obs::ndjson::{parse_line, JsonVal};
use zpre_obs::{Phase, Recorder};
use zpre_prog::{MemoryModel, Program};
use zpre_sat::{CancelToken, ExhaustionReason};

/// One unit of batch work: sweep `program` under `mm` with `strategy` over
/// bounds `1..=max_bound`.
#[derive(Clone, Debug)]
pub struct BatchTask {
    /// Stable identity of the task — the journal key. Two runs that should
    /// share checkpoints must use the same key.
    pub key: String,
    /// The program to verify.
    pub program: Program,
    /// Memory model of the sweep.
    pub mm: MemoryModel,
    /// Primary strategy (the ladder's top rung).
    pub strategy: Strategy,
    /// Sweep horizon: bounds `1..=max_bound` are checked.
    pub max_bound: u32,
}

impl BatchTask {
    /// Builds a task keyed `"<program>@<mm>@<strategy>"` — stable across
    /// runs as long as the program keeps its name.
    pub fn new(program: Program, mm: MemoryModel, strategy: Strategy, max_bound: u32) -> BatchTask {
        let key = format!("{}@{}@{}", program.name, mm.name(), strategy.name());
        BatchTask {
            key,
            program,
            mm,
            strategy,
            max_bound,
        }
    }
}

/// Batch-wide options.
#[derive(Clone, Debug)]
pub struct BatchOptions {
    /// Per-frame conflict budget for every rung (`None` = unlimited).
    pub max_conflicts: Option<u64>,
    /// Per-frame wall-clock budget for every rung.
    pub timeout: Option<Duration>,
    /// Byte-accounted memory cap for every rung (estimator + solver poll).
    pub max_memory: Option<u64>,
    /// Decision-polarity seed passed to every rung.
    pub seed: u64,
    /// Extra attempts per rung for *transient* exhaustion (time, panic)
    /// before degrading. Deterministic exhaustion (conflicts, memory)
    /// degrades immediately — re-running the same deterministic solve
    /// cannot end differently.
    pub max_retries: u32,
    /// Base of the exponential backoff slept before every attempt after a
    /// failure (`backoff * 2^failures`, capped at 30 s). `ZERO` disables
    /// sleeping (tests).
    pub backoff: Duration,
    /// Checkpoint journal path. `None` disables checkpointing.
    pub journal: Option<PathBuf>,
    /// Replay the journal before running: skip finished tasks, restart
    /// half-finished sweeps at their first unsolved frame.
    pub resume: bool,
    /// Injected batch fault, for the chaos harness. `None` in production.
    pub fault: Option<BatchFault>,
    /// Trace recorder: batch task/retry/degradation/checkpoint counters
    /// and one `batch` phase span per task flow into it.
    pub recorder: Option<Recorder>,
    /// Emit a one-line progress heartbeat (and, with
    /// [`BatchOptions::metrics_out`], one NDJSON metrics snapshot) at this
    /// interval while the batch runs. `None` disables the heartbeat thread
    /// entirely.
    pub heartbeat: Option<Duration>,
    /// NDJSON metrics stream written by the heartbeat: one
    /// `{"t":"metrics",…}` line per tick, flushed per line so a killed
    /// batch leaves an inspectable trail. Appended to (with continuing
    /// sequence numbers) when [`BatchOptions::resume`] is set.
    pub metrics_out: Option<PathBuf>,
    /// Run the static interference-pruning pass before encoding on every
    /// rung (default). `false` reproduces the historic unpruned encoding.
    pub prune: bool,
}

impl Default for BatchOptions {
    fn default() -> BatchOptions {
        BatchOptions {
            max_conflicts: None,
            timeout: None,
            max_memory: None,
            seed: 0xC0FFEE,
            max_retries: 1,
            backoff: Duration::from_millis(50),
            journal: None,
            resume: false,
            fault: None,
            recorder: None,
            heartbeat: None,
            metrics_out: None,
            prune: true,
        }
    }
}

/// One rung of the degradation ladder.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LadderRung {
    /// The task's own strategy at the full horizon.
    Primary,
    /// `ZPRE⁻` (H1 only) at the full horizon.
    ZpreMinus,
    /// Plain VSIDS baseline at the full horizon.
    Baseline,
    /// Baseline at half the horizon — trades claim strength for headroom.
    ReducedBound,
}

impl LadderRung {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            LadderRung::Primary => "primary",
            LadderRung::ZpreMinus => "zpre-",
            LadderRung::Baseline => "baseline",
            LadderRung::ReducedBound => "reduced-bound",
        }
    }
}

/// One recorded rung attempt of a task's ladder descent.
#[derive(Clone, Debug)]
pub struct RungRecord {
    /// Which rung ran.
    pub rung: LadderRung,
    /// The strategy the rung actually used.
    pub strategy: Strategy,
    /// The sweep horizon the rung ran with.
    pub bound: u32,
    /// Attempt number within the rung (0 = first).
    pub attempt: u32,
    /// The rung's verdict, when it produced one.
    pub verdict: Option<Verdict>,
    /// Why the rung gave up, when it did.
    pub exhaustion: Option<ExhaustionReason>,
    /// Error text for non-exhaustion failures (encoding refusal, panic
    /// payload, validation failure).
    pub error: Option<String>,
}

/// Final report for one batch task.
#[derive(Clone, Debug)]
pub struct TaskReport {
    /// The task's journal key.
    pub key: String,
    /// Final verdict. `Unknown` means the whole ladder was exhausted —
    /// [`TaskReport::as_error`] carries the structured reason.
    pub verdict: Verdict,
    /// Bound at which the verdict was established.
    pub bound: u32,
    /// Exhaustion reason when `verdict` is `Unknown`.
    pub exhaustion: Option<ExhaustionReason>,
    /// The recorded ladder descent (empty for journal-loaded reports).
    pub ladder: Vec<RungRecord>,
    /// `true` when the verdict was loaded from the journal without solving.
    pub from_journal: bool,
    /// First bound actually solved this run, when a journal prefix was
    /// skipped.
    pub resumed_at: Option<u32>,
}

impl TaskReport {
    /// The structured error equivalent of an `Unknown` verdict:
    /// [`VerifyError::Exhausted`] with the recorded reason.
    pub fn as_error(&self) -> Option<VerifyError> {
        match (self.verdict, self.exhaustion) {
            (Verdict::Unknown, Some(reason)) => Some(VerifyError::Exhausted(reason)),
            _ => None,
        }
    }
}

/// Result of a whole batch run.
#[derive(Clone, Debug, Default)]
pub struct BatchOutcome {
    /// Per-task reports, in task order. On an interrupted run, only the
    /// tasks reached before the kill appear.
    pub reports: Vec<TaskReport>,
    /// `true` when an injected mid-batch kill stopped the run early.
    pub interrupted: bool,
    /// Tasks actually solved this run.
    pub tasks_run: usize,
    /// Tasks answered from the journal without solving.
    pub tasks_skipped: usize,
    /// Same-rung retry attempts across the batch.
    pub retries: u64,
    /// Ladder degradations across the batch.
    pub degradations: u64,
    /// First journal I/O failure, if any. Journaling is best-effort: on an
    /// I/O error the batch keeps verifying without checkpoints and reports
    /// the failure here.
    pub journal_error: Option<String>,
}

impl BatchOutcome {
    /// Convenience: `(key, verdict, bound)` triples for verdict diffing.
    pub fn verdicts(&self) -> Vec<(String, Verdict, u32)> {
        self.reports
            .iter()
            .map(|r| (r.key.clone(), r.verdict, r.bound))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn verdict_name(v: Verdict) -> &'static str {
    match v {
        Verdict::Safe => "safe",
        Verdict::Unsafe => "unsafe",
        Verdict::Unknown => "unknown",
    }
}

fn verdict_from_name(s: &str) -> Option<Verdict> {
    match s {
        "safe" => Some(Verdict::Safe),
        "unsafe" => Some(Verdict::Unsafe),
        "unknown" => Some(Verdict::Unknown),
        _ => None,
    }
}

fn frame_line(key: &str, bound: u32, verdict: Verdict) -> String {
    format!(
        "{{\"t\":\"frame\",\"task\":\"{}\",\"bound\":{},\"verdict\":\"{}\"}}",
        esc(key),
        bound,
        verdict_name(verdict)
    )
}

fn task_line(key: &str, verdict: Verdict, bound: u32, exh: Option<ExhaustionReason>) -> String {
    let reason = exh
        .map(|r| format!(",\"exhaustion\":\"{}\"", r.name()))
        .unwrap_or_default();
    format!(
        "{{\"t\":\"task\",\"task\":\"{}\",\"verdict\":\"{}\",\"bound\":{}{}}}",
        esc(key),
        verdict_name(verdict),
        bound,
        reason
    )
}

/// Append-only fsync'd NDJSON checkpoint writer with the deterministic
/// kill knob: with `kill_after = Some(n)`, the `n+1`-th append is refused
/// and every later one too — the in-process equivalent of `kill -9` at a
/// chosen write boundary.
struct Journal {
    file: Option<File>,
    writes: u64,
    kill_after: Option<u64>,
    killed: bool,
    error: Option<String>,
    recorder: Option<Recorder>,
}

impl Journal {
    fn disabled() -> Journal {
        Journal {
            file: None,
            writes: 0,
            kill_after: None,
            killed: false,
            error: None,
            recorder: None,
        }
    }

    fn open(path: &Path, kill_after: Option<u64>, recorder: Option<Recorder>) -> Journal {
        let mut error = None;
        let file = match OpenOptions::new().create(true).append(true).open(path) {
            Ok(f) => Some(f),
            Err(e) => {
                error = Some(format!("cannot open journal {}: {e}", path.display()));
                None
            }
        };
        Journal {
            file,
            writes: 0,
            kill_after,
            killed: false,
            error,
            recorder,
        }
    }

    /// Appends one line (with durability barrier). Returns `false` when the
    /// injected kill fired — the caller must stop the batch.
    fn append(&mut self, line: &str) -> bool {
        if self.killed {
            return false;
        }
        if matches!(self.kill_after, Some(n) if self.writes >= n) {
            self.killed = true;
            return false;
        }
        if let Some(f) = &mut self.file {
            let res = f
                .write_all(line.as_bytes())
                .and_then(|()| f.write_all(b"\n"))
                .and_then(|()| f.sync_data());
            match res {
                Ok(()) => {
                    self.writes += 1;
                    if let Some(r) = &self.recorder {
                        r.record_batch_checkpoint();
                    }
                }
                Err(e) => {
                    // Best-effort: keep verifying without checkpoints.
                    if self.error.is_none() {
                        self.error = Some(format!("journal write failed: {e}"));
                    }
                    self.file = None;
                }
            }
        } else if self.kill_after.is_some() {
            // The kill knob counts write *boundaries* even without a file,
            // so chaos tests can kill journal-less batches too.
            self.writes += 1;
        }
        true
    }
}

/// What a journal scan recovered.
#[derive(Debug, Default)]
struct JournalState {
    /// Finished tasks: key → (verdict, bound, exhaustion).
    done: HashMap<String, (Verdict, u32, Option<ExhaustionReason>)>,
    /// Per-task solved frames: key → bound → verdict.
    frames: HashMap<String, BTreeMap<u32, Verdict>>,
}

/// Parses journal text. Tolerant by construction: the scan stops at the
/// first unparsable line (a torn final append after a crash loses exactly
/// that line; anything after a mid-file corruption is re-derived by
/// solving, which is always sound — a checkpoint only ever saves work).
fn scan_journal(text: &str) -> JournalState {
    let mut state = JournalState::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(map) = parse_line(line) else { break };
        let tag = map.get("t").and_then(JsonVal::as_str);
        let task = map.get("task").and_then(JsonVal::as_str);
        let bound = map.get("bound").and_then(JsonVal::as_u64);
        let verdict = map
            .get("verdict")
            .and_then(JsonVal::as_str)
            .and_then(verdict_from_name);
        match (tag, task, bound, verdict) {
            (Some("frame"), Some(task), Some(bound), Some(verdict)) => {
                state
                    .frames
                    .entry(task.to_owned())
                    .or_default()
                    .insert(bound as u32, verdict);
            }
            (Some("task"), Some(task), Some(bound), Some(verdict)) => {
                let exh = map
                    .get("exhaustion")
                    .and_then(JsonVal::as_str)
                    .and_then(ExhaustionReason::from_name);
                state
                    .done
                    .insert(task.to_owned(), (verdict, bound as u32, exh));
            }
            _ => break,
        }
    }
    state
}

/// Tears the journal's final line in half in place (the
/// [`BatchFault::CorruptJournal`] injection).
fn corrupt_journal_file(path: &Path) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    let trimmed = text.trim_end_matches('\n');
    let last_start = trimmed.rfind('\n').map(|i| i + 1).unwrap_or(0);
    let last = &trimmed[last_start..];
    if last.is_empty() {
        return;
    }
    let mut keep = last_start + last.len() / 2;
    while keep > 0 && !trimmed.is_char_boundary(keep) {
        keep -= 1;
    }
    let _ = std::fs::write(path, &trimmed[..keep]);
}

// ---------------------------------------------------------------------------
// Ladder
// ---------------------------------------------------------------------------

fn build_ladder(primary: Strategy, max_bound: u32) -> Vec<(LadderRung, Strategy, u32)> {
    let mut rungs = vec![(LadderRung::Primary, primary, max_bound)];
    if primary != Strategy::ZpreMinus && primary != Strategy::Baseline {
        rungs.push((LadderRung::ZpreMinus, Strategy::ZpreMinus, max_bound));
    }
    if primary != Strategy::Baseline {
        rungs.push((LadderRung::Baseline, Strategy::Baseline, max_bound));
    }
    let reduced = (max_bound / 2).max(1);
    if reduced < max_bound {
        rungs.push((LadderRung::ReducedBound, Strategy::Baseline, reduced));
    }
    rungs
}

fn retryable(reason: ExhaustionReason) -> bool {
    matches!(
        reason,
        ExhaustionReason::Time | ExhaustionReason::Quarantined
    )
}

enum RungOutcome {
    /// Definitive verdict at this bound.
    Done(Verdict, u32),
    /// Budget ran out.
    Exhausted(ExhaustionReason),
    /// The rung failed for a structural reason (encoding refusal maps to
    /// `Memory`, carried separately so the record keeps the message).
    Failed(Option<ExhaustionReason>, String),
    /// The injected kill fired mid-rung.
    Killed,
}

// ---------------------------------------------------------------------------
// Heartbeat
// ---------------------------------------------------------------------------

/// Live batch progress shared with the heartbeat thread. Counters are
/// relaxed atomics — the heartbeat is an observer, not a synchronizer.
#[derive(Debug)]
struct BatchProgress {
    tasks_total: u64,
    tasks_done: AtomicU64,
    retries: AtomicU64,
    degraded: AtomicU64,
    /// `"<task key> [<rung>]"` of whatever is running right now.
    current: Mutex<String>,
}

impl BatchProgress {
    fn new(tasks_total: usize) -> BatchProgress {
        BatchProgress {
            tasks_total: tasks_total as u64,
            tasks_done: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            current: Mutex::new(String::from("-")),
        }
    }

    fn set_current(&self, key: &str, rung: &str) {
        *self.current.lock().unwrap() = format!("{key} [{rung}]");
    }

    /// Snapshot the counters into a fresh registry for one metrics line.
    fn registry(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.add("tasks_total", self.tasks_total);
        reg.add("tasks_done", self.tasks_done.load(Ordering::Relaxed));
        reg.add("batch_retries", self.retries.load(Ordering::Relaxed));
        reg.add("batch_degraded", self.degraded.load(Ordering::Relaxed));
        reg.set_gauge("rss_bytes", rss_bytes());
        reg
    }
}

/// The heartbeat thread: every interval (and once at start and stop, so
/// even a batch shorter than one interval leaves a trail) it appends one
/// metrics line to `metrics_out` and prints a one-line progress summary to
/// stderr. Line-buffered appends, no fsync: losing the very last tick to a
/// kill is acceptable for an observability stream, torn lines are not —
/// and `writeln!` emits each line in one call.
struct Heartbeat {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    fn spawn(
        interval: Duration,
        metrics_out: Option<PathBuf>,
        resume: bool,
        progress: Arc<BatchProgress>,
    ) -> Heartbeat {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let epoch = Instant::now();
            // A fresh run truncates the stream; a resume continues it with
            // monotone sequence numbers.
            let mut seq = 0u64;
            let mut file = metrics_out.and_then(|path| {
                if resume {
                    if let Ok(existing) = std::fs::read_to_string(&path) {
                        seq = existing.lines().filter(|l| !l.trim().is_empty()).count() as u64;
                    }
                    OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(&path)
                        .ok()
                } else {
                    File::create(&path).ok()
                }
            });
            loop {
                let reg = progress.registry();
                let elapsed_ms = epoch.elapsed().as_millis() as u64;
                if let Some(f) = &mut file {
                    if writeln!(f, "{}", reg.snapshot_line(seq, elapsed_ms)).is_err() {
                        file = None;
                    }
                }
                let current = progress.current.lock().unwrap().clone();
                eprintln!(
                    "[heartbeat {:>6.1}s] {}/{} done, {} retried, {} degraded, rss {} MiB, running {}",
                    elapsed_ms as f64 / 1000.0,
                    reg.counter("tasks_done"),
                    reg.counter("tasks_total"),
                    reg.counter("batch_retries"),
                    reg.counter("batch_degraded"),
                    reg.gauge("rss_bytes").unwrap_or(0) >> 20,
                    current
                );
                seq += 1;
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                // Sleep in short slices so the final tick lands promptly
                // after the batch finishes instead of one interval late.
                let deadline = Instant::now() + interval;
                while Instant::now() < deadline {
                    if stop_flag.load(Ordering::Relaxed) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(25).min(interval));
                }
            }
        });
        Heartbeat {
            stop,
            handle: Some(handle),
        }
    }

    /// Signal the thread to emit its final tick and wait for it.
    fn finish(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Runs `tasks` to completion under `opts`. Individual task failures —
/// exhaustion, panics, refused encodings — degrade that task, never the
/// batch; the only early exit is the injected mid-batch kill.
pub fn run_batch(tasks: &[BatchTask], opts: &BatchOptions) -> BatchOutcome {
    let kill_after = match opts.fault {
        Some(BatchFault::MidBatchKill(n)) => Some(n),
        _ => None,
    };
    let mut state = JournalState::default();
    if let Some(path) = &opts.journal {
        if opts.resume && path.exists() {
            if opts.fault == Some(BatchFault::CorruptJournal) {
                corrupt_journal_file(path);
            }
            if let Ok(text) = std::fs::read_to_string(path) {
                state = scan_journal(&text);
            }
        } else if !opts.resume {
            // A fresh (non-resume) run starts a fresh journal.
            let _ = std::fs::remove_file(path);
        }
    }
    let journal = RefCell::new(match &opts.journal {
        Some(path) => Journal::open(path, kill_after, opts.recorder.clone()),
        None => Journal {
            kill_after,
            ..Journal::disabled()
        },
    });

    let progress = Arc::new(BatchProgress::new(tasks.len()));
    let heartbeat = opts.heartbeat.map(|interval| {
        Heartbeat::spawn(
            interval,
            opts.metrics_out.clone(),
            opts.resume,
            Arc::clone(&progress),
        )
    });

    let mut out = BatchOutcome::default();
    for task in tasks {
        let _span = opts
            .recorder
            .as_ref()
            .map(|r| r.span_labeled(Phase::Batch, Some(&task.key)));

        // Layer 3: finished tasks are answered straight from the journal.
        if let Some((verdict, bound, exh)) = state.done.get(&task.key) {
            out.tasks_skipped += 1;
            progress.tasks_done.fetch_add(1, Ordering::Relaxed);
            out.reports.push(TaskReport {
                key: task.key.clone(),
                verdict: *verdict,
                bound: *bound,
                exhaustion: *exh,
                ladder: Vec::new(),
                from_journal: true,
                resumed_at: None,
            });
            continue;
        }
        // A journaled frame prefix completes or restarts the sweep.
        let frames = state.frames.get(&task.key);
        let mut safe_prefix = 0u32;
        while frames
            .and_then(|f| f.get(&(safe_prefix + 1)))
            .is_some_and(|v| *v == Verdict::Safe)
        {
            safe_prefix += 1;
        }
        if safe_prefix >= task.max_bound {
            // Every frame of the horizon is journaled safe; only the task
            // line was lost. Reconstitute it without solving.
            let report = TaskReport {
                key: task.key.clone(),
                verdict: Verdict::Safe,
                bound: task.max_bound,
                exhaustion: None,
                ladder: Vec::new(),
                from_journal: true,
                resumed_at: None,
            };
            out.tasks_skipped += 1;
            progress.tasks_done.fetch_add(1, Ordering::Relaxed);
            let alive = journal.borrow_mut().append(&task_line(
                &task.key,
                report.verdict,
                report.bound,
                None,
            ));
            out.reports.push(report);
            if !alive {
                out.interrupted = true;
                break;
            }
            continue;
        }
        if let Some(v) = frames.and_then(|f| f.get(&(safe_prefix + 1))) {
            if *v == Verdict::Unsafe {
                // The violating frame itself is journaled; the verdict is
                // complete even though the task line was lost.
                let report = TaskReport {
                    key: task.key.clone(),
                    verdict: Verdict::Unsafe,
                    bound: safe_prefix + 1,
                    exhaustion: None,
                    ladder: Vec::new(),
                    from_journal: true,
                    resumed_at: None,
                };
                out.tasks_skipped += 1;
                progress.tasks_done.fetch_add(1, Ordering::Relaxed);
                let alive = journal.borrow_mut().append(&task_line(
                    &task.key,
                    report.verdict,
                    report.bound,
                    None,
                ));
                out.reports.push(report);
                if !alive {
                    out.interrupted = true;
                    break;
                }
                continue;
            }
        }

        if let Some(r) = &opts.recorder {
            r.record_batch_task();
        }
        out.tasks_run += 1;
        progress.set_current(&task.key, "primary");
        let (report, killed) = run_task(task, opts, safe_prefix, &journal, &mut out, &progress);
        progress.tasks_done.fetch_add(1, Ordering::Relaxed);
        let mut alive = !killed;
        if alive {
            alive = journal.borrow_mut().append(&task_line(
                &report.key,
                report.verdict,
                report.bound,
                report.exhaustion,
            ));
            out.reports.push(report);
        }
        if !alive {
            out.interrupted = true;
            break;
        }
    }
    if let Some(hb) = heartbeat {
        *progress.current.lock().unwrap() = String::from("-");
        hb.finish();
    }
    out.journal_error = journal.borrow_mut().error.take();
    out
}

/// Runs one task down its ladder. Returns the report and whether the
/// injected kill fired mid-task.
fn run_task(
    task: &BatchTask,
    opts: &BatchOptions,
    safe_prefix: u32,
    journal: &RefCell<Journal>,
    out: &mut BatchOutcome,
    hb: &BatchProgress,
) -> (TaskReport, bool) {
    let rungs = build_ladder(task.strategy, task.max_bound);
    let mut ladder: Vec<RungRecord> = Vec::new();
    let mut last_exhaustion: Option<ExhaustionReason> = None;
    // Contiguous safe frames known so far (journal prefix + frames solved
    // by earlier attempts of this very task): later rungs resume past them.
    let progress = Cell::new(safe_prefix);
    let resumed_at = (safe_prefix > 0).then_some(safe_prefix + 1);
    let mut failures = 0u32;

    for (idx, (rung, strategy, bound)) in rungs.iter().enumerate() {
        let mut attempt = 0u32;
        hb.set_current(&task.key, rung.name());
        loop {
            if failures > 0 && !opts.backoff.is_zero() {
                let exp = failures.min(16) - 1;
                let sleep = opts
                    .backoff
                    .saturating_mul(1u32 << exp.min(10))
                    .min(Duration::from_secs(30));
                std::thread::sleep(sleep);
            }
            let start = progress.get() + 1;
            let killed = Cell::new(false);
            let outcome = run_rung(
                task, opts, *strategy, *bound, start, journal, &progress, &killed,
            );
            if killed.get() || matches!(outcome, RungOutcome::Killed) {
                return (
                    TaskReport {
                        key: task.key.clone(),
                        verdict: Verdict::Unknown,
                        bound: progress.get(),
                        exhaustion: Some(ExhaustionReason::Cancelled),
                        ladder,
                        from_journal: false,
                        resumed_at,
                    },
                    true,
                );
            }
            let mut record = RungRecord {
                rung: *rung,
                strategy: *strategy,
                bound: *bound,
                attempt,
                verdict: None,
                exhaustion: None,
                error: None,
            };
            match outcome {
                RungOutcome::Done(verdict, decided) => {
                    record.verdict = Some(verdict);
                    ladder.push(record);
                    return (
                        TaskReport {
                            key: task.key.clone(),
                            verdict,
                            bound: decided,
                            exhaustion: None,
                            ladder,
                            from_journal: false,
                            resumed_at,
                        },
                        false,
                    );
                }
                RungOutcome::Exhausted(reason) => {
                    record.verdict = Some(Verdict::Unknown);
                    record.exhaustion = Some(reason);
                    ladder.push(record);
                    last_exhaustion = Some(reason);
                    failures += 1;
                    if retryable(reason) && attempt < opts.max_retries {
                        attempt += 1;
                        out.retries += 1;
                        hb.retries.fetch_add(1, Ordering::Relaxed);
                        if let Some(r) = &opts.recorder {
                            r.record_batch_retry();
                        }
                        continue;
                    }
                }
                RungOutcome::Failed(reason, message) => {
                    record.exhaustion = reason;
                    record.error = Some(message);
                    ladder.push(record);
                    if let Some(r) = reason {
                        last_exhaustion = Some(r);
                    }
                    failures += 1;
                    if reason.is_some_and(retryable) && attempt < opts.max_retries {
                        attempt += 1;
                        out.retries += 1;
                        hb.retries.fetch_add(1, Ordering::Relaxed);
                        if let Some(r) = &opts.recorder {
                            r.record_batch_retry();
                        }
                        continue;
                    }
                }
                RungOutcome::Killed => unreachable!("handled above"),
            }
            // Degrade to the next rung (if any).
            if idx + 1 < rungs.len() {
                out.degradations += 1;
                hb.degraded.fetch_add(1, Ordering::Relaxed);
                if let Some(r) = &opts.recorder {
                    r.record_batch_degraded();
                }
            }
            break;
        }
    }
    (
        TaskReport {
            key: task.key.clone(),
            verdict: Verdict::Unknown,
            bound: progress.get(),
            exhaustion: last_exhaustion.or(Some(ExhaustionReason::Time)),
            ladder,
            from_journal: false,
            resumed_at,
        },
        false,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_rung(
    task: &BatchTask,
    opts: &BatchOptions,
    strategy: Strategy,
    bound: u32,
    start: u32,
    journal: &RefCell<Journal>,
    progress: &Cell<u32>,
    killed: &Cell<bool>,
) -> RungOutcome {
    let cancel = CancelToken::new();
    let mut vo = VerifyOptions::new(task.mm, strategy);
    vo.unroll_bound = bound;
    vo.max_bound = bound;
    vo.max_conflicts = opts.max_conflicts;
    vo.timeout = opts.timeout;
    vo.max_memory = opts.max_memory;
    vo.seed = opts.seed;
    vo.cancel = Some(cancel.clone());
    vo.recorder = opts.recorder.clone();
    vo.prune = opts.prune;
    // Layer 1 fault injections: squeeze or skew every rung uniformly, so
    // the ladder cannot quietly rescue the fault out of observation.
    match opts.fault {
        Some(BatchFault::MemberOom) => vo.max_memory = Some(1024),
        Some(BatchFault::DeadlineSkew) => vo.timeout = Some(Duration::ZERO),
        _ => {}
    }

    let key = task.key.clone();
    let result = catch_unwind(AssertUnwindSafe(|| {
        try_verify_sweep_resumed(&task.program, &vo, start, &mut |f| {
            if f.verdict == Verdict::Unknown {
                return;
            }
            if !journal
                .borrow_mut()
                .append(&frame_line(&key, f.bound, f.verdict))
            {
                killed.set(true);
                cancel.cancel();
                return;
            }
            if f.verdict == Verdict::Safe && f.bound == progress.get() + 1 {
                progress.set(f.bound);
            }
        })
    }));
    if killed.get() {
        return RungOutcome::Killed;
    }
    match result {
        Ok(Ok(sweep)) => match sweep.verdict {
            Verdict::Unknown => {
                let reason = sweep
                    .frames
                    .last()
                    .and_then(|f| f.exhaustion)
                    .unwrap_or(ExhaustionReason::Time);
                RungOutcome::Exhausted(reason)
            }
            verdict => RungOutcome::Done(verdict, sweep.bound),
        },
        Ok(Err(VerifyError::Encode(e @ zpre_encoder::EncodeError::EncodingTooLarge { .. }))) => {
            RungOutcome::Failed(Some(ExhaustionReason::Memory), e.to_string())
        }
        Ok(Err(e)) => RungOutcome::Failed(None, e.to_string()),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            RungOutcome::Failed(Some(ExhaustionReason::Quarantined), msg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use zpre_prog::build::*;

    fn tmp_journal(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "zpre-batch-{tag}-{}-{n}.ndjson",
            std::process::id()
        ))
    }

    fn kstar3() -> Program {
        ProgramBuilder::new("kstar3")
            .width(8)
            .shared("x", 0)
            .main(vec![
                while_(lt(v("x"), c(3)), vec![assign("x", add(v("x"), c(1)))]),
                assert_(ne(v("x"), c(3))),
            ])
            .build()
    }

    fn safe_loop() -> Program {
        ProgramBuilder::new("safe-loop")
            .width(8)
            .shared("x", 0)
            .main(vec![
                while_(lt(v("x"), c(3)), vec![assign("x", add(v("x"), c(1)))]),
                assert_(le(v("x"), c(3))),
            ])
            .build()
    }

    fn racy() -> Program {
        let inc = vec![assign("r", v("cnt")), assign("cnt", add(v("r"), c(1)))];
        ProgramBuilder::new("race")
            .shared("cnt", 0)
            .thread("w1", inc.clone())
            .thread("w2", inc)
            .main(vec![
                spawn(1),
                spawn(2),
                join(1),
                join(2),
                assert_(eq(v("cnt"), c(2))),
            ])
            .build()
    }

    fn tasks() -> Vec<BatchTask> {
        vec![
            BatchTask::new(kstar3(), MemoryModel::Sc, Strategy::Zpre, 6),
            BatchTask::new(safe_loop(), MemoryModel::Sc, Strategy::Zpre, 5),
            BatchTask::new(racy(), MemoryModel::Sc, Strategy::Zpre, 4),
            BatchTask::new(racy(), MemoryModel::Tso, Strategy::Zpre, 4),
        ]
    }

    fn fast_opts() -> BatchOptions {
        BatchOptions {
            backoff: Duration::ZERO,
            ..BatchOptions::default()
        }
    }

    #[test]
    fn batch_solves_every_task() {
        let out = run_batch(&tasks(), &fast_opts());
        assert!(!out.interrupted);
        assert_eq!(out.reports.len(), 4);
        assert_eq!(out.tasks_run, 4);
        let verdicts: Vec<Verdict> = out.reports.iter().map(|r| r.verdict).collect();
        assert_eq!(
            verdicts,
            vec![
                Verdict::Unsafe,
                Verdict::Safe,
                Verdict::Unsafe,
                Verdict::Unsafe
            ]
        );
        assert_eq!(out.reports[0].bound, 3, "k* = 3");
        // One clean rung per task, no retries or degradations.
        assert_eq!(out.retries, 0);
        assert_eq!(out.degradations, 0);
        for r in &out.reports {
            assert_eq!(r.ladder.len(), 1);
            assert_eq!(r.ladder[0].rung, LadderRung::Primary);
        }
    }

    #[test]
    fn memory_capped_task_degrades_to_unknown_with_ladder() {
        let opts = BatchOptions {
            max_memory: Some(1024),
            ..fast_opts()
        };
        let task = vec![BatchTask::new(kstar3(), MemoryModel::Sc, Strategy::Zpre, 6)];
        let out = run_batch(&task, &opts);
        let r = &out.reports[0];
        assert_eq!(r.verdict, Verdict::Unknown);
        assert_eq!(r.exhaustion, Some(ExhaustionReason::Memory));
        assert_eq!(
            r.as_error(),
            Some(VerifyError::Exhausted(ExhaustionReason::Memory))
        );
        // Every rung of the ladder was tried and recorded before giving up.
        assert_eq!(r.ladder.len(), 4, "primary, zpre-, baseline, reduced-bound");
        assert!(r
            .ladder
            .iter()
            .all(|rec| rec.exhaustion == Some(ExhaustionReason::Memory)));
        assert_eq!(out.degradations, 3);
    }

    #[test]
    fn ladder_skips_rungs_equal_to_primary() {
        let rungs = build_ladder(Strategy::Baseline, 4);
        assert_eq!(rungs.len(), 2, "baseline primary only degrades the bound");
        assert_eq!(rungs[1].0, LadderRung::ReducedBound);
        assert_eq!(rungs[1].2, 2);
        let rungs = build_ladder(Strategy::Zpre, 1);
        assert_eq!(rungs.len(), 3, "bound 1 cannot be reduced");
    }

    #[test]
    fn journal_checkpoints_and_resume_skips_finished_work() {
        let path = tmp_journal("resume");
        let opts = BatchOptions {
            journal: Some(path.clone()),
            ..fast_opts()
        };
        let clean = run_batch(&tasks(), &opts);
        assert!(!clean.interrupted);
        // Resume over the complete journal: nothing re-solved.
        let opts2 = BatchOptions {
            resume: true,
            ..opts
        };
        let resumed = run_batch(&tasks(), &opts2);
        assert_eq!(resumed.tasks_run, 0);
        assert_eq!(resumed.tasks_skipped, 4);
        assert!(resumed.reports.iter().all(|r| r.from_journal));
        assert_eq!(resumed.verdicts(), clean.verdicts());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn kill_at_every_write_boundary_then_resume_matches_clean() {
        let clean = run_batch(&tasks(), &fast_opts()).verdicts();
        // The clean run's journal write count bounds the kill points.
        let path = tmp_journal("count");
        let opts = BatchOptions {
            journal: Some(path.clone()),
            ..fast_opts()
        };
        run_batch(&tasks(), &opts);
        let total_writes = std::fs::read_to_string(&path).unwrap().lines().count() as u64;
        let _ = std::fs::remove_file(&path);
        assert!(total_writes >= 8, "frames + task lines for 4 tasks");

        for kill_at in 0..total_writes {
            let path = tmp_journal("kill");
            let killed = run_batch(
                &tasks(),
                &BatchOptions {
                    journal: Some(path.clone()),
                    fault: Some(BatchFault::MidBatchKill(kill_at)),
                    ..fast_opts()
                },
            );
            assert!(killed.interrupted, "kill at write {kill_at} must interrupt");
            let resumed = run_batch(
                &tasks(),
                &BatchOptions {
                    journal: Some(path.clone()),
                    resume: true,
                    ..fast_opts()
                },
            );
            assert!(!resumed.interrupted);
            assert_eq!(
                resumed.verdicts(),
                clean,
                "kill at write {kill_at}: resumed verdicts diverge"
            );
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn resume_restarts_half_finished_sweep_at_first_unsolved_frame() {
        // Hand-write a journal holding a safe prefix for kstar3 (frames 1–2
        // are safe; the violation is at bound 3).
        let path = tmp_journal("prefix");
        let text = format!(
            "{}\n{}\n",
            frame_line("kstar3@sc@zpre", 1, Verdict::Safe),
            frame_line("kstar3@sc@zpre", 2, Verdict::Safe),
        );
        std::fs::write(&path, text).unwrap();
        let out = run_batch(
            &[BatchTask::new(kstar3(), MemoryModel::Sc, Strategy::Zpre, 6)],
            &BatchOptions {
                journal: Some(path.clone()),
                resume: true,
                ..fast_opts()
            },
        );
        let r = &out.reports[0];
        assert_eq!(r.verdict, Verdict::Unsafe);
        assert_eq!(r.bound, 3);
        assert_eq!(r.resumed_at, Some(3), "frames 1–2 skipped");
        assert!(!r.from_journal, "frame 3 was actually solved");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_journal_line_is_dropped_not_fatal() {
        let good = format!(
            "{}\n{}\n",
            frame_line("t", 1, Verdict::Safe),
            frame_line("t", 2, Verdict::Safe)
        );
        let torn = format!("{good}{{\"t\":\"frame\",\"task\":\"t\",\"bo");
        let state = scan_journal(&torn);
        assert_eq!(state.frames["t"].len(), 2);
        assert!(state.done.is_empty());
        // Corruption mid-file drops everything after it.
        let mid = format!(
            "{}\ngarbage\n{}\n",
            frame_line("t", 1, Verdict::Safe),
            frame_line("t", 2, Verdict::Safe)
        );
        assert_eq!(scan_journal(&mid).frames["t"].len(), 1);
    }

    #[test]
    fn journal_verdict_round_trip() {
        for v in [Verdict::Safe, Verdict::Unsafe, Verdict::Unknown] {
            assert_eq!(verdict_from_name(verdict_name(v)), Some(v));
        }
        let line = task_line("a\"b", Verdict::Unknown, 4, Some(ExhaustionReason::Memory));
        let map = parse_line(&line).unwrap();
        assert_eq!(map.get("task").unwrap().as_str().unwrap(), "a\"b");
        assert_eq!(map.get("exhaustion").unwrap().as_str().unwrap(), "memory");
    }

    #[test]
    fn chaos_faults_fail_closed() {
        let clean = run_batch(&tasks(), &fast_opts()).verdicts();
        for fault in BatchFault::ALL {
            let path = tmp_journal("chaos");
            let opts = BatchOptions {
                journal: Some(path.clone()),
                fault: Some(fault),
                max_retries: 0,
                ..fast_opts()
            };
            let out = run_batch(&tasks(), &opts);
            // Fail closed: whatever the fault did, no task flipped to a
            // *wrong* definitive verdict.
            for (i, r) in out.reports.iter().enumerate() {
                let (ref key, expect, _) = clean[i];
                assert_eq!(&r.key, key);
                if r.verdict != Verdict::Unknown {
                    assert_eq!(
                        r.verdict,
                        expect,
                        "{}: fault {} flipped verdict",
                        key,
                        fault.name()
                    );
                }
            }
            // And a resume after the fault completes with clean verdicts
            // (the corrupt-journal fault corrupts *this* journal on scan).
            let resumed = run_batch(
                &tasks(),
                &BatchOptions {
                    journal: Some(path.clone()),
                    resume: true,
                    // The journal-corruption fault fires on the resume scan
                    // itself; the others must not re-fire on resume.
                    fault: (fault == BatchFault::CorruptJournal).then_some(fault),
                    ..fast_opts()
                },
            );
            if !resumed.interrupted {
                let got = resumed.verdicts();
                for (i, (key, expect, _)) in clean.iter().enumerate() {
                    // Unknown-from-journal is acceptable for the squeezed
                    // runs; definitive verdicts must match.
                    if got[i].1 != Verdict::Unknown {
                        assert_eq!(&got[i].0, key);
                        assert_eq!(got[i].1, *expect, "fault {} resume diverged", fault.name());
                    }
                }
            }
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn deadline_skew_exhausts_as_time_and_records_retries() {
        let out = run_batch(
            &[BatchTask::new(racy(), MemoryModel::Sc, Strategy::Zpre, 4)],
            &BatchOptions {
                fault: Some(BatchFault::DeadlineSkew),
                max_retries: 1,
                ..fast_opts()
            },
        );
        let r = &out.reports[0];
        assert_eq!(r.verdict, Verdict::Unknown);
        assert_eq!(r.exhaustion, Some(ExhaustionReason::Time));
        // Time is transient: each rung retried once before degrading.
        assert!(out.retries >= 1);
        assert!(r.ladder.len() > 4, "retries + degradations all recorded");
    }

    #[test]
    fn heartbeat_writes_metrics_trail_that_survives_kill_and_resume() {
        let journal = tmp_journal("hb-journal");
        let metrics = tmp_journal("hb-metrics");
        let opts = BatchOptions {
            journal: Some(journal.clone()),
            heartbeat: Some(Duration::from_millis(10)),
            metrics_out: Some(metrics.clone()),
            // Kill mid-batch at a write boundary.
            fault: Some(BatchFault::MidBatchKill(3)),
            ..fast_opts()
        };
        let killed = run_batch(&tasks(), &opts);
        assert!(killed.interrupted);
        let first = std::fs::read_to_string(&metrics).unwrap();
        let first_lines = first.lines().filter(|l| !l.trim().is_empty()).count();
        assert!(first_lines >= 1, "at least the start tick landed");
        // Every line is flat JSON tagged `metrics`, loadable by the
        // analysis layer.
        let stats = zpre_obs::analyze::load_stats(&first).expect("metrics stream");
        assert_eq!(stats.get("tasks_total"), 4);

        // Resume: the trail is appended, not truncated, and sequence
        // numbers continue.
        let resumed = run_batch(
            &tasks(),
            &BatchOptions {
                journal: Some(journal.clone()),
                heartbeat: Some(Duration::from_millis(10)),
                metrics_out: Some(metrics.clone()),
                resume: true,
                ..fast_opts()
            },
        );
        assert!(!resumed.interrupted);
        let both = std::fs::read_to_string(&metrics).unwrap();
        assert!(both.starts_with(&first), "resume must append, not truncate");
        let seqs: Vec<u64> = both
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| {
                parse_line(l.trim())
                    .unwrap()
                    .get("seq")
                    .unwrap()
                    .as_u64()
                    .unwrap()
            })
            .collect();
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1), "seqs: {seqs:?}");
        // The final tick reports the finished batch.
        let stats = zpre_obs::analyze::load_stats(&both).expect("appended stream");
        assert_eq!(stats.get("tasks_done"), 4);
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_file(&metrics);
    }

    #[test]
    fn batch_telemetry_flows_into_recorder() {
        let rec = Recorder::new(zpre_obs::TraceConfig {
            events: false,
            decision_sample: 1,
        });
        let path = tmp_journal("telemetry");
        let out = run_batch(
            &tasks(),
            &BatchOptions {
                journal: Some(path.clone()),
                recorder: Some(rec.clone()),
                ..fast_opts()
            },
        );
        assert!(!out.interrupted);
        let c = rec.counters();
        assert_eq!(c.batch_tasks, 4);
        assert_eq!(c.batch_retries, 0);
        assert_eq!(c.batch_degraded, 0);
        assert!(c.batch_checkpoints >= 8);
        let snap = rec.snapshot();
        assert_eq!(
            snap.spans
                .iter()
                .filter(|s| s.phase == Phase::Batch)
                .count(),
            4
        );
        let _ = std::fs::remove_file(&path);
    }
}
