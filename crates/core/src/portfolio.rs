//! Portfolio verification: race several strategies, first verdict wins.
//!
//! Table 3 of the paper (and `experiments_output.txt`) shows the three main
//! strategies routinely differing by 3x on the same task, and single
//! heuristics can be exponentially unlucky on adversarial instances. A
//! portfolio hedges both: every member solves the *same* [`SsaProgram`]
//! under its own strategy/seed on its own scoped thread, the first
//! definitive ([`Verdict::Safe`] / [`Verdict::Unsafe`]) answer wins, and a
//! shared [`CancelToken`] stops the losers within a bounded work stride
//! (see `zpre_sat::Budget`).
//!
//! Determinism notes: the *verdict* is deterministic (every member solves
//! the same instance and strategy agreement is an invariant, cross-checked
//! here), but the *winner* and the statistics are race-dependent. Each
//! member's deterministic conflict cap is untouched by cancellation — a
//! member that exhausts `max_conflicts` reports `Unknown` exactly as in a
//! single-strategy run.

use crate::strategy::Strategy;
use crate::verifier::{verify_ssa, Verdict, VerifyOptions, VerifyOutcome};
use std::sync::mpsc;
use std::time::{Duration, Instant};
use zpre_prog::{to_ssa, unroll_program, Program, SsaProgram};
use zpre_sat::CancelToken;

/// One racing configuration.
#[derive(Clone, Debug)]
pub struct PortfolioMember {
    /// Display name (strategy name, suffixed when seed-varied).
    pub name: String,
    /// The solving strategy.
    pub strategy: Strategy,
    /// Seed for the random decision polarities.
    pub seed: u64,
}

impl PortfolioMember {
    /// A member running `strategy` with `seed`, named after the strategy.
    pub fn new(strategy: Strategy, seed: u64) -> PortfolioMember {
        PortfolioMember {
            name: strategy.name().to_string(),
            strategy,
            seed,
        }
    }
}

/// Options for a portfolio run.
#[derive(Clone, Debug)]
pub struct PortfolioOptions {
    /// Shared per-member options: memory model, unroll bound, budgets,
    /// validation. The `strategy` / `seed` fields are overridden per
    /// member, and `cancel` is replaced by the portfolio's internal token —
    /// though when set, an external trip still stops the whole portfolio.
    pub base: VerifyOptions,
    /// The racing members, in result order.
    pub members: Vec<PortfolioMember>,
}

impl PortfolioOptions {
    /// The default portfolio over `base`: ZPRE, ZPRE⁻, and the baseline on
    /// `base.seed`, plus a polarity-varied ZPRE (different seed) to hedge
    /// unlucky random polarities.
    pub fn new(base: VerifyOptions) -> PortfolioOptions {
        let seed = base.seed;
        let varied = seed ^ 0x9E37_79B9_7F4A_7C15;
        let members = vec![
            PortfolioMember::new(Strategy::Zpre, seed),
            PortfolioMember::new(Strategy::ZpreMinus, seed),
            PortfolioMember::new(Strategy::Baseline, seed),
            PortfolioMember {
                name: format!("{}#2", Strategy::Zpre.name()),
                strategy: Strategy::Zpre,
                seed: varied,
            },
        ];
        PortfolioOptions { base, members }
    }
}

/// What one member did during the race.
#[derive(Clone, Debug)]
pub struct MemberResult {
    /// The member's display name.
    pub name: String,
    /// Its strategy.
    pub strategy: Strategy,
    /// Its verdict: `Unknown` for cancelled losers and budget exhaustion.
    pub verdict: Verdict,
    /// Its wall-clock time (encode + solve) inside the race.
    pub time: Duration,
    /// `true` when the member was still running as the winner finished
    /// (its `Unknown` is a cancellation, not a budget exhaustion).
    pub cancelled: bool,
}

/// Result of a portfolio run.
#[derive(Clone, Debug)]
pub struct PortfolioOutcome {
    /// The winning member's full outcome (or, when no member was
    /// definitive, the first member's `Unknown` outcome).
    pub outcome: VerifyOutcome,
    /// Winning member's name; `None` when every member returned `Unknown`.
    pub winner: Option<String>,
    /// Per-member results in `PortfolioOptions::members` order.
    pub members: Vec<MemberResult>,
    /// Time from the winning verdict until the last loser stopped — the
    /// observable cancellation latency. `None` without a winner.
    pub cancel_latency: Option<Duration>,
}

impl PortfolioOutcome {
    /// The verdict of the race.
    pub fn verdict(&self) -> Verdict {
        self.outcome.verdict
    }
}

/// Unrolls + SSA-converts `prog` once, then races the portfolio over it.
pub fn verify_portfolio(prog: &Program, opts: &PortfolioOptions) -> PortfolioOutcome {
    let unrolled = unroll_program(prog, opts.base.unroll_bound);
    let ssa = to_ssa(&unrolled);
    verify_ssa_portfolio(&ssa, opts)
}

/// Races all members over the same SSA program on scoped threads.
///
/// # Panics
///
/// Panics when two definitive members disagree: strategies are
/// answer-equivalent by construction, so a disagreement is a solver bug
/// that must not be masked by racing.
pub fn verify_ssa_portfolio(ssa: &SsaProgram, opts: &PortfolioOptions) -> PortfolioOutcome {
    assert!(
        !opts.members.is_empty(),
        "portfolio needs at least one member"
    );
    let token = CancelToken::new();
    let external = opts.base.cancel.clone();
    let (tx, rx) = mpsc::channel::<(usize, VerifyOutcome, Duration)>();

    let mut slots: Vec<Option<(VerifyOutcome, Duration)>> = vec![None; opts.members.len()];
    let mut first_definitive: Option<usize> = None;
    let mut cancelled_at: Option<Instant> = None;
    let mut cancel_latency: Option<Duration> = None;

    std::thread::scope(|scope| {
        for (i, member) in opts.members.iter().enumerate() {
            let tx = tx.clone();
            let mut member_opts = opts.base.clone();
            member_opts.strategy = member.strategy;
            member_opts.seed = member.seed;
            member_opts.cancel = Some(token.clone());
            scope.spawn(move || {
                let t0 = Instant::now();
                let outcome = verify_ssa(ssa, &member_opts);
                // The receiver hangs up after processing every member, so a
                // send can only fail if the scope is already unwinding.
                let _ = tx.send((i, outcome, t0.elapsed()));
            });
        }
        drop(tx);

        loop {
            // Poll with a timeout so an external cancellation (a token in
            // `base.cancel`, tripped by a caller) propagates to members
            // mid-race instead of only between results.
            let (i, outcome, elapsed) = match rx.recv_timeout(Duration::from_millis(5)) {
                Ok(msg) => msg,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if external.as_ref().is_some_and(CancelToken::is_cancelled) {
                        token.cancel();
                    }
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            };
            if outcome.verdict != Verdict::Unknown && first_definitive.is_none() {
                first_definitive = Some(i);
                token.cancel();
                cancelled_at = Some(Instant::now());
            }
            slots[i] = Some((outcome, elapsed));
        }
        // All members have returned; the losers' stop latency is the time
        // since the winner tripped the token.
        cancel_latency = cancelled_at.map(|t| t.elapsed());
    });

    let results: Vec<(VerifyOutcome, Duration)> = slots
        .into_iter()
        .map(|s| s.expect("every member reports exactly once"))
        .collect();

    // Cross-check: every definitive verdict must agree with the winner's.
    if let Some(win) = first_definitive {
        let winner_verdict = results[win].0.verdict;
        for (member, (outcome, _)) in opts.members.iter().zip(&results) {
            assert!(
                outcome.verdict == Verdict::Unknown || outcome.verdict == winner_verdict,
                "portfolio members disagree: {} says {}, {} says {}",
                opts.members[win].name,
                winner_verdict,
                member.name,
                outcome.verdict,
            );
        }
    }

    let winner_index = first_definitive.unwrap_or(0);
    let members = opts
        .members
        .iter()
        .zip(&results)
        .map(|(member, (outcome, elapsed))| MemberResult {
            name: member.name.clone(),
            strategy: member.strategy,
            verdict: outcome.verdict,
            time: *elapsed,
            cancelled: outcome.verdict == Verdict::Unknown && first_definitive.is_some(),
        })
        .collect();

    PortfolioOutcome {
        outcome: results[winner_index].0.clone(),
        winner: first_definitive.map(|i| opts.members[i].name.clone()),
        members,
        cancel_latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zpre_prog::build::*;
    use zpre_prog::MemoryModel;

    fn racy() -> Program {
        let inc = vec![assign("r", v("cnt")), assign("cnt", add(v("r"), c(1)))];
        ProgramBuilder::new("race")
            .shared("cnt", 0)
            .thread("w1", inc.clone())
            .thread("w2", inc)
            .main(vec![
                spawn(1),
                spawn(2),
                join(1),
                join(2),
                assert_(eq(v("cnt"), c(2))),
            ])
            .build()
    }

    fn locked() -> Program {
        let inc = vec![
            lock("m"),
            assign("r", v("cnt")),
            assign("cnt", add(v("r"), c(1))),
            unlock("m"),
        ];
        ProgramBuilder::new("locked")
            .shared("cnt", 0)
            .mutex("m")
            .thread("w1", inc.clone())
            .thread("w2", inc)
            .main(vec![
                spawn(1),
                spawn(2),
                join(1),
                join(2),
                assert_(eq(v("cnt"), c(2))),
            ])
            .build()
    }

    #[test]
    fn portfolio_matches_single_strategy_verdicts() {
        for mm in MemoryModel::ALL {
            let base = VerifyOptions::new(mm, Strategy::Zpre);
            let single = crate::verifier::verify(&racy(), &base);
            let folio = verify_portfolio(&racy(), &PortfolioOptions::new(base));
            assert_eq!(folio.verdict(), single.verdict, "{mm}");
            assert_eq!(folio.verdict(), Verdict::Unsafe, "{mm}");
            assert!(
                folio.winner.is_some(),
                "{mm}: someone must win a solvable race"
            );
            assert_eq!(folio.members.len(), 4);
        }
    }

    #[test]
    fn portfolio_proves_safety() {
        let base = VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre);
        let folio = verify_portfolio(&locked(), &PortfolioOptions::new(base));
        assert_eq!(folio.verdict(), Verdict::Safe);
        let winner = folio.winner.as_deref().expect("definitive verdict");
        assert!(folio.members.iter().any(|m| m.name == winner));
    }

    #[test]
    fn exhausted_members_report_unknown_without_winner() {
        // A 0-conflict budget exhausts every member deterministically.
        let mut base = VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre);
        base.max_conflicts = Some(0);
        let folio = verify_portfolio(&locked(), &PortfolioOptions::new(base));
        assert_eq!(folio.verdict(), Verdict::Unknown);
        assert!(folio.winner.is_none());
        assert!(folio.cancel_latency.is_none());
        assert!(folio
            .members
            .iter()
            .all(|m| m.verdict == Verdict::Unknown && !m.cancelled));
    }

    #[test]
    fn external_token_stops_the_whole_portfolio() {
        let token = CancelToken::new();
        token.cancel();
        let mut base = VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre);
        base.cancel = Some(token);
        let folio = verify_portfolio(&racy(), &PortfolioOptions::new(base));
        // Pre-tripped external token: the internal token is tripped on the
        // first poll, so no member may report a definitive verdict late
        // enough to matter; either outcome must still be consistent.
        if folio.winner.is_none() {
            assert_eq!(folio.verdict(), Verdict::Unknown);
        }
    }

    #[test]
    fn single_member_portfolio_degenerates_to_plain_verify() {
        let base = VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre);
        let opts = PortfolioOptions {
            base: base.clone(),
            members: vec![PortfolioMember::new(Strategy::Zpre, base.seed)],
        };
        let folio = verify_portfolio(&racy(), &opts);
        let single = crate::verifier::verify(&racy(), &base);
        assert_eq!(folio.verdict(), single.verdict);
        assert_eq!(folio.winner.as_deref(), Some(Strategy::Zpre.name()));
    }
}
