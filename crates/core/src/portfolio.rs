//! Portfolio verification: race several strategies, first verdict wins.
//!
//! Table 3 of the paper (and `experiments_output.txt`) shows the three main
//! strategies routinely differing by 3x on the same task, and single
//! heuristics can be exponentially unlucky on adversarial instances. A
//! portfolio hedges both: every member solves the *same* [`SsaProgram`]
//! under its own strategy/seed on its own scoped thread, the first
//! definitive ([`Verdict::Safe`] / [`Verdict::Unsafe`]) answer wins, and a
//! shared [`CancelToken`] stops the losers within a bounded work stride
//! (see `zpre_sat::Budget`).
//!
//! Fault tolerance: every member runs under `catch_unwind`, so a member
//! that panics — or fails with a typed [`VerifyError`], e.g. a rejected
//! certification — is *quarantined* (recorded in
//! [`PortfolioOutcome::quarantined`] with its error in
//! [`MemberResult::error`]) while the survivors keep racing. If no member
//! reaches a definitive verdict and at least one was quarantined, the
//! portfolio makes one bounded retry (baseline strategy, fresh seed)
//! before settling on [`Verdict::Unknown`] with a reason. Disagreement
//! between definitive members — a solver bug — is likewise surfaced as an
//! `Unknown` with a reason rather than a crash.
//!
//! Determinism notes: the *verdict* is deterministic (every member solves
//! the same instance and strategy agreement is an invariant, cross-checked
//! here), but the *winner* and the statistics are race-dependent. Each
//! member's deterministic conflict cap is untouched by cancellation — a
//! member that exhausts `max_conflicts` reports `Unknown` exactly as in a
//! single-strategy run.

use crate::errors::VerifyError;
use crate::strategy::Strategy;
use crate::verifier::{verify_ssa_inner, Verdict, VerifyOptions, VerifyOutcome};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::{Duration, Instant};
use zpre_obs::MemberRecord;
use zpre_prog::{flatten, to_ssa_traced, unroll_program_traced, FlatProgram, Program, SsaProgram};
use zpre_sat::{CancelToken, ExhaustionReason, ShareConfig, ShareSpec, SharedPool};

/// One racing configuration.
#[derive(Clone, Debug)]
pub struct PortfolioMember {
    /// Display name (strategy name, suffixed when seed-varied).
    pub name: String,
    /// The solving strategy.
    pub strategy: Strategy,
    /// Seed for the random decision polarities.
    pub seed: u64,
}

impl PortfolioMember {
    /// A member running `strategy` with `seed`, named after the strategy.
    pub fn new(strategy: Strategy, seed: u64) -> PortfolioMember {
        PortfolioMember {
            name: strategy.name().to_string(),
            strategy,
            seed,
        }
    }
}

/// Options for a portfolio run.
#[derive(Clone, Debug)]
pub struct PortfolioOptions {
    /// Shared per-member options: memory model, unroll bound, budgets,
    /// validation. The `strategy` / `seed` fields are overridden per
    /// member, and `cancel` is replaced by the portfolio's internal token —
    /// though when set, an external trip still stops the whole portfolio.
    pub base: VerifyOptions,
    /// The racing members, in result order.
    pub members: Vec<PortfolioMember>,
    /// Learnt-clause sharing across members: when set, the race creates one
    /// [`SharedPool`] and hands every member an interference-aware export/
    /// import endpoint. Sound because every member solves the identical
    /// CNF+theory instance. The bounded retry never shares — it exists to
    /// re-check a suspect race from a clean slate.
    pub share: Option<ShareConfig>,
}

impl PortfolioOptions {
    /// The default portfolio over `base`: ZPRE, ZPRE⁻, and the baseline on
    /// `base.seed`, plus a polarity-varied ZPRE (different seed) to hedge
    /// unlucky random polarities.
    pub fn new(base: VerifyOptions) -> PortfolioOptions {
        let seed = base.seed;
        let varied = seed ^ 0x9E37_79B9_7F4A_7C15;
        let members = vec![
            PortfolioMember::new(Strategy::Zpre, seed),
            PortfolioMember::new(Strategy::ZpreMinus, seed),
            PortfolioMember::new(Strategy::Baseline, seed),
            PortfolioMember {
                name: format!("{}#2", Strategy::Zpre.name()),
                strategy: Strategy::Zpre,
                seed: varied,
            },
        ];
        PortfolioOptions {
            base,
            members,
            share: None,
        }
    }

    /// Enables cross-member clause sharing with `cfg`.
    pub fn with_share(mut self, cfg: ShareConfig) -> PortfolioOptions {
        self.share = Some(cfg);
        self
    }
}

/// What one member did during the race.
#[derive(Clone, Debug)]
pub struct MemberResult {
    /// The member's display name.
    pub name: String,
    /// Its strategy.
    pub strategy: Strategy,
    /// Its verdict: `Unknown` for cancelled losers, budget exhaustion, and
    /// quarantined members.
    pub verdict: Verdict,
    /// Its wall-clock time (encode + solve) inside the race.
    pub time: Duration,
    /// `true` when the member was still running as the winner finished
    /// (its `Unknown` is a cancellation, not a budget exhaustion).
    pub cancelled: bool,
    /// Why the member was quarantined: the panic message or the typed
    /// error's rendering. `None` for healthy members.
    pub error: Option<String>,
    /// Which resource ended an `Unknown` member: the solver's structured
    /// reason for healthy members (conflicts / time / memory / cancelled),
    /// [`ExhaustionReason::Quarantined`] for failed ones, `None` on a
    /// definitive verdict.
    pub exhaustion: Option<ExhaustionReason>,
}

/// Result of a portfolio run.
#[derive(Clone, Debug)]
pub struct PortfolioOutcome {
    /// The winning member's full outcome (or a synthesized `Unknown`
    /// outcome when no member was definitive).
    pub outcome: VerifyOutcome,
    /// Winning member's name; `None` when every member returned `Unknown`
    /// or was quarantined.
    pub winner: Option<String>,
    /// Per-member results in `PortfolioOptions::members` order (plus a
    /// trailing entry for the bounded retry, when one ran).
    pub members: Vec<MemberResult>,
    /// Names of members that panicked or failed with a typed error.
    pub quarantined: Vec<String>,
    /// Why the race ended `Unknown`, when it did without a plain budget
    /// exhaustion (member failures, disagreement).
    pub unknown_reason: Option<String>,
    /// Time from the winning verdict until the last loser stopped — the
    /// observable cancellation latency. `None` without a winner.
    pub cancel_latency: Option<Duration>,
}

impl PortfolioOutcome {
    /// The verdict of the race.
    pub fn verdict(&self) -> Verdict {
        self.outcome.verdict
    }
}

/// Unrolls + SSA-converts `prog` once, then races the portfolio over it.
///
/// When `base.certify` is set, the flat lowering is shared with every
/// member so certified `Unsafe` verdicts can replay their witness.
pub fn verify_portfolio(prog: &Program, opts: &PortfolioOptions) -> PortfolioOutcome {
    let rec = opts.base.recorder.as_ref();
    let unrolled = unroll_program_traced(prog, opts.base.unroll_bound, rec);
    let ssa = to_ssa_traced(&unrolled, rec);
    let flat = opts.base.certify.then(|| flatten(&unrolled));
    portfolio_inner(&ssa, opts, flat.as_ref())
}

/// Races all members over the same SSA program on scoped threads.
///
/// Certified `Unsafe` verdicts fail closed here (no flat program to replay
/// against); use [`verify_portfolio`] for certified runs.
pub fn verify_ssa_portfolio(ssa: &SsaProgram, opts: &PortfolioOptions) -> PortfolioOutcome {
    portfolio_inner(ssa, opts, None)
}

/// One member's run, quarantined: a panic becomes an `Err(String)`, as
/// does a typed [`VerifyError`].
fn run_member(
    ssa: &SsaProgram,
    opts: &VerifyOptions,
    flat: Option<&FlatProgram>,
) -> Result<VerifyOutcome, String> {
    let run = || verify_ssa_inner(ssa, opts, Instant::now(), flat);
    match catch_unwind(AssertUnwindSafe(run)) {
        Ok(Ok(outcome)) => Ok(outcome),
        Ok(Err(e)) => Err(e.to_string()),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic with non-string payload".to_string());
            Err(VerifyError::MemberPanic {
                member: opts.strategy.name().to_string(),
                message: msg,
            }
            .to_string())
        }
    }
}

/// A synthesized `Unknown` outcome for races without a definitive member.
fn unknown_outcome(ssa: &SsaProgram, exhaustion: Option<ExhaustionReason>) -> VerifyOutcome {
    VerifyOutcome {
        verdict: Verdict::Unknown,
        stats: Default::default(),
        solve_time: Duration::ZERO,
        encode_time: Duration::ZERO,
        num_events: ssa.events.len(),
        class_counts: Default::default(),
        num_solver_vars: 0,
        trace: None,
        certificate: None,
        exhaustion,
    }
}

fn portfolio_inner(
    ssa: &SsaProgram,
    opts: &PortfolioOptions,
    flat: Option<&FlatProgram>,
) -> PortfolioOutcome {
    assert!(
        !opts.members.is_empty(),
        "portfolio needs at least one member"
    );
    let token = CancelToken::new();
    let external = opts.base.cancel.clone();
    // One pool per race; members get per-index endpoints below. Dropping
    // the race drops the pool — shared clauses never outlive the instance
    // they are consequences of.
    let share_pool = opts.share.map(|cfg| (SharedPool::new(cfg.pool_cap), cfg));
    type Report = (usize, Result<VerifyOutcome, String>, Duration);
    let (tx, rx) = mpsc::channel::<Report>();

    let mut slots: Vec<Option<(Result<VerifyOutcome, String>, Duration)>> =
        vec![None; opts.members.len()];
    let mut first_definitive: Option<usize> = None;
    let mut cancelled_at: Option<Instant> = None;
    let mut cancel_latency: Option<Duration> = None;

    std::thread::scope(|scope| {
        for (i, member) in opts.members.iter().enumerate() {
            let tx = tx.clone();
            let mut member_opts = opts.base.clone();
            member_opts.strategy = member.strategy;
            member_opts.seed = member.seed;
            member_opts.cancel = Some(token.clone());
            // All members share the base recorder's buffer; each clone tags
            // its spans/events with the member name so per-strategy streams
            // stay separable in the exported trace.
            member_opts.recorder = opts
                .base
                .recorder
                .as_ref()
                .map(|r| r.member_labeled(&member.name));
            member_opts.share = share_pool.as_ref().map(|(pool, cfg)| ShareSpec {
                pool: std::sync::Arc::clone(pool),
                member: i as u32,
                cfg: *cfg,
            });
            scope.spawn(move || {
                let t0 = Instant::now();
                let report = run_member(ssa, &member_opts, flat);
                // The receiver hangs up after processing every member, so a
                // send can only fail if the scope is already unwinding.
                let _ = tx.send((i, report, t0.elapsed()));
            });
        }
        drop(tx);

        loop {
            // Poll with a timeout so an external cancellation (a token in
            // `base.cancel`, tripped by a caller) propagates to members
            // mid-race instead of only between results.
            let (i, report, elapsed) = match rx.recv_timeout(Duration::from_millis(5)) {
                Ok(msg) => msg,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if external.as_ref().is_some_and(CancelToken::is_cancelled) {
                        token.cancel();
                    }
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            };
            let definitive = matches!(&report, Ok(o) if o.verdict != Verdict::Unknown);
            if definitive && first_definitive.is_none() {
                first_definitive = Some(i);
                token.cancel();
                cancelled_at = Some(Instant::now());
            }
            slots[i] = Some((report, elapsed));
        }
        // All members have returned; the losers' stop latency is the time
        // since the winner tripped the token.
        cancel_latency = cancelled_at.map(|t| t.elapsed());
    });

    let results: Vec<(Result<VerifyOutcome, String>, Duration)> = slots
        .into_iter()
        .map(|s| s.unwrap_or_else(|| (Err("member never reported".to_string()), Duration::ZERO)))
        .collect();

    let mut quarantined: Vec<String> = opts
        .members
        .iter()
        .zip(&results)
        .filter(|(_, (r, _))| r.is_err())
        .map(|(m, _)| m.name.clone())
        .collect();
    let mut unknown_reason: Option<String> = None;

    // Cross-check: every definitive verdict must agree with the winner's.
    // Disagreement is a solver bug; surface it as an untrusted race rather
    // than crashing the caller.
    if let Some(win) = first_definitive {
        let winner_verdict = results[win].0.as_ref().expect("winner is Ok").verdict;
        let dissent = opts.members.iter().zip(&results).find(|(_, (r, _))| {
            matches!(r, Ok(o) if o.verdict != Verdict::Unknown && o.verdict != winner_verdict)
        });
        if let Some((member, (r, _))) = dissent {
            unknown_reason = Some(format!(
                "portfolio members disagree: {} says {}, {} says {} — discarding both verdicts",
                opts.members[win].name,
                winner_verdict,
                member.name,
                r.as_ref().expect("dissenting member is Ok").verdict,
            ));
            first_definitive = None;
            cancel_latency = None;
        }
    }

    let mut members: Vec<MemberResult> = opts
        .members
        .iter()
        .zip(&results)
        .map(|(member, (report, elapsed))| MemberResult {
            name: member.name.clone(),
            strategy: member.strategy,
            verdict: report
                .as_ref()
                .map(|o| o.verdict)
                .unwrap_or(Verdict::Unknown),
            time: *elapsed,
            cancelled: matches!(report, Ok(o) if o.verdict == Verdict::Unknown)
                && first_definitive.is_some(),
            error: report.as_ref().err().cloned(),
            exhaustion: match report {
                Ok(o) => o.exhaustion,
                Err(_) => Some(ExhaustionReason::Quarantined),
            },
        })
        .collect();

    // Per-strategy telemetry: who won, who was cancelled at what depth
    // (decision count), who was quarantined and why.
    if let Some(r) = &opts.base.recorder {
        for (i, (m, (report, _))) in members.iter().zip(&results).enumerate() {
            let (decisions, conflicts) = report
                .as_ref()
                .map(|o| (o.stats.decisions, o.stats.conflicts))
                .unwrap_or((0, 0));
            r.record_member(MemberRecord {
                name: m.name.clone(),
                strategy: m.strategy.name().to_string(),
                verdict: m.verdict.to_string(),
                winner: first_definitive == Some(i),
                cancelled: m.cancelled,
                decisions,
                conflicts,
                time_us: m.time.as_micros() as u64,
                error: m.error.clone(),
            });
        }
    }

    if let Some(win) = first_definitive {
        let outcome = results
            .into_iter()
            .nth(win)
            .expect("winner index in range")
            .0
            .expect("winner is Ok");
        return PortfolioOutcome {
            outcome,
            winner: Some(opts.members[win].name.clone()),
            members,
            quarantined,
            unknown_reason,
            cancel_latency,
        };
    }

    // No definitive verdict. If members failed (rather than exhausting
    // budgets), make one bounded retry on the most conservative
    // configuration before giving up.
    if unknown_reason.is_none() && !quarantined.is_empty() {
        let mut retry_opts = opts.base.clone();
        retry_opts.strategy = Strategy::Baseline;
        retry_opts.seed = opts.base.seed.wrapping_add(0xDEAD_BEEF);
        retry_opts.cancel = external;
        retry_opts.share = None; // the retry re-checks from a clean slate
        retry_opts.recorder = opts
            .base
            .recorder
            .as_ref()
            .map(|r| r.member_labeled("retry:baseline"));
        let t0 = Instant::now();
        let report = run_member(ssa, &retry_opts, flat);
        let elapsed = t0.elapsed();
        let retry_name = "retry:baseline".to_string();
        members.push(MemberResult {
            name: retry_name.clone(),
            strategy: Strategy::Baseline,
            verdict: report
                .as_ref()
                .map(|o| o.verdict)
                .unwrap_or(Verdict::Unknown),
            time: elapsed,
            cancelled: false,
            error: report.as_ref().err().cloned(),
            exhaustion: match &report {
                Ok(o) => o.exhaustion,
                Err(_) => Some(ExhaustionReason::Quarantined),
            },
        });
        if let Some(r) = &opts.base.recorder {
            let m = members.last().expect("retry member just pushed");
            let (decisions, conflicts) = report
                .as_ref()
                .map(|o| (o.stats.decisions, o.stats.conflicts))
                .unwrap_or((0, 0));
            r.record_member(MemberRecord {
                name: m.name.clone(),
                strategy: m.strategy.name().to_string(),
                verdict: m.verdict.to_string(),
                winner: matches!(&report, Ok(o) if o.verdict != Verdict::Unknown),
                cancelled: false,
                decisions,
                conflicts,
                time_us: elapsed.as_micros() as u64,
                error: m.error.clone(),
            });
        }
        match report {
            Ok(outcome) if outcome.verdict != Verdict::Unknown => {
                return PortfolioOutcome {
                    outcome,
                    winner: Some(retry_name),
                    members,
                    quarantined,
                    unknown_reason: None,
                    cancel_latency: None,
                };
            }
            Ok(_) => {
                unknown_reason = Some(format!(
                    "{} member(s) quarantined ({}); retry exhausted its budget",
                    quarantined.len(),
                    quarantined.join(", "),
                ));
            }
            Err(e) => {
                quarantined.push(retry_name);
                unknown_reason = Some(format!(
                    "{} member(s) quarantined ({}); retry failed: {e}",
                    quarantined.len(),
                    quarantined.join(", "),
                ));
            }
        }
    }

    // Prefer a real (budget-exhausted) member outcome for its statistics;
    // synthesize one only when every member failed.
    let outcome = results
        .into_iter()
        .find_map(|(r, _)| r.ok().filter(|o| o.verdict == Verdict::Unknown))
        .unwrap_or_else(|| unknown_outcome(ssa, Some(ExhaustionReason::Quarantined)));

    PortfolioOutcome {
        outcome,
        winner: None,
        members,
        quarantined,
        unknown_reason,
        cancel_latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zpre_prog::build::*;
    use zpre_prog::MemoryModel;

    fn racy() -> Program {
        let inc = vec![assign("r", v("cnt")), assign("cnt", add(v("r"), c(1)))];
        ProgramBuilder::new("race")
            .shared("cnt", 0)
            .thread("w1", inc.clone())
            .thread("w2", inc)
            .main(vec![
                spawn(1),
                spawn(2),
                join(1),
                join(2),
                assert_(eq(v("cnt"), c(2))),
            ])
            .build()
    }

    fn locked() -> Program {
        let inc = vec![
            lock("m"),
            assign("r", v("cnt")),
            assign("cnt", add(v("r"), c(1))),
            unlock("m"),
        ];
        ProgramBuilder::new("locked")
            .shared("cnt", 0)
            .mutex("m")
            .thread("w1", inc.clone())
            .thread("w2", inc)
            .main(vec![
                spawn(1),
                spawn(2),
                join(1),
                join(2),
                assert_(eq(v("cnt"), c(2))),
            ])
            .build()
    }

    #[test]
    fn portfolio_matches_single_strategy_verdicts() {
        for mm in MemoryModel::ALL {
            let base = VerifyOptions::new(mm, Strategy::Zpre);
            let single = crate::verifier::verify(&racy(), &base);
            let folio = verify_portfolio(&racy(), &PortfolioOptions::new(base));
            assert_eq!(folio.verdict(), single.verdict, "{mm}");
            assert_eq!(folio.verdict(), Verdict::Unsafe, "{mm}");
            assert!(
                folio.winner.is_some(),
                "{mm}: someone must win a solvable race"
            );
            assert_eq!(folio.members.len(), 4);
            assert!(folio.quarantined.is_empty(), "{mm}");
        }
    }

    #[test]
    fn portfolio_proves_safety() {
        let base = VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre);
        let folio = verify_portfolio(&locked(), &PortfolioOptions::new(base));
        assert_eq!(folio.verdict(), Verdict::Safe);
        let winner = folio.winner.as_deref().expect("definitive verdict");
        assert!(folio.members.iter().any(|m| m.name == winner));
    }

    #[test]
    fn exhausted_members_report_unknown_without_winner() {
        // A 0-conflict budget exhausts every member deterministically.
        let mut base = VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre);
        base.max_conflicts = Some(0);
        let folio = verify_portfolio(&locked(), &PortfolioOptions::new(base));
        assert_eq!(folio.verdict(), Verdict::Unknown);
        assert!(folio.winner.is_none());
        assert!(folio.cancel_latency.is_none());
        assert!(folio.quarantined.is_empty());
        assert!(folio
            .members
            .iter()
            .all(|m| m.verdict == Verdict::Unknown && !m.cancelled));
        // Every member hit the deterministic conflict cap; the structured
        // reason survives the race.
        assert!(folio
            .members
            .iter()
            .all(|m| m.exhaustion == Some(ExhaustionReason::Conflicts)));
    }

    #[test]
    fn external_token_stops_the_whole_portfolio() {
        let token = CancelToken::new();
        token.cancel();
        let mut base = VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre);
        base.cancel = Some(token);
        let folio = verify_portfolio(&racy(), &PortfolioOptions::new(base));
        // Pre-tripped external token: the internal token is tripped on the
        // first poll, so no member may report a definitive verdict late
        // enough to matter; either outcome must still be consistent.
        if folio.winner.is_none() {
            assert_eq!(folio.verdict(), Verdict::Unknown);
        }
    }

    #[test]
    fn single_member_portfolio_degenerates_to_plain_verify() {
        let base = VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre);
        let opts = PortfolioOptions {
            base: base.clone(),
            members: vec![PortfolioMember::new(Strategy::Zpre, base.seed)],
            share: None,
        };
        let folio = verify_portfolio(&racy(), &opts);
        let single = crate::verifier::verify(&racy(), &base);
        assert_eq!(folio.verdict(), single.verdict);
        assert_eq!(folio.winner.as_deref(), Some(Strategy::Zpre.name()));
    }

    #[test]
    fn certified_portfolio_carries_a_certificate() {
        let mut base = VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre);
        base.certify = true;
        let folio = verify_portfolio(&racy(), &PortfolioOptions::new(base.clone()));
        assert_eq!(folio.verdict(), Verdict::Unsafe);
        assert!(folio.outcome.certificate.is_some());

        let folio = verify_portfolio(&locked(), &PortfolioOptions::new(base));
        assert_eq!(folio.verdict(), Verdict::Safe);
        assert!(folio.outcome.certificate.is_some());
    }

    #[test]
    fn shared_portfolio_agrees_with_isolated_on_both_verdicts() {
        for prog in [racy(), locked()] {
            let base = VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre);
            let isolated = verify_portfolio(&prog, &PortfolioOptions::new(base.clone()));
            let shared = verify_portfolio(
                &prog,
                &PortfolioOptions::new(base).with_share(ShareConfig::default()),
            );
            assert_eq!(shared.verdict(), isolated.verdict(), "{}", prog.name);
            assert!(shared.quarantined.is_empty(), "{}", prog.name);
        }
    }

    #[test]
    fn shared_certified_portfolio_still_certifies() {
        // Imported theory lemmas join each member's journal; a certified
        // Safe verdict must replay with shared lemmas in the proof.
        let mut base = VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre);
        base.certify = true;
        let folio = verify_portfolio(
            &locked(),
            &PortfolioOptions::new(base).with_share(ShareConfig::default()),
        );
        assert_eq!(folio.verdict(), Verdict::Safe, "{:?}", folio.unknown_reason);
        assert!(folio.quarantined.is_empty(), "{:?}", folio.quarantined);
        assert!(folio.outcome.certificate.is_some());
    }

    #[test]
    fn faulty_members_are_quarantined_not_crashed() {
        // Inject a certification fault into every member: each one fails
        // with a typed error, the race must degrade to Unknown with a
        // reason (the retry inherits the faulty base options and fails
        // too), and nothing panics across the FFI of the race.
        let mut base = VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre);
        base.certify = true;
        base.fault = Some(crate::faults::Fault::TruncateProof(1));
        let folio = verify_portfolio(&locked(), &PortfolioOptions::new(base));
        assert_eq!(folio.verdict(), Verdict::Unknown);
        assert!(folio.winner.is_none());
        assert_eq!(folio.quarantined.len(), 5, "{:?}", folio.quarantined);
        assert!(folio.unknown_reason.is_some());
        assert!(folio.members.iter().all(|m| m.error.is_some()));
    }
}
