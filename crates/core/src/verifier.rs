//! The end-to-end verifier: program → BMC unrolling → SSA → partial-order
//! encoding → interference-guided CDCL(T) solving → verdict.
//!
//! This is the `ZPRE` pipeline of the paper with the strategy pluggable
//! (baseline VSIDS / `ZPRE⁻` / `ZPRE` / ablations). On a `Sat` answer the
//! extracted concurrent execution is optionally re-validated against the
//! axioms (EOG acyclicity, read-from/from-read consistency, mutual
//! exclusion, atomicity, and the violated assertion) — a deep end-to-end
//! check that the solver, theory, blaster, and encoder agree.

use crate::certify::{certify_safe, certify_unsafe, Certificate};
use crate::decision_order::decision_order;
use crate::errors::VerifyError;
use crate::faults::Fault;
use crate::strategy::Strategy;
use std::sync::Arc;
use std::time::{Duration, Instant};
use zpre_bv::{lits_to_u64, TermKind};
use zpre_encoder::{estimate_cnf, po_pairs, try_encode_opts, EncodeError, Encoded};
use zpre_obs::{Phase, Recorder, VarClass};
use zpre_prog::ssa::EventKind;
use zpre_prog::{
    flatten, to_ssa_traced, unroll_program_traced, FlatProgram, MemoryModel, Program, SsaProgram,
};
use zpre_sat::{
    Budget, CancelToken, ExhaustionReason, PriorityListGuide, ShareSpec, SolveResult, Solver,
    Stats, Var,
};
use zpre_smt::{ClassCounts, OrderTheory, VarKind};

/// Verification verdict.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// The property holds for all executions within the unroll bound
    /// (the SMT instance is unsatisfiable) — SV-COMP "true".
    Safe,
    /// A violating execution exists (satisfiable) — SV-COMP "false".
    Unsafe,
    /// Budget exhausted.
    Unknown,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Verdict::Safe => "safe",
            Verdict::Unsafe => "unsafe",
            Verdict::Unknown => "unknown",
        };
        f.write_str(s)
    }
}

/// Options for a verification run.
#[derive(Clone, Debug)]
pub struct VerifyOptions {
    /// Memory model.
    pub mm: MemoryModel,
    /// Solving strategy.
    pub strategy: Strategy,
    /// BMC loop unroll bound.
    pub unroll_bound: u32,
    /// Sweep horizon for [`crate::verify_sweep`]: bounds `1..=max_bound`
    /// are checked incrementally in one solver. Ignored by [`verify`],
    /// which solves the single bound `unroll_bound`.
    pub max_bound: u32,
    /// Deterministic conflict budget (`None` = unlimited).
    pub max_conflicts: Option<u64>,
    /// Wall-clock budget.
    pub timeout: Option<Duration>,
    /// Byte-accounted memory budget. When set, two guards engage: a
    /// pre-blast CNF size estimate refuses pathological encodings up front
    /// ([`zpre_encoder::EncodeError::EncodingTooLarge`]), and the solver
    /// polls its own footprint on the budget stride, aborting with
    /// `Unknown` / [`ExhaustionReason::Memory`] instead of letting the
    /// allocator kill the process.
    pub max_memory: Option<u64>,
    /// Seed for the random decision polarity of interference variables.
    pub seed: u64,
    /// Run the static interference-pruning pass (`zpre-analysis`) before
    /// encoding: must-happen-before, lockset and thread-locality analyses
    /// shrink `V_rf`/`V_ws` and refine the `#write` counts H4 sees.
    /// Default on; `--no-prune` (or [`Strategy::ZpreNoPrune`]) reproduces
    /// the historic unpruned encoding.
    pub prune: bool,
    /// Re-validate extracted executions on `Unsafe` answers.
    pub validate_models: bool,
    /// Extract a readable counterexample trace on `Unsafe` answers.
    pub want_trace: bool,
    /// Shared cooperative-cancellation token: tripping it makes the solve
    /// return [`Verdict::Unknown`] within a bounded work stride. This is
    /// how [`crate::portfolio`] stops losing strategies.
    pub cancel: Option<CancelToken>,
    /// Certify definitive verdicts: RUP-check the proof (with every theory
    /// lemma independently re-justified) on `Safe`, replay the witness
    /// through the concrete interpreter on `Unsafe`. The outcome then
    /// carries a [`Certificate`]; a verdict whose evidence does not check
    /// out becomes a [`VerifyError::Certification`].
    pub certify: bool,
    /// Fault-injection hook for the certification test harness: corrupts
    /// one pipeline artifact before certification (see [`Fault`]). `None`
    /// in production use.
    pub fault: Option<Fault>,
    /// Trace recorder: with one installed, the pipeline records phase spans
    /// (unroll, SSA, encode, blast, solve, validate, certify, replay) and the
    /// solver/theory stream structured events into it. `None` (the default)
    /// disables all instrumentation at the cost of one branch per site.
    pub recorder: Option<Recorder>,
    /// Learnt-clause sharing endpoint for portfolio members. All members of
    /// one portfolio run solve the same CNF+theory instance (identical SSA,
    /// encoding, and variable numbering), so any clause one member learns is
    /// a logical consequence for every other — the endpoint exports learnt
    /// clauses and EOG-cycle lemmas to a shared pool and imports foreign
    /// ones at root-level exchange points. `None` (the default) disables
    /// sharing entirely.
    pub share: Option<ShareSpec>,
}

impl Default for VerifyOptions {
    fn default() -> VerifyOptions {
        VerifyOptions {
            mm: MemoryModel::Sc,
            strategy: Strategy::Zpre,
            unroll_bound: 2,
            max_bound: 6,
            max_conflicts: None,
            timeout: None,
            max_memory: None,
            seed: 0xC0FFEE,
            prune: true,
            validate_models: true,
            want_trace: false,
            cancel: None,
            certify: false,
            fault: None,
            recorder: None,
            share: None,
        }
    }
}

impl VerifyOptions {
    /// Convenience constructor.
    pub fn new(mm: MemoryModel, strategy: Strategy) -> VerifyOptions {
        VerifyOptions {
            mm,
            strategy,
            ..VerifyOptions::default()
        }
    }
}

/// Result of a verification run, with the search statistics the paper's
/// Table 2 reports.
#[derive(Clone, Debug)]
pub struct VerifyOutcome {
    /// The verdict.
    pub verdict: Verdict,
    /// Solver search statistics.
    pub stats: Stats,
    /// Time spent in `solve()`.
    pub solve_time: Duration,
    /// Time spent unrolling + SSA + encoding.
    pub encode_time: Duration,
    /// Number of global events.
    pub num_events: usize,
    /// Variable counts per class.
    pub class_counts: ClassCounts,
    /// Total solver variables.
    pub num_solver_vars: usize,
    /// Counterexample trace (on `Unsafe`, when requested).
    pub trace: Option<crate::trace::Trace>,
    /// Certification evidence (on definitive verdicts, when requested).
    pub certificate: Option<Certificate>,
    /// Which budget was exhausted when the verdict is `Unknown`; `None` on
    /// definitive answers.
    pub exhaustion: Option<ExhaustionReason>,
}

/// Verifies `prog` under `opts`.
///
/// # Panics
///
/// Panics on any [`VerifyError`] — use [`try_verify`] for a typed result.
pub fn verify(prog: &Program, opts: &VerifyOptions) -> VerifyOutcome {
    match try_verify(prog, opts) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// Verifies `prog` under `opts`, reporting failures as typed errors.
pub fn try_verify(prog: &Program, opts: &VerifyOptions) -> Result<VerifyOutcome, VerifyError> {
    let t0 = Instant::now();
    let rec = opts.recorder.as_ref();
    let unrolled = unroll_program_traced(prog, opts.unroll_bound, rec);
    let ssa = to_ssa_traced(&unrolled, rec);
    // Certified Unsafe verdicts replay the witness through the flat
    // interpreter, so the flat lowering must come from the same unrolled
    // program the SSA conversion saw.
    let flat = opts.certify.then(|| flatten(&unrolled));
    verify_ssa_inner(&ssa, opts, t0, flat.as_ref())
}

/// Verifies an already-converted SSA program.
///
/// # Panics
///
/// Panics on any [`VerifyError`] — use [`try_verify_ssa`] for a typed
/// result.
pub fn verify_ssa(ssa: &SsaProgram, opts: &VerifyOptions) -> VerifyOutcome {
    match try_verify_ssa(ssa, opts) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// Verifies an already-converted SSA program, reporting failures as typed
/// errors.
///
/// Without the original [`Program`] there is no flat lowering to replay
/// against, so a certified `Unsafe` verdict fails closed here; use
/// [`try_verify`] (or [`crate::verify_portfolio`]) for certified runs.
pub fn try_verify_ssa(
    ssa: &SsaProgram,
    opts: &VerifyOptions,
) -> Result<VerifyOutcome, VerifyError> {
    verify_ssa_inner(ssa, opts, Instant::now(), None)
}

pub(crate) fn verify_ssa_inner(
    ssa: &SsaProgram,
    opts: &VerifyOptions,
    t0: Instant,
    flat: Option<&FlatProgram>,
) -> Result<VerifyOutcome, VerifyError> {
    let mut theory = OrderTheory::new();
    if opts.strategy == Strategy::ZpreNoReverseProp {
        theory.set_propagate_reverse(false);
    }
    if opts.strategy == Strategy::ZpreDfsCheck {
        theory.set_full_dfs_check(true);
    }
    if opts.certify {
        theory.enable_lemma_journal();
    }
    let guide = PriorityListGuide::new(Vec::new(), opts.seed);
    let mut solver: Solver<OrderTheory, PriorityListGuide> = Solver::with_parts(theory, guide);
    if opts.certify {
        solver.enable_proof_logging();
    }
    let rec = opts.recorder.as_ref();
    // Pre-blast guard: refuse an encoding whose estimated footprint already
    // exceeds the memory budget, before allocating any of it.
    if let Some(cap) = opts.max_memory {
        let est = estimate_cnf(ssa, opts.mm)?;
        if est.bytes() > cap {
            return Err(VerifyError::Encode(EncodeError::EncodingTooLarge {
                estimated_bytes: est.bytes(),
                cap_bytes: cap,
            }));
        }
    }
    // Static interference pruning: run the analysis pass, surface its
    // counters, and — under `--certify` — re-verify every justification
    // with the independent checker before trusting the smaller encoding.
    let prune_on = opts.prune && opts.strategy != Strategy::ZpreNoPrune;
    let report = if prune_on {
        let rep = zpre_analysis::analyze(ssa, opts.mm);
        if let Some(r) = rec {
            let c = &rep.counters;
            r.record_prune(
                c.rf_pruned,
                c.rf_kept,
                c.ws_pruned,
                c.ws_serialized,
                c.reads_resolved,
                c.local_vars,
            );
        }
        if opts.certify {
            zpre_analysis::check_report(ssa, &rep).map_err(|reason| {
                VerifyError::Certification {
                    stage: "prune",
                    reason,
                }
            })?;
        }
        Some(rep)
    } else {
        None
    };
    let enc = try_encode_opts(ssa, opts.mm, &mut solver, rec, report.as_ref())?;

    // With a recorder installed, resolve solver vars to interference classes
    // and stream solver/theory events into it.
    if let Some(r) = rec {
        let mut classes = vec![VarClass::Other; solver.num_vars()];
        for (v, info) in enc.registry.iter() {
            classes[v.index()] = match info.kind {
                VarKind::Rf { external: true, .. } => VarClass::ExternalRf,
                VarKind::Rf {
                    external: false, ..
                } => VarClass::InternalRf,
                VarKind::Ws => VarClass::Ws,
                _ => VarClass::Other,
            };
        }
        r.set_var_classes(classes);
        let sink: Arc<dyn zpre_obs::EventSink> = Arc::new(r.clone());
        solver.set_event_sink(Some(sink.clone()));
        solver.theory.set_event_sink(Some(sink));
    }

    // Hook this member into the portfolio share pool. The hot-var table
    // (external-RF interference variables get the relaxed LBD export cap)
    // comes straight from the encoder registry, independent of any recorder.
    if let Some(spec) = &opts.share {
        solver.set_share(spec);
        let hot: Vec<Var> = enc
            .registry
            .iter()
            .filter(|(_, info)| matches!(info.kind, VarKind::Rf { external: true, .. }))
            .map(|(v, _)| v)
            .collect();
        solver.set_share_hot_vars(&hot);
    }

    // Install the decision order for the chosen strategy.
    let mut order: Vec<u32> = if opts.strategy.uses_interference_order() {
        decision_order(&enc.registry, opts.strategy.refinements())
    } else if opts.strategy == Strategy::BranchCond {
        // Guard variables in event order, deduplicated.
        let mut seen = std::collections::HashSet::new();
        enc.guard_lits
            .iter()
            .map(|l| l.var().index() as u32)
            .filter(|v| seen.insert(*v))
            .collect()
    } else {
        Vec::new()
    };
    if opts.fault == Some(Fault::ShuffleGuideOrder) {
        // Benign control fault: the heuristic order is scrambled, but the
        // verdict and its certificate must come out unchanged.
        order.reverse();
    }
    let mut guide = PriorityListGuide::new(order, opts.seed);
    if opts.strategy == Strategy::ZpreFixedTrue {
        guide = guide.with_fixed_polarity(true);
    }
    solver.guide = guide;
    let mut budget = Budget::with_limits(opts.max_conflicts, opts.timeout);
    if let Some(token) = &opts.cancel {
        budget = budget.with_cancel(token.clone());
    }
    if let Some(cap) = opts.max_memory {
        budget = budget.with_max_memory(cap);
    }
    solver.set_budget(budget);

    let encode_time = t0.elapsed();
    let t1 = Instant::now();
    let solve_span = rec.map(|r| r.span(Phase::Solve));
    let result = solver.solve();
    if let Some(s) = solve_span {
        s.close();
    }
    let solve_time = t1.elapsed();

    let verdict = match result {
        SolveResult::Sat => Verdict::Unsafe,
        SolveResult::Unsat => Verdict::Safe,
        SolveResult::Unknown => Verdict::Unknown,
    };
    if verdict == Verdict::Unsafe && opts.validate_models {
        let _validate_span = rec.map(|r| r.span(Phase::Validate));
        validate_model(ssa, &enc, &solver, opts.mm).map_err(VerifyError::ModelValidation)?;
    }
    let trace = (verdict == Verdict::Unsafe && (opts.want_trace || opts.certify))
        .then(|| crate::trace::extract_trace(ssa, &enc, &solver, opts.mm));

    let certificate = if opts.certify {
        match verdict {
            Verdict::Safe => Some(certify_safe(&mut solver, opts.fault, rec)?),
            Verdict::Unsafe => {
                let Some(flat) = flat else {
                    return Err(VerifyError::Certification {
                        stage: "replay",
                        reason: "no flat program available for witness replay \
                                 (certified Unsafe verdicts need the original program)"
                            .to_string(),
                    });
                };
                let trace = trace.as_ref().expect("trace extracted for certification");
                Some(certify_unsafe(
                    ssa, &enc, &solver, opts.mm, flat, trace, opts.fault, rec,
                )?)
            }
            Verdict::Unknown => None,
        }
    } else {
        None
    };

    // Debug oracle: on small instances, re-verify with the pruning pass
    // disabled and assert verdict equivalence. Catches any unsound prune
    // rule in every debug-build test run, not just the dedicated
    // equivalence suite. Gated off for fault-injection, portfolio members
    // (share/cancel), and inconclusive verdicts.
    #[cfg(debug_assertions)]
    if prune_on
        && opts.fault.is_none()
        && opts.share.is_none()
        && opts.cancel.is_none()
        && verdict != Verdict::Unknown
        && ssa.events.len() <= 64
    {
        let mut oracle = opts.clone();
        oracle.prune = false;
        oracle.certify = false;
        oracle.want_trace = false;
        oracle.recorder = None;
        let unpruned = verify_ssa_inner(ssa, &oracle, Instant::now(), None)?;
        if unpruned.verdict != Verdict::Unknown {
            assert_eq!(
                verdict, unpruned.verdict,
                "pruned and unpruned encodings disagree (mm={}, strategy={})",
                opts.mm, opts.strategy
            );
        }
    }

    // Copy the order theory's cycle-check work counters into the outcome
    // stats (the solver itself doesn't know about the theory's engine).
    let mut stats = *solver.stats();
    let cs = solver.theory.cycle_stats();
    stats.eog_checks = cs.checks;
    stats.eog_accepted_o1 = cs.accepted_o1;
    stats.eog_visited = cs.visited;
    stats.eog_promoted = cs.promoted;

    Ok(VerifyOutcome {
        verdict,
        stats,
        solve_time,
        encode_time,
        num_events: ssa.events.len(),
        class_counts: enc.registry.class_counts(),
        num_solver_vars: solver.num_vars(),
        trace: trace.filter(|_| opts.want_trace),
        certificate,
        exhaustion: solver.exhaustion(),
    })
}

/// Re-validates the satisfying model as a concrete concurrent execution.
pub(crate) fn validate_model(
    ssa: &SsaProgram,
    enc: &Encoded,
    solver: &Solver<OrderTheory, PriorityListGuide>,
    mm: MemoryModel,
) -> Result<(), String> {
    let ts = &ssa.store;
    // Concrete value of a bit-vector input variable by name.
    let bv_val = |name: &str| -> u64 {
        enc.blaster
            .bv_inputs
            .get(name)
            .map(|bits| lits_to_u64(bits, |l| solver.model_value(l).is_true()))
            .unwrap_or(0)
    };
    let bool_val = |name: &str| -> bool {
        enc.blaster
            .bool_inputs
            .get(name)
            .map(|&l| solver.model_value(l).is_true())
            .unwrap_or(false)
    };
    let event_value = |eid: usize| -> u64 {
        match ssa.events[eid].kind {
            EventKind::Read { value, .. } | EventKind::Write { value, .. } => {
                match ts.kind(value) {
                    TermKind::BvVar { name, .. } => bv_val(name),
                    k => panic!("event value is not a variable: {k:?}"),
                }
            }
            _ => panic!("value of a non-access event"),
        }
    };
    let guard_of = |eid: usize| solver.model_value(enc.guard_lits[eid]).is_true();

    // 1. Rebuild the event order graph from the model and compute clocks.
    let n = ssa.events.len();
    let mut edges = po_pairs(ssa, mm);
    for (v, info) in enc.registry.iter() {
        if !matches!(info.kind, VarKind::Ord | VarKind::Ws) {
            continue;
        }
        let Some((a, b)) = solver.theory.atom_nodes(v) else {
            continue; // cs/atomic selectors are not atoms themselves
        };
        if solver.model_var_value(v).is_true() {
            edges.push((a.0 as usize, b.0 as usize));
        } else {
            edges.push((b.0 as usize, a.0 as usize));
        }
    }
    let clocks = kahn_clocks(n, &edges)
        .ok_or_else(|| "event order graph of the model is cyclic".to_string())?;

    // 2. Read-from consistency.
    for e in &ssa.events {
        if !e.kind.is_read() || !guard_of(e.id) {
            continue;
        }
        let var = e.kind.var().expect("read has a variable");
        let chosen: Vec<usize> = enc
            .rf_vars
            .iter()
            .filter(|rf| rf.read == e.id && solver.model_var_value(rf.var).is_true())
            .map(|rf| rf.write)
            .collect();
        let sources: Vec<usize> = if chosen.is_empty() {
            // A read the pruning pass resolved has no rf selectors; its
            // source is the last executed write of its static chain, and
            // the same read-from/from-read axioms must hold for it.
            let Some(rr) = enc.resolved_reads.iter().find(|rr| rr.read == e.id) else {
                return Err(format!("executed read {} has no read-from edge", e.id));
            };
            let Some(&w) = rr.chain.iter().rev().find(|&&w| guard_of(w)) else {
                return Err(format!(
                    "resolved read {} has no executed chain write",
                    e.id
                ));
            };
            vec![w]
        } else {
            chosen
        };
        for w in sources {
            if !guard_of(w) {
                return Err(format!("read {} reads from unexecuted write {w}", e.id));
            }
            if event_value(e.id) != event_value(w) {
                return Err(format!(
                    "read {} value {} != write {w} value {}",
                    e.id,
                    event_value(e.id),
                    event_value(w)
                ));
            }
            if clocks[w] >= clocks[e.id] {
                return Err(format!(
                    "read-from order violated: write {w} after read {}",
                    e.id
                ));
            }
            // From-read: no other executed write to the same variable
            // between the write and the read.
            for other in &ssa.events {
                if other.kind.is_write()
                    && other.kind.var() == Some(var)
                    && other.id != w
                    && guard_of(other.id)
                    && clocks[w] < clocks[other.id]
                    && clocks[other.id] < clocks[e.id]
                {
                    return Err(format!(
                        "write {} intervenes between write {w} and read {}",
                        other.id, e.id
                    ));
                }
            }
        }
    }

    // 3. Mutual exclusion: critical sections on one mutex do not overlap.
    for (i, &(t1, m1, l1, u1)) in enc.critical_sections.iter().enumerate() {
        for &(t2, m2, l2, u2) in &enc.critical_sections[i + 1..] {
            if m1 != m2 || t1 == t2 || !guard_of(l1) || !guard_of(l2) {
                continue;
            }
            let disjoint = clocks[u1] < clocks[l2] || clocks[u2] < clocks[l1];
            if !disjoint {
                return Err(format!(
                    "critical sections {l1}..{u1} and {l2}..{u2} on mutex {m1} overlap"
                ));
            }
        }
    }

    // 4. Atomicity: no external same-variable access inside a block.
    for blk in &ssa.atomic_blocks {
        if !guard_of(blk.begin) {
            continue;
        }
        for e in &ssa.events {
            if e.thread == blk.thread || !guard_of(e.id) {
                continue;
            }
            let Some(v) = e.kind.var() else { continue };
            if !blk.vars.contains(&v) {
                continue;
            }
            if clocks[e.id] > clocks[blk.begin] && clocks[e.id] < clocks[blk.end] {
                return Err(format!(
                    "event {} intrudes into atomic block {}..{}",
                    e.id, blk.begin, blk.end
                ));
            }
        }
    }

    // 5. The error condition really fires: some assertion has a true guard
    //    and a false condition under the extracted values.
    let violated = ssa.assertions.iter().any(|&(g, cond)| {
        ts.eval(g, &bv_val, &bool_val).as_bool() && !ts.eval(cond, &bv_val, &bool_val).as_bool()
    });
    if !violated {
        return Err("model does not violate any assertion".to_string());
    }
    Ok(())
}

/// Kahn's algorithm: returns a clock value per node, or `None` on a cycle.
fn kahn_clocks(n: usize, edges: &[(usize, usize)]) -> Option<Vec<u32>> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for &(a, b) in edges {
        adj[a].push(b);
        indeg[b] += 1;
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut clocks = vec![0u32; n];
    let mut seen = 0usize;
    let mut tick = 0u32;
    while let Some(x) = queue.pop() {
        clocks[x] = tick;
        tick += 1;
        seen += 1;
        for &y in &adj[x] {
            indeg[y] -= 1;
            if indeg[y] == 0 {
                queue.push(y);
            }
        }
    }
    (seen == n).then_some(clocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zpre_prog::build::*;

    fn racy() -> Program {
        let inc = vec![assign("r", v("cnt")), assign("cnt", add(v("r"), c(1)))];
        ProgramBuilder::new("race")
            .shared("cnt", 0)
            .thread("w1", inc.clone())
            .thread("w2", inc)
            .main(vec![
                spawn(1),
                spawn(2),
                join(1),
                join(2),
                assert_(eq(v("cnt"), c(2))),
            ])
            .build()
    }

    fn locked() -> Program {
        let inc = vec![
            lock("m"),
            assign("r", v("cnt")),
            assign("cnt", add(v("r"), c(1))),
            unlock("m"),
        ];
        ProgramBuilder::new("locked")
            .shared("cnt", 0)
            .mutex("m")
            .thread("w1", inc.clone())
            .thread("w2", inc)
            .main(vec![
                spawn(1),
                spawn(2),
                join(1),
                join(2),
                assert_(eq(v("cnt"), c(2))),
            ])
            .build()
    }

    #[test]
    fn all_strategies_agree_on_racy() {
        for mm in MemoryModel::ALL {
            for strat in Strategy::ALL {
                let out = verify(&racy(), &VerifyOptions::new(mm, strat));
                assert_eq!(out.verdict, Verdict::Unsafe, "{mm} {strat}");
            }
        }
    }

    #[test]
    fn all_strategies_agree_on_locked() {
        for mm in MemoryModel::ALL {
            for strat in Strategy::MAIN {
                let out = verify(&locked(), &VerifyOptions::new(mm, strat));
                assert_eq!(out.verdict, Verdict::Safe, "{mm} {strat}");
            }
        }
    }

    #[test]
    fn guided_decisions_are_counted() {
        let out = verify(
            &racy(),
            &VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre),
        );
        // The guide must actually have driven decisions.
        assert!(out.stats.guided_decisions > 0);
        let base = verify(
            &racy(),
            &VerifyOptions::new(MemoryModel::Sc, Strategy::Baseline),
        );
        assert_eq!(base.stats.guided_decisions, 0);
    }

    #[test]
    fn conflict_budget_yields_unknown() {
        let mut opts = VerifyOptions::new(MemoryModel::Sc, Strategy::Baseline);
        opts.max_conflicts = Some(1);
        let out = verify(&locked(), &opts);
        assert_eq!(out.verdict, Verdict::Unknown);
        assert_eq!(out.exhaustion, Some(ExhaustionReason::Conflicts));
    }

    #[test]
    fn definitive_verdict_has_no_exhaustion() {
        let out = verify(
            &racy(),
            &VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre),
        );
        assert_eq!(out.verdict, Verdict::Unsafe);
        assert_eq!(out.exhaustion, None);
    }

    #[test]
    fn tiny_memory_cap_rejects_encoding_up_front() {
        let mut opts = VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre);
        opts.max_memory = Some(64);
        match try_verify(&racy(), &opts) {
            Err(VerifyError::Encode(EncodeError::EncodingTooLarge {
                estimated_bytes,
                cap_bytes: 64,
            })) => assert!(estimated_bytes > 64),
            other => panic!("expected EncodingTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn generous_memory_cap_does_not_perturb_verdicts() {
        let mut opts = VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre);
        opts.max_memory = Some(1 << 30);
        assert_eq!(verify(&racy(), &opts).verdict, Verdict::Unsafe);
        assert_eq!(verify(&locked(), &opts).verdict, Verdict::Safe);
    }

    #[test]
    fn outcome_carries_instance_metrics() {
        let out = verify(
            &racy(),
            &VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre),
        );
        assert!(out.num_events > 0);
        assert!(out.class_counts.rf > 0);
        assert!(out.class_counts.ws > 0);
        assert!(out.num_solver_vars > 0);
    }

    #[test]
    fn deterministic_across_runs_with_same_seed() {
        let opts = VerifyOptions::new(MemoryModel::Sc, Strategy::Zpre);
        let a = verify(&racy(), &opts);
        let b = verify(&racy(), &opts);
        assert_eq!(a.stats.decisions, b.stats.decisions);
        assert_eq!(a.stats.conflicts, b.stats.conflicts);
        assert_eq!(a.verdict, b.verdict);
    }
}
