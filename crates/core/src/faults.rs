//! Fault injection for the certification layer.
//!
//! Certification is only worth its overhead if it actually *rejects*
//! corrupted evidence. This module defines a small set of injectable
//! faults — each corrupting one artifact the certifier relies on — and the
//! hooks [`crate::verifier`] uses to apply them. The test matrix in
//! `tests/` runs every fault against Safe and Unsafe programs and asserts
//! the certifier fails closed (a typed [`crate::VerifyError::Certification`],
//! never a crash, never a silently accepted verdict).
//!
//! Faults are applied *inside* the pipeline, after solving but before
//! certification (except [`Fault::ShuffleGuideOrder`], which perturbs the
//! decision heuristic before solving — a benign control demonstrating the
//! certificate does not depend on heuristic luck).

use zpre_sat::{Lit, Proof, ProofStep, Var};
use zpre_smt::TheoryLemma;

/// One injectable fault.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Reverse the interference decision order before solving. Benign:
    /// the verdict and its certificate must be unaffected.
    ShuffleGuideOrder,
    /// Drop every recorded theory-lemma justification, as if the theory
    /// had emitted lemmas without being able to explain them.
    DropLemmas,
    /// Forge an unjustified theory lemma into the proof (a unit clause
    /// whose journal entry has an empty cycle).
    ForgeLemma,
    /// Drop the last `n` proof steps, as if the proof log was cut short.
    TruncateProof(usize),
    /// Flip the low bit of the first scheduled access value of the
    /// witness, as if the model extraction misread the assignment.
    FlipModelBit,
}

impl Fault {
    /// Every fault kind, for test matrices.
    pub const ALL: [Fault; 5] = [
        Fault::ShuffleGuideOrder,
        Fault::DropLemmas,
        Fault::ForgeLemma,
        Fault::TruncateProof(1),
        Fault::FlipModelBit,
    ];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Fault::ShuffleGuideOrder => "shuffle-guide-order",
            Fault::DropLemmas => "drop-lemmas",
            Fault::ForgeLemma => "forge-lemma",
            Fault::TruncateProof(_) => "truncate-proof",
            Fault::FlipModelBit => "flip-model-bit",
        }
    }
}

/// One injectable batch-harness fault (see [`crate::harness`]): where
/// [`Fault`] corrupts certification artifacts inside one pipeline run,
/// these stress the resilience layer *around* runs — resource pressure,
/// clock trouble, and checkpoint damage. The chaos matrix in `tests/`
/// runs every one of them and asserts the harness fails closed: a faulted
/// batch may degrade tasks to `Unknown`, but never flips a `Safe`/`Unsafe`
/// verdict and never dies.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BatchFault {
    /// Squeeze every rung under a pathologically small memory cap, as if
    /// the machine were out of memory: encodings are refused up front and
    /// solves abort with `Memory` exhaustion.
    MemberOom,
    /// Arm every rung with an already-expired deadline, as if the clock
    /// had jumped past the budget: solves abort with `Time` exhaustion.
    DeadlineSkew,
    /// Kill the batch at the `n`-th journal append (the append is refused
    /// and the run stops), simulating `kill -9` mid-run at a deterministic
    /// write boundary. `--resume` must complete the remaining work.
    MidBatchKill(u64),
    /// Tear the journal's final line in half before a resume scan reads
    /// it, simulating a crash mid-append. The scan must drop the torn
    /// line and re-derive its content.
    CorruptJournal,
}

impl BatchFault {
    /// Every batch fault kind, for test matrices (the kill fires after 3
    /// journal writes — early enough to leave work behind on any example).
    pub const ALL: [BatchFault; 4] = [
        BatchFault::MemberOom,
        BatchFault::DeadlineSkew,
        BatchFault::MidBatchKill(3),
        BatchFault::CorruptJournal,
    ];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            BatchFault::MemberOom => "member-oom",
            BatchFault::DeadlineSkew => "deadline-skew",
            BatchFault::MidBatchKill(_) => "mid-batch-kill",
            BatchFault::CorruptJournal => "corrupt-journal",
        }
    }
}

/// Applies a proof-side fault to the artifacts of a Safe certification.
pub(crate) fn corrupt_proof(fault: Fault, proof: &mut Proof, journal: &mut Vec<TheoryLemma>) {
    match fault {
        Fault::DropLemmas => journal.clear(),
        Fault::ForgeLemma => {
            let clause = vec![Lit::new(Var::new(0), true)];
            journal.push(TheoryLemma {
                clause: clause.clone(),
                cycle: Vec::new(),
            });
            proof.steps.push(ProofStep::Lemma(clause));
        }
        Fault::TruncateProof(n) => {
            let keep = proof.steps.len().saturating_sub(n);
            proof.steps.truncate(keep);
        }
        Fault::ShuffleGuideOrder | Fault::FlipModelBit => {}
    }
}
