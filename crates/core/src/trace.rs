//! Counterexample traces: turning a satisfying model into a readable
//! concurrent execution.
//!
//! A model fixes every interference variable, hence a total order over the
//! executed events (§3.3's "concrete concurrent execution"). This module
//! extracts that execution — events sorted by their derived clock values,
//! with concrete data — for diagnostics, the CLI's `--trace` output, and
//! the deep validation pass.

use std::fmt;
use zpre_bv::{lits_to_u64, TermKind};
use zpre_encoder::{po_pairs, Encoded};
use zpre_prog::ssa::{EventKind, SsaProgram};
use zpre_prog::{MemoryModel, ReplayOp};
use zpre_sat::{PriorityListGuide, Solver};
use zpre_smt::{OrderTheory, VarKind};

/// One step of a counterexample execution.
#[derive(Clone, Debug)]
pub struct TraceStep {
    /// Global event id.
    pub event: usize,
    /// Executing thread (name index).
    pub thread: usize,
    /// Thread name.
    pub thread_name: String,
    /// Clock (position in the total order).
    pub clock: u32,
    /// Human-readable action, e.g. `W x = 1` / `R y -> 0` / `lock(m)`.
    pub action: String,
    /// The action as a structured replay operation (the certification
    /// layer's schedule entry for this step).
    pub op: ReplayOp,
    /// For reads: the event id of the write it reads from.
    pub reads_from: Option<usize>,
}

/// A counterexample execution.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Executed events in clock order.
    pub steps: Vec<TraceStep>,
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counterexample execution ({} events):", self.steps.len())?;
        for s in &self.steps {
            let rf = s
                .reads_from
                .map(|w| format!("  [rf: e{w}]"))
                .unwrap_or_default();
            writeln!(
                f,
                "  {:>3}. [{}] {}{}",
                s.clock, s.thread_name, s.action, rf
            )?;
        }
        Ok(())
    }
}

/// Extracts the concrete execution from the model of the last `Sat` answer.
///
/// Must only be called right after a `Sat` result, before further solving.
pub(crate) fn extract_trace(
    ssa: &SsaProgram,
    enc: &Encoded,
    solver: &Solver<OrderTheory, PriorityListGuide>,
    mm: MemoryModel,
) -> Trace {
    let ts = &ssa.store;
    let bv_val = |name: &str| -> u64 {
        enc.blaster
            .bv_inputs
            .get(name)
            .map(|bits| lits_to_u64(bits, |l| solver.model_value(l).is_true()))
            .unwrap_or(0)
    };
    let event_value = |eid: usize| -> u64 {
        match ssa.events[eid].kind {
            EventKind::Read { value, .. } | EventKind::Write { value, .. } => {
                match ts.kind(value) {
                    TermKind::BvVar { name, .. } => bv_val(name),
                    _ => 0,
                }
            }
            _ => 0,
        }
    };
    let guard_of = |eid: usize| solver.model_value(enc.guard_lits[eid]).is_true();

    // Rebuild the model's event order and derive clocks.
    let n = ssa.events.len();
    let mut edges = po_pairs(ssa, mm);
    for (v, info) in enc.registry.iter() {
        if !matches!(info.kind, VarKind::Ord | VarKind::Ws) {
            continue;
        }
        let Some((a, b)) = solver.theory.atom_nodes(v) else {
            continue;
        };
        if solver.model_var_value(v).is_true() {
            edges.push((a.0 as usize, b.0 as usize));
        } else {
            edges.push((b.0 as usize, a.0 as usize));
        }
    }
    let clocks = kahn_clocks_stable(n, &edges).unwrap_or_else(|| (0..n as u32).collect());

    let mut steps: Vec<TraceStep> = ssa
        .events
        .iter()
        .filter(|e| guard_of(e.id))
        .map(|e| {
            let var_name = |v: usize| ssa.shared_names[v].clone();
            let (action, op, reads_from) = match &e.kind {
                EventKind::Write { var, .. } => (
                    format!("W {} = {}", var_name(*var), event_value(e.id)),
                    ReplayOp::Write {
                        var: *var,
                        value: event_value(e.id),
                    },
                    None,
                ),
                EventKind::Read { var, .. } => {
                    let rf = enc
                        .rf_vars
                        .iter()
                        .find(|rf| rf.read == e.id && solver.model_var_value(rf.var).is_true())
                        .map(|rf| rf.write);
                    (
                        format!("R {} -> {}", var_name(*var), event_value(e.id)),
                        ReplayOp::Read {
                            var: *var,
                            value: event_value(e.id),
                        },
                        rf,
                    )
                }
                EventKind::Lock { mutex } => (
                    format!("lock(m{mutex})"),
                    ReplayOp::Lock { mutex: *mutex },
                    None,
                ),
                EventKind::Unlock { mutex } => (
                    format!("unlock(m{mutex})"),
                    ReplayOp::Unlock { mutex: *mutex },
                    None,
                ),
                EventKind::Fence => ("fence".to_string(), ReplayOp::Fence, None),
                EventKind::AtomicBegin { .. } => {
                    ("atomic_begin".to_string(), ReplayOp::AtomicBegin, None)
                }
                EventKind::AtomicEnd { .. } => {
                    ("atomic_end".to_string(), ReplayOp::AtomicEnd, None)
                }
                EventKind::Spawn { child } => (
                    format!("spawn({})", ssa.thread_names[*child]),
                    ReplayOp::Spawn { child: *child },
                    None,
                ),
                EventKind::Join { child } => (
                    format!("join({})", ssa.thread_names[*child]),
                    ReplayOp::Join { child: *child },
                    None,
                ),
            };
            TraceStep {
                event: e.id,
                thread: e.thread,
                thread_name: ssa.thread_names[e.thread].clone(),
                clock: clocks[e.id],
                action,
                op,
                reads_from,
            }
        })
        .collect();
    steps.sort_by_key(|s| s.clock);
    Trace { steps }
}

/// Kahn's algorithm with deterministic (smallest-id-first) tie-breaking.
fn kahn_clocks_stable(n: usize, edges: &[(usize, usize)]) -> Option<Vec<u32>> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for &(a, b) in edges {
        adj[a].push(b);
        indeg[b] += 1;
    }
    let mut ready: std::collections::BTreeSet<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut clocks = vec![0u32; n];
    let mut tick = 0u32;
    let mut seen = 0usize;
    while let Some(&x) = ready.iter().next() {
        ready.remove(&x);
        clocks[x] = tick;
        tick += 1;
        seen += 1;
        for &y in &adj[x] {
            indeg[y] -= 1;
            if indeg[y] == 0 {
                ready.insert(y);
            }
        }
    }
    (seen == n).then_some(clocks)
}

#[cfg(test)]
mod tests {

    use crate::{verify, Strategy, Verdict, VerifyOptions};
    use zpre_prog::build::*;

    fn racy() -> zpre_prog::Program {
        let inc = vec![assign("r", v("cnt")), assign("cnt", add(v("r"), c(1)))];
        ProgramBuilder::new("racy")
            .shared("cnt", 0)
            .thread("w1", inc.clone())
            .thread("w2", inc)
            .main(vec![
                spawn(1),
                spawn(2),
                join(1),
                join(2),
                assert_(eq(v("cnt"), c(2))),
            ])
            .build()
    }

    #[test]
    fn unsafe_verdicts_carry_a_trace() {
        let mut opts = VerifyOptions::new(zpre_prog::MemoryModel::Sc, Strategy::Zpre);
        opts.want_trace = true;
        let out = verify(&racy(), &opts);
        assert_eq!(out.verdict, Verdict::Unsafe);
        let trace = out.trace.expect("trace requested");
        assert!(!trace.steps.is_empty());
        // Clocks are strictly increasing.
        for w in trace.steps.windows(2) {
            assert!(w[0].clock < w[1].clock);
        }
        // The lost update is visible: both workers read cnt -> 0.
        let zero_reads = trace
            .steps
            .iter()
            .filter(|s| s.action == "R cnt -> 0" && s.thread_name.starts_with('w'))
            .count();
        assert_eq!(zero_reads, 2, "{trace}");
        // Reads carry their read-from source.
        assert!(trace
            .steps
            .iter()
            .filter(|s| s.action.starts_with('R'))
            .all(|s| s.reads_from.is_some()));
    }

    #[test]
    fn safe_verdicts_have_no_trace() {
        let p = ProgramBuilder::new("safe")
            .shared("x", 0)
            .main(vec![assign("x", c(1)), assert_(eq(v("x"), c(1)))])
            .build();
        let mut opts = VerifyOptions::new(zpre_prog::MemoryModel::Sc, Strategy::Zpre);
        opts.want_trace = true;
        let out = verify(&p, &opts);
        assert_eq!(out.verdict, Verdict::Safe);
        assert!(out.trace.is_none());
    }

    #[test]
    fn trace_respects_program_order_per_thread() {
        let mut opts = VerifyOptions::new(zpre_prog::MemoryModel::Tso, Strategy::Zpre);
        opts.want_trace = true;
        let out = verify(&racy(), &opts);
        let trace = out.trace.expect("trace");
        // Under TSO same-variable accesses of one thread keep their order:
        // each worker's R cnt precedes its W cnt.
        for t in ["w1", "w2"] {
            let read_at = trace
                .steps
                .iter()
                .position(|s| s.thread_name == t && s.action.starts_with("R cnt"));
            let write_at = trace
                .steps
                .iter()
                .position(|s| s.thread_name == t && s.action.starts_with("W cnt"));
            let (Some(r), Some(w)) = (read_at, write_at) else {
                panic!("missing access in {trace}");
            };
            assert!(r < w, "{trace}");
        }
    }

    #[test]
    fn trace_display_is_readable() {
        let mut opts = VerifyOptions::new(zpre_prog::MemoryModel::Sc, Strategy::Zpre);
        opts.want_trace = true;
        let out = verify(&racy(), &opts);
        let text = out.trace.unwrap().to_string();
        assert!(text.contains("counterexample execution"));
        assert!(text.contains("[w1]"));
        assert!(text.contains("W cnt"));
    }
}
