//! `zpre-cli` — verify concurrent programs from `.zc` files.
//!
//! ```text
//! zpre-cli verify FILE [--mm sc|tso|pso|all] [--strategy NAME] [--portfolio]
//!                      [--share] [--share-lbd-max N]
//!                      [--unroll N] [--bmc MAXBOUND]
//!                      [--incremental] [--max-bound K]
//!                      [--budget CONFLICTS] [--seed N] [--stats] [--trace]
//!                      [--profile] [--trace-out FILE] [--trace-sample N]
//!                      [--certify] [--replay-witness] [--prune] [--no-prune]
//!                      [--json]
//! zpre-cli batch  FILE... [--mm sc|tso|pso|all] [--strategy NAME]
//!                      [--max-bound K] [--budget CONFLICTS] [--timeout-ms N]
//!                      [--max-memory-mib N] [--journal FILE] [--resume]
//!                      [--retries N] [--backoff-ms N] [--fault NAME]
//!                      [--kill-after N] [--no-prune] [--json] [--profile]
//!                      [--trace-out FILE]
//! zpre-cli oracle FILE [--mm sc|tso|pso] [--unroll N]
//! zpre-cli dump   FILE [--mm sc|tso|pso] [--unroll N]
//! zpre-cli pretty FILE
//! zpre-cli trace check FILE
//! zpre-cli trace top   FILE [-n N]
//! zpre-cli trace stats FILE [--json]
//! zpre-cli trace flame FILE [--out FILE]
//! zpre-cli trace diff  BASE NEW [--gate-tolerance PCT] [--gate-time]
//!                               [--all] [--json]
//! ```
//!
//! `batch` runs every (file × memory model) pair as one resilient
//! bound-sweep task: budgets abort structurally instead of killing the
//! process, exhausted tasks are retried and degraded down a strategy
//! ladder, and `--journal` checkpoints every solved frame so `--resume`
//! continues an interrupted batch at its first unsolved frame. `--fault`
//! (member-oom, deadline-skew, corrupt-journal) and `--kill-after N` are
//! the chaos-testing injections of the harness.
//!
//! Exit codes (the most severe outcome wins):
//!
//! | code | meaning                                         |
//! |------|-------------------------------------------------|
//! | 0    | every verdict Safe                              |
//! | 1    | some verdict Unsafe                             |
//! | 2    | usage error                                     |
//! | 3    | some verdict Unknown (budgets/ladder exhausted) |
//! | 4    | invalid program or I/O failure                  |
//! | 5    | encoding refused                                |
//! | 6    | model validation failed                         |
//! | 7    | certification failed                            |
//! | 8    | portfolio member panicked                       |
//!
//! `verify` runs the interference-guided SMT pipeline (`--portfolio` races
//! the main strategies plus a polarity-varied ZPRE, first verdict wins;
//! `--incremental` sweeps bounds `1..=K` in one solver via assumption
//! frames instead of re-encoding per bound — compare `--bmc K`);
//! `oracle` runs the explicit-state reference checker (exhaustive, for
//! small programs); `dump` emits the verification condition as SMT-LIB 2;
//! `pretty` parses and re-prints the program.
//!
//! Observability: `--profile` prints a hierarchical per-phase timing report
//! (parse → unroll → SSA → encode per memory model → bit-blast → solve →
//! certify/replay) plus decision histograms by variable class; `--trace-out
//! FILE` additionally streams every solver event (decisions tagged
//! external-RF/internal-RF/WS/other, conflicts, theory lemmas with
//! event-order-graph cycle length, restarts, learnt-DB reductions) as
//! NDJSON; `--trace-sample N` keeps only every Nth decision event (counters
//! stay exact). `trace check` (spelled `trace-check` historically; both
//! work) validates an NDJSON trace file's schema and internal invariants —
//! the CI telemetry smoke job runs it on every example program.
//!
//! The rest of the `trace` family analyzes what `--trace-out` wrote:
//! `trace top` ranks phases by self time, `trace stats` flattens a trace
//! into the named metric map (`--json` emits the one-line `metrics` form
//! used as a CI baseline), `trace flame` exports a collapsed-stack
//! flamegraph (`flamegraph.pl`/inferno format), and `trace diff BASE NEW`
//! compares two traces (or metrics files) under a relative tolerance —
//! exit 0 when the telemetry gate passes, 1 when a gated metric regressed.
//! Tolerance accepts `20%` or `0.2`; wall-clock metrics stay informational
//! unless `--gate-time` is given.
//!
//! `batch --heartbeat N` prints a progress line every N seconds and, with
//! `--metrics-out FILE`, appends a `metrics` snapshot line on the same
//! cadence — a killed batch leaves an inspectable trail, and `--resume`
//! continues appending to it.
//!
//! `--certify` (and its witness-focused alias `--replay-witness`) asks the
//! pipeline to certify definitive verdicts: Safe verdicts carry a
//! RUP-checked proof with every theory lemma independently re-justified,
//! Unsafe verdicts replay their witness through the concrete interpreter.
//! A verdict whose evidence fails certification is reported on stderr and
//! the process exits with failure. `--json` prints one JSON object per
//! memory model instead of the human-readable lines.
//!
//! Static interference pruning (`zpre-analysis`) runs before encoding by
//! default: must-happen-before, lockset, and thread-locality analyses
//! remove provably redundant `V_rf`/`V_ws` selectors. `--no-prune`
//! reproduces the historic unpruned encoding (`--prune` restates the
//! default); under `--certify`, every pruned pair's justification is
//! re-verified by an independent checker before the smaller encoding is
//! trusted.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;
use zpre::{
    run_batch, try_verify, try_verify_sweep, verify_bmc, verify_portfolio, BatchFault,
    BatchOptions, BatchTask, Certificate, PortfolioOptions, ShareConfig, Strategy, Verdict,
    VerifyError, VerifyOptions,
};
use zpre_obs::{profile_report, Recorder, TraceConfig};
use zpre_prog::interp::{check_sc, Limits, Outcome};
use zpre_prog::wmm::check_wmm;
use zpre_prog::{flatten, parse_program_traced, pretty, unroll_program, MemoryModel, Program};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  zpre-cli verify FILE [--mm sc|tso|pso|all] [--strategy NAME] [--portfolio] \
         [--share] [--share-lbd-max N] \
         [--unroll N] [--bmc MAXBOUND] [--incremental] [--max-bound K] \
         [--budget CONFLICTS] [--seed N] [--stats] [--trace] \
         [--profile] [--trace-out FILE] [--trace-sample N] \
         [--certify] [--replay-witness] [--prune] [--no-prune] [--json]\n  \
         zpre-cli batch FILE... [--mm sc|tso|pso|all] [--strategy NAME] [--max-bound K] \
         [--budget CONFLICTS] [--timeout-ms N] [--max-memory-mib N] [--journal FILE] \
         [--resume] [--retries N] [--backoff-ms N] [--fault member-oom|deadline-skew|\
corrupt-journal] [--kill-after N] [--heartbeat SECS] [--metrics-out FILE] [--no-prune] \
         [--json] [--profile] [--trace-out FILE]\n  \
         zpre-cli oracle FILE [--mm sc|tso|pso] [--unroll N]\n  \
         zpre-cli dump FILE [--mm sc|tso|pso] [--unroll N]\n  \
         zpre-cli pretty FILE\n  \
         zpre-cli trace check FILE\n  \
         zpre-cli trace top FILE [-n N]\n  \
         zpre-cli trace stats FILE [--json]\n  \
         zpre-cli trace flame FILE [--out FILE]\n  \
         zpre-cli trace diff BASE NEW [--gate-tolerance PCT] [--gate-time] [--all] \
         [--json]\n\nstrategies: baseline zpre- zpre zpre-h2 zpre-h3 \
         zpre-fixed-true zpre-no-revprop zpre-dfs-check zpre-noprune branch-cond"
    );
    ExitCode::from(2)
}

/// Maps every [`VerifyError`] variant to its own non-zero exit code (see
/// the table in the crate docs).
fn exit_for_error(e: &VerifyError) -> ExitCode {
    ExitCode::from(match e {
        VerifyError::Exhausted(_) => 3,
        VerifyError::InvalidProgram(_) => 4,
        VerifyError::Encode(_) => 5,
        VerifyError::ModelValidation(_) => 6,
        VerifyError::Certification { .. } => 7,
        VerifyError::MemberPanic { .. } => 8,
    })
}

/// Fetches the value of flag `flag` from `args[*i + 1]`, advancing the
/// cursor — the safe replacement for the old `i += 1; args[i]` pattern
/// that panicked when a flag was the last argument.
fn flag_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, String> {
    *i += 1;
    args.get(*i)
        .map(String::as_str)
        .ok_or_else(|| format!("{flag} requires a value"))
}

/// Parses a flag's value, rejecting (instead of silently defaulting on)
/// malformed input.
fn flag_parse<T: std::str::FromStr>(
    args: &[String],
    i: &mut usize,
    flag: &str,
) -> Result<T, String> {
    let raw = flag_value(args, i, flag)?;
    raw.parse()
        .map_err(|_| format!("{flag}: invalid value {raw:?}"))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON fragment describing a certificate (or its absence).
fn certificate_json(cert: Option<&Certificate>) -> String {
    match cert {
        Some(Certificate::Safe {
            lemmas_checked,
            proof_steps,
        }) => format!(
            "{{\"kind\":\"safe\",\"lemmas_checked\":{lemmas_checked},\
             \"proof_steps\":{proof_steps},\"rup\":\"ok\"}}"
        ),
        Some(Certificate::Unsafe { replayed_steps }) => format!(
            "{{\"kind\":\"unsafe\",\"replayed_steps\":{replayed_steps},\"replay\":\"confirmed\"}}"
        ),
        None => "null".to_string(),
    }
}

fn parse_strategy(name: &str) -> Option<Strategy> {
    Strategy::ALL.into_iter().find(|s| s.name() == name)
}

fn parse_mm(name: &str) -> Option<Vec<MemoryModel>> {
    match name {
        "sc" => Some(vec![MemoryModel::Sc]),
        "tso" => Some(vec![MemoryModel::Tso]),
        "pso" => Some(vec![MemoryModel::Pso]),
        "all" => Some(MemoryModel::ALL.to_vec()),
        _ => None,
    }
}

fn load(path: &str) -> Result<Program, String> {
    load_traced(path, None)
}

fn load_traced(path: &str, rec: Option<&Recorder>) -> Result<Program, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut program = parse_program_traced(&src, rec).map_err(|e| e.to_string())?;
    program.name = std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "program".to_string());
    program.validate().map_err(|e| e.to_string())?;
    Ok(program)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "verify" => cmd_verify(&args[1..]),
        "batch" => cmd_batch(&args[1..]),
        "oracle" => cmd_oracle(&args[1..]),
        "dump" => cmd_dump(&args[1..]),
        "pretty" => cmd_pretty(&args[1..]),
        "trace" => cmd_trace(&args[1..]),
        // Historical spelling, kept because CI scripts use it.
        "trace-check" => cmd_trace_check(&args[1..]),
        _ => usage(),
    }
}

/// The trace analytics family: everything that consumes an NDJSON trace
/// file after the fact.
fn cmd_trace(args: &[String]) -> ExitCode {
    let Some(sub) = args.first() else {
        return usage();
    };
    match sub.as_str() {
        "check" => cmd_trace_check(&args[1..]),
        "top" => cmd_trace_top(&args[1..]),
        "stats" => cmd_trace_stats(&args[1..]),
        "flame" => cmd_trace_flame(&args[1..]),
        "diff" => cmd_trace_diff(&args[1..]),
        _ => usage(),
    }
}

/// The resilient batch runner: every (file × memory model) pair becomes one
/// bound-sweep task of `zpre::harness::run_batch`. Files that fail to load
/// are reported and skipped — a bad input degrades the batch, it does not
/// stop it.
fn cmd_batch(args: &[String]) -> ExitCode {
    let mut files: Vec<String> = Vec::new();
    let mut mms = vec![MemoryModel::Sc];
    let mut strategy = Strategy::Zpre;
    let mut max_bound = 6u32;
    let mut opts = BatchOptions::default();
    let mut json = false;
    let mut profile = false;
    let mut trace_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--mm" => match flag_value(args, &mut i, "--mm").map(parse_mm) {
                Ok(Some(m)) => mms = m,
                _ => return usage(),
            },
            "--strategy" => match flag_value(args, &mut i, "--strategy").map(parse_strategy) {
                Ok(Some(s)) => strategy = s,
                _ => return usage(),
            },
            "--max-bound" => match flag_parse(args, &mut i, "--max-bound") {
                Ok(k) if k >= 1 => max_bound = k,
                _ => return usage(),
            },
            "--budget" => match flag_parse(args, &mut i, "--budget") {
                Ok(n) => opts.max_conflicts = Some(n),
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            },
            "--timeout-ms" => match flag_parse(args, &mut i, "--timeout-ms") {
                Ok(ms) => opts.timeout = Some(Duration::from_millis(ms)),
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            },
            "--max-memory-mib" => match flag_parse::<u64>(args, &mut i, "--max-memory-mib") {
                Ok(mib) => opts.max_memory = Some(mib.saturating_mul(1 << 20)),
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            },
            "--seed" => match flag_parse(args, &mut i, "--seed") {
                Ok(n) => opts.seed = n,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            },
            "--journal" => match flag_value(args, &mut i, "--journal") {
                Ok(f) => opts.journal = Some(PathBuf::from(f)),
                Err(_) => return usage(),
            },
            "--resume" => opts.resume = true,
            "--retries" => match flag_parse(args, &mut i, "--retries") {
                Ok(n) => opts.max_retries = n,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            },
            "--backoff-ms" => match flag_parse(args, &mut i, "--backoff-ms") {
                Ok(ms) => opts.backoff = Duration::from_millis(ms),
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            },
            "--fault" => match flag_value(args, &mut i, "--fault") {
                Ok("member-oom") => opts.fault = Some(BatchFault::MemberOom),
                Ok("deadline-skew") => opts.fault = Some(BatchFault::DeadlineSkew),
                Ok("corrupt-journal") => opts.fault = Some(BatchFault::CorruptJournal),
                _ => return usage(),
            },
            "--kill-after" => match flag_parse(args, &mut i, "--kill-after") {
                Ok(n) => opts.fault = Some(BatchFault::MidBatchKill(n)),
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            },
            "--heartbeat" => match flag_parse::<u64>(args, &mut i, "--heartbeat") {
                Ok(secs) if secs >= 1 => opts.heartbeat = Some(Duration::from_secs(secs)),
                _ => return usage(),
            },
            "--metrics-out" => match flag_value(args, &mut i, "--metrics-out") {
                Ok(f) => opts.metrics_out = Some(PathBuf::from(f)),
                Err(_) => return usage(),
            },
            "--prune" => opts.prune = true,
            "--no-prune" => opts.prune = false,
            "--json" => json = true,
            "--profile" => profile = true,
            "--trace-out" => match flag_value(args, &mut i, "--trace-out") {
                Ok(f) => trace_out = Some(f.to_owned()),
                Err(_) => return usage(),
            },
            flag if flag.starts_with("--") => return usage(),
            file => files.push(file.to_owned()),
        }
        i += 1;
    }
    if files.is_empty() {
        return usage();
    }
    let recorder = (profile || trace_out.is_some()).then(|| {
        Recorder::new(TraceConfig {
            events: trace_out.is_some(),
            decision_sample: 1,
        })
    });
    opts.recorder = recorder.clone();

    let mut tasks: Vec<BatchTask> = Vec::new();
    let mut load_errors = 0usize;
    for file in &files {
        match load(file) {
            Ok(p) => {
                for mm in &mms {
                    tasks.push(BatchTask::new(p.clone(), *mm, strategy, max_bound));
                }
            }
            Err(e) => {
                eprintln!("{e}");
                load_errors += 1;
            }
        }
    }
    if tasks.is_empty() {
        return ExitCode::from(4);
    }

    let out = run_batch(&tasks, &opts);
    for r in &out.reports {
        if json {
            let ladder: Vec<String> = r
                .ladder
                .iter()
                .map(|rec| {
                    let verdict = rec
                        .verdict
                        .map(|v| format!("\"{v}\""))
                        .unwrap_or_else(|| "null".to_string());
                    let exh = rec
                        .exhaustion
                        .map(|x| format!("\"{x}\""))
                        .unwrap_or_else(|| "null".to_string());
                    let error = rec
                        .error
                        .as_deref()
                        .map(|e| format!("\"{}\"", json_escape(e)))
                        .unwrap_or_else(|| "null".to_string());
                    format!(
                        "{{\"rung\":\"{}\",\"strategy\":\"{}\",\"bound\":{},\
                         \"attempt\":{},\"verdict\":{},\"exhaustion\":{},\"error\":{}}}",
                        rec.rung.name(),
                        rec.strategy,
                        rec.bound,
                        rec.attempt,
                        verdict,
                        exh,
                        error,
                    )
                })
                .collect();
            let exh = r
                .exhaustion
                .map(|x| format!("\"{x}\""))
                .unwrap_or_else(|| "null".to_string());
            let resumed = r
                .resumed_at
                .map(|b| b.to_string())
                .unwrap_or_else(|| "null".to_string());
            println!(
                "{{\"task\":\"{}\",\"verdict\":\"{}\",\"bound\":{},\
                 \"from_journal\":{},\"resumed_at\":{},\"exhaustion\":{},\"ladder\":[{}]}}",
                json_escape(&r.key),
                r.verdict,
                r.bound,
                r.from_journal,
                resumed,
                exh,
                ladder.join(","),
            );
        } else {
            let mut notes = String::new();
            if r.from_journal {
                notes.push_str(" (from journal)");
            }
            if let Some(b) = r.resumed_at {
                notes.push_str(&format!(" (resumed at k={b})"));
            }
            if let Some(x) = r.exhaustion {
                notes.push_str(&format!(" ({x})"));
            }
            println!("{}: {} at bound {}{}", r.key, r.verdict, r.bound, notes);
            if r.ladder.len() > 1 {
                for rec in &r.ladder {
                    let what = rec
                        .verdict
                        .map(|v| v.to_string())
                        .or_else(|| rec.error.clone())
                        .unwrap_or_else(|| "failed".to_string());
                    let why = rec
                        .exhaustion
                        .map(|x| format!(" ({x})"))
                        .unwrap_or_default();
                    println!(
                        "  rung {} [{} k<={}] attempt {}: {}{}",
                        rec.rung.name(),
                        rec.strategy,
                        rec.bound,
                        rec.attempt,
                        what,
                        why
                    );
                }
            }
        }
    }
    if !json {
        println!(
            "batch: {} tasks ({} solved, {} from journal), {} retries, {} degradations{}",
            out.reports.len(),
            out.tasks_run,
            out.tasks_skipped,
            out.retries,
            out.degradations,
            if out.interrupted {
                " — interrupted"
            } else {
                ""
            }
        );
    }
    if let Some(e) = &out.journal_error {
        eprintln!("warning: {e}");
    }
    if let Some(rec) = &recorder {
        let snapshot = rec.snapshot();
        if let Some(file) = &trace_out {
            let ndjson = zpre_obs::ndjson::to_ndjson(&snapshot);
            if let Err(e) = std::fs::write(file, ndjson) {
                eprintln!("cannot write trace to {file}: {e}");
                return ExitCode::from(4);
            }
        }
        if profile {
            print!("{}", profile_report(&snapshot));
        }
    }

    let any_unsafe = out.reports.iter().any(|r| r.verdict == Verdict::Unsafe);
    let any_unknown = out.reports.iter().any(|r| r.verdict == Verdict::Unknown);
    if any_unsafe {
        ExitCode::from(1)
    } else if load_errors > 0 {
        ExitCode::from(4)
    } else if any_unknown || out.interrupted {
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    }
}

/// Validates an NDJSON trace file produced by `verify --trace-out` and
/// prints a one-screen summary of what it contains. Exits nonzero on any
/// schema or invariant violation, so CI can gate on it.
fn cmd_trace_check(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(4);
        }
    };
    match zpre_obs::ndjson::validate(&text) {
        Ok(report) => {
            println!(
                "{path}: ok ({} block{}, {} spans, {} events, {} members)",
                report.blocks,
                if report.blocks == 1 { "" } else { "s" },
                report.spans,
                report.events,
                report.members,
            );
            println!("  phases: {}", report.phases_seen.join(" "));
            let d = &report.decisions_by_class;
            println!(
                "  decisions: rf_ext {} rf_int {} ws {} other {}  conflicts {}  lemmas {}",
                d[0], d[1], d[2], d[3], report.conflicts, report.lemmas
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: invalid trace: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Reads `path` and parses its trace blocks; any failure is reported and
/// mapped to exit code 4 (I/O / invalid input).
fn load_trace_blocks(path: &str) -> Result<Vec<zpre_obs::TraceSnapshot>, ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("cannot read {path}: {e}");
        ExitCode::from(4)
    })?;
    zpre_obs::analyze::load_blocks(&text).map_err(|e| {
        eprintln!("{path}: {e}");
        ExitCode::from(4)
    })
}

/// Collapsed stacks summed across every block in the trace (a batch or
/// multi-model run writes several), deterministic lexicographic order.
fn merged_stacks(blocks: &[zpre_obs::TraceSnapshot]) -> Vec<(String, u64)> {
    let mut acc: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for b in blocks {
        for (stack, self_us) in zpre_obs::flame::stack_entries(b) {
            *acc.entry(stack).or_insert(0) += self_us;
        }
    }
    acc.into_iter().collect()
}

/// Ranks span stacks by self time — the "where did the time go" one-liner.
fn cmd_trace_top(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let mut n = 10usize;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "-n" => match flag_parse(args, &mut i, "-n") {
                Ok(k) if k >= 1 => n = k,
                _ => return usage(),
            },
            _ => return usage(),
        }
        i += 1;
    }
    let blocks = match load_trace_blocks(path) {
        Ok(b) => b,
        Err(code) => return code,
    };
    let mut entries = merged_stacks(&blocks);
    entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let total: u64 = entries.iter().map(|(_, v)| v).sum();
    println!("{:>12} {:>6}  stack", "self_us", "share");
    for (stack, self_us) in entries.iter().take(n) {
        let share = if total > 0 {
            100.0 * *self_us as f64 / total as f64
        } else {
            0.0
        };
        println!("{self_us:>12} {share:>5.1}%  {stack}");
    }
    if entries.len() > n {
        println!("  ... {} more stacks ({total} us total)", entries.len() - n);
    }
    ExitCode::SUCCESS
}

/// Flattens a trace into the named metric map; `--json` prints the one-line
/// `metrics` form that doubles as a CI baseline file.
fn cmd_trace_stats(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let mut json = false;
    for a in &args[1..] {
        match a.as_str() {
            "--json" => json = true,
            _ => return usage(),
        }
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(4);
        }
    };
    let stats = match zpre_obs::analyze::load_stats(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(4);
        }
    };
    if json {
        println!("{}", stats.to_metrics_line());
    } else {
        println!("{:<24} {:>12}", "metric", "value");
        for (name, value) in &stats.metrics {
            println!("{name:<24} {value:>12}");
        }
    }
    ExitCode::SUCCESS
}

/// Exports the collapsed-stack flamegraph (`flamegraph.pl`/inferno input).
fn cmd_trace_flame(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let mut out: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => match flag_value(args, &mut i, "--out") {
                Ok(f) => out = Some(f.to_owned()),
                Err(_) => return usage(),
            },
            _ => return usage(),
        }
        i += 1;
    }
    let blocks = match load_trace_blocks(path) {
        Ok(b) => b,
        Err(code) => return code,
    };
    let mut text = String::new();
    for (stack, self_us) in merged_stacks(&blocks) {
        text.push_str(&format!("{stack} {self_us}\n"));
    }
    match out {
        Some(file) => {
            if let Err(e) = std::fs::write(&file, &text) {
                eprintln!("cannot write {file}: {e}");
                return ExitCode::from(4);
            }
            eprintln!("flame: {} stacks -> {file}", text.lines().count());
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

/// `--gate-tolerance` accepts `20%` or a fraction `0.2`; bare numbers >= 1
/// are read as percentages since a 100%+ fractional tolerance is useless.
fn parse_tolerance(raw: &str) -> Option<f64> {
    let (num, percent) = match raw.strip_suffix('%') {
        Some(n) => (n, true),
        None => (raw, false),
    };
    let v: f64 = num.parse().ok()?;
    if !v.is_finite() || v < 0.0 {
        return None;
    }
    Some(if percent || v >= 1.0 { v / 100.0 } else { v })
}

/// The telemetry regression gate: compares two traces (or `metrics`-line
/// baselines) and exits 1 when a gated metric moved the wrong way beyond
/// tolerance.
fn cmd_trace_diff(args: &[String]) -> ExitCode {
    let mut paths: Vec<&str> = Vec::new();
    let mut opts = zpre_obs::DiffOptions::default();
    let mut json = false;
    let mut all = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--gate-tolerance" => match flag_value(args, &mut i, "--gate-tolerance") {
                Ok(raw) => match parse_tolerance(raw) {
                    Some(t) => opts.tolerance = t,
                    None => {
                        eprintln!("--gate-tolerance: invalid value {raw:?}");
                        return usage();
                    }
                },
                Err(_) => return usage(),
            },
            "--gate-time" => opts.gate_time = true,
            "--json" => json = true,
            "--all" => all = true,
            flag if flag.starts_with("--") => return usage(),
            path => paths.push(path),
        }
        i += 1;
    }
    let [base_path, new_path] = paths.as_slice() else {
        return usage();
    };
    let load = |path: &str| -> Result<zpre_obs::analyze::TraceStats, ExitCode> {
        let text = std::fs::read_to_string(path).map_err(|e| {
            eprintln!("cannot read {path}: {e}");
            ExitCode::from(4)
        })?;
        zpre_obs::analyze::load_stats(&text).map_err(|e| {
            eprintln!("{path}: {e}");
            ExitCode::from(4)
        })
    };
    let (base, new) = match (load(base_path), load(new_path)) {
        (Ok(b), Ok(n)) => (b, n),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let report = zpre_obs::diff::diff(&base, &new, &opts);
    if json {
        print!("{}", report.to_ndjson());
    } else {
        print!("{}", report.render(all));
    }
    if report.gate_failed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_pretty(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    match load(path) {
        Ok(p) => {
            print!("{}", pretty::pretty_program(&p));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(4)
        }
    }
}

fn cmd_dump(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let mut mm = MemoryModel::Sc;
    let mut unroll = 2u32;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--mm" => match flag_value(args, &mut i, "--mm").map(parse_mm) {
                Ok(Some(ref ms)) if ms.len() == 1 => mm = ms[0],
                _ => return usage(),
            },
            "--unroll" => match flag_parse(args, &mut i, "--unroll") {
                Ok(n) => unroll = n,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            },
            _ => return usage(),
        }
        i += 1;
    }
    match load(path) {
        Ok(p) => {
            let ssa = zpre_prog::to_ssa(&unroll_program(&p, unroll));
            print!("{}", zpre_encoder::dump_smtlib(&ssa, mm));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(4)
        }
    }
}

fn cmd_oracle(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let mut mms = vec![MemoryModel::Sc];
    let mut unroll = 2u32;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--mm" => match flag_value(args, &mut i, "--mm").map(parse_mm) {
                Ok(Some(m)) => mms = m,
                _ => return usage(),
            },
            "--unroll" => match flag_parse(args, &mut i, "--unroll") {
                Ok(n) => unroll = n,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            },
            _ => return usage(),
        }
        i += 1;
    }
    let program = match load(path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(4);
        }
    };
    let fp = flatten(&unroll_program(&program, unroll));
    for mm in mms {
        let outcome = match mm {
            MemoryModel::Sc => check_sc(&fp, Limits::default()),
            _ => check_wmm(&fp, mm, Limits::default()),
        };
        let text = match outcome {
            Outcome::Safe => "safe",
            Outcome::Unsafe => "unsafe",
            Outcome::ResourceLimit => "resource-limit",
        };
        println!(
            "{}: {} ({} oracle, unroll {})",
            program.name,
            text,
            mm.name(),
            unroll
        );
    }
    ExitCode::SUCCESS
}

fn cmd_verify(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let mut mms = vec![MemoryModel::Sc];
    let mut strategy = Strategy::Zpre;
    let mut unroll = 2u32;
    let mut bmc: Option<u32> = None;
    let mut incremental = false;
    let mut max_bound = 6u32;
    let mut budget: Option<u64> = None;
    let mut seed = 0xC0FFEEu64;
    let mut show_stats = false;
    let mut want_trace = false;
    let mut portfolio = false;
    let mut share = false;
    let mut share_lbd_max: Option<u32> = None;
    let mut certify = false;
    let mut json = false;
    let mut profile = false;
    let mut prune = true;
    let mut trace_out: Option<String> = None;
    let mut trace_sample = 1u32;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--mm" => match flag_value(args, &mut i, "--mm").map(parse_mm) {
                Ok(Some(m)) => mms = m,
                _ => return usage(),
            },
            "--strategy" => match flag_value(args, &mut i, "--strategy").map(parse_strategy) {
                Ok(Some(s)) => strategy = s,
                _ => return usage(),
            },
            "--unroll" => match flag_parse(args, &mut i, "--unroll") {
                Ok(n) => unroll = n,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            },
            "--bmc" => match flag_parse(args, &mut i, "--bmc") {
                Ok(n) => bmc = Some(n),
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            },
            "--incremental" => incremental = true,
            "--max-bound" => match flag_parse(args, &mut i, "--max-bound") {
                Ok(k) if k >= 1 => max_bound = k,
                _ => return usage(),
            },
            "--budget" => match flag_parse(args, &mut i, "--budget") {
                Ok(n) => budget = Some(n),
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            },
            "--seed" => match flag_parse(args, &mut i, "--seed") {
                Ok(n) => seed = n,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            },
            "--stats" => show_stats = true,
            "--trace" => want_trace = true,
            "--profile" => profile = true,
            "--trace-out" => match flag_value(args, &mut i, "--trace-out") {
                Ok(f) => trace_out = Some(f.to_owned()),
                Err(_) => return usage(),
            },
            "--trace-sample" => match flag_parse(args, &mut i, "--trace-sample") {
                Ok(n) if n >= 1 => trace_sample = n,
                _ => return usage(),
            },
            "--portfolio" => portfolio = true,
            "--share" => share = true,
            "--share-lbd-max" => match flag_parse(args, &mut i, "--share-lbd-max") {
                Ok(n) if n >= 1 => share_lbd_max = Some(n),
                _ => return usage(),
            },
            "--certify" | "--replay-witness" => certify = true,
            "--prune" => prune = true,
            "--no-prune" => prune = false,
            "--json" => json = true,
            _ => return usage(),
        }
        i += 1;
    }
    if portfolio && bmc.is_some() {
        eprintln!("--portfolio cannot be combined with --bmc");
        return usage();
    }
    if (share || share_lbd_max.is_some()) && !portfolio {
        eprintln!("--share/--share-lbd-max require --portfolio (sharing needs members)");
        return usage();
    }
    if certify && bmc.is_some() {
        eprintln!("--certify cannot be combined with --bmc");
        return usage();
    }
    if incremental && (portfolio || certify || bmc.is_some()) {
        eprintln!("--incremental cannot be combined with --portfolio, --certify, or --bmc");
        return usage();
    }
    // One recorder spans the whole invocation (even `--mm all`): encode
    // spans are labeled per memory model, so a single NDJSON block carries
    // the full run. Event storage is only paid for when a trace file is
    // requested; `--profile` alone needs just spans and counters.
    let recorder = (profile || trace_out.is_some()).then(|| {
        Recorder::new(TraceConfig {
            events: trace_out.is_some(),
            decision_sample: trace_sample,
        })
    });
    let program = match load_traced(path, recorder.as_ref()) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(4);
        }
    };

    let mut any_unsafe = false;
    let mut any_unknown = false;
    for mm in mms {
        let opts = VerifyOptions {
            mm,
            strategy,
            unroll_bound: unroll,
            max_bound,
            max_conflicts: budget,
            timeout: None,
            max_memory: None,
            seed,
            prune,
            validate_models: true,
            want_trace,
            cancel: None,
            certify,
            fault: None,
            recorder: recorder.clone(),
            share: None,
        };
        if portfolio {
            let mut folio_opts = PortfolioOptions::new(opts);
            if share || share_lbd_max.is_some() {
                let cfg = share_lbd_max
                    .map(ShareConfig::with_lbd_max)
                    .unwrap_or_default();
                folio_opts = folio_opts.with_share(cfg);
            }
            let folio = verify_portfolio(&program, &folio_opts);
            let verdict = folio.verdict();
            if json {
                let winner = folio
                    .winner
                    .as_deref()
                    .map(|w| format!("\"{}\"", json_escape(w)))
                    .unwrap_or_else(|| "null".to_string());
                let quarantined: Vec<String> = folio
                    .quarantined
                    .iter()
                    .map(|q| format!("\"{}\"", json_escape(q)))
                    .collect();
                let reason = folio
                    .unknown_reason
                    .as_deref()
                    .map(|r| format!("\"{}\"", json_escape(r)))
                    .unwrap_or_else(|| "null".to_string());
                println!(
                    "{{\"program\":\"{}\",\"mm\":\"{}\",\"mode\":\"portfolio\",\
                     \"verdict\":\"{}\",\"winner\":{},\"quarantined\":[{}],\
                     \"unknown_reason\":{},\"certificate\":{},\"solve_time_ms\":{:.3}}}",
                    json_escape(&program.name),
                    mm.name(),
                    verdict,
                    winner,
                    quarantined.join(","),
                    reason,
                    certificate_json(folio.outcome.certificate.as_ref()),
                    folio.outcome.solve_time.as_secs_f64() * 1e3,
                );
            } else {
                if let Some(trace) = &folio.outcome.trace {
                    print!("{trace}");
                }
                let winner = folio.winner.as_deref().unwrap_or("none");
                println!(
                    "{}: {} under {} with portfolio (winner {}) [{:.2?}]",
                    program.name, verdict, mm, winner, folio.outcome.solve_time
                );
                if let Some(cert) = &folio.outcome.certificate {
                    println!("  certificate: {}", cert.summary());
                }
                if !folio.quarantined.is_empty() {
                    println!("  quarantined: {}", folio.quarantined.join(", "));
                }
                if let Some(reason) = &folio.unknown_reason {
                    println!("  unknown reason: {reason}");
                }
                if show_stats {
                    for m in &folio.members {
                        println!(
                            "  {:<16} {:<8} [{:.2?}]{}{}",
                            m.name,
                            m.verdict.to_string(),
                            m.time,
                            if m.cancelled { " (cancelled)" } else { "" },
                            m.error
                                .as_deref()
                                .map(|e| format!(" (quarantined: {e})"))
                                .unwrap_or_default()
                        );
                    }
                    if let Some(latency) = folio.cancel_latency {
                        println!("  cancellation latency {latency:.2?}");
                    }
                }
            }
            any_unsafe |= verdict == Verdict::Unsafe;
            any_unknown |= verdict == Verdict::Unknown;
            continue;
        }
        if incremental {
            let sweep = match try_verify_sweep(&program, &opts) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{}: verdict rejected under {}: {e}", program.name, mm);
                    return exit_for_error(&e);
                }
            };
            if json {
                let frames: Vec<String> = sweep
                    .frames
                    .iter()
                    .map(|f| {
                        format!(
                            "{{\"bound\":{},\"verdict\":\"{}\",\"conflicts\":{},\
                             \"decisions\":{},\"reused_learnts\":{},\"reused_conflicts\":{},\
                             \"solve_time_ms\":{:.3}}}",
                            f.bound,
                            f.verdict,
                            f.conflicts,
                            f.decisions,
                            f.reused_learnts,
                            f.reused_conflicts,
                            f.solve_time.as_secs_f64() * 1e3,
                        )
                    })
                    .collect();
                println!(
                    "{{\"program\":\"{}\",\"mm\":\"{}\",\"strategy\":\"{}\",\
                     \"mode\":\"incremental\",\"verdict\":\"{}\",\"bound\":{},\
                     \"events\":{},\"vars\":{},\"decisions\":{},\"conflicts\":{},\
                     \"solve_time_ms\":{:.3},\"frames\":[{}]}}",
                    json_escape(&program.name),
                    mm.name(),
                    strategy,
                    sweep.verdict,
                    sweep.bound,
                    sweep.num_events,
                    sweep.num_solver_vars,
                    sweep.stats.decisions,
                    sweep.stats.conflicts,
                    sweep.solve_time.as_secs_f64() * 1e3,
                    frames.join(","),
                );
            } else {
                if let Some(trace) = &sweep.trace {
                    print!("{trace}");
                }
                println!(
                    "{}: {} under {} with {} incremental sweep to bound {} [{:.2?}]",
                    program.name, sweep.verdict, mm, strategy, sweep.bound, sweep.solve_time
                );
                if show_stats {
                    println!(
                        "  events {}  vars {}  (ssa {}, ord {}, rf {}, ws {})",
                        sweep.num_events,
                        sweep.num_solver_vars,
                        sweep.class_counts.ssa,
                        sweep.class_counts.ord,
                        sweep.class_counts.rf,
                        sweep.class_counts.ws
                    );
                    for f in &sweep.frames {
                        println!(
                            "  frame k={:<2} {:<8} conflicts {:<8} decisions {:<8} \
                             reused learnts {:<6} reused conflicts {:<8} [{:.2?}]",
                            f.bound,
                            f.verdict.to_string(),
                            f.conflicts,
                            f.decisions,
                            f.reused_learnts,
                            f.reused_conflicts,
                            f.solve_time
                        );
                    }
                }
            }
            any_unsafe |= sweep.verdict == Verdict::Unsafe;
            any_unknown |= sweep.verdict == Verdict::Unknown;
            continue;
        }
        let (verdict, outcome, bound) = if let Some(max_bound) = bmc {
            let sweep = verify_bmc(&program, max_bound, &opts);
            let bound = sweep.bound;
            let (_, last) = sweep
                .per_bound
                .into_iter()
                .last()
                .expect("at least one bound");
            (sweep.verdict, last, Some(bound))
        } else {
            match try_verify(&program, &opts) {
                Ok(out) => (out.verdict, out, None),
                Err(e) => {
                    eprintln!("{}: verdict rejected under {}: {e}", program.name, mm);
                    return exit_for_error(&e);
                }
            }
        };
        if json {
            println!(
                "{{\"program\":\"{}\",\"mm\":\"{}\",\"strategy\":\"{}\",\"verdict\":\"{}\",\
                 \"certificate\":{},\"events\":{},\"vars\":{},\"decisions\":{},\
                 \"conflicts\":{},\"solve_time_ms\":{:.3}}}",
                json_escape(&program.name),
                mm.name(),
                strategy,
                verdict,
                certificate_json(outcome.certificate.as_ref()),
                outcome.num_events,
                outcome.num_solver_vars,
                outcome.stats.decisions,
                outcome.stats.conflicts,
                outcome.solve_time.as_secs_f64() * 1e3,
            );
        } else {
            if let Some(trace) = &outcome.trace {
                print!("{trace}");
            }
            let bound_note = bound.map_or(String::new(), |b| format!(" at bound {b}"));
            println!(
                "{}: {} under {} with {}{} [{:.2?}]",
                program.name, verdict, mm, strategy, bound_note, outcome.solve_time
            );
            if let Some(cert) = &outcome.certificate {
                println!("  certificate: {}", cert.summary());
            }
            if show_stats {
                println!(
                    "  events {}  vars {}  (ssa {}, ord {}, rf {}, ws {})",
                    outcome.num_events,
                    outcome.num_solver_vars,
                    outcome.class_counts.ssa,
                    outcome.class_counts.ord,
                    outcome.class_counts.rf,
                    outcome.class_counts.ws
                );
                println!(
                    "  decisions {} (guided {})  propagations {}  conflicts {}  restarts {}",
                    outcome.stats.decisions,
                    outcome.stats.guided_decisions,
                    outcome.stats.propagations,
                    outcome.stats.conflicts,
                    outcome.stats.restarts
                );
            }
        }
        any_unsafe |= verdict == Verdict::Unsafe;
        any_unknown |= verdict == Verdict::Unknown;
    }
    if let Some(rec) = &recorder {
        let snapshot = rec.snapshot();
        if let Some(file) = &trace_out {
            let ndjson = zpre_obs::ndjson::to_ndjson(&snapshot);
            if let Err(e) = std::fs::write(file, ndjson) {
                eprintln!("cannot write trace to {file}: {e}");
                return ExitCode::from(4);
            }
            eprintln!(
                "trace: {} spans, {} events -> {file}",
                snapshot.spans.len(),
                snapshot.events.len()
            );
        }
        if profile {
            print!("{}", profile_report(&snapshot));
        }
    }
    if any_unsafe {
        ExitCode::from(1)
    } else if any_unknown {
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    }
}
