//! Property test for portfolio clause sharing: a shared portfolio must
//! agree with an isolated one on every verdict, across random programs,
//! strategy combinations, seeds, and sharing policies. Every member
//! solves the identical CNF+theory instance, so shared clauses are
//! logical consequences and can never flip a verdict — this test pins
//! that invariant against regressions in the export filter, the import
//! path, or the pool itself.

use proptest::prelude::*;
use zpre::{
    verify_portfolio, PortfolioMember, PortfolioOptions, ShareConfig, Strategy, Verdict,
    VerifyOptions,
};
use zpre_prog::build::*;
use zpre_prog::{MemoryModel, Program, Stmt};

/// `threads` workers race `steps` lossy increments on a shared counter;
/// the assertion is safe (`cnt <= threads*steps` holds always) or unsafe
/// (`cnt == threads*steps` misses when an update is lost).
fn racy_counter(threads: usize, steps: u64, safe: bool) -> Program {
    let body: Vec<Stmt> = (0..steps)
        .flat_map(|_| vec![assign("r", v("cnt")), assign("cnt", add(v("r"), c(1)))])
        .collect();
    let total = threads as u64 * steps;
    let check = if safe {
        assert_(le(v("cnt"), c(total)))
    } else {
        assert_(eq(v("cnt"), c(total)))
    };
    let mut b = ProgramBuilder::new("prop-share").shared("cnt", 0);
    for t in 0..threads {
        b = b.thread(&format!("w{t}"), body.clone());
    }
    let mut main: Vec<Stmt> = (1..=threads).map(spawn).collect();
    main.extend((1..=threads).map(join));
    main.push(check);
    b.main(main).build()
}

/// Strategy line-ups a race can field; sharing needs >= 2 members.
const COMBOS: &[&[Strategy]] = &[
    &[Strategy::Zpre, Strategy::ZpreMinus],
    &[Strategy::Zpre, Strategy::Baseline],
    &[Strategy::ZpreMinus, Strategy::Baseline],
    &[Strategy::Zpre, Strategy::ZpreMinus, Strategy::Baseline],
    &[Strategy::Zpre, Strategy::Zpre],
    &[Strategy::Baseline, Strategy::Baseline, Strategy::Baseline],
];

proptest! {
    // Each case races two whole portfolios; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn shared_portfolio_agrees_with_isolated(
        threads in 2usize..4,
        steps in 1u64..3,
        safe in any::<bool>(),
        seed in any::<u64>(),
        combo in 0usize..COMBOS.len(),
        mm_idx in 0usize..3,
        lbd_max in 1u32..6,
    ) {
        let program = racy_counter(threads, steps, safe);
        let mm = MemoryModel::ALL[mm_idx];
        let mut base = VerifyOptions::new(mm, Strategy::Zpre);
        base.max_conflicts = Some(200_000);
        base.seed = seed;
        let members: Vec<PortfolioMember> = COMBOS[combo]
            .iter()
            .enumerate()
            .map(|(i, &st)| PortfolioMember {
                name: format!("{}#{i}", st.name()),
                strategy: st,
                // Distinct seeds per member so same-strategy line-ups
                // still explore differently (and share usefully).
                seed: seed.wrapping_add(i as u64),
            })
            .collect();
        let mut isolated = PortfolioOptions::new(base);
        isolated.members = members;
        let shared = isolated.clone().with_share(ShareConfig::with_lbd_max(lbd_max));

        let iso = verify_portfolio(&program, &isolated);
        let sh = verify_portfolio(&program, &shared);
        let expected = if safe { Verdict::Safe } else { Verdict::Unsafe };
        prop_assert_eq!(
            iso.outcome.verdict, expected,
            "isolated portfolio missed the ground truth"
        );
        prop_assert_eq!(
            sh.outcome.verdict, expected,
            "shared portfolio flipped the verdict (combo {:?}, mm {}, lbd {})",
            COMBOS[combo], mm.name(), lbd_max
        );
        prop_assert!(sh.quarantined.is_empty(), "sharing quarantined a member");
    }
}
