//! Scratch-vs-incremental bound-sweep comparison.
//!
//! The paper's experimental setup generates one SMT instance per loop
//! unrolling bound `k = 1..=K` and solves each from scratch — every bound
//! pays its own unroll/SSA/encode/bit-blast and starts its solver cold.
//! The incremental driver ([`zpre::verify_sweep`]) encodes the horizon `K`
//! once and walks the bounds inside a single solver via assumption frames,
//! inheriting learnt clauses, phase saving, activity, and the order
//! theory's fixed program-order state from earlier bounds.
//!
//! [`compare_one`] races both drivers on a task, asserts the verdicts are
//! identical (this module doubles as an equivalence oracle), and records
//! wall-clock plus reused-learnt/decision telemetry. The `sweep-bench`
//! binary appends the rows to `BENCH_SWEEP.json` as NDJSON so the perf
//! trajectory accumulates across commits.

use rayon::prelude::*;
use zpre::{try_verify, try_verify_sweep_full, Strategy, Verdict, VerifyOptions};
use zpre_prog::MemoryModel;
use zpre_workloads::Task;

use crate::runner::RunConfig;

/// One task raced through both sweep drivers under one memory model.
#[derive(Clone, Debug)]
pub struct SweepComparison {
    /// Task name.
    pub task: String,
    /// Subcategory name.
    pub subcat: String,
    /// Memory-model name.
    pub mm: String,
    /// The (identical) verdict: "safe" / "unsafe" / "unknown".
    pub verdict: String,
    /// Bound at which the scratch loop stopped.
    pub scratch_bound: u32,
    /// Bound reported by the incremental sweep (1 for loop-free programs,
    /// whose single frame answers every bound).
    pub sweep_bound: u32,
    /// Total scratch wall clock across all bounds, milliseconds
    /// (re-encoding included — each bound is a fresh instance).
    pub scratch_ms: f64,
    /// Total incremental wall clock (one encode + all frames), ms.
    pub sweep_ms: f64,
    /// Decisions summed over all scratch bounds.
    pub scratch_decisions: u64,
    /// Decisions across all incremental frames (one solver, cumulative).
    pub sweep_decisions: u64,
    /// Conflicts summed over all scratch bounds.
    pub scratch_conflicts: u64,
    /// Conflicts across all incremental frames.
    pub sweep_conflicts: u64,
    /// Frames the incremental sweep solved.
    pub frames: u32,
    /// Learnt clauses inherited from earlier frames, summed over frame
    /// entries — the state a scratch restart would have thrown away.
    pub reused_learnts: u64,
    /// `true` when the task has no loops (sweep collapses to one frame).
    pub loop_free: bool,
}

impl SweepComparison {
    /// Scratch-over-incremental wall-clock ratio (> 1 means the sweep won).
    pub fn speedup(&self) -> f64 {
        if self.sweep_ms > 0.0 {
            self.scratch_ms / self.sweep_ms
        } else {
            f64::INFINITY
        }
    }

    /// One NDJSON line for `BENCH_SWEEP.json`.
    pub fn json_line(&self, tag: &str) -> String {
        format!(
            "{{\"tag\": \"{}\", \"task\": \"{}\", \"subcat\": \"{}\", \"mm\": \"{}\", \
             \"verdict\": \"{}\", \"scratch_bound\": {}, \"sweep_bound\": {}, \
             \"scratch_ms\": {:.3}, \"sweep_ms\": {:.3}, \"speedup\": {:.2}, \
             \"scratch_decisions\": {}, \"sweep_decisions\": {}, \
             \"scratch_conflicts\": {}, \"sweep_conflicts\": {}, \
             \"frames\": {}, \"reused_learnts\": {}, \"loop_free\": {}}}",
            tag,
            self.task,
            self.subcat,
            self.mm,
            self.verdict,
            self.scratch_bound,
            self.sweep_bound,
            self.scratch_ms,
            self.sweep_ms,
            self.speedup(),
            self.scratch_decisions,
            self.sweep_decisions,
            self.scratch_conflicts,
            self.sweep_conflicts,
            self.frames,
            self.reused_learnts,
            self.loop_free,
        )
    }
}

fn verdict_str(v: Verdict) -> &'static str {
    match v {
        Verdict::Safe => "safe",
        Verdict::Unsafe => "unsafe",
        Verdict::Unknown => "unknown",
    }
}

/// Races the per-bound scratch protocol against the incremental sweep on
/// one (task, memory model) pair and asserts the verdicts agree at every
/// bound.
///
/// Both sides follow the paper's evaluation protocol — a verdict at
/// **every** bound `1..=max_bound` (each per-bound SMT instance is an
/// independent benchmark there). Scratch pays a fresh unroll/encode/solve
/// per bound; the incremental driver encodes the horizon once and walks
/// the frames inside one solver. A loop-free program's single frame
/// stands in for all bounds (its instance is bound-independent), which is
/// exactly the reuse the sweep is meant to deliver.
///
/// # Panics
///
/// Panics when the two drivers disagree on any bound's verdict — a bench
/// run is also an equivalence check, and a divergence must sink it loudly.
pub fn compare_one(
    task: &Task,
    mm: MemoryModel,
    max_bound: u32,
    cfg: &RunConfig,
) -> SweepComparison {
    let base = VerifyOptions {
        mm,
        strategy: Strategy::Zpre,
        unroll_bound: task.unroll_bound,
        max_bound,
        max_conflicts: Some(cfg.max_conflicts),
        timeout: cfg.timeout,
        max_memory: None,
        seed: cfg.seed,
        validate_models: cfg.validate,
        want_trace: false,
        cancel: None,
        certify: false,
        fault: None,
        recorder: None,
        share: None,
        prune: cfg.prune,
    };

    // Scratch: one fresh instance per bound, each paying its own encode.
    let t0 = std::time::Instant::now();
    let mut scratch_verdicts: Vec<Verdict> = Vec::new();
    let mut scratch_bound = max_bound;
    let mut scratch_decisions = 0u64;
    let mut scratch_conflicts = 0u64;
    for k in 1..=max_bound {
        let opts = VerifyOptions {
            unroll_bound: k,
            ..base.clone()
        };
        let out = try_verify(&task.program, &opts)
            .unwrap_or_else(|e| panic!("{} {mm}: scratch bound {k}: {e}", task.name));
        scratch_decisions += out.stats.decisions;
        scratch_conflicts += out.stats.conflicts;
        if scratch_verdicts.iter().all(|&v| v == Verdict::Safe) {
            scratch_bound = k;
        }
        scratch_verdicts.push(out.verdict);
        if out.verdict == Verdict::Unknown {
            break;
        }
    }
    let scratch_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Incremental: one encode at the horizon, one solver across frames.
    let t1 = std::time::Instant::now();
    let sweep = try_verify_sweep_full(&task.program, &base)
        .unwrap_or_else(|e| panic!("{} {mm}: sweep: {e}", task.name));
    let sweep_ms = t1.elapsed().as_secs_f64() * 1e3;

    for (i, &scratch_v) in scratch_verdicts.iter().enumerate() {
        // A loop-free sweep's single frame answers for every bound.
        let frame = if sweep.loop_free {
            &sweep.frames[0]
        } else {
            &sweep.frames[i]
        };
        assert_eq!(
            frame.verdict,
            scratch_v,
            "{} {mm}: bound {} verdict diverges between sweep and scratch",
            task.name,
            i + 1
        );
    }
    let scratch_verdict = scratch_verdicts
        .iter()
        .copied()
        .find(|&v| v != Verdict::Safe)
        .unwrap_or(Verdict::Safe);
    assert_eq!(
        sweep.verdict, scratch_verdict,
        "{} {mm}: overall verdict diverges between sweep and scratch",
        task.name
    );

    SweepComparison {
        task: task.name.clone(),
        subcat: task.subcat.name().to_string(),
        mm: mm.name().to_string(),
        verdict: verdict_str(sweep.verdict).to_string(),
        scratch_bound,
        sweep_bound: sweep.bound,
        scratch_ms,
        sweep_ms,
        scratch_decisions,
        scratch_conflicts,
        sweep_decisions: sweep.stats.decisions,
        sweep_conflicts: sweep.stats.conflicts,
        frames: sweep.frames.len() as u32,
        reused_learnts: sweep.frames.iter().map(|f| f.reused_learnts).sum(),
        loop_free: sweep.loop_free,
    }
}

/// Races `tasks × mms` in parallel.
pub fn compare_suite(
    tasks: &[Task],
    mms: &[MemoryModel],
    max_bound: u32,
    cfg: &RunConfig,
) -> Vec<SweepComparison> {
    let mut jobs: Vec<(&Task, MemoryModel)> = Vec::new();
    for t in tasks {
        for &mm in mms {
            jobs.push((t, mm));
        }
    }
    jobs.par_iter()
        .map(|&(task, mm)| compare_one(task, mm, max_bound, cfg))
        .collect()
}

/// Aggregate wall clock for a set of comparison rows.
#[derive(Clone, Debug, Default)]
pub struct SweepAggregate {
    /// Rows aggregated.
    pub rows: usize,
    /// Total scratch wall clock, ms.
    pub scratch_ms: f64,
    /// Total incremental wall clock, ms.
    pub sweep_ms: f64,
    /// Total learnt clauses inherited across frame entries.
    pub reused_learnts: u64,
    /// Total incremental decisions.
    pub sweep_decisions: u64,
    /// Total scratch decisions.
    pub scratch_decisions: u64,
}

impl SweepAggregate {
    /// Aggregates a slice of rows.
    pub fn of(rows: &[SweepComparison]) -> SweepAggregate {
        let mut a = SweepAggregate {
            rows: rows.len(),
            ..SweepAggregate::default()
        };
        for r in rows {
            a.scratch_ms += r.scratch_ms;
            a.sweep_ms += r.sweep_ms;
            a.reused_learnts += r.reused_learnts;
            a.sweep_decisions += r.sweep_decisions;
            a.scratch_decisions += r.scratch_decisions;
        }
        a
    }

    /// Aggregate scratch-over-incremental speedup.
    pub fn speedup(&self) -> f64 {
        if self.sweep_ms > 0.0 {
            self.scratch_ms / self.sweep_ms
        } else {
            f64::INFINITY
        }
    }

    /// One NDJSON summary line for `BENCH_SWEEP.json`.
    pub fn json_line(&self, tag: &str, family: &str) -> String {
        format!(
            "{{\"tag\": \"{}\", \"family\": \"{}\", \"rows\": {}, \
             \"scratch_ms\": {:.3}, \"sweep_ms\": {:.3}, \"speedup\": {:.2}, \
             \"scratch_decisions\": {}, \"sweep_decisions\": {}, \"reused_learnts\": {}}}",
            tag,
            family,
            self.rows,
            self.scratch_ms,
            self.sweep_ms,
            self.speedup(),
            self.scratch_decisions,
            self.sweep_decisions,
            self.reused_learnts,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zpre_workloads::{subcategory, Scale, Subcat};

    #[test]
    fn stress_rows_agree_and_carry_telemetry() {
        let tasks: Vec<Task> = subcategory(Scale::Quick, Subcat::Stress)
            .into_iter()
            .take(2)
            .collect();
        let cfg = RunConfig::default();
        let rows = compare_suite(&tasks, &[MemoryModel::Sc], 4, &cfg);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            // compare_one asserted the verdicts already; the rows must be
            // well-formed on top of that.
            assert!(r.loop_free, "stress tasks are loop-free");
            assert_eq!(r.frames, 1, "loop-free sweep collapses to one frame");
            assert!(r.scratch_ms > 0.0 && r.sweep_ms > 0.0);
        }
        let agg = SweepAggregate::of(&rows);
        assert_eq!(agg.rows, 2);
        let line = agg.json_line("test", "stress");
        assert!(line.contains("\"family\": \"stress\""));
    }

    #[test]
    fn loopy_task_reuses_learnt_state() {
        use zpre_prog::build::*;
        let p = ProgramBuilder::new("kstar4")
            .shared("x", 0)
            .main(vec![
                while_(lt(v("x"), c(4)), vec![assign("x", add(v("x"), c(1)))]),
                assert_(ne(v("x"), c(4))),
            ])
            .build();
        let task = Task::new("loopy/kstar4", Subcat::Ext, p, 6, Default::default());
        let row = compare_one(&task, MemoryModel::Sc, 6, &RunConfig::default());
        assert_eq!(row.verdict, "unsafe");
        assert_eq!(row.sweep_bound, 4);
        assert_eq!(row.frames, 6, "full protocol solves every bound");
        assert!(!row.loop_free);
    }
}
