//! Aggregation of raw measurements into the paper's tables and figures.
//!
//! Conventions follow §5 of the paper: comparisons accumulate CPU time over
//! the *both-solved* instances (solved within budget by every compared
//! strategy); `sat` corresponds to property violations ("false" tasks),
//! `unsat` to proofs ("true" tasks); a `TO` is a budget exhaustion.

use crate::runner::TaskResult;
use std::collections::{BTreeMap, BTreeSet};

/// Per-(memory model, strategy) telemetry aggregate: accumulated phase
/// times and decision-class histogram over all rows that carried
/// telemetry. This is the source of `BENCH_TELEMETRY.json`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySummaryRow {
    /// Memory model.
    pub mm: String,
    /// Strategy name.
    pub strategy: String,
    /// Rows aggregated.
    pub rows: usize,
    /// Accumulated unroll milliseconds.
    pub unroll_ms: f64,
    /// Accumulated SSA milliseconds.
    pub ssa_ms: f64,
    /// Accumulated encode milliseconds (contains blast).
    pub encode_ms: f64,
    /// Accumulated bit-blast milliseconds.
    pub blast_ms: f64,
    /// Accumulated solve milliseconds.
    pub solve_ms: f64,
    /// Decision histogram: external read-from selectors.
    pub dec_rf_ext: u64,
    /// Decision histogram: internal read-from selectors.
    pub dec_rf_int: u64,
    /// Decision histogram: write-serialization selectors.
    pub dec_ws: u64,
    /// Decision histogram: every other class.
    pub dec_other: u64,
    /// Conflicts counted from the event stream.
    pub obs_conflicts: u64,
    /// EOG cycle checks run by the order theory.
    pub cc_checks: u64,
    /// Cycle checks accepted in O(1) by the topological-level test.
    pub cc_accepted_o1: u64,
    /// Nodes visited across all bounded two-way searches.
    pub cc_visited: u64,
    /// Topological-level promotions performed by forward passes.
    pub cc_promoted: u64,
    /// Clauses exported to the portfolio share pool (0 without sharing).
    pub sh_exported: u64,
    /// Foreign clauses imported from the pool.
    pub sh_imported: u64,
    /// Propagations/conflicts driven by imported clauses.
    pub sh_import_hits: u64,
}

impl TelemetrySummaryRow {
    /// Interference share of all decisions, in percent (NaN when no
    /// decisions were recorded).
    pub fn interference_pct(&self) -> f64 {
        let interference = (self.dec_rf_ext + self.dec_rf_int + self.dec_ws) as f64;
        let total = interference + self.dec_other as f64;
        100.0 * interference / total
    }

    /// Share of cycle checks accepted in O(1), in percent (NaN when no
    /// checks were recorded).
    pub fn cc_o1_pct(&self) -> f64 {
        100.0 * self.cc_accepted_o1 as f64 / self.cc_checks as f64
    }
}

/// Aggregates all telemetry-carrying rows per (memory model, strategy),
/// ordered by memory model then strategy.
pub fn telemetry_summary(results: &[TaskResult]) -> Vec<TelemetrySummaryRow> {
    let mut per: BTreeMap<(String, String), TelemetrySummaryRow> = BTreeMap::new();
    for r in results {
        let Some(t) = &r.telemetry else { continue };
        let row = per
            .entry((r.mm.clone(), r.strategy.clone()))
            .or_insert_with(|| TelemetrySummaryRow {
                mm: r.mm.clone(),
                strategy: r.strategy.clone(),
                ..TelemetrySummaryRow::default()
            });
        row.rows += 1;
        row.unroll_ms += t.unroll_ms;
        row.ssa_ms += t.ssa_ms;
        row.encode_ms += t.encode_ms;
        row.blast_ms += t.blast_ms;
        row.solve_ms += t.solve_ms;
        row.dec_rf_ext += t.dec_rf_ext;
        row.dec_rf_int += t.dec_rf_int;
        row.dec_ws += t.dec_ws;
        row.dec_other += t.dec_other;
        row.obs_conflicts += t.obs_conflicts;
        row.cc_checks += t.cc_checks;
        row.cc_accepted_o1 += t.cc_accepted_o1;
        row.cc_visited += t.cc_visited;
        row.cc_promoted += t.cc_promoted;
        row.sh_exported += t.sh_exported;
        row.sh_imported += t.sh_imported;
        row.sh_import_hits += t.sh_import_hits;
    }
    per.into_values().collect()
}

fn by_strategy<'a>(
    results: &'a [TaskResult],
    mm: &str,
    strategy: &str,
) -> BTreeMap<&'a str, &'a TaskResult> {
    results
        .iter()
        .filter(|r| r.mm == mm && r.strategy == strategy)
        .map(|r| (r.task.as_str(), r))
        .collect()
}

/// Tasks solved by every strategy in `strategies` under `mm`.
pub fn both_solved<'a>(
    results: &'a [TaskResult],
    mm: &str,
    strategies: &[&str],
) -> BTreeSet<&'a str> {
    let maps: Vec<_> = strategies
        .iter()
        .map(|s| by_strategy(results, mm, s))
        .collect();
    let mut tasks: BTreeSet<&str> = results
        .iter()
        .filter(|r| r.mm == mm)
        .map(|r| r.task.as_str())
        .collect();
    tasks.retain(|t| maps.iter().all(|m| m.get(t).is_some_and(|r| r.solved())));
    tasks
}

/// One row of Table 1: accumulated both-solved CPU time split by verdict.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Memory model.
    pub mm: String,
    /// Baseline seconds on satisfiable (unsafe) tasks.
    pub sat_base_s: f64,
    /// ZPRE seconds on satisfiable tasks.
    pub sat_zpre_s: f64,
    /// Baseline seconds on unsatisfiable (safe) tasks.
    pub unsat_base_s: f64,
    /// ZPRE seconds on unsatisfiable tasks.
    pub unsat_zpre_s: f64,
    /// Baseline seconds over all both-solved tasks.
    pub all_base_s: f64,
    /// ZPRE seconds over all both-solved tasks.
    pub all_zpre_s: f64,
}

impl Table1Row {
    /// Speedups `(sat, unsat, all)`.
    pub fn speedups(&self) -> (f64, f64, f64) {
        (
            ratio(self.sat_base_s, self.sat_zpre_s),
            ratio(self.unsat_base_s, self.unsat_zpre_s),
            ratio(self.all_base_s, self.all_zpre_s),
        )
    }
}

fn ratio(a: f64, b: f64) -> f64 {
    if b > 0.0 {
        a / b
    } else {
        f64::NAN
    }
}

/// Table 1: baseline vs ZPRE accumulated time per memory model.
pub fn table1(results: &[TaskResult], mms: &[&str]) -> Vec<Table1Row> {
    mms.iter()
        .map(|&mm| {
            let solved = both_solved(results, mm, &["baseline", "zpre"]);
            let base = by_strategy(results, mm, "baseline");
            let zpre = by_strategy(results, mm, "zpre");
            let mut row = Table1Row {
                mm: mm.to_string(),
                sat_base_s: 0.0,
                sat_zpre_s: 0.0,
                unsat_base_s: 0.0,
                unsat_zpre_s: 0.0,
                all_base_s: 0.0,
                all_zpre_s: 0.0,
            };
            for t in solved {
                let (b, z) = (base[t], zpre[t]);
                let (bs, zs) = (b.solve_ms / 1e3, z.solve_ms / 1e3);
                if b.verdict == "unsafe" {
                    row.sat_base_s += bs;
                    row.sat_zpre_s += zs;
                } else {
                    row.unsat_base_s += bs;
                    row.unsat_zpre_s += zs;
                }
                row.all_base_s += bs;
                row.all_zpre_s += zs;
            }
            row
        })
        .collect()
}

/// One row of Table 2: search-procedure statistics.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Memory model.
    pub mm: String,
    /// Baseline decisions on both-solved tasks.
    pub decisions_base: u64,
    /// ZPRE decisions.
    pub decisions_zpre: u64,
    /// Baseline propagations.
    pub propagations_base: u64,
    /// ZPRE propagations.
    pub propagations_zpre: u64,
    /// Baseline conflicts.
    pub conflicts_base: u64,
    /// ZPRE conflicts.
    pub conflicts_zpre: u64,
}

impl Table2Row {
    /// Ratios `(decisions, propagations, conflicts)` of baseline over ZPRE.
    pub fn ratios(&self) -> (f64, f64, f64) {
        (
            ratio(self.decisions_base as f64, self.decisions_zpre as f64),
            ratio(self.propagations_base as f64, self.propagations_zpre as f64),
            ratio(self.conflicts_base as f64, self.conflicts_zpre as f64),
        )
    }
}

/// Table 2: decisions / propagations / conflicts per memory model.
pub fn table2(results: &[TaskResult], mms: &[&str]) -> Vec<Table2Row> {
    mms.iter()
        .map(|&mm| {
            let solved = both_solved(results, mm, &["baseline", "zpre"]);
            let base = by_strategy(results, mm, "baseline");
            let zpre = by_strategy(results, mm, "zpre");
            let mut row = Table2Row {
                mm: mm.to_string(),
                decisions_base: 0,
                decisions_zpre: 0,
                propagations_base: 0,
                propagations_zpre: 0,
                conflicts_base: 0,
                conflicts_zpre: 0,
            };
            for t in solved {
                row.decisions_base += base[t].decisions;
                row.decisions_zpre += zpre[t].decisions;
                row.propagations_base += base[t].propagations;
                row.propagations_zpre += zpre[t].propagations;
                row.conflicts_base += base[t].conflicts;
                row.conflicts_zpre += zpre[t].conflicts;
            }
            row
        })
        .collect()
}

/// One strategy's column block in Table 3.
#[derive(Debug, Clone)]
pub struct Table3Strategy {
    /// Strategy name.
    pub strategy: String,
    /// Timeouts (budget exhaustions) over all tasks of the memory model.
    pub timeouts: usize,
    /// Accumulated seconds on the three-way both-solved set.
    pub cpu_s: f64,
    /// Speedup of this strategy over the baseline on that set.
    pub speedup: f64,
}

/// One row of Table 3.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Memory model.
    pub mm: String,
    /// Total tasks (the paper's "SMT files").
    pub files: usize,
    /// Tasks solved by all three strategies.
    pub both_solved: usize,
    /// Safe (unsat, "true") verdicts among both-solved.
    pub true_count: usize,
    /// Unsafe (sat, "false") verdicts among both-solved.
    pub false_count: usize,
    /// Per-strategy blocks: baseline, zpre-, zpre.
    pub strategies: Vec<Table3Strategy>,
}

/// Table 3: three-way comparison (baseline vs ZPRE⁻ vs ZPRE).
pub fn table3(results: &[TaskResult], mms: &[&str]) -> Vec<Table3Row> {
    let names = ["baseline", "zpre-", "zpre"];
    mms.iter()
        .map(|&mm| {
            let solved = both_solved(results, mm, &names);
            let maps: Vec<_> = names.iter().map(|s| by_strategy(results, mm, s)).collect();
            let files = maps[0].len();
            let true_count = solved
                .iter()
                .filter(|t| maps[0][**t].verdict == "safe")
                .count();
            let false_count = solved.len() - true_count;
            let base_s: f64 = solved.iter().map(|t| maps[0][*t].solve_ms / 1e3).sum();
            let strategies = names
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let cpu_s: f64 = solved.iter().map(|t| maps[i][*t].solve_ms / 1e3).sum();
                    Table3Strategy {
                        strategy: s.to_string(),
                        timeouts: maps[i].values().filter(|r| !r.solved()).count(),
                        cpu_s,
                        speedup: ratio(base_s, cpu_s),
                    }
                })
                .collect();
            Table3Row {
                mm: mm.to_string(),
                files,
                both_solved: solved.len(),
                true_count,
                false_count,
                strategies,
            }
        })
        .collect()
}

/// Scatter data for Figures 6–8: `(task, baseline_ms, zpre_ms)`.
pub fn fig_scatter(results: &[TaskResult], mm: &str) -> Vec<(String, f64, f64)> {
    let base = by_strategy(results, mm, "baseline");
    let zpre = by_strategy(results, mm, "zpre");
    let mut out = Vec::new();
    for (t, b) in &base {
        if let Some(z) = zpre.get(t) {
            out.push((t.to_string(), b.solve_ms, z.solve_ms));
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Per-subcategory totals for Figures 9–11:
/// `(subcat, baseline_s, zpre_s, speedup)`, both-solved only.
pub fn fig_subcats(results: &[TaskResult], mm: &str) -> Vec<(String, f64, f64, f64)> {
    let solved = both_solved(results, mm, &["baseline", "zpre"]);
    let base = by_strategy(results, mm, "baseline");
    let zpre = by_strategy(results, mm, "zpre");
    let mut per: BTreeMap<String, (f64, f64)> = BTreeMap::new();
    for t in solved {
        let entry = per.entry(base[t].subcat.clone()).or_insert((0.0, 0.0));
        entry.0 += base[t].solve_ms / 1e3;
        entry.1 += zpre[t].solve_ms / 1e3;
    }
    crate::runner::subcat_order()
        .into_iter()
        .filter_map(|s| per.get(s).map(|&(b, z)| (s.to_string(), b, z, ratio(b, z))))
        .collect()
}

/// Ablation summary: `(strategy, total_s_on_common, timeouts, solved)`.
pub fn ablation(
    results: &[TaskResult],
    mm: &str,
    strategies: &[&str],
) -> Vec<(String, f64, usize, usize)> {
    let solved = both_solved(results, mm, strategies);
    strategies
        .iter()
        .map(|&s| {
            let m = by_strategy(results, mm, s);
            let total: f64 = solved.iter().map(|t| m[*t].solve_ms / 1e3).sum();
            let timeouts = m.values().filter(|r| !r.solved()).count();
            let n_solved = m.values().filter(|r| r.solved()).count();
            (s.to_string(), total, timeouts, n_solved)
        })
        .collect()
}

/// Verdict-consistency report: tasks whose verdict disagrees with the
/// generator's ground truth (must be empty for a sound pipeline).
pub fn mismatches(results: &[TaskResult]) -> Vec<&TaskResult> {
    results.iter().filter(|r| !r.expected_ok).collect()
}

/// Summary of a portfolio run: per-strategy win counts and cancellation
/// latencies across all `strategy == "portfolio"` rows.
#[derive(Debug, Clone)]
pub struct PortfolioSummary {
    /// Portfolio rows considered.
    pub rows: usize,
    /// Rows with a definitive verdict (a winner exists).
    pub decided: usize,
    /// Win count per member name, descending by count then by name.
    pub wins: Vec<(String, usize)>,
    /// Mean cancellation latency in milliseconds over rows that cancelled
    /// losers (`None` when no row did).
    pub mean_cancel_latency_ms: Option<f64>,
    /// Maximum cancellation latency in milliseconds.
    pub max_cancel_latency_ms: Option<f64>,
}

/// Aggregates all portfolio rows into a [`PortfolioSummary`].
pub fn portfolio_summary(results: &[TaskResult]) -> PortfolioSummary {
    let rows: Vec<&TaskResult> = results
        .iter()
        .filter(|r| r.strategy == "portfolio")
        .collect();
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for r in &rows {
        if let Some(w) = &r.winner {
            *counts.entry(w.as_str()).or_insert(0) += 1;
        }
    }
    let decided = counts.values().sum();
    let mut wins: Vec<(String, usize)> = counts
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    wins.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let latencies: Vec<f64> = rows.iter().filter_map(|r| r.cancel_latency_ms).collect();
    let (mean, max) = if latencies.is_empty() {
        (None, None)
    } else {
        (
            Some(latencies.iter().sum::<f64>() / latencies.len() as f64),
            latencies
                .iter()
                .cloned()
                .fold(None, |m: Option<f64>, l| Some(m.map_or(l, |m| m.max(l)))),
        )
    };
    PortfolioSummary {
        rows: rows.len(),
        decided,
        wins,
        mean_cancel_latency_ms: mean,
        max_cancel_latency_ms: max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(task: &str, mm: &str, strategy: &str, verdict: &str, ms: f64) -> TaskResult {
        TaskResult {
            task: task.into(),
            subcat: "wmm".into(),
            mm: mm.into(),
            strategy: strategy.into(),
            verdict: verdict.into(),
            solve_ms: ms,
            encode_ms: 0.0,
            decisions: 10,
            propagations: 100,
            conflicts: 5,
            guided_decisions: 0,
            expected_ok: true,
            winner: None,
            cancel_latency_ms: None,
            certified: None,
            quarantined: None,
            telemetry: None,
        }
    }

    #[test]
    fn both_solved_excludes_timeouts() {
        let rs = vec![
            mk("a", "sc", "baseline", "safe", 1.0),
            mk("a", "sc", "zpre", "safe", 1.0),
            mk("b", "sc", "baseline", "unknown", 1.0),
            mk("b", "sc", "zpre", "safe", 1.0),
        ];
        let s = both_solved(&rs, "sc", &["baseline", "zpre"]);
        assert!(s.contains("a"));
        assert!(!s.contains("b"));
    }

    #[test]
    fn table1_accumulates_by_verdict() {
        let rs = vec![
            mk("a", "sc", "baseline", "safe", 2000.0),
            mk("a", "sc", "zpre", "safe", 1000.0),
            mk("b", "sc", "baseline", "unsafe", 3000.0),
            mk("b", "sc", "zpre", "unsafe", 1000.0),
        ];
        let t = table1(&rs, &["sc"]);
        assert_eq!(t.len(), 1);
        let row = &t[0];
        assert!((row.unsat_base_s - 2.0).abs() < 1e-9);
        assert!((row.sat_base_s - 3.0).abs() < 1e-9);
        let (sat, unsat, all) = row.speedups();
        assert!((sat - 3.0).abs() < 1e-9);
        assert!((unsat - 2.0).abs() < 1e-9);
        assert!((all - 2.5).abs() < 1e-9);
    }

    #[test]
    fn table3_counts_true_false_and_timeouts() {
        let rs = vec![
            mk("a", "sc", "baseline", "safe", 1.0),
            mk("a", "sc", "zpre-", "safe", 1.0),
            mk("a", "sc", "zpre", "safe", 1.0),
            mk("b", "sc", "baseline", "unsafe", 1.0),
            mk("b", "sc", "zpre-", "unsafe", 1.0),
            mk("b", "sc", "zpre", "unsafe", 1.0),
            mk("c", "sc", "baseline", "unknown", 1.0),
            mk("c", "sc", "zpre-", "safe", 1.0),
            mk("c", "sc", "zpre", "safe", 1.0),
        ];
        let t = table3(&rs, &["sc"]);
        let row = &t[0];
        assert_eq!(row.files, 3);
        assert_eq!(row.both_solved, 2);
        assert_eq!(row.true_count, 1);
        assert_eq!(row.false_count, 1);
        assert_eq!(row.strategies[0].timeouts, 1);
        assert_eq!(row.strategies[2].timeouts, 0);
    }

    #[test]
    fn scatter_pairs_tasks() {
        let rs = vec![
            mk("a", "sc", "baseline", "safe", 5.0),
            mk("a", "sc", "zpre", "safe", 2.0),
        ];
        let pts = fig_scatter(&rs, "sc");
        assert_eq!(pts, vec![("a".to_string(), 5.0, 2.0)]);
    }

    #[test]
    fn portfolio_summary_counts_wins_and_latency() {
        let mut a = mk("a", "sc", "portfolio", "safe", 1.0);
        a.winner = Some("zpre".into());
        a.cancel_latency_ms = Some(2.0);
        let mut b = mk("b", "sc", "portfolio", "unsafe", 1.0);
        b.winner = Some("zpre".into());
        b.cancel_latency_ms = Some(6.0);
        let mut c = mk("c", "sc", "portfolio", "safe", 1.0);
        c.winner = Some("baseline".into());
        let d = mk("d", "sc", "portfolio", "unknown", 1.0);
        let other = mk("a", "sc", "zpre", "safe", 1.0);
        let s = portfolio_summary(&[a, b, c, d, other]);
        assert_eq!(s.rows, 4);
        assert_eq!(s.decided, 3);
        assert_eq!(
            s.wins,
            vec![("zpre".to_string(), 2), ("baseline".to_string(), 1)]
        );
        assert!((s.mean_cancel_latency_ms.unwrap() - 4.0).abs() < 1e-9);
        assert!((s.max_cancel_latency_ms.unwrap() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn telemetry_summary_accumulates_per_mm_strategy() {
        use crate::runner::RowTelemetry;
        let mut a = mk("a", "sc", "zpre", "safe", 1.0);
        a.telemetry = Some(RowTelemetry {
            solve_ms: 2.0,
            dec_rf_ext: 10,
            dec_ws: 4,
            dec_other: 6,
            obs_conflicts: 3,
            cc_checks: 8,
            cc_accepted_o1: 6,
            cc_visited: 12,
            cc_promoted: 2,
            sh_exported: 7,
            sh_imported: 3,
            sh_import_hits: 2,
            ..RowTelemetry::default()
        });
        let mut b = mk("b", "sc", "zpre", "safe", 1.0);
        b.telemetry = Some(RowTelemetry {
            solve_ms: 3.0,
            dec_rf_ext: 5,
            dec_rf_int: 5,
            obs_conflicts: 1,
            cc_checks: 2,
            cc_accepted_o1: 2,
            cc_visited: 0,
            cc_promoted: 0,
            sh_exported: 1,
            sh_imported: 2,
            sh_import_hits: 1,
            ..RowTelemetry::default()
        });
        let no_tele = mk("c", "sc", "baseline", "safe", 1.0);
        let rows = telemetry_summary(&[a, b, no_tele]);
        assert_eq!(rows.len(), 1, "rows without telemetry are skipped");
        let r = &rows[0];
        assert_eq!((r.mm.as_str(), r.strategy.as_str()), ("sc", "zpre"));
        assert_eq!(r.rows, 2);
        assert!((r.solve_ms - 5.0).abs() < 1e-9);
        assert_eq!(
            (r.dec_rf_ext, r.dec_rf_int, r.dec_ws, r.dec_other),
            (15, 5, 4, 6)
        );
        assert_eq!(r.obs_conflicts, 4);
        assert!((r.interference_pct() - 80.0).abs() < 1e-9);
        assert_eq!(
            (r.cc_checks, r.cc_accepted_o1, r.cc_visited, r.cc_promoted),
            (10, 8, 12, 2)
        );
        assert!((r.cc_o1_pct() - 80.0).abs() < 1e-9);
        assert_eq!((r.sh_exported, r.sh_imported, r.sh_import_hits), (8, 5, 3));
    }

    #[test]
    fn mismatch_report() {
        let mut r = mk("a", "sc", "zpre", "safe", 1.0);
        r.expected_ok = false;
        let rs = vec![r];
        assert_eq!(mismatches(&rs).len(), 1);
    }
}
