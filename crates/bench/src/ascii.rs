//! ASCII renderings of the paper's plots (log-log scatter, bar charts) so
//! the harness can display figures directly in the terminal.

/// Renders a log-log scatter of `(baseline_ms, zpre_ms)` points, the
//  terminal analogue of Figures 6–8. Points below the diagonal are wins
/// for ZPRE (`·` on/near the diagonal, `+` below = faster, `x` above =
/// slower).
pub fn scatter(points: &[(String, f64, f64)], title: &str) -> String {
    const N: usize = 41; // grid size
    if points.is_empty() {
        return format!("{title}\n(no points)\n");
    }
    let min = points
        .iter()
        .flat_map(|p| [p.1, p.2])
        .fold(f64::INFINITY, f64::min)
        .max(0.01);
    let max = points
        .iter()
        .flat_map(|p| [p.1, p.2])
        .fold(0.0f64, f64::max)
        .max(min * 10.0);
    let (lmin, lmax) = (min.ln(), max.ln());
    let scale = |v: f64| -> usize {
        let v = v.max(min);
        (((v.ln() - lmin) / (lmax - lmin)) * (N - 1) as f64).round() as usize
    };
    let mut grid = vec![vec![' '; N]; N];
    for (i, row) in grid.iter_mut().enumerate() {
        row[i] = '/'; // the diagonal (equal time)
    }
    for (_, base, zpre) in points {
        let (x, y) = (scale(*base), scale(*zpre));
        let c = if y + 1 < x {
            '+' // below diagonal: ZPRE faster
        } else if x + 1 < y {
            'x' // above diagonal: ZPRE slower
        } else {
            '·'
        };
        grid[y][x] = c;
    }
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "y = ZPRE time, x = baseline time, log scale {:.2}ms ..= {:.0}ms\n",
        min, max
    ));
    for row in grid.iter().rev() {
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(N));
    out.push('\n');
    let below = points.iter().filter(|p| p.2 < p.1).count();
    out.push_str(&format!(
        "{} points, {} below the diagonal (ZPRE faster), {} above\n",
        points.len(),
        below,
        points.iter().filter(|p| p.2 > p.1).count()
    ));
    out
}

/// Renders per-subcategory totals with speedup bars, the terminal
/// analogue of Figures 9–11.
pub fn subcat_bars(rows: &[(String, f64, f64, f64)], title: &str) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<14} {:>12} {:>12} {:>9}  speedup\n",
        "subcategory", "baseline(s)", "zpre(s)", "speedup"
    ));
    for (name, base, zpre, speedup) in rows {
        let bar_len = (speedup * 10.0).round().clamp(0.0, 60.0) as usize;
        out.push_str(&format!(
            "{:<14} {:>12.3} {:>12.3} {:>8.2}x  {}\n",
            name,
            base,
            zpre,
            speedup,
            "#".repeat(bar_len)
        ));
    }
    out
}

/// One family row of the clause-sharing report: `(family, rows, iso_ms,
/// shared_ms, sh_exported, sh_imported, sh_import_hits)`.
pub type ShareRow = (String, usize, f64, f64, u64, u64, u64);

/// Renders the shared-vs-isolated portfolio comparison with sharing
/// counters and a speedup bar, the terminal face of `BENCH_SHARE.json`.
pub fn share_table(rows: &[ShareRow], title: &str) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<12} {:>5} {:>12} {:>12} {:>8} {:>10} {:>10} {:>9}  speedup\n",
        "family", "rows", "iso(ms)", "shared(ms)", "speedup", "sh_exp", "sh_imp", "sh_hits"
    ));
    for (family, n, iso, shared, exp, imp, hits) in rows {
        let speedup = if *shared > 0.0 {
            iso / shared
        } else {
            f64::INFINITY
        };
        let bar_len = (speedup * 10.0).round().clamp(0.0, 60.0) as usize;
        out.push_str(&format!(
            "{:<12} {:>5} {:>12.1} {:>12.1} {:>7.2}x {:>10} {:>10} {:>9}  {}\n",
            family,
            n,
            iso,
            shared,
            speedup,
            exp,
            imp,
            hits,
            "#".repeat(bar_len)
        ));
    }
    out
}

/// One family row of the static-pruning report: `(family, rows,
/// unpruned_ms, pruned_ms, vars_unpruned, vars_pruned)`.
pub type PruneRow = (String, usize, f64, f64, u64, u64);

/// Renders the pruned-vs-unpruned comparison with the interference-variable
/// reduction per family, the terminal face of `BENCH_PRUNE.json`.
pub fn prune_table(rows: &[PruneRow], title: &str) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<12} {:>5} {:>13} {:>12} {:>10} {:>10} {:>8}  speedup\n",
        "family", "rows", "unpruned(ms)", "pruned(ms)", "vars_full", "vars_left", "shrink"
    ));
    for (family, n, unpruned, pruned, full, left) in rows {
        let speedup = if *pruned > 0.0 {
            unpruned / pruned
        } else {
            f64::INFINITY
        };
        let shrink = if *full > 0 {
            100.0 * (full.saturating_sub(*left)) as f64 / *full as f64
        } else {
            0.0
        };
        let bar_len = (speedup * 10.0).round().clamp(0.0, 60.0) as usize;
        out.push_str(&format!(
            "{:<12} {:>5} {:>13.1} {:>12.1} {:>10} {:>10} {:>7.1}%  {}\n",
            family,
            n,
            unpruned,
            pruned,
            full,
            left,
            shrink,
            "#".repeat(bar_len)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_renders_points_and_counts() {
        let pts = vec![
            ("a".to_string(), 100.0, 10.0),
            ("b".to_string(), 10.0, 100.0),
            ("c".to_string(), 50.0, 50.0),
        ];
        let s = scatter(&pts, "test");
        assert!(s.contains("test"));
        assert!(s.contains('+'));
        assert!(s.contains('x'));
        assert!(s.contains("1 below the diagonal"));
    }

    #[test]
    fn scatter_handles_empty() {
        assert!(scatter(&[], "t").contains("no points"));
    }

    #[test]
    fn share_table_renders_counters_and_speedup() {
        let rows = vec![("stress".to_string(), 12, 100.0, 50.0, 40, 20, 7)];
        let s = share_table(&rows, "share");
        assert!(s.contains("share"));
        assert!(s.contains("stress"));
        assert!(s.contains("2.00x"));
        for col in ["sh_exp", "sh_imp", "sh_hits"] {
            assert!(s.contains(col), "missing column {col}");
        }
        assert!(s.contains("####"));
    }

    #[test]
    fn bars_render_speedups() {
        let rows = vec![("wmm".to_string(), 10.0, 5.0, 2.0)];
        let s = subcat_bars(&rows, "fig9");
        assert!(s.contains("wmm"));
        assert!(s.contains("2.00x"));
        assert!(s.contains("####"));
    }
}
