//! # zpre-bench — experiment runner and aggregation
//!
//! Runs the workload suite through the verifier under every (memory model,
//! strategy) combination and aggregates the measurements into the paper's
//! tables and figures. The `harness` binary (`src/bin/harness.rs`)
//! regenerates each table/figure; the Criterion benches under `benches/`
//! provide statistically sampled timings on representative subsets.

#![warn(missing_docs)]

pub mod aggregate;
pub mod ascii;
pub mod families;
pub mod runner;
pub mod sweep;

pub use aggregate::*;
pub use families::contended_family;
pub use runner::{
    csv_row, json_row, run_one, run_one_portfolio, run_suite, run_suite_portfolio,
    run_suite_portfolio_streaming, run_suite_streaming, telemetry_json, to_csv, to_json,
    RowTelemetry, RunConfig, TaskResult, CSV_HEADER,
};
pub use sweep::{compare_one, compare_suite, SweepAggregate, SweepComparison};
