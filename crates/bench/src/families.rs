//! Synthetic workload families shared by the comparison harnesses
//! (`share-bench`, `prune-bench`) beyond the paper suite proper.

use zpre_prog::build::*;
use zpre_prog::{Program, Stmt};
use zpre_workloads::{Expected, Subcat, Task};

/// Builds `n` threads racing `steps` lossy increments on `cnt`, joined
/// by main before `check` runs.
fn contended_program(name: &str, n: usize, steps: u64, check: Stmt) -> Program {
    let body: Vec<Stmt> = (0..steps)
        .flat_map(|_| vec![assign("r", v("cnt")), assign("cnt", add(v("r"), c(1)))])
        .collect();
    let mut b = ProgramBuilder::new(name).shared("cnt", 0);
    for t in 0..n {
        b = b.thread(&format!("w{t}"), body.clone());
    }
    let mut main: Vec<Stmt> = (1..=n).map(spawn).collect();
    main.extend((1..=n).map(join));
    main.push(check);
    b.main(main).build()
}

/// Programs whose proofs force the solver through long refutations:
/// `n` threads race lossy increments, and the safe variant's assertion
/// states the bound that holds in every interleaving, so the search must
/// exhaust the read-from space (learning EOG-cycle lemmas along the way).
/// An unsafe variant rides along so Sat rows are paired too. The spawn/join
/// fan shape also makes the family join-heavy: every worker write is
/// must-happen-before the main-thread check.
pub fn contended_family(width: usize) -> Vec<Task> {
    let steps = 3u64;
    let mut tasks = Vec::new();
    for n in 2..=width.max(2) {
        let total = n as u64 * steps;
        // Lossy increments never exceed n*steps: safe in every
        // interleaving, but proving it walks the whole rf space.
        tasks.push(Task::new(
            format!("contended/le{n}"),
            Subcat::Ext,
            contended_program(
                &format!("contended-le{n}"),
                n,
                steps,
                assert_(le(v("cnt"), c(total))),
            ),
            1,
            Expected::safe_all(),
        ));
        // The exact total is racy: lost updates make it reachable to miss.
        tasks.push(Task::new(
            format!("contended/eq{n}"),
            Subcat::Ext,
            contended_program(
                &format!("contended-eq{n}"),
                n,
                steps,
                assert_(eq(v("cnt"), c(total))),
            ),
            1,
            Expected::unsafe_all(),
        ));
    }
    tasks
}
