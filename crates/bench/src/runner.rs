//! Parallel execution of the benchmark suite.

use rayon::prelude::*;
use std::time::Duration;
use zpre::{
    try_verify, verify_portfolio, PortfolioOptions, ShareConfig, Strategy, Verdict, VerifyOptions,
};
use zpre_obs::{Phase, Recorder, TraceConfig, VarClass};
use zpre_prog::MemoryModel;
use zpre_workloads::{Scale, Subcat, Task};

/// Configuration of one experiment run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Suite scale.
    pub scale: Scale,
    /// Deterministic conflict cap standing in for the paper's 1800 s
    /// per-task timeout (reported as `TO`).
    pub max_conflicts: u64,
    /// Optional wall-clock cap per task.
    pub timeout: Option<Duration>,
    /// Seed for random decision polarities.
    pub seed: u64,
    /// Validate extracted counterexample executions.
    pub validate: bool,
    /// Certify every verdict (RUP-checked proofs for Safe, replayed
    /// witnesses for Unsafe); rejected verdicts are reported as
    /// `"rejected"` instead of crashing the suite.
    pub certify: bool,
    /// Attach a `zpre-obs` recorder to every measurement: per-phase
    /// timings and per-class decision histograms land in the extra
    /// `TaskResult` columns (and in `BENCH_TELEMETRY.json` via the
    /// harness). Off by default so timing rows stay untouched by
    /// event-buffer overhead.
    pub telemetry: bool,
    /// Cross-member clause sharing for portfolio measurements
    /// ([`run_one_portfolio`] / [`run_suite_portfolio`]); single-strategy
    /// rows ignore it (there is nobody to share with).
    pub share: Option<ShareConfig>,
    /// Run the static interference-pruning pass before encoding (the
    /// verifier's default). `false` measures the historic unpruned
    /// encoding — the ablation side of `make bench-prune`.
    pub prune: bool,
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig {
            scale: Scale::Full,
            max_conflicts: 200_000,
            timeout: None,
            seed: 0xC0FFEE,
            validate: true,
            certify: false,
            telemetry: false,
            share: None,
            prune: true,
        }
    }
}

/// One measurement: a task solved under one memory model with one strategy.
#[derive(Clone, Debug)]
pub struct TaskResult {
    /// Task name.
    pub task: String,
    /// Subcategory name.
    pub subcat: String,
    /// Memory-model name.
    pub mm: String,
    /// Strategy name.
    pub strategy: String,
    /// Verdict: "safe" / "unsafe" / "unknown".
    pub verdict: String,
    /// Solve time in milliseconds (excluding encoding).
    pub solve_ms: f64,
    /// Encoding time in milliseconds.
    pub encode_ms: f64,
    /// Decisions.
    pub decisions: u64,
    /// Propagations.
    pub propagations: u64,
    /// Conflicts.
    pub conflicts: u64,
    /// Decisions answered by the interference guide.
    pub guided_decisions: u64,
    /// `true` when the verdict matches the generator's ground truth (or the
    /// ground truth is unknown / the verdict is unknown).
    pub expected_ok: bool,
    /// Portfolio rows only: name of the member whose verdict won the race.
    pub winner: Option<String>,
    /// Portfolio rows only: milliseconds from the winner's cancellation
    /// signal until the last loser actually stopped.
    pub cancel_latency_ms: Option<f64>,
    /// Certified rows only: one-line certificate summary.
    pub certified: Option<String>,
    /// Portfolio rows only: members quarantined after a panic or a
    /// certification failure, `;`-separated.
    pub quarantined: Option<String>,
    /// Observability columns, present when [`RunConfig::telemetry`] is on.
    pub telemetry: Option<RowTelemetry>,
}

/// Per-row per-phase timings and decision histogram, read off a `zpre-obs`
/// recorder attached to the measurement. Phase times come from the
/// recorder's spans (so they agree with `--profile` output); the decision
/// histogram and conflict count come from the recorder's exact counters,
/// which lets Table 2's decision/conflict columns be reproduced from the
/// event stream alone.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RowTelemetry {
    /// Loop-unrolling time in milliseconds.
    pub unroll_ms: f64,
    /// SSA-conversion time in milliseconds.
    pub ssa_ms: f64,
    /// Constraint-encoding time in milliseconds (contains `blast_ms`).
    pub encode_ms: f64,
    /// Bit-blasting time in milliseconds (nested inside encode).
    pub blast_ms: f64,
    /// Solving time in milliseconds.
    pub solve_ms: f64,
    /// Decisions on external read-from selector variables.
    pub dec_rf_ext: u64,
    /// Decisions on internal (same-thread) read-from selectors.
    pub dec_rf_int: u64,
    /// Decisions on write-serialization selectors.
    pub dec_ws: u64,
    /// Decisions on every other variable class.
    pub dec_other: u64,
    /// Conflicts counted from the event stream.
    pub obs_conflicts: u64,
    /// EOG cycle checks run by the order theory (one per asserted atom or
    /// fixed edge reaching the incremental engine).
    pub cc_checks: u64,
    /// Cycle checks accepted in O(1) by the topological-level test.
    pub cc_accepted_o1: u64,
    /// Nodes visited across all bounded two-way searches.
    pub cc_visited: u64,
    /// Topological-level promotions performed by forward passes.
    pub cc_promoted: u64,
    /// Conflict-LBD distribution: median (0 when no conflicts).
    pub lbd_p50: u64,
    /// Conflict-LBD distribution: 90th percentile.
    pub lbd_p90: u64,
    /// Conflict-LBD distribution: 99th percentile.
    pub lbd_p99: u64,
    /// EOG lemma cycle length, 90th percentile (0 when no lemmas).
    pub cycle_len_p90: u64,
    /// Clauses exported to the portfolio share pool (0 without `--share`).
    pub sh_exported: u64,
    /// Foreign clauses imported from the pool.
    pub sh_imported: u64,
    /// Propagations/conflicts driven by imported clauses — the signal that
    /// sharing did useful work, not just traffic.
    pub sh_import_hits: u64,
}

impl RowTelemetry {
    /// Total decisions across all classes; must equal the solver's own
    /// decision statistic.
    pub fn total_decisions(&self) -> u64 {
        self.dec_rf_ext + self.dec_rf_int + self.dec_ws + self.dec_other
    }

    /// Interference-class decisions (the paper's `V_rf ∪ V_ws`).
    pub fn interference_decisions(&self) -> u64 {
        self.dec_rf_ext + self.dec_rf_int + self.dec_ws
    }

    /// Reads phase timings and counters off a recorder snapshot.
    pub fn from_recorder(rec: &Recorder) -> RowTelemetry {
        let snap = rec.snapshot();
        let ms = |phase: Phase| -> f64 {
            snap.spans
                .iter()
                .filter(|s| s.phase == phase && s.closed)
                .map(|s| s.dur_us as f64 / 1e3)
                .sum()
        };
        let c = &snap.counters;
        RowTelemetry {
            unroll_ms: ms(Phase::Unroll),
            ssa_ms: ms(Phase::Ssa),
            encode_ms: ms(Phase::Encode),
            blast_ms: ms(Phase::Blast),
            solve_ms: ms(Phase::Solve),
            dec_rf_ext: c.decisions[VarClass::ExternalRf.index()],
            dec_rf_int: c.decisions[VarClass::InternalRf.index()],
            dec_ws: c.decisions[VarClass::Ws.index()],
            dec_other: c.decisions[VarClass::Other.index()],
            obs_conflicts: c.conflicts,
            cc_checks: c.cycle_checks,
            cc_accepted_o1: c.cycle_accepted_o1,
            cc_visited: c.cycle_visited,
            cc_promoted: c.cycle_promoted,
            lbd_p50: snap.hists.conflict_lbd.percentile(0.50),
            lbd_p90: snap.hists.conflict_lbd.percentile(0.90),
            lbd_p99: snap.hists.conflict_lbd.percentile(0.99),
            cycle_len_p90: snap.hists.lemma_cycle_len.percentile(0.90),
            sh_exported: c.sh_exported,
            sh_imported: c.sh_imported,
            sh_import_hits: c.sh_import_hits,
        }
    }
}

fn mk_recorder(cfg: &RunConfig) -> Option<Recorder> {
    cfg.telemetry.then(|| {
        Recorder::new(TraceConfig {
            // Counters and spans are all the bench columns need; skipping
            // event storage keeps memory flat across a full suite.
            events: false,
            decision_sample: 1,
        })
    })
}

impl TaskResult {
    /// Parsed verdict.
    pub fn verdict_enum(&self) -> Verdict {
        match self.verdict.as_str() {
            "safe" => Verdict::Safe,
            "unsafe" => Verdict::Unsafe,
            _ => Verdict::Unknown,
        }
    }

    /// `true` when the task was solved within budget.
    pub fn solved(&self) -> bool {
        self.verdict != "unknown"
    }
}

/// Runs `tasks × mms × strategies` in parallel and returns all results.
pub fn run_suite(
    tasks: &[Task],
    mms: &[MemoryModel],
    strategies: &[Strategy],
    cfg: &RunConfig,
) -> Vec<TaskResult> {
    run_suite_streaming(tasks, mms, strategies, cfg, |_| {})
}

/// Runs `tasks × mms × strategies` in parallel, invoking `on_row` as each
/// measurement completes. Rows arrive in completion order (not job order);
/// the returned vector is still in deterministic job order.
///
/// This is the interrupt-safe entry point: the harness flushes each row to
/// disk the moment it arrives, so a run killed mid-suite leaves every
/// finished measurement behind instead of losing hours of work to one
/// buffered `write` at the end.
pub fn run_suite_streaming<F>(
    tasks: &[Task],
    mms: &[MemoryModel],
    strategies: &[Strategy],
    cfg: &RunConfig,
    on_row: F,
) -> Vec<TaskResult>
where
    F: Fn(&TaskResult) + Sync,
{
    let mut jobs: Vec<(&Task, MemoryModel, Strategy)> = Vec::new();
    for t in tasks {
        for &mm in mms {
            for &st in strategies {
                jobs.push((t, mm, st));
            }
        }
    }
    jobs.par_iter()
        .map(|&(task, mm, strategy)| {
            let r = run_one(task, mm, strategy, cfg);
            on_row(&r);
            r
        })
        .collect()
}

/// Runs a single (task, memory model, strategy) measurement.
pub fn run_one(task: &Task, mm: MemoryModel, strategy: Strategy, cfg: &RunConfig) -> TaskResult {
    let recorder = mk_recorder(cfg);
    let opts = VerifyOptions {
        mm,
        strategy,
        unroll_bound: task.unroll_bound,
        max_bound: task.unroll_bound,
        max_conflicts: Some(cfg.max_conflicts),
        timeout: cfg.timeout,
        max_memory: None,
        seed: cfg.seed,
        validate_models: cfg.validate,
        want_trace: false,
        cancel: None,
        certify: cfg.certify,
        fault: None,
        recorder: recorder.clone(),
        share: None,
        prune: cfg.prune,
    };
    let telemetry = |rec: &Option<Recorder>| rec.as_ref().map(RowTelemetry::from_recorder);
    match try_verify(&task.program, &opts) {
        Ok(out) => TaskResult {
            task: task.name.clone(),
            subcat: task.subcat.name().to_string(),
            mm: mm.name().to_string(),
            strategy: strategy.name().to_string(),
            verdict: verdict_str(out.verdict).to_string(),
            solve_ms: out.solve_time.as_secs_f64() * 1e3,
            encode_ms: out.encode_time.as_secs_f64() * 1e3,
            decisions: out.stats.decisions,
            propagations: out.stats.propagations,
            conflicts: out.stats.conflicts,
            guided_decisions: out.stats.guided_decisions,
            expected_ok: task.expected.matches(mm, out.verdict),
            winner: None,
            cancel_latency_ms: None,
            certified: out.certificate.as_ref().map(|c| c.summary()),
            quarantined: None,
            telemetry: telemetry(&recorder),
        },
        // A rejected verdict (certification failure) is recorded, not
        // propagated as a panic: one bad row must not sink the suite.
        Err(e) => TaskResult {
            task: task.name.clone(),
            subcat: task.subcat.name().to_string(),
            mm: mm.name().to_string(),
            strategy: strategy.name().to_string(),
            verdict: "rejected".to_string(),
            solve_ms: 0.0,
            encode_ms: 0.0,
            decisions: 0,
            propagations: 0,
            conflicts: 0,
            guided_decisions: 0,
            expected_ok: false,
            winner: None,
            cancel_latency_ms: None,
            certified: Some(format!("rejected: {e}")),
            quarantined: None,
            telemetry: telemetry(&recorder),
        },
    }
}

fn verdict_str(v: Verdict) -> &'static str {
    match v {
        Verdict::Safe => "safe",
        Verdict::Unsafe => "unsafe",
        Verdict::Unknown => "unknown",
    }
}

/// Runs a single (task, memory model) measurement with the default
/// portfolio racing the main strategies. The row's `strategy` column is
/// `"portfolio"`; solver statistics come from the winning member.
pub fn run_one_portfolio(task: &Task, mm: MemoryModel, cfg: &RunConfig) -> TaskResult {
    let recorder = mk_recorder(cfg);
    let base = VerifyOptions {
        mm,
        strategy: Strategy::Zpre,
        unroll_bound: task.unroll_bound,
        max_bound: task.unroll_bound,
        max_conflicts: Some(cfg.max_conflicts),
        timeout: cfg.timeout,
        max_memory: None,
        seed: cfg.seed,
        validate_models: cfg.validate,
        want_trace: false,
        cancel: None,
        certify: cfg.certify,
        fault: None,
        recorder: recorder.clone(),
        share: None,
        prune: cfg.prune,
    };
    let mut folio_opts = PortfolioOptions::new(base);
    if let Some(share_cfg) = cfg.share {
        folio_opts = folio_opts.with_share(share_cfg);
    }
    let folio = verify_portfolio(&task.program, &folio_opts);
    let out = &folio.outcome;
    TaskResult {
        task: task.name.clone(),
        subcat: task.subcat.name().to_string(),
        mm: mm.name().to_string(),
        strategy: "portfolio".to_string(),
        verdict: verdict_str(out.verdict).to_string(),
        solve_ms: out.solve_time.as_secs_f64() * 1e3,
        encode_ms: out.encode_time.as_secs_f64() * 1e3,
        decisions: out.stats.decisions,
        propagations: out.stats.propagations,
        conflicts: out.stats.conflicts,
        guided_decisions: out.stats.guided_decisions,
        expected_ok: task.expected.matches(mm, out.verdict),
        winner: folio.winner.clone(),
        cancel_latency_ms: folio.cancel_latency.map(|d| d.as_secs_f64() * 1e3),
        certified: out.certificate.as_ref().map(|c| c.summary()),
        quarantined: if folio.quarantined.is_empty() {
            None
        } else {
            Some(folio.quarantined.join(";"))
        },
        telemetry: recorder.as_ref().map(RowTelemetry::from_recorder),
    }
}

/// Runs `tasks × mms` through the portfolio engine in parallel. Each job
/// already saturates several cores with its member threads, so jobs run
/// sequentially within rayon's outer parallelism.
pub fn run_suite_portfolio(
    tasks: &[Task],
    mms: &[MemoryModel],
    cfg: &RunConfig,
) -> Vec<TaskResult> {
    run_suite_portfolio_streaming(tasks, mms, cfg, |_| {})
}

/// [`run_suite_portfolio`] with a per-row completion callback, mirroring
/// [`run_suite_streaming`]: each finished portfolio race is handed to
/// `on_row` immediately so callers can flush it to disk.
pub fn run_suite_portfolio_streaming<F>(
    tasks: &[Task],
    mms: &[MemoryModel],
    cfg: &RunConfig,
    mut on_row: F,
) -> Vec<TaskResult>
where
    F: FnMut(&TaskResult),
{
    let mut results = Vec::new();
    for t in tasks {
        for &mm in mms {
            let r = run_one_portfolio(t, mm, cfg);
            on_row(&r);
            results.push(r);
        }
    }
    results
}

/// The CSV header line (no trailing newline) matching [`csv_row`].
pub const CSV_HEADER: &str = "task,subcat,mm,strategy,verdict,solve_ms,encode_ms,decisions,propagations,conflicts,guided_decisions,expected_ok,winner,cancel_latency_ms,certified,quarantined,unroll_ms,ssa_ms,tele_encode_ms,blast_ms,tele_solve_ms,dec_rf_ext,dec_rf_int,dec_ws,dec_other,obs_conflicts,cc_checks,cc_accepted_o1,cc_visited,cc_promoted,lbd_p50,lbd_p90,lbd_p99,cycle_len_p90,sh_exported,sh_imported,sh_import_hits";

// Certificate summaries contain commas; quote free-text columns.
fn quoted(s: Option<&str>) -> String {
    s.map_or(String::new(), |s| format!("\"{}\"", s.replace('"', "\"\"")))
}

/// One CSV line (no trailing newline) in [`CSV_HEADER`] column order.
pub fn csv_row(r: &TaskResult) -> String {
    // Telemetry columns stay empty (not zero) when telemetry was off,
    // so downstream tooling can tell "unmeasured" from "measured zero".
    let tele = r.telemetry.as_ref().map_or_else(
        || ",,,,,,,,,,,,,,,,,,,,".to_string(),
        |t| {
            format!(
                "{:.3},{:.3},{:.3},{:.3},{:.3},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                t.unroll_ms,
                t.ssa_ms,
                t.encode_ms,
                t.blast_ms,
                t.solve_ms,
                t.dec_rf_ext,
                t.dec_rf_int,
                t.dec_ws,
                t.dec_other,
                t.obs_conflicts,
                t.cc_checks,
                t.cc_accepted_o1,
                t.cc_visited,
                t.cc_promoted,
                t.lbd_p50,
                t.lbd_p90,
                t.lbd_p99,
                t.cycle_len_p90,
                t.sh_exported,
                t.sh_imported,
                t.sh_import_hits
            )
        },
    );
    format!(
        "{},{},{},{},{},{:.3},{:.3},{},{},{},{},{},{},{},{},{},{}",
        r.task,
        r.subcat,
        r.mm,
        r.strategy,
        r.verdict,
        r.solve_ms,
        r.encode_ms,
        r.decisions,
        r.propagations,
        r.conflicts,
        r.guided_decisions,
        r.expected_ok,
        r.winner.as_deref().unwrap_or(""),
        r.cancel_latency_ms
            .map_or(String::new(), |l| format!("{l:.3}")),
        quoted(r.certified.as_deref()),
        quoted(r.quarantined.as_deref()),
        tele
    )
}

/// One compact JSON object for a row (no trailing newline), suitable for
/// NDJSON streaming: the harness appends one per completed measurement so
/// an interrupted run leaves a parseable prefix behind.
pub fn json_row(r: &TaskResult) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    format!(
        "{{\"task\":\"{}\",\"subcat\":\"{}\",\"mm\":\"{}\",\"strategy\":\"{}\",\
         \"verdict\":\"{}\",\"solve_ms\":{:.3},\"encode_ms\":{:.3},\"decisions\":{},\
         \"propagations\":{},\"conflicts\":{},\"guided_decisions\":{},\"expected_ok\":{},\
         \"winner\":{},\"cancel_latency_ms\":{},\"certified\":{},\"quarantined\":{},\
         \"telemetry\":{}}}",
        esc(&r.task),
        esc(&r.subcat),
        esc(&r.mm),
        esc(&r.strategy),
        esc(&r.verdict),
        r.solve_ms,
        r.encode_ms,
        r.decisions,
        r.propagations,
        r.conflicts,
        r.guided_decisions,
        r.expected_ok,
        r.winner
            .as_deref()
            .map_or("null".to_string(), |w| format!("\"{}\"", esc(w))),
        r.cancel_latency_ms
            .map_or("null".to_string(), |l| format!("{l:.3}")),
        r.certified
            .as_deref()
            .map_or("null".to_string(), |c| format!("\"{}\"", esc(c))),
        r.quarantined
            .as_deref()
            .map_or("null".to_string(), |q| format!("\"{}\"", esc(q))),
        telemetry_json(r.telemetry.as_ref()),
    )
}

/// Serializes results as CSV.
pub fn to_csv(results: &[TaskResult]) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for r in results {
        out.push_str(&csv_row(r));
        out.push('\n');
    }
    out
}

/// Serializes results as pretty-printed JSON (hand-rolled: the build
/// environment has no registry access, so serde is not available).
pub fn to_json(results: &[TaskResult]) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "  {{\n    \"task\": \"{}\",\n    \"subcat\": \"{}\",\n    \"mm\": \"{}\",\n    \"strategy\": \"{}\",\n    \"verdict\": \"{}\",\n    \"solve_ms\": {:.3},\n    \"encode_ms\": {:.3},\n    \"decisions\": {},\n    \"propagations\": {},\n    \"conflicts\": {},\n    \"guided_decisions\": {},\n    \"expected_ok\": {},\n    \"winner\": {},\n    \"cancel_latency_ms\": {},\n    \"certified\": {},\n    \"quarantined\": {},\n    \"telemetry\": {}\n  }}{}\n",
            esc(&r.task),
            esc(&r.subcat),
            esc(&r.mm),
            esc(&r.strategy),
            esc(&r.verdict),
            r.solve_ms,
            r.encode_ms,
            r.decisions,
            r.propagations,
            r.conflicts,
            r.guided_decisions,
            r.expected_ok,
            r.winner.as_deref().map_or("null".to_string(), |w| format!("\"{}\"", esc(w))),
            r.cancel_latency_ms.map_or("null".to_string(), |l| format!("{l:.3}")),
            r.certified.as_deref().map_or("null".to_string(), |c| format!("\"{}\"", esc(c))),
            r.quarantined.as_deref().map_or("null".to_string(), |q| format!("\"{}\"", esc(q))),
            telemetry_json(r.telemetry.as_ref()),
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push(']');
    out
}

/// JSON fragment for a row's telemetry (or `null` when telemetry was off).
pub fn telemetry_json(t: Option<&RowTelemetry>) -> String {
    match t {
        None => "null".to_string(),
        Some(t) => format!(
            "{{\"unroll_ms\": {:.3}, \"ssa_ms\": {:.3}, \"encode_ms\": {:.3}, \
             \"blast_ms\": {:.3}, \"solve_ms\": {:.3}, \"dec_rf_ext\": {}, \
             \"dec_rf_int\": {}, \"dec_ws\": {}, \"dec_other\": {}, \"obs_conflicts\": {}, \
             \"cc_checks\": {}, \"cc_accepted_o1\": {}, \"cc_visited\": {}, \"cc_promoted\": {}, \
             \"lbd_p50\": {}, \"lbd_p90\": {}, \"lbd_p99\": {}, \"cycle_len_p90\": {}, \
             \"sh_exported\": {}, \"sh_imported\": {}, \"sh_import_hits\": {}}}",
            t.unroll_ms,
            t.ssa_ms,
            t.encode_ms,
            t.blast_ms,
            t.solve_ms,
            t.dec_rf_ext,
            t.dec_rf_int,
            t.dec_ws,
            t.dec_other,
            t.obs_conflicts,
            t.cc_checks,
            t.cc_accepted_o1,
            t.cc_visited,
            t.cc_promoted,
            t.lbd_p50,
            t.lbd_p90,
            t.lbd_p99,
            t.cycle_len_p90,
            t.sh_exported,
            t.sh_imported,
            t.sh_import_hits
        ),
    }
}

/// Helper: the subcategory display order used by the figures.
pub fn subcat_order() -> Vec<&'static str> {
    Subcat::ALL.iter().map(|s| s.name()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use zpre_workloads::suite;

    #[test]
    fn quick_run_produces_consistent_results() {
        let tasks: Vec<Task> = suite(Scale::Quick).into_iter().take(4).collect();
        let cfg = RunConfig {
            scale: Scale::Quick,
            ..RunConfig::default()
        };
        let results = run_suite(
            &tasks,
            &[MemoryModel::Sc],
            &[Strategy::Baseline, Strategy::Zpre],
            &cfg,
        );
        assert_eq!(results.len(), tasks.len() * 2);
        for r in &results {
            assert!(
                r.expected_ok,
                "{} {} {} got {}",
                r.task, r.mm, r.strategy, r.verdict
            );
        }
        // Baseline and ZPRE agree on every verdict.
        for t in &tasks {
            let v: Vec<&str> = results
                .iter()
                .filter(|r| r.task == t.name)
                .map(|r| r.verdict.as_str())
                .collect();
            assert_eq!(v[0], v[1], "{}", t.name);
        }
    }

    #[test]
    fn csv_roundtrip_shape() {
        let tasks: Vec<Task> = suite(Scale::Quick).into_iter().take(1).collect();
        let cfg = RunConfig::default();
        let results = run_suite(&tasks, &[MemoryModel::Sc], &[Strategy::Zpre], &cfg);
        let csv = to_csv(&results);
        assert_eq!(csv.lines().count(), results.len() + 1);
        assert!(csv.starts_with("task,"));
        // Telemetry was off: the trailing telemetry columns are empty, and
        // the row still has exactly one field per header column.
        let row = csv.lines().nth(1).unwrap();
        assert!(row.ends_with(",,,,,,,,,,,,,"));
        assert_eq!(row.split(',').count(), CSV_HEADER.split(',').count());
    }

    /// Table 2's decision and conflict columns must be reproducible from
    /// the observability event stream alone: the per-class histogram sums
    /// to the solver's decision statistic and the event-counted conflicts
    /// equal the solver's conflict statistic, for baseline and ZPRE alike.
    #[test]
    fn table2_columns_reproduce_from_event_stream() {
        let tasks: Vec<Task> = suite(Scale::Quick).into_iter().take(3).collect();
        let cfg = RunConfig {
            scale: Scale::Quick,
            telemetry: true,
            ..RunConfig::default()
        };
        let results = run_suite(
            &tasks,
            &[MemoryModel::Sc, MemoryModel::Tso],
            &[Strategy::Baseline, Strategy::Zpre],
            &cfg,
        );
        for r in &results {
            let t = r
                .telemetry
                .as_ref()
                .expect("telemetry row present when cfg.telemetry is set");
            assert_eq!(
                t.total_decisions(),
                r.decisions,
                "{} {} {}: histogram must sum to the decision count",
                r.task,
                r.mm,
                r.strategy
            );
            assert_eq!(
                t.obs_conflicts, r.conflicts,
                "{} {} {}: event-stream conflicts must match stats",
                r.task, r.mm, r.strategy
            );
            // LBD percentiles are monotone and present exactly when a
            // conflict was observed (every conflict has LBD >= 1).
            assert!(
                t.lbd_p50 <= t.lbd_p90 && t.lbd_p90 <= t.lbd_p99,
                "{} {} {}: LBD percentiles must be monotone",
                r.task,
                r.mm,
                r.strategy
            );
            // A level-0 terminal conflict is recorded with LBD 0 (nothing
            // is learnt), so conflicts can outnumber positive LBD samples —
            // but a positive LBD always implies a conflict happened.
            assert!(
                t.lbd_p99 == 0 || t.obs_conflicts > 0,
                "{} {} {}: positive LBD p99 without any observed conflict",
                r.task,
                r.mm,
                r.strategy
            );
            // The guide explains the histogram: ZPRE front-loads
            // interference classes, so whenever it decided anything it
            // decided at least one interference variable.
            if r.strategy == "zpre" && r.decisions > 0 && r.guided_decisions > 0 {
                assert!(
                    t.interference_decisions() > 0,
                    "{} {}: guided run recorded no interference decisions",
                    r.task,
                    r.mm
                );
            }
        }
    }
}
