//! `share-bench` — shared vs isolated portfolio comparison.
//!
//! ```text
//! share-bench [--quick] [--tag NAME] [--out PATH] [--budget N]
//!             [--seed N] [--tolerance PCT]
//! ```
//!
//! Races the default strategy portfolio twice over the stress and wmm
//! families plus a contended family built to keep every member in heavy
//! conflict traffic: once isolated (each member rediscovers its own
//! lemmas) and once with cross-member clause sharing
//! (`ShareConfig::default`). Verdicts are asserted identical row by row;
//! per-task rows and per-family aggregates append as NDJSON to
//! `BENCH_SHARE.json` so the sharing-efficiency trajectory accumulates
//! across commits.
//!
//! Acceptance: every paired verdict agrees, the shared aggregate wall
//! clock stays within `--tolerance` (default 15%) of the isolated run,
//! and the sharing counters prove non-trivial import traffic
//! (`sh_import_hits > 0` somewhere in the suite).
//!
//! The timing gate follows the paper's §5 both-solved convention (the
//! same one `aggregate::table1` uses): rows where both sides exhaust the
//! conflict budget (verdict `unknown`) are excluded from the gated wall
//! clock — with identical budgets on both sides such a row can only
//! measure per-conflict overhead, never time-to-verdict. Exhausted rows
//! still count for verdict agreement and the sharing counters, and their
//! times are reported in the NDJSON rows.

use std::fs::OpenOptions;
use std::io::Write as _;

use zpre::ShareConfig;
use zpre_bench::{ascii, contended_family, run_one_portfolio, RunConfig, TaskResult};
use zpre_prog::MemoryModel;
use zpre_workloads::{subcategory, Scale, Subcat, Task};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let tag = flag_value(&args, "--tag").unwrap_or_else(|| {
        if quick {
            "quick".to_string()
        } else {
            "full".to_string()
        }
    });
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_SHARE.json".to_string());
    let budget: u64 = flag_value(&args, "--budget")
        .map(|v| v.parse().expect("numeric --budget"))
        .unwrap_or(200_000);
    let seed: u64 = flag_value(&args, "--seed")
        .map(|v| v.parse().expect("numeric --seed"))
        .unwrap_or(0xC0FFEE);
    let tolerance_pct: f64 = flag_value(&args, "--tolerance")
        .map(|v| {
            v.trim_end_matches('%')
                .parse()
                .expect("numeric --tolerance")
        })
        .unwrap_or(15.0);

    let scale = if quick { Scale::Quick } else { Scale::Full };
    // Telemetry is on for both sides so the sharing counters land in the
    // rows; the isolated side must carry the same recorder overhead for
    // the timing comparison to be fair.
    let isolated_cfg = RunConfig {
        scale,
        max_conflicts: budget,
        seed,
        validate: false,
        telemetry: true,
        share: None,
        ..RunConfig::default()
    };
    let shared_cfg = RunConfig {
        share: Some(ShareConfig::default()),
        ..isolated_cfg.clone()
    };

    let families: Vec<(&str, Vec<Task>)> = vec![
        ("stress", subcategory(scale, Subcat::Stress)),
        ("wmm", subcategory(scale, Subcat::Wmm)),
        ("contended", contended_family(if quick { 2 } else { 4 })),
    ];

    let mut lines = Vec::new();
    let mut table: Vec<ascii::ShareRow> = Vec::new();
    let mut disagreements = Vec::new();
    let (mut total_iso_ms, mut total_sh_ms) = (0.0f64, 0.0f64);
    let mut total_hits = 0u64;
    let mut total_exhausted = 0usize;
    for (family, tasks) in &families {
        if tasks.is_empty() {
            continue;
        }
        let (mut iso_ms, mut sh_ms) = (0.0f64, 0.0f64);
        let (mut exported, mut imported, mut hits) = (0u64, 0u64, 0u64);
        let mut rows = 0usize;
        let mut exhausted = 0usize;
        for task in tasks {
            for &mm in &MemoryModel::ALL {
                let iso = run_one_portfolio(task, mm, &isolated_cfg);
                let sh = run_one_portfolio(task, mm, &shared_cfg);
                if iso.verdict != sh.verdict {
                    disagreements.push(format!(
                        "{} {}: isolated={} shared={}",
                        task.name,
                        mm.name(),
                        iso.verdict,
                        sh.verdict
                    ));
                }
                rows += 1;
                // Both-solved convention: budget-exhausted pairs carry no
                // time-to-verdict signal (both sides burn the same conflict
                // budget), so they stay out of the gated wall clock.
                if iso.verdict == "unknown" && sh.verdict == "unknown" {
                    exhausted += 1;
                } else {
                    iso_ms += iso.solve_ms;
                    sh_ms += sh.solve_ms;
                }
                let (e, i, h) = share_counters(&sh);
                exported += e;
                imported += i;
                hits += h;
                lines.push(row_json(&tag, family, mm.name(), &iso, &sh));
            }
        }
        total_iso_ms += iso_ms;
        total_sh_ms += sh_ms;
        total_hits += hits;
        total_exhausted += exhausted;
        lines.push(format!(
            "{{\"tag\": \"{tag}\", \"kind\": \"family\", \"family\": \"{family}\", \
             \"rows\": {rows}, \"exhausted_rows\": {exhausted}, \
             \"isolated_ms\": {iso_ms:.3}, \"shared_ms\": {sh_ms:.3}, \
             \"speedup\": {:.3}, \"sh_exported\": {exported}, \"sh_imported\": {imported}, \
             \"sh_import_hits\": {hits}}}",
            if sh_ms > 0.0 {
                iso_ms / sh_ms
            } else {
                f64::INFINITY
            }
        ));
        table.push((
            family.to_string(),
            rows,
            iso_ms,
            sh_ms,
            exported,
            imported,
            hits,
        ));
    }

    println!(
        "{}",
        ascii::share_table(&table, "Portfolio clause sharing: isolated vs shared")
    );
    if total_exhausted > 0 {
        println!(
            "({total_exhausted} row(s) exhausted the conflict budget on both sides; \
             excluded from the gated ms per the both-solved convention)"
        );
    }

    for d in &disagreements {
        eprintln!("VERDICT DISAGREEMENT {d}");
    }
    let bar = 1.0 + tolerance_pct / 100.0;
    let time_ok = total_sh_ms <= total_iso_ms * bar;
    let hits_ok = total_hits > 0;
    let agree_ok = disagreements.is_empty();
    println!(
        "aggregate (both-solved): isolated {total_iso_ms:.1} ms vs shared {total_sh_ms:.1} ms \
         (bar: shared <= {bar:.2}x isolated: {}), import hits {total_hits} \
         (bar: > 0: {}), verdict agreement: {}",
        pass(time_ok),
        pass(hits_ok),
        pass(agree_ok)
    );
    lines.push(format!(
        "{{\"tag\": \"{tag}\", \"kind\": \"aggregate\", \"isolated_ms\": {total_iso_ms:.3}, \
         \"shared_ms\": {total_sh_ms:.3}, \"speedup\": {:.3}, \
         \"exhausted_rows\": {total_exhausted}, \"sh_import_hits\": {total_hits}, \
         \"verdicts_agree\": {agree_ok}, \"accept\": {}}}",
        if total_sh_ms > 0.0 {
            total_iso_ms / total_sh_ms
        } else {
            f64::INFINITY
        },
        time_ok && hits_ok && agree_ok
    ));

    let mut f = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
        .expect("open BENCH_SHARE.json for append");
    for l in &lines {
        writeln!(f, "{l}").expect("append bench line");
    }
    println!("appended {} lines to {out_path}", lines.len());
    if !(time_ok && hits_ok && agree_ok) {
        std::process::exit(1);
    }
}

fn pass(ok: bool) -> &'static str {
    if ok {
        "PASS"
    } else {
        "FAIL"
    }
}

fn share_counters(r: &TaskResult) -> (u64, u64, u64) {
    r.telemetry.as_ref().map_or((0, 0, 0), |t| {
        (t.sh_exported, t.sh_imported, t.sh_import_hits)
    })
}

fn row_json(tag: &str, family: &str, mm: &str, iso: &TaskResult, sh: &TaskResult) -> String {
    let (e, i, h) = share_counters(sh);
    format!(
        "{{\"tag\": \"{tag}\", \"kind\": \"row\", \"family\": \"{family}\", \
         \"task\": \"{}\", \"mm\": \"{mm}\", \"verdict\": \"{}\", \
         \"isolated_ms\": {:.3}, \"shared_ms\": {:.3}, \"sh_exported\": {e}, \
         \"sh_imported\": {i}, \"sh_import_hits\": {h}, \"agree\": {}}}",
        iso.task,
        sh.verdict,
        iso.solve_ms,
        sh.solve_ms,
        iso.verdict == sh.verdict
    )
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}
