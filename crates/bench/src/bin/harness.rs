//! Experiment harness: regenerates every table and figure of the paper.
//!
//! ```text
//! harness [--scale quick|full] [--budget CONFLICTS] [--seed N] [--out DIR]
//!         [--telemetry] <experiment>
//!
//! experiments:
//!   table1     accumulated both-solved time, Sat/Unsat/All × SC/TSO/PSO
//!   table2     decisions/propagations/conflicts ratios
//!   table3     baseline vs ZPRE⁻ vs ZPRE summary
//!   fig6 fig7 fig8      per-task scatter (SC, TSO, PSO)
//!   fig9 fig10 fig11    per-subcategory totals (SC, TSO, PSO)
//!   ablation   heuristic stack + polarity + propagation ablations
//!   portfolio  strategy race: win counts, cancellation latency, agreement
//!   validate   verdict consistency against generator ground truth
//!   all        everything above
//! ```
//!
//! Raw measurements are written as CSV/JSON under `--out`
//! (default `target/experiments`). With `--telemetry`, every measurement
//! carries a `zpre-obs` recorder: per-phase timings (unroll/SSA/encode/
//! bit-blast/solve) and per-class decision histograms are appended to the
//! raw rows and aggregated into `BENCH_TELEMETRY.json`.
//!
//! The runner is interrupt-safe: every finished measurement is appended to
//! `raw.csv` and `BENCH_ROWS.json` (one JSON object per line) and flushed
//! the moment it completes, so a run killed mid-suite leaves all finished
//! rows on disk. `raw.csv` is rewritten in deterministic job order once the
//! suite completes; `raw.json` is only written for completed runs.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;
use zpre::Strategy;
use zpre_bench::{
    ablation, ascii, csv_row, fig_scatter, fig_subcats, json_row, mismatches, portfolio_summary,
    run_suite_portfolio_streaming, run_suite_streaming, table1, table2, table3, telemetry_summary,
    to_csv, to_json, RunConfig, TaskResult, CSV_HEADER,
};
use zpre_prog::MemoryModel;
use zpre_workloads::{suite, Scale};

const MMS: [&str; 3] = ["sc", "tso", "pso"];

/// Streams finished rows to `raw.csv` + `BENCH_ROWS.json`, flushing after
/// every append. A write failure downgrades the sink to a warning (printed
/// once) instead of sinking the suite: the in-memory results still produce
/// every table.
struct RowSink {
    csv: Option<std::fs::File>,
    rows: Option<std::fs::File>,
}

impl RowSink {
    fn open(out_dir: &std::path::Path) -> RowSink {
        let open = |name: &str, header: Option<&str>| -> Option<std::fs::File> {
            let path = out_dir.join(name);
            match std::fs::File::create(&path) {
                Ok(mut f) => {
                    if let Some(h) = header {
                        if let Err(e) = writeln!(f, "{h}") {
                            eprintln!("warning: cannot write {}: {e}", path.display());
                            return None;
                        }
                    }
                    Some(f)
                }
                Err(e) => {
                    eprintln!("warning: cannot create {}: {e}", path.display());
                    None
                }
            }
        };
        RowSink {
            csv: open("raw.csv", Some(CSV_HEADER)),
            rows: open("BENCH_ROWS.json", None),
        }
    }

    fn push(&mut self, r: &TaskResult) {
        for (file, line, name) in [
            (&mut self.csv, csv_row(r), "raw.csv"),
            (&mut self.rows, json_row(r), "BENCH_ROWS.json"),
        ] {
            if let Some(f) = file {
                if let Err(e) = writeln!(f, "{line}").and_then(|()| f.flush()) {
                    eprintln!("warning: cannot append to {name}: {e}; partial rows stop here");
                    *file = None;
                }
            }
        }
    }
}

fn parse_num(args: &[String], i: &mut usize, flag: &str) -> u64 {
    *i += 1;
    match args.get(*i).map(|raw| (raw, raw.parse())) {
        Some((_, Ok(n))) => n,
        Some((raw, Err(_))) => {
            eprintln!("{flag}: invalid value {raw:?}");
            std::process::exit(2);
        }
        None => {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut budget: u64 = 200_000;
    let mut seed: u64 = 0xC0FFEE;
    let mut out_dir = PathBuf::from("target/experiments");
    let mut telemetry = false;
    let mut experiments: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("quick") => Scale::Quick,
                    Some("full") => Scale::Full,
                    other => {
                        eprintln!("unknown scale {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--budget" => budget = parse_num(&args, &mut i, "--budget"),
            "--seed" => seed = parse_num(&args, &mut i, "--seed"),
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => out_dir = PathBuf::from(dir),
                    None => {
                        eprintln!("--out requires a value");
                        std::process::exit(2);
                    }
                }
            }
            "--telemetry" => telemetry = true,
            exp => experiments.push(exp.to_string()),
        }
        i += 1;
    }
    if experiments.is_empty() {
        eprintln!("usage: harness [--scale quick|full] [--budget N] [--seed N] [--out DIR] [--telemetry] <experiment>...");
        eprintln!("experiments: table1 table2 table3 fig6..fig11 ablation portfolio validate all");
        std::process::exit(2);
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = [
            "validate",
            "table1",
            "table2",
            "table3",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "ablation",
            "portfolio",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let cfg = RunConfig {
        scale,
        max_conflicts: budget,
        seed,
        telemetry,
        ..RunConfig::default()
    };
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create output dir {}: {e}", out_dir.display());
        std::process::exit(2);
    }

    // Which strategies are needed?
    let needs_ablation = experiments.iter().any(|e| e == "ablation");
    let needs_minus = needs_ablation || experiments.iter().any(|e| e == "table3");
    let mut strategies = vec![Strategy::Baseline, Strategy::Zpre];
    if needs_minus {
        strategies.push(Strategy::ZpreMinus);
    }
    if needs_ablation {
        strategies.extend([
            Strategy::ZpreH2,
            Strategy::ZpreH3,
            Strategy::ZpreFixedTrue,
            Strategy::ZpreNoReverseProp,
            Strategy::ZpreDfsCheck,
            Strategy::BranchCond,
        ]);
    }

    let tasks = suite(scale);
    eprintln!(
        "running {} tasks x 3 memory models x {} strategies (budget {} conflicts)...",
        tasks.len(),
        strategies.len(),
        budget
    );
    let t0 = std::time::Instant::now();
    let sink = Mutex::new(RowSink::open(&out_dir));
    let mut results = run_suite_streaming(&tasks, &MemoryModel::ALL, &strategies, &cfg, |r| {
        sink.lock().unwrap().push(r)
    });
    if experiments.iter().any(|e| e == "portfolio") {
        eprintln!(
            "racing the portfolio over {} tasks x 3 memory models...",
            tasks.len()
        );
        results.extend(run_suite_portfolio_streaming(
            &tasks,
            &MemoryModel::ALL,
            &cfg,
            |r| sink.lock().unwrap().push(r),
        ));
    }
    drop(sink);
    eprintln!("suite finished in {:.1}s", t0.elapsed().as_secs_f64());

    // The streamed raw.csv is in completion order; rewrite it in
    // deterministic job order now that the suite is complete, and persist
    // the pretty JSON document (completed runs only — interrupted runs
    // fall back to the streamed BENCH_ROWS.json prefix).
    if let Err(e) = std::fs::write(out_dir.join("raw.csv"), to_csv(&results)) {
        eprintln!("warning: cannot rewrite raw.csv: {e}");
    }
    if let Err(e) = std::fs::write(out_dir.join("raw.json"), to_json(&results)) {
        eprintln!("warning: cannot write raw.json: {e}");
    }
    if telemetry {
        let path = out_dir.join("BENCH_TELEMETRY.json");
        if let Err(e) = std::fs::write(&path, telemetry_json_doc(&results)) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        }
        println!("\n================ telemetry ================");
        print_telemetry(&results);
        println!("(aggregate: {})", path.display());
    }

    for exp in &experiments {
        println!("\n================ {exp} ================");
        match exp.as_str() {
            "validate" => print_validate(&results),
            "table1" => print_table1(&results),
            "table2" => print_table2(&results),
            "table3" => print_table3(&results),
            "fig6" => {
                print_fig_scatter(&results, "sc", "Figure 6: ZPRE vs baseline in SC", &out_dir)
            }
            "fig7" => print_fig_scatter(
                &results,
                "tso",
                "Figure 7: ZPRE vs baseline in TSO",
                &out_dir,
            ),
            "fig8" => print_fig_scatter(
                &results,
                "pso",
                "Figure 8: ZPRE vs baseline in PSO",
                &out_dir,
            ),
            "fig9" => print_fig_subcats(&results, "sc", "Figure 9: subcategory time in SC"),
            "fig10" => print_fig_subcats(&results, "tso", "Figure 10: subcategory time in TSO"),
            "fig11" => print_fig_subcats(&results, "pso", "Figure 11: subcategory time in PSO"),
            "ablation" => print_ablation(&results),
            "portfolio" => print_portfolio(&results),
            "probe" => print_probe(&results),
            other => eprintln!("unknown experiment {other:?}"),
        }
    }
}

/// Per-(mm, strategy) phase-time and decision-histogram aggregate as a
/// standalone JSON document.
fn telemetry_json_doc(results: &[TaskResult]) -> String {
    let rows = telemetry_summary(results);
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"mm\": \"{}\", \"strategy\": \"{}\", \"rows\": {}, \
             \"unroll_ms\": {:.3}, \"ssa_ms\": {:.3}, \"encode_ms\": {:.3}, \
             \"blast_ms\": {:.3}, \"solve_ms\": {:.3}, \"dec_rf_ext\": {}, \
             \"dec_rf_int\": {}, \"dec_ws\": {}, \"dec_other\": {}, \
             \"obs_conflicts\": {}, \"cc_checks\": {}, \"cc_accepted_o1\": {}, \
             \"cc_visited\": {}, \"cc_promoted\": {}, \"sh_exported\": {}, \
             \"sh_imported\": {}, \"sh_import_hits\": {}}}{}\n",
            r.mm,
            r.strategy,
            r.rows,
            r.unroll_ms,
            r.ssa_ms,
            r.encode_ms,
            r.blast_ms,
            r.solve_ms,
            r.dec_rf_ext,
            r.dec_rf_int,
            r.dec_ws,
            r.dec_other,
            r.obs_conflicts,
            r.cc_checks,
            r.cc_accepted_o1,
            r.cc_visited,
            r.cc_promoted,
            r.sh_exported,
            r.sh_imported,
            r.sh_import_hits,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push(']');
    out
}

fn print_telemetry(results: &[TaskResult]) {
    println!(
        "{:<5} {:<15} {:>10} {:>10} {:>10} {:>9} {:>9} {:>7} {:>9} {:>7} {:>10} {:>7} {:>10} {:>9} {:>8} {:>8} {:>8}",
        "MM",
        "strategy",
        "encode(ms)",
        "blast(ms)",
        "solve(ms)",
        "rf_ext",
        "rf_int",
        "ws",
        "other",
        "intf%",
        "cc",
        "o1%",
        "visited",
        "promoted",
        "sh_exp",
        "sh_imp",
        "sh_hits"
    );
    for r in telemetry_summary(results) {
        println!(
            "{:<5} {:<15} {:>10.1} {:>10.1} {:>10.1} {:>9} {:>9} {:>7} {:>9} {:>6.1}% {:>10} {:>6.1}% {:>10} {:>9} {:>8} {:>8} {:>8}",
            r.mm.to_uppercase(),
            r.strategy,
            r.encode_ms,
            r.blast_ms,
            r.solve_ms,
            r.dec_rf_ext,
            r.dec_rf_int,
            r.dec_ws,
            r.dec_other,
            r.interference_pct(),
            r.cc_checks,
            r.cc_o1_pct(),
            r.cc_visited,
            r.cc_promoted,
            r.sh_exported,
            r.sh_imported,
            r.sh_import_hits
        );
    }
}

/// Slowest tasks by baseline time, with the ZPRE comparison.
fn print_probe(results: &[TaskResult]) {
    let mut rows: Vec<&TaskResult> = results
        .iter()
        .filter(|r| r.strategy == "baseline")
        .collect();
    rows.sort_by(|a, b| b.solve_ms.partial_cmp(&a.solve_ms).unwrap());
    println!(
        "{:<34} {:>4} {:>10} {:>10} {:>8} {:>9}",
        "task", "mm", "base(ms)", "zpre(ms)", "verdict", "conflicts"
    );
    for r in rows.iter().take(40) {
        let z = results
            .iter()
            .find(|x| x.task == r.task && x.mm == r.mm && x.strategy == "zpre");
        println!(
            "{:<34} {:>4} {:>10.1} {:>10.1} {:>8} {:>9}",
            r.task,
            r.mm,
            r.solve_ms,
            z.map_or(f64::NAN, |x| x.solve_ms),
            r.verdict,
            r.conflicts
        );
    }
}

fn print_validate(results: &[TaskResult]) {
    let bad = mismatches(results);
    let mut counts: BTreeMap<(&str, &str), usize> = BTreeMap::new();
    for r in results {
        *counts
            .entry((r.mm.as_str(), r.verdict.as_str()))
            .or_default() += 1;
    }
    println!("verdict counts per memory model:");
    for ((mm, verdict), n) in &counts {
        println!("  {mm:>4} {verdict:>8}: {n}");
    }
    if bad.is_empty() {
        println!("ground-truth check: all verdicts consistent");
    } else {
        println!("ground-truth check: {} MISMATCHES:", bad.len());
        for r in bad {
            println!("  {} {} {} -> {}", r.task, r.mm, r.strategy, r.verdict);
        }
    }
}

fn print_table1(results: &[TaskResult]) {
    println!("Table 1. Overall results: baseline vs ZPRE (both-solved accumulated time)");
    println!(
        "{:<5} {:>22} {:>22} {:>22}",
        "MM", "Sat (base/zpre, x)", "Unsat (base/zpre, x)", "All (base/zpre, x)"
    );
    for row in table1(results, &MMS) {
        let (s, u, a) = row.speedups();
        println!(
            "{:<5} {:>9.2}/{:<6.2} {:>4.2}x {:>9.2}/{:<6.2} {:>4.2}x {:>9.2}/{:<6.2} {:>4.2}x",
            row.mm.to_uppercase(),
            row.sat_base_s,
            row.sat_zpre_s,
            s,
            row.unsat_base_s,
            row.unsat_zpre_s,
            u,
            row.all_base_s,
            row.all_zpre_s,
            a
        );
    }
}

fn print_table2(results: &[TaskResult]) {
    println!("Table 2. Decisions / propagations / conflicts: baseline vs ZPRE");
    println!(
        "{:<5} {:>26} {:>26} {:>26}",
        "MM", "Decisions (b/z, x)", "Propagations (b/z, x)", "Conflicts (b/z, x)"
    );
    for row in table2(results, &MMS) {
        let (d, p, c) = row.ratios();
        println!(
            "{:<5} {:>10}/{:<10} {:>4.2}x {:>10}/{:<10} {:>4.2}x {:>9}/{:<9} {:>4.2}x",
            row.mm.to_uppercase(),
            row.decisions_base,
            row.decisions_zpre,
            d,
            row.propagations_base,
            row.propagations_zpre,
            p,
            row.conflicts_base,
            row.conflicts_zpre,
            c
        );
    }
}

fn print_table3(results: &[TaskResult]) {
    println!("Table 3. Summary: baseline vs ZPRE- vs ZPRE");
    println!(
        "{:<5} {:>6} {:>7} {:>6} {:>6} | {:>20} | {:>22} | {:>22}",
        "MM", "files", "solved", "true", "false", "baseline TO/s", "zpre- TO/s/x", "zpre TO/s/x"
    );
    for row in table3(results, &MMS) {
        let s = &row.strategies;
        println!(
            "{:<5} {:>6} {:>7} {:>6} {:>6} | {:>8} {:>10.2}s | {:>4} {:>8.2}s {:>5.2}x | {:>4} {:>8.2}s {:>5.2}x",
            row.mm.to_uppercase(),
            row.files,
            row.both_solved,
            row.true_count,
            row.false_count,
            s[0].timeouts,
            s[0].cpu_s,
            s[1].timeouts,
            s[1].cpu_s,
            s[1].speedup,
            s[2].timeouts,
            s[2].cpu_s,
            s[2].speedup,
        );
    }
}

fn print_fig_scatter(results: &[TaskResult], mm: &str, title: &str, out_dir: &std::path::Path) {
    let pts = fig_scatter(results, mm);
    let csv_name = format!("fig_scatter_{mm}.csv");
    let mut csv = String::from("task,baseline_ms,zpre_ms\n");
    for (t, b, z) in &pts {
        csv.push_str(&format!("{t},{b:.3},{z:.3}\n"));
    }
    if let Err(e) = std::fs::write(out_dir.join(&csv_name), csv) {
        eprintln!("warning: cannot write {csv_name}: {e}");
    }
    println!("{}", ascii::scatter(&pts, title));
    println!("(raw data: {csv_name})");
}

fn print_fig_subcats(results: &[TaskResult], mm: &str, title: &str) {
    let rows = fig_subcats(results, mm);
    println!("{}", ascii::subcat_bars(&rows, title));
}

fn print_portfolio(results: &[TaskResult]) {
    let s = portfolio_summary(results);
    println!("Portfolio race over {} (task, memory model) pairs", s.rows);
    println!("  decided: {} ({} unknown)", s.decided, s.rows - s.decided);
    println!("  wins per member:");
    for (name, n) in &s.wins {
        println!("    {name:<16} {n}");
    }
    match (s.mean_cancel_latency_ms, s.max_cancel_latency_ms) {
        (Some(mean), Some(max)) => {
            println!("  cancellation latency: mean {mean:.2} ms, max {max:.2} ms");
        }
        _ => println!("  cancellation latency: no losers were cancelled"),
    }
    // Agreement: every decided portfolio verdict must match single-strategy
    // ZPRE on the same (task, mm) when ZPRE is decided too.
    let mut checked = 0usize;
    let mut disagreements = 0usize;
    for p in results
        .iter()
        .filter(|r| r.strategy == "portfolio" && r.solved())
    {
        if let Some(z) = results
            .iter()
            .find(|r| r.strategy == "zpre" && r.task == p.task && r.mm == p.mm && r.solved())
        {
            checked += 1;
            if z.verdict != p.verdict {
                disagreements += 1;
                println!(
                    "  DISAGREEMENT {} {}: portfolio={} zpre={}",
                    p.task, p.mm, p.verdict, z.verdict
                );
            }
        }
    }
    println!(
        "  agreement with zpre: {}/{} checked pairs",
        checked - disagreements,
        checked
    );
}

fn print_ablation(results: &[TaskResult]) {
    let strategies = [
        "baseline",
        "branch-cond",
        "zpre-",
        "zpre-h2",
        "zpre-h3",
        "zpre",
        "zpre-fixed-true",
        "zpre-no-revprop",
        "zpre-dfs-check",
    ];
    for mm in MMS {
        println!("Ablation under {}:", mm.to_uppercase());
        println!(
            "{:<18} {:>12} {:>5} {:>7}",
            "strategy", "common(s)", "TO", "solved"
        );
        for (s, total, to, solved) in ablation(results, mm, &strategies) {
            println!("{s:<18} {total:>12.3} {to:>5} {solved:>7}");
        }
        println!();
    }
}
