//! `sweep-bench` — scratch vs incremental bound-sweep comparison.
//!
//! ```text
//! sweep-bench [--quick] [--tag NAME] [--out PATH] [--budget N]
//!             [--max-bound K] [--seed N]
//! ```
//!
//! Races the per-bound scratch loop (one fresh SMT instance per unwind
//! bound, the paper's setup) against the incremental sweep (one horizon
//! encoding, one solver across assumption frames) on the stress and wmm
//! families plus a loopy family exercising the marker frames proper.
//! Verdicts are asserted identical pair by pair; per-task rows and
//! per-family aggregates are appended as NDJSON to `BENCH_SWEEP.json` so
//! the perf trajectory accumulates across commits.

use std::fs::OpenOptions;
use std::io::Write as _;

use zpre_bench::{compare_suite, RunConfig, SweepAggregate, SweepComparison};
use zpre_prog::build::*;
use zpre_prog::MemoryModel;
use zpre_workloads::{subcategory, Expected, Scale, Subcat, Task};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let tag = flag_value(&args, "--tag").unwrap_or_else(|| {
        if quick {
            "quick".to_string()
        } else {
            "full".to_string()
        }
    });
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_SWEEP.json".to_string());
    let budget: u64 = flag_value(&args, "--budget")
        .map(|v| v.parse().expect("numeric --budget"))
        .unwrap_or(200_000);
    let max_bound: u32 = flag_value(&args, "--max-bound")
        .map(|v| v.parse().expect("numeric --max-bound"))
        .unwrap_or(6);
    let seed: u64 = flag_value(&args, "--seed")
        .map(|v| v.parse().expect("numeric --seed"))
        .unwrap_or(0xC0FFEE);

    let scale = if quick { Scale::Quick } else { Scale::Full };
    let cfg = RunConfig {
        scale,
        max_conflicts: budget,
        seed,
        validate: false,
        ..RunConfig::default()
    };

    let families: Vec<(&str, Vec<Task>)> = vec![
        ("stress", subcategory(scale, Subcat::Stress)),
        ("wmm", subcategory(scale, Subcat::Wmm)),
        ("loopy", loopy_family()),
    ];

    let mut lines = Vec::new();
    println!(
        "{:<10} {:>5} {:>12} {:>12} {:>8} {:>12} {:>12} {:>14}",
        "family",
        "rows",
        "scratch(ms)",
        "sweep(ms)",
        "speedup",
        "scr-dec",
        "swp-dec",
        "reused-learnts"
    );
    let mut accept = Vec::new();
    for (family, tasks) in &families {
        if tasks.is_empty() {
            continue;
        }
        let rows: Vec<SweepComparison> = compare_suite(tasks, &MemoryModel::ALL, max_bound, &cfg);
        let agg = SweepAggregate::of(&rows);
        println!(
            "{:<10} {:>5} {:>12.1} {:>12.1} {:>7.2}x {:>12} {:>12} {:>14}",
            family,
            agg.rows,
            agg.scratch_ms,
            agg.sweep_ms,
            agg.speedup(),
            agg.scratch_decisions,
            agg.sweep_decisions,
            agg.reused_learnts
        );
        if *family == "stress" || *family == "wmm" {
            accept.push((family.to_string(), agg.clone()));
        }
        lines.extend(rows.iter().map(|r| r.json_line(&tag)));
        lines.push(agg.json_line(&tag, family));
    }

    // Acceptance: aggregate sweep wall clock on stress + wmm at least
    // 1.5x faster than the per-bound scratch loop.
    let scratch: f64 = accept.iter().map(|(_, a)| a.scratch_ms).sum();
    let sweep: f64 = accept.iter().map(|(_, a)| a.sweep_ms).sum();
    let overall = if sweep > 0.0 {
        scratch / sweep
    } else {
        f64::INFINITY
    };
    println!(
        "\nstress+wmm aggregate: scratch {scratch:.1} ms vs sweep {sweep:.1} ms => {overall:.2}x \
         (acceptance bar 1.5x: {})",
        if overall >= 1.5 { "PASS" } else { "FAIL" }
    );
    lines.push(format!(
        "{{\"tag\": \"{tag}\", \"family\": \"stress+wmm\", \"rows\": {}, \
         \"scratch_ms\": {scratch:.3}, \"sweep_ms\": {sweep:.3}, \"speedup\": {overall:.2}, \
         \"accept_1_5x\": {}}}",
        accept.iter().map(|(_, a)| a.rows).sum::<usize>(),
        overall >= 1.5
    ));

    let mut f = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
        .expect("open BENCH_SWEEP.json for append");
    for l in &lines {
        writeln!(f, "{l}").expect("append bench line");
    }
    println!("appended {} lines to {out_path}", lines.len());
    if overall < 1.5 {
        std::process::exit(1);
    }
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Loopy tasks exercising the marker frames proper (the stress and wmm
/// families are loop-free and collapse to a single frame): counting loops
/// with the bug at depth `k*`, a loop safe at every bound, and a threaded
/// producer racing a loop.
fn loopy_family() -> Vec<Task> {
    let mut tasks = Vec::new();
    for kstar in [2u64, 3, 4, 5] {
        let name = format!("kstar{kstar}");
        let p = ProgramBuilder::new(&name)
            .shared("x", 0)
            .main(vec![
                while_(lt(v("x"), c(kstar)), vec![assign("x", add(v("x"), c(1)))]),
                assert_(ne(v("x"), c(kstar))),
            ])
            .build();
        tasks.push(Task::new(
            format!("loopy/kstar{kstar}"),
            Subcat::Ext,
            p,
            6,
            Expected::unsafe_all(),
        ));
    }
    let safe = ProgramBuilder::new("safe-loop")
        .width(8)
        .shared("x", 0)
        .main(vec![
            while_(lt(v("x"), c(10)), vec![assign("x", add(v("x"), c(1)))]),
            assert_(le(v("x"), c(10))),
        ])
        .build();
    tasks.push(Task::new(
        "loopy/safe-loop",
        Subcat::Ext,
        safe,
        6,
        Expected::safe_all(),
    ));
    let threaded = ProgramBuilder::new("threaded-loop")
        .shared("cnt", 0)
        .thread(
            "w",
            vec![while_(
                lt(v("cnt"), c(2)),
                vec![assign("cnt", add(v("cnt"), c(1)))],
            )],
        )
        .main(vec![spawn(1), join(1), assert_(ne(v("cnt"), c(2)))])
        .build();
    tasks.push(Task::new(
        "loopy/threaded-loop",
        Subcat::Ext,
        threaded,
        6,
        Expected::unsafe_all(),
    ));
    tasks
}
