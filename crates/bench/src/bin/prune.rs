//! `prune-bench` — pruned vs unpruned encoding comparison.
//!
//! ```text
//! prune-bench [--quick] [--tag NAME] [--out PATH] [--budget N]
//!             [--seed N] [--tolerance PCT]
//! ```
//!
//! Races the verifier twice over the stress and wmm families, the
//! lock-heavy pthread family, and a join-heavy contended family: once with
//! the static interference-pruning pass on (the default) and once with the
//! historic unpruned encoding (`prune: false`). Verdicts are asserted
//! identical row by row; per-task rows and per-family aggregates append as
//! NDJSON to `BENCH_PRUNE.json` so the pruning-efficiency trajectory
//! accumulates across commits.
//!
//! Each row also reruns the analysis pass standalone to report the
//! interference-variable ledger: `vars_full` is what the seed encoder
//! emits, `vars_left` what survives the report — the difference is
//! exactly the rf selectors, fixed ws pairs, and serialized ws pairs the
//! pass removed from the solver's search space.
//!
//! Acceptance: every paired verdict agrees, the pruned aggregate wall
//! clock stays within `--tolerance` (default 15%) of the unpruned run,
//! and the lock/join-heavy families (pthread, contended) show a strictly
//! positive interference-variable reduction.
//!
//! The timing gate follows the paper's §5 both-solved convention (the
//! same one `share-bench` uses): rows where both sides exhaust the
//! conflict budget (verdict `unknown`) are excluded from the gated wall
//! clock, but still count for verdict agreement and the variable ledger.

use std::fs::OpenOptions;
use std::io::Write as _;

use zpre::Strategy;
use zpre_bench::{ascii, contended_family, run_one, RunConfig, TaskResult};
use zpre_prog::{to_ssa, unroll_program, MemoryModel};
use zpre_workloads::{subcategory, Scale, Subcat, Task};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let tag = flag_value(&args, "--tag").unwrap_or_else(|| {
        if quick {
            "quick".to_string()
        } else {
            "full".to_string()
        }
    });
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_PRUNE.json".to_string());
    let budget: u64 = flag_value(&args, "--budget")
        .map(|v| v.parse().expect("numeric --budget"))
        .unwrap_or(200_000);
    let seed: u64 = flag_value(&args, "--seed")
        .map(|v| v.parse().expect("numeric --seed"))
        .unwrap_or(0xC0FFEE);
    let tolerance_pct: f64 = flag_value(&args, "--tolerance")
        .map(|v| {
            v.trim_end_matches('%')
                .parse()
                .expect("numeric --tolerance")
        })
        .unwrap_or(15.0);

    let scale = if quick { Scale::Quick } else { Scale::Full };
    let pruned_cfg = RunConfig {
        scale,
        max_conflicts: budget,
        seed,
        validate: false,
        prune: true,
        ..RunConfig::default()
    };
    let unpruned_cfg = RunConfig {
        prune: false,
        ..pruned_cfg.clone()
    };

    let families: Vec<(&str, Vec<Task>)> = vec![
        ("stress", subcategory(scale, Subcat::Stress)),
        ("wmm", subcategory(scale, Subcat::Wmm)),
        ("pthread", subcategory(scale, Subcat::Pthread)),
        ("contended", contended_family(if quick { 2 } else { 4 })),
    ];

    let mut lines = Vec::new();
    let mut table: Vec<ascii::PruneRow> = Vec::new();
    let mut disagreements = Vec::new();
    let (mut total_un_ms, mut total_pr_ms) = (0.0f64, 0.0f64);
    let mut total_exhausted = 0usize;
    let mut heavy_reduction = 0u64;
    for (family, tasks) in &families {
        if tasks.is_empty() {
            continue;
        }
        let (mut un_ms, mut pr_ms) = (0.0f64, 0.0f64);
        let (mut vars_full, mut vars_left) = (0u64, 0u64);
        let mut rows = 0usize;
        let mut exhausted = 0usize;
        for task in tasks {
            for &mm in &MemoryModel::ALL {
                let un = run_one(task, mm, Strategy::Zpre, &unpruned_cfg);
                let pr = run_one(task, mm, Strategy::Zpre, &pruned_cfg);
                if un.verdict != pr.verdict {
                    disagreements.push(format!(
                        "{} {}: unpruned={} pruned={}",
                        task.name,
                        mm.name(),
                        un.verdict,
                        pr.verdict
                    ));
                }
                rows += 1;
                // Both-solved convention: budget-exhausted pairs carry no
                // time-to-verdict signal, so they stay out of the gated
                // wall clock.
                if un.verdict == "unknown" && pr.verdict == "unknown" {
                    exhausted += 1;
                } else {
                    un_ms += un.solve_ms + un.encode_ms;
                    pr_ms += pr.solve_ms + pr.encode_ms;
                }
                let (full, left) = var_ledger(task, mm);
                vars_full += full;
                vars_left += left;
                lines.push(row_json(&tag, family, mm.name(), &un, &pr, full, left));
            }
        }
        total_un_ms += un_ms;
        total_pr_ms += pr_ms;
        total_exhausted += exhausted;
        if *family == "pthread" || *family == "contended" {
            heavy_reduction += vars_full.saturating_sub(vars_left);
        }
        lines.push(format!(
            "{{\"tag\": \"{tag}\", \"kind\": \"family\", \"family\": \"{family}\", \
             \"rows\": {rows}, \"exhausted_rows\": {exhausted}, \
             \"unpruned_ms\": {un_ms:.3}, \"pruned_ms\": {pr_ms:.3}, \
             \"speedup\": {:.3}, \"vars_full\": {vars_full}, \"vars_left\": {vars_left}}}",
            if pr_ms > 0.0 {
                un_ms / pr_ms
            } else {
                f64::INFINITY
            }
        ));
        table.push((family.to_string(), rows, un_ms, pr_ms, vars_full, vars_left));
    }

    println!(
        "{}",
        ascii::prune_table(&table, "Static interference pruning: unpruned vs pruned")
    );
    if total_exhausted > 0 {
        println!(
            "({total_exhausted} row(s) exhausted the conflict budget on both sides; \
             excluded from the gated ms per the both-solved convention)"
        );
    }

    for d in &disagreements {
        eprintln!("VERDICT DISAGREEMENT {d}");
    }
    let bar = 1.0 + tolerance_pct / 100.0;
    let time_ok = total_pr_ms <= total_un_ms * bar;
    let shrink_ok = heavy_reduction > 0;
    let agree_ok = disagreements.is_empty();
    println!(
        "aggregate (both-solved): unpruned {total_un_ms:.1} ms vs pruned {total_pr_ms:.1} ms \
         (bar: pruned <= {bar:.2}x unpruned: {}), lock/join-heavy vars removed {heavy_reduction} \
         (bar: > 0: {}), verdict agreement: {}",
        pass(time_ok),
        pass(shrink_ok),
        pass(agree_ok)
    );
    lines.push(format!(
        "{{\"tag\": \"{tag}\", \"kind\": \"aggregate\", \"unpruned_ms\": {total_un_ms:.3}, \
         \"pruned_ms\": {total_pr_ms:.3}, \"speedup\": {:.3}, \
         \"exhausted_rows\": {total_exhausted}, \"heavy_vars_removed\": {heavy_reduction}, \
         \"verdicts_agree\": {agree_ok}, \"accept\": {}}}",
        if total_pr_ms > 0.0 {
            total_un_ms / total_pr_ms
        } else {
            f64::INFINITY
        },
        time_ok && shrink_ok && agree_ok
    ));

    let mut f = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
        .expect("open BENCH_PRUNE.json for append");
    for l in &lines {
        writeln!(f, "{l}").expect("append bench line");
    }
    println!("appended {} lines to {out_path}", lines.len());
    if !(time_ok && shrink_ok && agree_ok) {
        std::process::exit(1);
    }
}

fn pass(ok: bool) -> &'static str {
    if ok {
        "PASS"
    } else {
        "FAIL"
    }
}

/// Reruns the analysis pass standalone and returns `(vars_full,
/// vars_left)`: the interference variables the seed encoder emits vs what
/// survives the prune report.
fn var_ledger(task: &Task, mm: MemoryModel) -> (u64, u64) {
    let ssa = to_ssa(&unroll_program(&task.program, task.unroll_bound));
    let report = zpre_analysis::analyze(&ssa, mm);
    (
        report.unpruned_interference_vars(),
        report.interference_vars(),
    )
}

#[allow(clippy::too_many_arguments)]
fn row_json(
    tag: &str,
    family: &str,
    mm: &str,
    un: &TaskResult,
    pr: &TaskResult,
    vars_full: u64,
    vars_left: u64,
) -> String {
    format!(
        "{{\"tag\": \"{tag}\", \"kind\": \"row\", \"family\": \"{family}\", \
         \"task\": \"{}\", \"mm\": \"{mm}\", \"verdict\": \"{}\", \
         \"unpruned_ms\": {:.3}, \"pruned_ms\": {:.3}, \"vars_full\": {vars_full}, \
         \"vars_left\": {vars_left}, \"agree\": {}}}",
        un.task,
        pr.verdict,
        un.solve_ms + un.encode_ms,
        pr.solve_ms + pr.encode_ms,
        un.verdict == pr.verdict
    )
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}
