//! Criterion counterpart of Table 1: accumulated solving time of the quick
//! suite under baseline vs ZPRE, split by memory model. The measured
//! quantity is "solve the whole (quick) suite", i.e. the suite-level
//! accumulated CPU time the table reports; `harness table1` produces the
//! full-suite numbers with the Sat/Unsat split.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use zpre::{verify, Strategy, Verdict, VerifyOptions};
use zpre_prog::MemoryModel;
use zpre_workloads::{suite, Scale, Task};

fn solve_suite(tasks: &[Task], mm: MemoryModel, strategy: Strategy) -> usize {
    let mut solved = 0;
    for task in tasks {
        let opts = VerifyOptions {
            unroll_bound: task.unroll_bound,
            validate_models: false,
            max_conflicts: Some(200_000),
            ..VerifyOptions::new(mm, strategy)
        };
        if verify(&task.program, &opts).verdict != Verdict::Unknown {
            solved += 1;
        }
    }
    solved
}

fn bench_table1(c: &mut Criterion) {
    let tasks = suite(Scale::Quick);
    for mm in MemoryModel::ALL {
        let mut group = c.benchmark_group(format!("table1/{}", mm.name()));
        group.sample_size(10);
        for strategy in [Strategy::Baseline, Strategy::Zpre] {
            group.bench_function(strategy.name(), |b| {
                b.iter(|| black_box(solve_suite(&tasks, mm, strategy)))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
