//! Criterion counterpart of Figures 9–11: per-subcategory solve time of
//! baseline vs ZPRE under each memory model. One representative task per
//! subcategory keeps the sampled run short; `harness fig9|fig10|fig11`
//! aggregates the whole suite.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use zpre::{verify, Strategy, VerifyOptions};
use zpre_prog::MemoryModel;
use zpre_workloads::{suite, Scale, Subcat, Task};

/// The first (smallest) task of each subcategory.
fn one_per_subcat() -> Vec<Task> {
    let all = suite(Scale::Full);
    Subcat::ALL
        .iter()
        .filter_map(|&sc| all.iter().find(|t| t.subcat == sc).cloned())
        .collect()
}

fn bench_subcategories(c: &mut Criterion) {
    for mm in MemoryModel::ALL {
        let mut group = c.benchmark_group(format!("fig9_10_11/{}", mm.name()));
        group.sample_size(10);
        for task in one_per_subcat() {
            for strategy in [Strategy::Baseline, Strategy::Zpre] {
                let opts = VerifyOptions {
                    unroll_bound: task.unroll_bound,
                    validate_models: false,
                    ..VerifyOptions::new(mm, strategy)
                };
                group.bench_function(
                    format!(
                        "{}/{}",
                        task.subcat.name().replace('/', "_"),
                        strategy.name()
                    ),
                    |b| b.iter(|| black_box(verify(&task.program, &opts).verdict)),
                );
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_subcategories);
criterion_main!(benches);
