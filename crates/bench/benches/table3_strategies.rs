//! Criterion counterpart of Table 3: baseline vs ZPRE⁻ vs ZPRE on a mixed
//! set of safe and unsafe instances across the three memory models.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use zpre::{verify, Strategy, VerifyOptions};
use zpre_prog::MemoryModel;
use zpre_workloads::{suite, Scale, Task};

fn tasks() -> Vec<Task> {
    let names = [
        "pthread/counter-3x2-locked", // safe, interference-heavy
        "pthread/counter-2x3-racy",   // unsafe
        "lit/dekker-w2",              // safe SC / unsafe WMM
        "wmm/sb-grid-4",              // unsafe under WMM, grows with grid
    ];
    suite(Scale::Full)
        .into_iter()
        .filter(|t| names.contains(&t.name.as_str()))
        .collect()
}

fn bench_table3(c: &mut Criterion) {
    for mm in MemoryModel::ALL {
        let mut group = c.benchmark_group(format!("table3/{}", mm.name()));
        group.sample_size(10);
        for strategy in Strategy::MAIN {
            let set = tasks();
            group.bench_function(strategy.name(), |b| {
                b.iter(|| {
                    for task in &set {
                        let opts = VerifyOptions {
                            unroll_bound: task.unroll_bound,
                            validate_models: false,
                            ..VerifyOptions::new(mm, strategy)
                        };
                        black_box(verify(&task.program, &opts).verdict);
                    }
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
