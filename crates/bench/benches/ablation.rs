//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. H1 only (`zpre-`) vs +H2 vs +H3 vs full H1–H4 (`zpre`);
//! 2. random vs fixed-true decision polarity;
//! 3. order-theory reverse propagation on/off;
//! 4. the §5.2 "other attempts" branch-condition heuristic.
//!
//! All on the interference-heavy locked-counter instance under SC, where
//! the heuristic stack has the most room to differ.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use zpre::{verify, Strategy, VerifyOptions};
use zpre_prog::MemoryModel;
use zpre_workloads::{suite, Scale, Task};

fn task() -> Task {
    suite(Scale::Full)
        .into_iter()
        .find(|t| t.name == "pthread/counter-3x2-locked")
        .expect("ablation task exists")
}

fn bench_ablation(c: &mut Criterion) {
    let task = task();
    let mut group = c.benchmark_group("ablation/sc");
    group.sample_size(10);
    for strategy in [
        Strategy::Baseline,
        Strategy::BranchCond,
        Strategy::ZpreMinus,
        Strategy::ZpreH2,
        Strategy::ZpreH3,
        Strategy::Zpre,
        Strategy::ZpreFixedTrue,
        Strategy::ZpreNoReverseProp,
    ] {
        let opts = VerifyOptions {
            unroll_bound: task.unroll_bound,
            validate_models: false,
            ..VerifyOptions::new(MemoryModel::Sc, strategy)
        };
        group.bench_function(strategy.name(), |b| {
            b.iter(|| black_box(verify(&task.program, &opts).verdict))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
