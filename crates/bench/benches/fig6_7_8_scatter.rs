//! Criterion counterpart of Figures 6–8: per-task solve time of the
//! baseline vs ZPRE under SC, TSO and PSO on representative tasks drawn
//! from every difficulty band. The statistically sampled per-task pairs
//! are the scatter points; the harness (`harness fig6|fig7|fig8`) renders
//! the full-suite scatter.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use zpre::{verify, Strategy, VerifyOptions};
use zpre_prog::MemoryModel;
use zpre_workloads::{suite, Scale, Task};

fn representative_tasks() -> Vec<Task> {
    let names = [
        "wmm/sb-b0",
        "wmm/mp-fence-b2",
        "pthread/counter-2x2-locked",
        "lit/peterson-w1",
        "divine/ring-3",
        "C-DAC/parsum-2x2-locked",
    ];
    suite(Scale::Full)
        .into_iter()
        .filter(|t| names.contains(&t.name.as_str()))
        .collect()
}

fn bench_scatter(c: &mut Criterion) {
    for mm in MemoryModel::ALL {
        let mut group = c.benchmark_group(format!("fig6_7_8/{}", mm.name()));
        group.sample_size(10);
        for task in representative_tasks() {
            for strategy in [Strategy::Baseline, Strategy::Zpre] {
                let opts = VerifyOptions {
                    unroll_bound: task.unroll_bound,
                    validate_models: false,
                    ..VerifyOptions::new(mm, strategy)
                };
                group.bench_function(
                    format!("{}/{}", task.name.replace('/', "_"), strategy.name()),
                    |b| b.iter(|| black_box(verify(&task.program, &opts).verdict)),
                );
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_scatter);
criterion_main!(benches);
