//! Criterion counterpart of Table 2. Timing-wise it benches the medium
//! "locked counter" instance under both strategies; before sampling it
//! prints the decisions/propagations/conflicts comparison (the table's
//! content — deterministic counters, no statistical sampling needed).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use zpre::{verify, Strategy, VerifyOptions};
use zpre_prog::MemoryModel;
use zpre_workloads::{suite, Scale, Task};

fn medium_task() -> Task {
    suite(Scale::Full)
        .into_iter()
        .find(|t| t.name == "pthread/counter-3x2-locked")
        .expect("medium counter task exists")
}

fn bench_table2(c: &mut Criterion) {
    let task = medium_task();

    // Print the deterministic search statistics once, per memory model.
    eprintln!("\nTable 2 counters on {}:", task.name);
    eprintln!(
        "{:<5} {:>22} {:>26} {:>22}",
        "MM", "decisions (b/z)", "propagations (b/z)", "conflicts (b/z)"
    );
    for mm in MemoryModel::ALL {
        let stats = |strategy| {
            let opts = VerifyOptions {
                unroll_bound: task.unroll_bound,
                validate_models: false,
                ..VerifyOptions::new(mm, strategy)
            };
            verify(&task.program, &opts).stats
        };
        let b = stats(Strategy::Baseline);
        let z = stats(Strategy::Zpre);
        eprintln!(
            "{:<5} {:>10}/{:<11} {:>12}/{:<13} {:>10}/{:<11}",
            mm.name().to_uppercase(),
            b.decisions,
            z.decisions,
            b.propagations,
            z.propagations,
            b.conflicts,
            z.conflicts
        );
    }

    for mm in MemoryModel::ALL {
        let mut group = c.benchmark_group(format!("table2/{}", mm.name()));
        group.sample_size(10);
        for strategy in [Strategy::Baseline, Strategy::Zpre] {
            let opts = VerifyOptions {
                unroll_bound: task.unroll_bound,
                validate_models: false,
                ..VerifyOptions::new(mm, strategy)
            };
            group.bench_function(strategy.name(), |b| {
                b.iter(|| black_box(verify(&task.program, &opts).stats.conflicts))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
