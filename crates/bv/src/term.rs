//! Bit-vector / Boolean term language with hash-consing.
//!
//! Terms form a DAG in a [`TermStore`] arena; structurally identical terms
//! share one [`TermId`] so the bit-blaster's memoization gives circuit
//! sharing for free. Two sorts exist: `Bool` and `Bv(width)` with
//! `1 ≤ width ≤ 64` (evaluation uses `u64` semantics, wrapping arithmetic,
//! like machine integers in the encoded programs).

use std::collections::HashMap;

/// Handle to a term in a [`TermStore`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TermId(pub u32);

/// The sort of a term.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Sort {
    /// Propositional.
    Bool,
    /// Bit-vector of the given width (1..=64).
    Bv(u32),
}

impl Sort {
    /// The width of a bit-vector sort; panics on `Bool`.
    pub fn width(self) -> u32 {
        match self {
            Sort::Bv(w) => w,
            Sort::Bool => panic!("Bool sort has no width"),
        }
    }
}

/// Term constructors. Binary bit-vector operators require equal widths.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum TermKind {
    // --- Boolean ---
    /// Boolean constant.
    BoolConst(bool),
    /// Free Boolean variable (nondeterministic input / guard seed).
    BoolVar(String),
    /// Negation.
    Not(TermId),
    /// Conjunction.
    And(TermId, TermId),
    /// Disjunction.
    Or(TermId, TermId),
    /// Exclusive or.
    Xor(TermId, TermId),
    /// Implication.
    Implies(TermId, TermId),
    /// Equivalence.
    Iff(TermId, TermId),
    /// Boolean if-then-else.
    BoolIte(TermId, TermId, TermId),

    // --- Bit-vector ---
    /// Constant (value truncated to `width` bits).
    BvConst {
        /// Bit pattern.
        value: u64,
        /// Width in bits.
        width: u32,
    },
    /// Free bit-vector variable.
    BvVar {
        /// Name (unique per variable; hash-consing keys on it).
        name: String,
        /// Width in bits.
        width: u32,
    },
    /// Wrapping addition.
    BvAdd(TermId, TermId),
    /// Wrapping subtraction.
    BvSub(TermId, TermId),
    /// Wrapping multiplication.
    BvMul(TermId, TermId),
    /// Two's-complement negation.
    BvNeg(TermId),
    /// Bitwise not.
    BvNot(TermId),
    /// Bitwise and.
    BvAnd(TermId, TermId),
    /// Bitwise or.
    BvOr(TermId, TermId),
    /// Bitwise xor.
    BvXor(TermId, TermId),
    /// Left shift by a constant amount.
    BvShlConst(TermId, u32),
    /// Logical right shift by a constant amount.
    BvLshrConst(TermId, u32),
    /// Bit-vector if-then-else (condition is Boolean).
    BvIte(TermId, TermId, TermId),

    // --- Predicates (Bool-sorted, bit-vector arguments) ---
    /// Equality.
    Eq(TermId, TermId),
    /// Unsigned less-than.
    Ult(TermId, TermId),
    /// Unsigned less-or-equal.
    Ule(TermId, TermId),
    /// Signed less-than.
    Slt(TermId, TermId),
    /// Signed less-or-equal.
    Sle(TermId, TermId),
}

/// Hash-consing arena of terms.
#[derive(Default, Clone)]
pub struct TermStore {
    kinds: Vec<TermKind>,
    sorts: Vec<Sort>,
    cons: HashMap<TermKind, TermId>,
}

impl TermStore {
    /// Creates an empty store.
    pub fn new() -> TermStore {
        TermStore::default()
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// `true` when the store holds no terms.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The constructor of `t`.
    pub fn kind(&self, t: TermId) -> &TermKind {
        &self.kinds[t.0 as usize]
    }

    /// The sort of `t`.
    pub fn sort(&self, t: TermId) -> Sort {
        self.sorts[t.0 as usize]
    }

    /// The width of a bit-vector term; panics for Booleans.
    pub fn width(&self, t: TermId) -> u32 {
        self.sort(t).width()
    }

    fn intern(&mut self, kind: TermKind, sort: Sort) -> TermId {
        if let Some(&id) = self.cons.get(&kind) {
            return id;
        }
        let id = TermId(self.kinds.len() as u32);
        self.cons.insert(kind.clone(), id);
        self.kinds.push(kind);
        self.sorts.push(sort);
        id
    }

    fn expect_bool(&self, t: TermId) {
        assert_eq!(self.sort(t), Sort::Bool, "expected Bool-sorted term");
    }

    fn expect_same_bv(&self, a: TermId, b: TermId) -> u32 {
        let (sa, sb) = (self.sort(a), self.sort(b));
        match (sa, sb) {
            (Sort::Bv(wa), Sort::Bv(wb)) if wa == wb => wa,
            _ => panic!("width mismatch: {sa:?} vs {sb:?}"),
        }
    }

    // ---- Boolean constructors ----

    /// Boolean constant.
    pub fn bool_const(&mut self, b: bool) -> TermId {
        self.intern(TermKind::BoolConst(b), Sort::Bool)
    }

    /// `true` constant (shorthand).
    pub fn tru(&mut self) -> TermId {
        self.bool_const(true)
    }

    /// `false` constant (shorthand).
    pub fn fls(&mut self) -> TermId {
        self.bool_const(false)
    }

    /// Fresh-by-name Boolean variable.
    pub fn bool_var(&mut self, name: impl Into<String>) -> TermId {
        self.intern(TermKind::BoolVar(name.into()), Sort::Bool)
    }

    /// Negation, with constant folding and double-negation elimination.
    pub fn not(&mut self, a: TermId) -> TermId {
        self.expect_bool(a);
        match self.kind(a) {
            TermKind::BoolConst(b) => {
                let b = !b;
                self.bool_const(b)
            }
            TermKind::Not(inner) => *inner,
            _ => self.intern(TermKind::Not(a), Sort::Bool),
        }
    }

    /// Conjunction with unit/zero folding.
    pub fn and(&mut self, a: TermId, b: TermId) -> TermId {
        self.expect_bool(a);
        self.expect_bool(b);
        match (self.kind(a), self.kind(b)) {
            (TermKind::BoolConst(true), _) => b,
            (_, TermKind::BoolConst(true)) => a,
            (TermKind::BoolConst(false), _) | (_, TermKind::BoolConst(false)) => self.fls(),
            _ if a == b => a,
            _ => self.intern(TermKind::And(a.min(b), a.max(b)), Sort::Bool),
        }
    }

    /// Disjunction with unit/zero folding.
    pub fn or(&mut self, a: TermId, b: TermId) -> TermId {
        self.expect_bool(a);
        self.expect_bool(b);
        match (self.kind(a), self.kind(b)) {
            (TermKind::BoolConst(false), _) => b,
            (_, TermKind::BoolConst(false)) => a,
            (TermKind::BoolConst(true), _) | (_, TermKind::BoolConst(true)) => self.tru(),
            _ if a == b => a,
            _ => self.intern(TermKind::Or(a.min(b), a.max(b)), Sort::Bool),
        }
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: TermId, b: TermId) -> TermId {
        self.expect_bool(a);
        self.expect_bool(b);
        if a == b {
            return self.fls();
        }
        self.intern(TermKind::Xor(a.min(b), a.max(b)), Sort::Bool)
    }

    /// Implication.
    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        self.expect_bool(a);
        self.expect_bool(b);
        match (self.kind(a), self.kind(b)) {
            (TermKind::BoolConst(false), _) | (_, TermKind::BoolConst(true)) => self.tru(),
            (TermKind::BoolConst(true), _) => b,
            _ => self.intern(TermKind::Implies(a, b), Sort::Bool),
        }
    }

    /// Equivalence.
    pub fn iff(&mut self, a: TermId, b: TermId) -> TermId {
        self.expect_bool(a);
        self.expect_bool(b);
        if a == b {
            return self.tru();
        }
        self.intern(TermKind::Iff(a.min(b), a.max(b)), Sort::Bool)
    }

    /// Boolean if-then-else.
    pub fn bool_ite(&mut self, c: TermId, t: TermId, e: TermId) -> TermId {
        self.expect_bool(c);
        self.expect_bool(t);
        self.expect_bool(e);
        match self.kind(c) {
            TermKind::BoolConst(true) => t,
            TermKind::BoolConst(false) => e,
            _ if t == e => t,
            _ => self.intern(TermKind::BoolIte(c, t, e), Sort::Bool),
        }
    }

    /// N-ary conjunction.
    pub fn and_all(&mut self, terms: &[TermId]) -> TermId {
        let mut acc = self.tru();
        for &t in terms {
            acc = self.and(acc, t);
        }
        acc
    }

    /// N-ary disjunction.
    pub fn or_all(&mut self, terms: &[TermId]) -> TermId {
        let mut acc = self.fls();
        for &t in terms {
            acc = self.or(acc, t);
        }
        acc
    }

    // ---- Bit-vector constructors ----

    /// Constant of the given width (value truncated).
    pub fn bv_const(&mut self, value: u64, width: u32) -> TermId {
        assert!((1..=64).contains(&width), "width out of range");
        let value = truncate(value, width);
        self.intern(TermKind::BvConst { value, width }, Sort::Bv(width))
    }

    /// Fresh-by-name bit-vector variable.
    pub fn bv_var(&mut self, name: impl Into<String>, width: u32) -> TermId {
        assert!((1..=64).contains(&width), "width out of range");
        self.intern(
            TermKind::BvVar {
                name: name.into(),
                width,
            },
            Sort::Bv(width),
        )
    }

    /// Wrapping addition.
    pub fn bv_add(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.expect_same_bv(a, b);
        self.intern(TermKind::BvAdd(a.min(b), a.max(b)), Sort::Bv(w))
    }

    /// Wrapping subtraction.
    pub fn bv_sub(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.expect_same_bv(a, b);
        self.intern(TermKind::BvSub(a, b), Sort::Bv(w))
    }

    /// Wrapping multiplication.
    pub fn bv_mul(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.expect_same_bv(a, b);
        self.intern(TermKind::BvMul(a.min(b), a.max(b)), Sort::Bv(w))
    }

    /// Two's-complement negation.
    pub fn bv_neg(&mut self, a: TermId) -> TermId {
        let w = self.width(a);
        self.intern(TermKind::BvNeg(a), Sort::Bv(w))
    }

    /// Bitwise complement.
    pub fn bv_not(&mut self, a: TermId) -> TermId {
        let w = self.width(a);
        self.intern(TermKind::BvNot(a), Sort::Bv(w))
    }

    /// Bitwise and.
    pub fn bv_and(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.expect_same_bv(a, b);
        self.intern(TermKind::BvAnd(a.min(b), a.max(b)), Sort::Bv(w))
    }

    /// Bitwise or.
    pub fn bv_or(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.expect_same_bv(a, b);
        self.intern(TermKind::BvOr(a.min(b), a.max(b)), Sort::Bv(w))
    }

    /// Bitwise xor.
    pub fn bv_xor(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.expect_same_bv(a, b);
        self.intern(TermKind::BvXor(a.min(b), a.max(b)), Sort::Bv(w))
    }

    /// Left shift by a constant.
    pub fn bv_shl_const(&mut self, a: TermId, by: u32) -> TermId {
        let w = self.width(a);
        assert!(by < w, "shift amount exceeds width");
        self.intern(TermKind::BvShlConst(a, by), Sort::Bv(w))
    }

    /// Logical right shift by a constant.
    pub fn bv_lshr_const(&mut self, a: TermId, by: u32) -> TermId {
        let w = self.width(a);
        assert!(by < w, "shift amount exceeds width");
        self.intern(TermKind::BvLshrConst(a, by), Sort::Bv(w))
    }

    /// Bit-vector if-then-else.
    pub fn bv_ite(&mut self, c: TermId, t: TermId, e: TermId) -> TermId {
        self.expect_bool(c);
        let w = self.expect_same_bv(t, e);
        match self.kind(c) {
            TermKind::BoolConst(true) => t,
            TermKind::BoolConst(false) => e,
            _ if t == e => t,
            _ => self.intern(TermKind::BvIte(c, t, e), Sort::Bv(w)),
        }
    }

    // ---- Predicates ----

    /// Equality over bit-vectors.
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        self.expect_same_bv(a, b);
        if a == b {
            return self.tru();
        }
        self.intern(TermKind::Eq(a.min(b), a.max(b)), Sort::Bool)
    }

    /// Disequality over bit-vectors.
    pub fn neq(&mut self, a: TermId, b: TermId) -> TermId {
        let e = self.eq(a, b);
        self.not(e)
    }

    /// Unsigned less-than.
    pub fn ult(&mut self, a: TermId, b: TermId) -> TermId {
        self.expect_same_bv(a, b);
        if a == b {
            return self.fls();
        }
        self.intern(TermKind::Ult(a, b), Sort::Bool)
    }

    /// Unsigned less-or-equal.
    pub fn ule(&mut self, a: TermId, b: TermId) -> TermId {
        self.expect_same_bv(a, b);
        if a == b {
            return self.tru();
        }
        self.intern(TermKind::Ule(a, b), Sort::Bool)
    }

    /// Signed less-than.
    pub fn slt(&mut self, a: TermId, b: TermId) -> TermId {
        self.expect_same_bv(a, b);
        if a == b {
            return self.fls();
        }
        self.intern(TermKind::Slt(a, b), Sort::Bool)
    }

    /// Signed less-or-equal.
    pub fn sle(&mut self, a: TermId, b: TermId) -> TermId {
        self.expect_same_bv(a, b);
        if a == b {
            return self.tru();
        }
        self.intern(TermKind::Sle(a, b), Sort::Bool)
    }

    // ---- Evaluation ----

    /// Evaluates `t` under concrete variable values.
    ///
    /// `bv_vars` resolves [`TermKind::BvVar`] by name; `bool_vars` resolves
    /// [`TermKind::BoolVar`]. Returns [`Value::Bool`] or [`Value::Bv`].
    /// Used to validate blaster circuits and solver models.
    pub fn eval(
        &self,
        t: TermId,
        bv_vars: &dyn Fn(&str) -> u64,
        bool_vars: &dyn Fn(&str) -> bool,
    ) -> Value {
        use TermKind::*;
        let b = |v: Value| v.as_bool();
        let n = |v: Value| v.as_bv();
        let ev = |x: TermId| self.eval(x, bv_vars, bool_vars);
        match self.kind(t) {
            BoolConst(x) => Value::Bool(*x),
            BoolVar(name) => Value::Bool(bool_vars(name)),
            Not(a) => Value::Bool(!b(ev(*a))),
            And(a, c) => Value::Bool(b(ev(*a)) && b(ev(*c))),
            Or(a, c) => Value::Bool(b(ev(*a)) || b(ev(*c))),
            Xor(a, c) => Value::Bool(b(ev(*a)) ^ b(ev(*c))),
            Implies(a, c) => Value::Bool(!b(ev(*a)) || b(ev(*c))),
            Iff(a, c) => Value::Bool(b(ev(*a)) == b(ev(*c))),
            BoolIte(c, x, y) => {
                if b(ev(*c)) {
                    ev(*x)
                } else {
                    ev(*y)
                }
            }
            BvConst { value, .. } => Value::Bv(*value),
            BvVar { name, width } => Value::Bv(truncate(bv_vars(name), *width)),
            BvAdd(a, c) => {
                let w = self.width(t);
                Value::Bv(truncate(n(ev(*a)).wrapping_add(n(ev(*c))), w))
            }
            BvSub(a, c) => {
                let w = self.width(t);
                Value::Bv(truncate(n(ev(*a)).wrapping_sub(n(ev(*c))), w))
            }
            BvMul(a, c) => {
                let w = self.width(t);
                Value::Bv(truncate(n(ev(*a)).wrapping_mul(n(ev(*c))), w))
            }
            BvNeg(a) => {
                let w = self.width(t);
                Value::Bv(truncate(n(ev(*a)).wrapping_neg(), w))
            }
            BvNot(a) => {
                let w = self.width(t);
                Value::Bv(truncate(!n(ev(*a)), w))
            }
            BvAnd(a, c) => Value::Bv(n(ev(*a)) & n(ev(*c))),
            BvOr(a, c) => Value::Bv(n(ev(*a)) | n(ev(*c))),
            BvXor(a, c) => Value::Bv(n(ev(*a)) ^ n(ev(*c))),
            BvShlConst(a, by) => {
                let w = self.width(t);
                Value::Bv(truncate(n(ev(*a)) << by, w))
            }
            BvLshrConst(a, by) => Value::Bv(n(ev(*a)) >> by),
            BvIte(c, x, y) => {
                if b(ev(*c)) {
                    ev(*x)
                } else {
                    ev(*y)
                }
            }
            Eq(a, c) => Value::Bool(n(ev(*a)) == n(ev(*c))),
            Ult(a, c) => Value::Bool(n(ev(*a)) < n(ev(*c))),
            Ule(a, c) => Value::Bool(n(ev(*a)) <= n(ev(*c))),
            Slt(a, c) => {
                let w = self.width(*a);
                Value::Bool(sign_extend(n(ev(*a)), w) < sign_extend(n(ev(*c)), w))
            }
            Sle(a, c) => {
                let w = self.width(*a);
                Value::Bool(sign_extend(n(ev(*a)), w) <= sign_extend(n(ev(*c)), w))
            }
        }
    }
}

/// A concrete value.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Value {
    /// Propositional value.
    Bool(bool),
    /// Bit-vector value (in the low bits).
    Bv(u64),
}

impl Value {
    /// Extracts a Boolean; panics on bit-vectors.
    pub fn as_bool(self) -> bool {
        match self {
            Value::Bool(b) => b,
            Value::Bv(_) => panic!("expected Bool value"),
        }
    }

    /// Extracts a bit-vector; panics on Booleans.
    pub fn as_bv(self) -> u64 {
        match self {
            Value::Bv(n) => n,
            Value::Bool(_) => panic!("expected Bv value"),
        }
    }
}

/// Masks `value` down to `width` bits.
pub fn truncate(value: u64, width: u32) -> u64 {
    if width == 64 {
        value
    } else {
        value & ((1u64 << width) - 1)
    }
}

/// Sign-extends a `width`-bit pattern to `i64`.
pub fn sign_extend(value: u64, width: u32) -> i64 {
    let shift = 64 - width;
    ((value << shift) as i64) >> shift
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_bv(_: &str) -> u64 {
        panic!("no bv vars expected")
    }
    fn no_bool(_: &str) -> bool {
        panic!("no bool vars expected")
    }

    #[test]
    fn hash_consing_shares_structure() {
        let mut ts = TermStore::new();
        let a = ts.bv_var("a", 8);
        let b = ts.bv_var("b", 8);
        let s1 = ts.bv_add(a, b);
        let s2 = ts.bv_add(b, a); // commutative normalization
        assert_eq!(s1, s2);
        let a2 = ts.bv_var("a", 8);
        assert_eq!(a, a2);
    }

    #[test]
    fn constant_folding() {
        let mut ts = TermStore::new();
        let t = ts.tru();
        let f = ts.fls();
        let x = ts.bool_var("x");
        assert_eq!(ts.and(t, x), x);
        assert_eq!(ts.and(f, x), f);
        assert_eq!(ts.or(t, x), t);
        assert_eq!(ts.or(f, x), x);
        assert_eq!(ts.not(t), f);
        let nx = ts.not(x);
        assert_eq!(ts.not(nx), x);
        assert_eq!(ts.implies(f, x), t);
        assert_eq!(ts.xor(x, x), f);
        assert_eq!(ts.iff(x, x), t);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut ts = TermStore::new();
        let a = ts.bv_var("a", 8);
        let b = ts.bv_var("b", 16);
        let _ = ts.bv_add(a, b);
    }

    #[test]
    fn eval_arithmetic() {
        let mut ts = TermStore::new();
        let a = ts.bv_var("a", 8);
        let b = ts.bv_var("b", 8);
        let sum = ts.bv_add(a, b);
        let prod = ts.bv_mul(a, b);
        let diff = ts.bv_sub(a, b);
        let vars = |name: &str| -> u64 {
            match name {
                "a" => 200,
                "b" => 100,
                _ => unreachable!(),
            }
        };
        assert_eq!(ts.eval(sum, &vars, &no_bool), Value::Bv((200 + 100) & 0xff));
        assert_eq!(
            ts.eval(prod, &vars, &no_bool),
            Value::Bv((200 * 100) & 0xff)
        );
        assert_eq!(ts.eval(diff, &vars, &no_bool), Value::Bv(100));
    }

    #[test]
    fn eval_comparisons_signed_unsigned() {
        let mut ts = TermStore::new();
        let a = ts.bv_const(0xff, 8); // 255 unsigned, -1 signed
        let b = ts.bv_const(1, 8);
        let ult = ts.ult(a, b);
        let slt = ts.slt(a, b);
        assert_eq!(ts.eval(ult, &no_bv, &no_bool), Value::Bool(false));
        assert_eq!(ts.eval(slt, &no_bv, &no_bool), Value::Bool(true));
    }

    #[test]
    fn eval_ite_and_shifts() {
        let mut ts = TermStore::new();
        let c = ts.bool_var("c");
        let a = ts.bv_const(0b1011, 4);
        let b = ts.bv_const(0b0100, 4);
        let ite = ts.bv_ite(c, a, b);
        let shl = ts.bv_shl_const(a, 1);
        let shr = ts.bv_lshr_const(a, 2);
        let cv_true = |_: &str| true;
        let cv_false = |_: &str| false;
        assert_eq!(ts.eval(ite, &no_bv, &cv_true), Value::Bv(0b1011));
        assert_eq!(ts.eval(ite, &no_bv, &cv_false), Value::Bv(0b0100));
        assert_eq!(ts.eval(shl, &no_bv, &no_bool), Value::Bv(0b0110));
        assert_eq!(ts.eval(shr, &no_bv, &no_bool), Value::Bv(0b0010));
    }

    #[test]
    fn truncate_and_sign_extend_helpers() {
        assert_eq!(truncate(0x1ff, 8), 0xff);
        assert_eq!(truncate(u64::MAX, 64), u64::MAX);
        assert_eq!(sign_extend(0xff, 8), -1);
        assert_eq!(sign_extend(0x7f, 8), 127);
        assert_eq!(sign_extend(0x80, 8), -128);
    }

    #[test]
    fn ite_folds_on_constant_condition() {
        let mut ts = TermStore::new();
        let t = ts.tru();
        let a = ts.bv_const(1, 8);
        let b = ts.bv_const(2, 8);
        assert_eq!(ts.bv_ite(t, a, b), a);
        let x = ts.bool_var("x");
        assert_eq!(ts.bv_ite(x, a, a), a);
    }
}
