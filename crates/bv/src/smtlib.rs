//! SMT-LIB 2 rendering of terms.
//!
//! The paper's pipeline exchanges SMT-LIB v2.6 files between the modified
//! CBMC and the modified Z3; this module provides the term-level printer
//! used by `zpre-encoder`'s verification-condition dump, so encoded
//! instances can be inspected or handed to external solvers.

use crate::term::{TermId, TermKind, TermStore};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// Collects the free variables of a term: `(name, width)` for bit-vectors
/// (`width == 0` marks a Boolean).
pub fn free_vars(ts: &TermStore, roots: &[TermId]) -> BTreeMap<String, u32> {
    let mut out = BTreeMap::new();
    let mut stack: Vec<TermId> = roots.to_vec();
    let mut seen = std::collections::HashSet::new();
    while let Some(t) = stack.pop() {
        if !seen.insert(t) {
            continue;
        }
        use TermKind::*;
        match ts.kind(t) {
            BoolVar(name) => {
                out.insert(name.clone(), 0);
            }
            BvVar { name, width } => {
                out.insert(name.clone(), *width);
            }
            BoolConst(_) | BvConst { .. } => {}
            Not(a) | BvNeg(a) | BvNot(a) | BvShlConst(a, _) | BvLshrConst(a, _) => stack.push(*a),
            And(a, b)
            | Or(a, b)
            | Xor(a, b)
            | Implies(a, b)
            | Iff(a, b)
            | BvAdd(a, b)
            | BvSub(a, b)
            | BvMul(a, b)
            | BvAnd(a, b)
            | BvOr(a, b)
            | BvXor(a, b)
            | Eq(a, b)
            | Ult(a, b)
            | Ule(a, b)
            | Slt(a, b)
            | Sle(a, b) => {
                stack.push(*a);
                stack.push(*b);
            }
            BoolIte(c, a, b) | BvIte(c, a, b) => {
                stack.push(*c);
                stack.push(*a);
                stack.push(*b);
            }
        }
    }
    out
}

/// Quotes a name for SMT-LIB (symbols with `!`, `[`, `]`, `@` need `|…|`).
pub fn quote(name: &str) -> String {
    if name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
        && !name.is_empty()
        && !name.chars().next().unwrap().is_ascii_digit()
    {
        name.to_string()
    } else {
        format!("|{name}|")
    }
}

/// Renders a term as an SMT-LIB expression. Shared subterms are rendered
/// once via `let`-free duplication (hash-consing keeps the tree small for
/// our instances); a memo avoids exponential re-rendering.
pub fn term_to_smtlib(ts: &TermStore, t: TermId) -> String {
    let mut memo: HashMap<TermId, String> = HashMap::new();
    render(ts, t, &mut memo)
}

fn render(ts: &TermStore, t: TermId, memo: &mut HashMap<TermId, String>) -> String {
    if let Some(s) = memo.get(&t) {
        return s.clone();
    }
    use TermKind::*;
    let bin = |op: &str, a: TermId, b: TermId, memo: &mut HashMap<TermId, String>| {
        format!("({op} {} {})", render(ts, a, memo), render(ts, b, memo))
    };
    let s = match ts.kind(t).clone() {
        BoolConst(true) => "true".to_string(),
        BoolConst(false) => "false".to_string(),
        BoolVar(name) => quote(&name),
        BvConst { value, width } => {
            let mut s = String::new();
            let _ = write!(s, "#b");
            for i in (0..width).rev() {
                s.push(if value >> i & 1 == 1 { '1' } else { '0' });
            }
            s
        }
        BvVar { name, .. } => quote(&name),
        Not(a) => format!("(not {})", render(ts, a, memo)),
        And(a, b) => bin("and", a, b, memo),
        Or(a, b) => bin("or", a, b, memo),
        Xor(a, b) => bin("xor", a, b, memo),
        Implies(a, b) => bin("=>", a, b, memo),
        Iff(a, b) => bin("=", a, b, memo),
        BoolIte(c, a, b) | BvIte(c, a, b) => format!(
            "(ite {} {} {})",
            render(ts, c, memo),
            render(ts, a, memo),
            render(ts, b, memo)
        ),
        BvAdd(a, b) => bin("bvadd", a, b, memo),
        BvSub(a, b) => bin("bvsub", a, b, memo),
        BvMul(a, b) => bin("bvmul", a, b, memo),
        BvNeg(a) => format!("(bvneg {})", render(ts, a, memo)),
        BvNot(a) => format!("(bvnot {})", render(ts, a, memo)),
        BvAnd(a, b) => bin("bvand", a, b, memo),
        BvOr(a, b) => bin("bvor", a, b, memo),
        BvXor(a, b) => bin("bvxor", a, b, memo),
        BvShlConst(a, by) => {
            let w = ts.width(t);
            format!(
                "(bvshl {} {})",
                render(ts, a, memo),
                render_const(by as u64, w)
            )
        }
        BvLshrConst(a, by) => {
            let w = ts.width(t);
            format!(
                "(bvlshr {} {})",
                render(ts, a, memo),
                render_const(by as u64, w)
            )
        }
        Eq(a, b) => bin("=", a, b, memo),
        Ult(a, b) => bin("bvult", a, b, memo),
        Ule(a, b) => bin("bvule", a, b, memo),
        Slt(a, b) => bin("bvslt", a, b, memo),
        Sle(a, b) => bin("bvsle", a, b, memo),
    };
    memo.insert(t, s.clone());
    s
}

fn render_const(value: u64, width: u32) -> String {
    let mut s = String::from("#b");
    for i in (0..width).rev() {
        s.push(if value >> i & 1 == 1 { '1' } else { '0' });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_arithmetic_and_predicates() {
        let mut ts = TermStore::new();
        let a = ts.bv_var("a", 4);
        let b = ts.bv_var("b", 4);
        let one = ts.bv_const(1, 4);
        let sum = ts.bv_add(a, one);
        let pred = ts.ult(sum, b);
        let s = term_to_smtlib(&ts, pred);
        assert_eq!(s, "(bvult (bvadd a #b0001) b)");
    }

    #[test]
    fn renders_booleans() {
        let mut ts = TermStore::new();
        let p = ts.bool_var("p");
        let q = ts.bool_var("q");
        let np = ts.not(p);
        let f = ts.implies(np, q);
        assert_eq!(term_to_smtlib(&ts, f), "(=> (not p) q)");
    }

    #[test]
    fn quoting_of_ssa_names() {
        assert_eq!(quote("cnt"), "cnt");
        assert_eq!(quote("x!3"), "|x!3|");
        assert_eq!(quote("x[0]"), "|x[0]|");
        assert_eq!(quote("rf_1_2_0_1"), "rf_1_2_0_1");
    }

    #[test]
    fn free_vars_are_collected_with_widths() {
        let mut ts = TermStore::new();
        let a = ts.bv_var("a", 8);
        let p = ts.bool_var("p");
        let zero = ts.bv_const(0, 8);
        let cmp = ts.eq(a, zero);
        let root = ts.and(p, cmp);
        let vars = free_vars(&ts, &[root]);
        assert_eq!(vars.get("a"), Some(&8));
        assert_eq!(vars.get("p"), Some(&0));
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn parens_balance() {
        let mut ts = TermStore::new();
        let a = ts.bv_var("a", 4);
        let b = ts.bv_var("b", 4);
        let c1 = ts.bv_mul(a, b);
        let c2 = ts.bv_sub(c1, a);
        let cond = ts.ule(c2, b);
        let ite = ts.bv_ite(cond, a, c2);
        let root = ts.eq(ite, b);
        let s = term_to_smtlib(&ts, root);
        let open = s.chars().filter(|&c| c == '(').count();
        let close = s.chars().filter(|&c| c == ')').count();
        assert_eq!(open, close);
    }
}
