//! Tseitin bit-blasting of bit-vector terms into CNF.
//!
//! The blaster lowers a [`TermStore`] DAG into clauses pushed through a
//! [`ClauseSink`] (implemented by `zpre_sat::Solver`). Memoization over
//! [`TermId`]s plus the store's hash-consing give circuit sharing. This is
//! the same role CBMC's flattening plays for the QF_ABV formulas the paper
//! feeds to Z3 — and it reproduces the phenomenon §3.4 describes: one
//! program-level integer becomes `width` Boolean variables plus gate
//! auxiliaries, all of which the default heuristics treat as decision
//! candidates.

use crate::term::{TermId, TermKind, TermStore};
use std::collections::HashMap;
use zpre_sat::{Lit, Var};

/// Receiver of fresh variables and clauses (usually the solver).
pub trait ClauseSink {
    /// Fresh auxiliary (gate) variable.
    fn new_aux_var(&mut self) -> Var;

    /// Fresh *input* variable with a model-level name (a program variable
    /// bit or a nondeterministic Boolean). Defaults to an auxiliary.
    fn new_input_var(&mut self, name: &str) -> Var {
        let _ = name;
        self.new_aux_var()
    }

    /// Adds a clause. Returns `false` when the formula became trivially
    /// unsatisfiable.
    fn add_clause_sink(&mut self, lits: &[Lit]) -> bool;
}

impl<T: zpre_sat::Theory, G: zpre_sat::DecisionGuide> ClauseSink for zpre_sat::Solver<T, G> {
    fn new_aux_var(&mut self) -> Var {
        self.new_var()
    }
    fn add_clause_sink(&mut self, lits: &[Lit]) -> bool {
        self.add_clause(lits)
    }
}

/// The bit-blaster. Little-endian bit order: index 0 is the LSB.
#[derive(Default)]
pub struct Blaster {
    bool_memo: HashMap<TermId, Lit>,
    bv_memo: HashMap<TermId, Vec<Lit>>,
    true_lit: Option<Lit>,
    /// Bits of every blasted bit-vector variable, by name (model extraction).
    pub bv_inputs: HashMap<String, Vec<Lit>>,
    /// Literal of every blasted Boolean variable, by name.
    pub bool_inputs: HashMap<String, Lit>,
}

impl Blaster {
    /// Creates an empty blaster.
    pub fn new() -> Blaster {
        Blaster::default()
    }

    /// The constant-true literal (allocated on first use).
    pub fn lit_true(&mut self, sink: &mut impl ClauseSink) -> Lit {
        if let Some(l) = self.true_lit {
            return l;
        }
        let l = sink.new_aux_var().positive();
        sink.add_clause_sink(&[l]);
        self.true_lit = Some(l);
        l
    }

    /// The constant-false literal.
    pub fn lit_false(&mut self, sink: &mut impl ClauseSink) -> Lit {
        !self.lit_true(sink)
    }

    // ---- gates ----

    fn gate_and(&mut self, a: Lit, b: Lit, sink: &mut impl ClauseSink) -> Lit {
        if a == b {
            return a;
        }
        if a == !b {
            return self.lit_false(sink);
        }
        let t = self.lit_true(sink);
        if a == t {
            return b;
        }
        if b == t {
            return a;
        }
        if a == !t || b == !t {
            return !t;
        }
        let g = sink.new_aux_var().positive();
        sink.add_clause_sink(&[!g, a]);
        sink.add_clause_sink(&[!g, b]);
        sink.add_clause_sink(&[g, !a, !b]);
        g
    }

    fn gate_or(&mut self, a: Lit, b: Lit, sink: &mut impl ClauseSink) -> Lit {
        !self.gate_and(!a, !b, sink)
    }

    fn gate_xor(&mut self, a: Lit, b: Lit, sink: &mut impl ClauseSink) -> Lit {
        if a == b {
            return self.lit_false(sink);
        }
        if a == !b {
            return self.lit_true(sink);
        }
        let t = self.lit_true(sink);
        if a == t {
            return !b;
        }
        if b == t {
            return !a;
        }
        if a == !t {
            return b;
        }
        if b == !t {
            return a;
        }
        let g = sink.new_aux_var().positive();
        sink.add_clause_sink(&[!g, a, b]);
        sink.add_clause_sink(&[!g, !a, !b]);
        sink.add_clause_sink(&[g, !a, b]);
        sink.add_clause_sink(&[g, a, !b]);
        g
    }

    fn gate_iff(&mut self, a: Lit, b: Lit, sink: &mut impl ClauseSink) -> Lit {
        !self.gate_xor(a, b, sink)
    }

    fn gate_ite(&mut self, c: Lit, th: Lit, el: Lit, sink: &mut impl ClauseSink) -> Lit {
        if th == el {
            return th;
        }
        let t = self.lit_true(sink);
        if c == t {
            return th;
        }
        if c == !t {
            return el;
        }
        let g = sink.new_aux_var().positive();
        sink.add_clause_sink(&[!g, !c, th]);
        sink.add_clause_sink(&[!g, c, el]);
        sink.add_clause_sink(&[g, !c, !th]);
        sink.add_clause_sink(&[g, c, !el]);
        // Redundant but propagation-strengthening:
        sink.add_clause_sink(&[!g, th, el]);
        sink.add_clause_sink(&[g, !th, !el]);
        g
    }

    fn gate_and_all(&mut self, lits: &[Lit], sink: &mut impl ClauseSink) -> Lit {
        let mut acc = self.lit_true(sink);
        for &l in lits {
            acc = self.gate_and(acc, l, sink);
        }
        acc
    }

    // ---- adders ----

    fn full_adder(&mut self, a: Lit, b: Lit, cin: Lit, sink: &mut impl ClauseSink) -> (Lit, Lit) {
        let axb = self.gate_xor(a, b, sink);
        let sum = self.gate_xor(axb, cin, sink);
        let ab = self.gate_and(a, b, sink);
        let c_axb = self.gate_and(cin, axb, sink);
        let cout = self.gate_or(ab, c_axb, sink);
        (sum, cout)
    }

    fn ripple_add(
        &mut self,
        a: &[Lit],
        b: &[Lit],
        mut carry: Lit,
        sink: &mut impl ClauseSink,
    ) -> Vec<Lit> {
        debug_assert_eq!(a.len(), b.len());
        let mut out = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let (s, c) = self.full_adder(a[i], b[i], carry, sink);
            out.push(s);
            carry = c;
        }
        out
    }

    fn compare_ult(&mut self, a: &[Lit], b: &[Lit], sink: &mut impl ClauseSink) -> Lit {
        // Scan LSB→MSB so the most significant difference decides last.
        let mut res = self.lit_false(sink);
        for i in 0..a.len() {
            let lt = self.gate_and(!a[i], b[i], sink);
            let eq = self.gate_iff(a[i], b[i], sink);
            res = self.gate_ite(eq, res, lt, sink);
        }
        res
    }

    // ---- entry points ----

    /// Blasts a Boolean-sorted term to a literal.
    pub fn blast_bool(&mut self, ts: &TermStore, t: TermId, sink: &mut impl ClauseSink) -> Lit {
        if let Some(&l) = self.bool_memo.get(&t) {
            return l;
        }
        use TermKind::*;
        let l = match ts.kind(t).clone() {
            BoolConst(true) => self.lit_true(sink),
            BoolConst(false) => self.lit_false(sink),
            BoolVar(name) => {
                let v = sink.new_input_var(&name).positive();
                self.bool_inputs.insert(name, v);
                v
            }
            Not(a) => {
                let la = self.blast_bool(ts, a, sink);
                !la
            }
            And(a, b) => {
                let la = self.blast_bool(ts, a, sink);
                let lb = self.blast_bool(ts, b, sink);
                self.gate_and(la, lb, sink)
            }
            Or(a, b) => {
                let la = self.blast_bool(ts, a, sink);
                let lb = self.blast_bool(ts, b, sink);
                self.gate_or(la, lb, sink)
            }
            Xor(a, b) => {
                let la = self.blast_bool(ts, a, sink);
                let lb = self.blast_bool(ts, b, sink);
                self.gate_xor(la, lb, sink)
            }
            Implies(a, b) => {
                let la = self.blast_bool(ts, a, sink);
                let lb = self.blast_bool(ts, b, sink);
                self.gate_or(!la, lb, sink)
            }
            Iff(a, b) => {
                let la = self.blast_bool(ts, a, sink);
                let lb = self.blast_bool(ts, b, sink);
                self.gate_iff(la, lb, sink)
            }
            BoolIte(c, a, b) => {
                let lc = self.blast_bool(ts, c, sink);
                let la = self.blast_bool(ts, a, sink);
                let lb = self.blast_bool(ts, b, sink);
                self.gate_ite(lc, la, lb, sink)
            }
            Eq(a, b) => {
                let ba = self.blast_bv(ts, a, sink);
                let bb = self.blast_bv(ts, b, sink);
                let iffs: Vec<Lit> = (0..ba.len())
                    .map(|i| self.gate_iff(ba[i], bb[i], sink))
                    .collect();
                self.gate_and_all(&iffs, sink)
            }
            Ult(a, b) => {
                let ba = self.blast_bv(ts, a, sink);
                let bb = self.blast_bv(ts, b, sink);
                self.compare_ult(&ba, &bb, sink)
            }
            Ule(a, b) => {
                let ba = self.blast_bv(ts, a, sink);
                let bb = self.blast_bv(ts, b, sink);
                !self.compare_ult(&bb, &ba, sink)
            }
            Slt(a, b) => {
                let mut ba = self.blast_bv(ts, a, sink);
                let mut bb = self.blast_bv(ts, b, sink);
                // Flip sign bits: slt(a,b) = ult(a ⊕ MSB, b ⊕ MSB).
                let msb = ba.len() - 1;
                ba[msb] = !ba[msb];
                bb[msb] = !bb[msb];
                self.compare_ult(&ba, &bb, sink)
            }
            Sle(a, b) => {
                let mut ba = self.blast_bv(ts, a, sink);
                let mut bb = self.blast_bv(ts, b, sink);
                let msb = ba.len() - 1;
                ba[msb] = !ba[msb];
                bb[msb] = !bb[msb];
                !self.compare_ult(&bb, &ba, sink)
            }
            k => panic!("blast_bool on non-Boolean term {k:?}"),
        };
        self.bool_memo.insert(t, l);
        l
    }

    /// Blasts a bit-vector-sorted term to its bits (LSB first).
    pub fn blast_bv(&mut self, ts: &TermStore, t: TermId, sink: &mut impl ClauseSink) -> Vec<Lit> {
        if let Some(bits) = self.bv_memo.get(&t) {
            return bits.clone();
        }
        use TermKind::*;
        let bits = match ts.kind(t).clone() {
            BvConst { value, width } => {
                let tl = self.lit_true(sink);
                (0..width)
                    .map(|i| if (value >> i) & 1 == 1 { tl } else { !tl })
                    .collect()
            }
            BvVar { name, width } => {
                let bits: Vec<Lit> = (0..width)
                    .map(|i| sink.new_input_var(&format!("{name}[{i}]")).positive())
                    .collect();
                self.bv_inputs.insert(name, bits.clone());
                bits
            }
            BvAdd(a, b) => {
                let ba = self.blast_bv(ts, a, sink);
                let bb = self.blast_bv(ts, b, sink);
                let zero = self.lit_false(sink);
                self.ripple_add(&ba, &bb, zero, sink)
            }
            BvSub(a, b) => {
                let ba = self.blast_bv(ts, a, sink);
                let bb: Vec<Lit> = self.blast_bv(ts, b, sink).iter().map(|&l| !l).collect();
                let one = self.lit_true(sink);
                self.ripple_add(&ba, &bb, one, sink)
            }
            BvNeg(a) => {
                let ba: Vec<Lit> = self.blast_bv(ts, a, sink).iter().map(|&l| !l).collect();
                let zero = self.lit_false(sink);
                let zeros = vec![zero; ba.len()];
                let one = self.lit_true(sink);
                self.ripple_add(&ba, &zeros, one, sink)
            }
            BvNot(a) => self.blast_bv(ts, a, sink).iter().map(|&l| !l).collect(),
            BvAnd(a, b) => {
                let ba = self.blast_bv(ts, a, sink);
                let bb = self.blast_bv(ts, b, sink);
                (0..ba.len())
                    .map(|i| self.gate_and(ba[i], bb[i], sink))
                    .collect()
            }
            BvOr(a, b) => {
                let ba = self.blast_bv(ts, a, sink);
                let bb = self.blast_bv(ts, b, sink);
                (0..ba.len())
                    .map(|i| self.gate_or(ba[i], bb[i], sink))
                    .collect()
            }
            BvXor(a, b) => {
                let ba = self.blast_bv(ts, a, sink);
                let bb = self.blast_bv(ts, b, sink);
                (0..ba.len())
                    .map(|i| self.gate_xor(ba[i], bb[i], sink))
                    .collect()
            }
            BvShlConst(a, by) => {
                let ba = self.blast_bv(ts, a, sink);
                let zero = self.lit_false(sink);
                let by = by as usize;
                let mut out = vec![zero; by];
                out.extend_from_slice(&ba[..ba.len() - by]);
                out
            }
            BvLshrConst(a, by) => {
                let ba = self.blast_bv(ts, a, sink);
                let zero = self.lit_false(sink);
                let by = by as usize;
                let mut out = ba[by..].to_vec();
                out.extend(std::iter::repeat_n(zero, by));
                out
            }
            BvMul(a, b) => {
                let ba = self.blast_bv(ts, a, sink);
                let bb = self.blast_bv(ts, b, sink);
                let w = ba.len();
                let zero = self.lit_false(sink);
                // Shift-add: start with a & replicate(b[0]).
                let mut acc: Vec<Lit> = (0..w).map(|j| self.gate_and(ba[j], bb[0], sink)).collect();
                for i in 1..w {
                    let row: Vec<Lit> = (0..w)
                        .map(|j| {
                            if j < i {
                                zero
                            } else {
                                self.gate_and(ba[j - i], bb[i], sink)
                            }
                        })
                        .collect();
                    acc = self.ripple_add(&acc, &row, zero, sink);
                }
                acc
            }
            BvIte(c, a, b) => {
                let lc = self.blast_bool(ts, c, sink);
                let ba = self.blast_bv(ts, a, sink);
                let bb = self.blast_bv(ts, b, sink);
                (0..ba.len())
                    .map(|i| self.gate_ite(lc, ba[i], bb[i], sink))
                    .collect()
            }
            k => panic!("blast_bv on non-bit-vector term {k:?}"),
        };
        debug_assert_eq!(bits.len() as u32, ts.width(t));
        self.bv_memo.insert(t, bits.clone());
        bits
    }

    /// Asserts a Boolean term at the top level.
    pub fn assert_true(&mut self, ts: &TermStore, t: TermId, sink: &mut impl ClauseSink) {
        let l = self.blast_bool(ts, t, sink);
        sink.add_clause_sink(&[l]);
    }

    /// Asserts `p₁ ∧ … ∧ pₖ → t` without building an implication gate:
    /// emits the single clause `¬p₁ ∨ … ∨ ¬pₖ ∨ lit(t)`.
    pub fn assert_implies(
        &mut self,
        ts: &TermStore,
        premises: &[Lit],
        t: TermId,
        sink: &mut impl ClauseSink,
    ) {
        let l = self.blast_bool(ts, t, sink);
        let mut clause: Vec<Lit> = premises.iter().map(|&p| !p).collect();
        clause.push(l);
        sink.add_clause_sink(&clause);
    }

    /// Asserts `p₁ ∧ … ∧ pₖ → (a = b)` as `2·width` three-ish-literal
    /// clauses (no gate variables) — the compact form used for the
    /// read-from value constraints.
    pub fn assert_implies_eq(
        &mut self,
        ts: &TermStore,
        premises: &[Lit],
        a: TermId,
        b: TermId,
        sink: &mut impl ClauseSink,
    ) {
        let ba = self.blast_bv(ts, a, sink);
        let bb = self.blast_bv(ts, b, sink);
        debug_assert_eq!(ba.len(), bb.len());
        let neg: Vec<Lit> = premises.iter().map(|&p| !p).collect();
        for i in 0..ba.len() {
            let mut c1 = neg.clone();
            c1.push(!ba[i]);
            c1.push(bb[i]);
            sink.add_clause_sink(&c1);
            let mut c2 = neg.clone();
            c2.push(ba[i]);
            c2.push(!bb[i]);
            sink.add_clause_sink(&c2);
        }
    }
}

/// Decodes bits (LSB first) into a `u64` using a literal valuation.
pub fn lits_to_u64(bits: &[Lit], value_of: impl Fn(Lit) -> bool) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &l)| acc | ((value_of(l) as u64) << i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Value;
    use zpre_sat::{SolveResult, Solver};

    /// Builds a circuit for `expr(a, b)`, forces the inputs to constants via
    /// unit clauses, solves, and compares the output with `TermStore::eval`.
    fn check_binop(
        width: u32,
        av: u64,
        bv: u64,
        build: impl Fn(&mut TermStore, TermId, TermId) -> TermId,
    ) {
        let mut ts = TermStore::new();
        let a = ts.bv_var("a", width);
        let b = ts.bv_var("b", width);
        let out = build(&mut ts, a, b);

        let mut s = Solver::new();
        let mut bl = Blaster::new();
        let is_bool = matches!(ts.sort(out), crate::term::Sort::Bool);
        let out_bits = if is_bool {
            vec![bl.blast_bool(&ts, out, &mut s)]
        } else {
            bl.blast_bv(&ts, out, &mut s)
        };
        // Force inputs (unary ops never blast "b" — skip absent inputs).
        for (name, val) in [("a", av), ("b", bv)] {
            let Some(bits) = bl.bv_inputs.get(name).cloned() else {
                continue;
            };
            for (i, &bit) in bits.iter().enumerate() {
                let want = (val >> i) & 1 == 1;
                s.add_clause(&[if want { bit } else { !bit }]);
            }
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        let got = lits_to_u64(&out_bits, |l| s.model_value(l).is_true());
        let vars = move |n: &str| -> u64 {
            match n {
                "a" => av,
                "b" => bv,
                _ => unreachable!(),
            }
        };
        let expected = match ts.eval(out, &vars, &|_| unreachable!()) {
            Value::Bv(n) => n,
            Value::Bool(x) => x as u64,
        };
        assert_eq!(got, expected, "width={width} a={av} b={bv}");
    }

    fn sweep(build: impl Fn(&mut TermStore, TermId, TermId) -> TermId + Copy) {
        // Exhaustive at width 3, selected corners at width 8.
        for a in 0..8u64 {
            for b in 0..8u64 {
                check_binop(3, a, b, build);
            }
        }
        for &(a, b) in &[
            (0, 0),
            (255, 1),
            (128, 128),
            (170, 85),
            (200, 100),
            (255, 255),
        ] {
            check_binop(8, a, b, build);
        }
    }

    #[test]
    fn add_matches_semantics() {
        sweep(|ts, a, b| ts.bv_add(a, b));
    }

    #[test]
    fn sub_matches_semantics() {
        sweep(|ts, a, b| ts.bv_sub(a, b));
    }

    #[test]
    fn mul_matches_semantics() {
        sweep(|ts, a, b| ts.bv_mul(a, b));
    }

    #[test]
    fn bitwise_matches_semantics() {
        sweep(|ts, a, b| ts.bv_and(a, b));
        sweep(|ts, a, b| ts.bv_or(a, b));
        sweep(|ts, a, b| ts.bv_xor(a, b));
    }

    #[test]
    fn neg_and_not_match_semantics() {
        sweep(|ts, a, _| ts.bv_neg(a));
        sweep(|ts, a, _| ts.bv_not(a));
    }

    #[test]
    fn comparisons_match_semantics() {
        sweep(|ts, a, b| ts.ult(a, b));
        sweep(|ts, a, b| ts.ule(a, b));
        sweep(|ts, a, b| ts.slt(a, b));
        sweep(|ts, a, b| ts.sle(a, b));
        sweep(|ts, a, b| ts.eq(a, b));
    }

    #[test]
    fn shifts_match_semantics() {
        sweep(|ts, a, _| ts.bv_shl_const(a, 1));
        sweep(|ts, a, _| ts.bv_lshr_const(a, 2));
    }

    #[test]
    fn ite_matches_semantics() {
        // c ? a+b : a-b, with c forced each way.
        for c_val in [false, true] {
            let mut ts = TermStore::new();
            let a = ts.bv_var("a", 4);
            let b = ts.bv_var("b", 4);
            let c = ts.bool_var("c");
            let add = ts.bv_add(a, b);
            let sub = ts.bv_sub(a, b);
            let out = ts.bv_ite(c, add, sub);

            let mut s = Solver::new();
            let mut bl = Blaster::new();
            let out_bits = bl.blast_bv(&ts, out, &mut s);
            let cl = bl.bool_inputs["c"];
            s.add_clause(&[if c_val { cl } else { !cl }]);
            for (name, val) in [("a", 9u64), ("b", 5u64)] {
                for (i, &bit) in bl.bv_inputs[name].clone().iter().enumerate() {
                    let want = (val >> i) & 1 == 1;
                    s.add_clause(&[if want { bit } else { !bit }]);
                }
            }
            assert_eq!(s.solve(), SolveResult::Sat);
            let got = lits_to_u64(&out_bits, |l| s.model_value(l).is_true());
            let expected = if c_val { (9 + 5) & 0xf } else { (9 - 5) & 0xf };
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn assert_implies_eq_forces_equality() {
        let mut ts = TermStore::new();
        let a = ts.bv_var("a", 4);
        let b = ts.bv_var("b", 4);
        let mut s = Solver::new();
        let mut bl = Blaster::new();
        let p = s.new_var().positive();
        bl.assert_implies_eq(&ts, &[p], a, b, &mut s);
        // Force p, a = 11; then b must be 11.
        s.add_clause(&[p]);
        for (i, &bit) in bl.bv_inputs["a"].clone().iter().enumerate() {
            let want = (11u64 >> i) & 1 == 1;
            s.add_clause(&[if want { bit } else { !bit }]);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        let b_bits = bl.bv_inputs["b"].clone();
        assert_eq!(lits_to_u64(&b_bits, |l| s.model_value(l).is_true()), 11);
    }

    #[test]
    fn unsat_when_circuit_contradicts() {
        // a + 1 = a is unsatisfiable at any width.
        let mut ts = TermStore::new();
        let a = ts.bv_var("a", 4);
        let one = ts.bv_const(1, 4);
        let sum = ts.bv_add(a, one);
        let eq = ts.eq(sum, a);
        let mut s = Solver::new();
        let mut bl = Blaster::new();
        bl.assert_true(&ts, eq, &mut s);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn overflow_wraps() {
        // 15 + 1 = 0 at width 4.
        let mut ts = TermStore::new();
        let a = ts.bv_const(15, 4);
        let one = ts.bv_const(1, 4);
        let sum = ts.bv_add(a, one);
        let zero = ts.bv_const(0, 4);
        let eq = ts.eq(sum, zero);
        let mut s = Solver::new();
        let mut bl = Blaster::new();
        bl.assert_true(&ts, eq, &mut s);
        assert_eq!(s.solve(), SolveResult::Sat);
    }
}
