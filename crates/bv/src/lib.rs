//! # zpre-bv — bit-vector terms and Tseitin bit-blasting
//!
//! The data-path substrate of the `zpre` stack: a hash-consed bit-vector /
//! Boolean term language ([`TermStore`]) and a CNF bit-blaster
//! ([`Blaster`]) targeting any [`ClauseSink`] (notably
//! `zpre_sat::Solver`). It plays the role CBMC's flattener plays for the
//! QF_ABV verification conditions in the paper's pipeline.
//!
//! Bit order is little-endian (index 0 = LSB); arithmetic wraps, matching
//! machine-integer semantics of the encoded programs. [`TermStore::eval`]
//! provides reference semantics used by the test-suite to validate every
//! circuit.

#![warn(missing_docs)]

pub mod blast;
pub mod smtlib;
pub mod term;

pub use blast::{lits_to_u64, Blaster, ClauseSink};
pub use smtlib::{free_vars, quote, term_to_smtlib};
pub use term::{sign_extend, truncate, Sort, TermId, TermKind, TermStore, Value};
