//! Property tests: random bit-vector expression DAGs, blasted to CNF with
//! forced inputs, must agree with the reference `eval` semantics.

use proptest::prelude::*;
use zpre_bv::{lits_to_u64, Blaster, TermId, TermStore, Value};
use zpre_sat::{SolveResult, Solver};

/// A random expression tree over two variables `a`, `b`.
#[derive(Clone, Debug)]
enum Expr {
    A,
    B,
    Const(u64),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    Neg(Box<Expr>),
    Shl(Box<Expr>, u32),
    Shr(Box<Expr>, u32),
    IteUlt(Box<Expr>, Box<Expr>, Box<Expr>, Box<Expr>),
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::A),
        Just(Expr::B),
        (0..16u64).prop_map(Expr::Const),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(a.into(), b.into())),
            inner.clone().prop_map(|a| Expr::Not(a.into())),
            inner.clone().prop_map(|a| Expr::Neg(a.into())),
            (inner.clone(), 0..4u32).prop_map(|(a, by)| Expr::Shl(a.into(), by)),
            (inner.clone(), 0..4u32).prop_map(|(a, by)| Expr::Shr(a.into(), by)),
            (inner.clone(), inner.clone(), inner.clone(), inner)
                .prop_map(|(c1, c2, t, e)| Expr::IteUlt(c1.into(), c2.into(), t.into(), e.into())),
        ]
    })
}

fn build(ts: &mut TermStore, e: &Expr, w: u32) -> TermId {
    match e {
        Expr::A => ts.bv_var("a", w),
        Expr::B => ts.bv_var("b", w),
        Expr::Const(v) => ts.bv_const(*v, w),
        Expr::Add(a, b) => {
            let (x, y) = (build(ts, a, w), build(ts, b, w));
            ts.bv_add(x, y)
        }
        Expr::Sub(a, b) => {
            let (x, y) = (build(ts, a, w), build(ts, b, w));
            ts.bv_sub(x, y)
        }
        Expr::Mul(a, b) => {
            let (x, y) = (build(ts, a, w), build(ts, b, w));
            ts.bv_mul(x, y)
        }
        Expr::And(a, b) => {
            let (x, y) = (build(ts, a, w), build(ts, b, w));
            ts.bv_and(x, y)
        }
        Expr::Or(a, b) => {
            let (x, y) = (build(ts, a, w), build(ts, b, w));
            ts.bv_or(x, y)
        }
        Expr::Xor(a, b) => {
            let (x, y) = (build(ts, a, w), build(ts, b, w));
            ts.bv_xor(x, y)
        }
        Expr::Not(a) => {
            let x = build(ts, a, w);
            ts.bv_not(x)
        }
        Expr::Neg(a) => {
            let x = build(ts, a, w);
            ts.bv_neg(x)
        }
        Expr::Shl(a, by) => {
            let x = build(ts, a, w);
            ts.bv_shl_const(x, by % w)
        }
        Expr::Shr(a, by) => {
            let x = build(ts, a, w);
            ts.bv_lshr_const(x, by % w)
        }
        Expr::IteUlt(c1, c2, t, e2) => {
            let (x, y) = (build(ts, c1, w), build(ts, c2, w));
            let cond = ts.ult(x, y);
            let (tt, ee) = (build(ts, t, w), build(ts, e2, w));
            ts.bv_ite(cond, tt, ee)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn circuit_matches_reference_semantics(
        e in arb_expr(),
        a_val in 0u64..16,
        b_val in 0u64..16,
    ) {
        const W: u32 = 4;
        let mut ts = TermStore::new();
        let out = build(&mut ts, &e, W);

        let mut solver = Solver::new();
        let mut bl = Blaster::new();
        let out_bits = bl.blast_bv(&ts, out, &mut solver);
        for (name, val) in [("a", a_val), ("b", b_val)] {
            if let Some(bits) = bl.bv_inputs.get(name).cloned() {
                for (i, &bit) in bits.iter().enumerate() {
                    let want = (val >> i) & 1 == 1;
                    solver.add_clause(&[if want { bit } else { !bit }]);
                }
            }
        }
        prop_assert_eq!(solver.solve(), SolveResult::Sat);
        let got = lits_to_u64(&out_bits, |l| solver.model_value(l).is_true());
        let vars = move |n: &str| -> u64 {
            if n == "a" { a_val } else { b_val }
        };
        let expected = match ts.eval(out, &vars, &|_| unreachable!()) {
            Value::Bv(n) => n,
            Value::Bool(_) => unreachable!(),
        };
        prop_assert_eq!(got, expected, "expr {:?} a={} b={}", e, a_val, b_val);
    }

    /// Comparison predicates agree with u64 semantics when solved forward.
    #[test]
    fn predicates_match_reference(
        a_val in 0u64..16,
        b_val in 0u64..16,
        which in 0usize..5,
    ) {
        const W: u32 = 4;
        let mut ts = TermStore::new();
        let a = ts.bv_var("a", W);
        let b = ts.bv_var("b", W);
        let pred = match which {
            0 => ts.eq(a, b),
            1 => ts.ult(a, b),
            2 => ts.ule(a, b),
            3 => ts.slt(a, b),
            _ => ts.sle(a, b),
        };
        let mut solver = Solver::new();
        let mut bl = Blaster::new();
        let lit = bl.blast_bool(&ts, pred, &mut solver);
        for (name, val) in [("a", a_val), ("b", b_val)] {
            for (i, &bit) in bl.bv_inputs[name].clone().iter().enumerate() {
                let want = (val >> i) & 1 == 1;
                solver.add_clause(&[if want { bit } else { !bit }]);
            }
        }
        prop_assert_eq!(solver.solve(), SolveResult::Sat);
        let got = solver.model_value(lit).is_true();
        let expected = ts
            .eval(pred, &move |n| if n == "a" { a_val } else { b_val }, &|_| unreachable!())
            .as_bool();
        prop_assert_eq!(got, expected);
    }
}
