//! `eog-bench` — command-line driver for the EOG engine microbenchmarks.
//!
//! ```text
//! eog-bench [--quick] [--tag NAME] [--out PATH] [--suite]
//! ```
//!
//! Default mode plays every synthetic shape (chain / grid / random-DAG /
//! near-cycle) at 10²–10⁴ nodes through the engine in both modes
//! (incremental vs forced full DFS), prints a comparison table, and
//! appends one NDJSON line per measurement to `BENCH_EOG.json` so the
//! perf trajectory accumulates across commits.
//!
//! `--suite` additionally runs the stress and wmm workload families
//! end-to-end under `zpre` vs the `zpre-dfs-check` ablation and reports
//! the total-nodes-visited ratio — the acceptance number for the
//! incremental engine (≥ 5× fewer visited nodes than the DFS reference).

use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::Write as _;

use zpre_eog_bench::{run_scenario, sizes, Shape};
use zpre_obs::{Recorder, TraceConfig};
use zpre_workloads::{subcategory, Scale, Subcat};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let suite_mode = args.iter().any(|a| a == "--suite");
    let tag = flag_value(&args, "--tag").unwrap_or_else(|| {
        if quick {
            "quick".to_string()
        } else {
            "full".to_string()
        }
    });
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_EOG.json".to_string());

    let mut lines = Vec::new();

    println!(
        "{:<12} {:>7} {:<12} {:>10} {:>10} {:>12} {:>10} {:>8}",
        "shape", "nodes", "mode", "wall(ms)", "checks", "visited", "promoted", "o1%"
    );
    for shape in Shape::ALL {
        for &n in sizes(quick) {
            for full_dfs in [false, true] {
                let r = run_scenario(shape, n, 0xE06, full_dfs);
                let o1 = if r.stats.checks > 0 {
                    100.0 * r.stats.accepted_o1 as f64 / r.stats.checks as f64
                } else {
                    0.0
                };
                println!(
                    "{:<12} {:>7} {:<12} {:>10.3} {:>10} {:>12} {:>10} {:>7.1}%",
                    r.shape,
                    r.nodes,
                    r.mode,
                    r.wall_ms,
                    r.stats.checks,
                    r.stats.visited,
                    r.stats.promoted,
                    o1
                );
                lines.push(r.json_line(&tag));
            }
        }
    }

    if suite_mode {
        lines.extend(run_suite_comparison(quick));
    }

    let mut f = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
        .expect("open BENCH_EOG.json for append");
    for l in &lines {
        writeln!(f, "{l}").expect("append bench line");
    }
    println!("appended {} lines to {out_path}", lines.len());
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Runs the stress + wmm families under `zpre` and `zpre-dfs-check`,
/// accumulating the cycle-check telemetry of each; returns NDJSON lines
/// and prints the visited-nodes ratio.
fn run_suite_comparison(quick: bool) -> Vec<String> {
    use zpre::{try_verify, Strategy, VerifyOptions};
    use zpre_prog::MemoryModel;

    let scale = if quick { Scale::Quick } else { Scale::Full };
    let mut lines = Vec::new();
    let mut report = String::new();
    // The third "family" isolates the tail of the stress ladder (seeds
    // 200+), where cycle-check cost is the largest share of the solve —
    // the wall-clock acceptance case for the incremental engine.
    let stress_large: Vec<_> = subcategory(scale, Subcat::Stress)
        .into_iter()
        .filter(|t| t.name.starts_with("stress/s2"))
        .collect();
    let families = [
        ("stress", subcategory(scale, Subcat::Stress)),
        ("wmm", subcategory(scale, Subcat::Wmm)),
        ("stress-large", stress_large),
    ];
    for (family, tasks) in families {
        if tasks.is_empty() {
            continue;
        }
        let mut totals = Vec::new();
        for (strategy, label) in [
            (Strategy::Zpre, "zpre"),
            (Strategy::ZpreDfsCheck, "zpre-dfs-check"),
        ] {
            let rec = Recorder::new(TraceConfig {
                events: false,
                decision_sample: 1,
            });
            let t0 = std::time::Instant::now();
            let mut solved = 0usize;
            for task in &tasks {
                for mm in MemoryModel::ALL {
                    let opts = VerifyOptions {
                        unroll_bound: task.unroll_bound,
                        validate_models: false,
                        max_conflicts: Some(200_000),
                        recorder: Some(rec.clone()),
                        ..VerifyOptions::new(mm, strategy)
                    };
                    if try_verify(&task.program, &opts).is_ok() {
                        solved += 1;
                    }
                }
            }
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            let c = rec.snapshot().counters;
            let _ = writeln!(
                report,
                "{family:<8} {label:<15} {} tasks ({solved} ok) wall {wall_ms:.1} ms  checks {}  visited {}  promoted {}  o1 {}",
                tasks.len(),
                c.cycle_checks,
                c.cycle_visited,
                c.cycle_promoted,
                c.cycle_accepted_o1
            );
            totals.push(c.cycle_visited.max(1));
            lines.push(format!(
                "{{\"tag\": \"suite\", \"shape\": \"{family}\", \"nodes\": {}, \"mode\": \"{label}\", \
                 \"wall_ms\": {wall_ms:.3}, \"edges_tried\": {}, \"rejected\": 0, \
                 \"checks\": {}, \"accepted_o1\": {}, \"searched\": {}, \"visited\": {}, \"promoted\": {}}}",
                tasks.len(),
                c.cycle_checks,
                c.cycle_checks,
                c.cycle_accepted_o1,
                c.cycle_searched,
                c.cycle_visited,
                c.cycle_promoted
            ));
        }
        let _ = writeln!(
            report,
            "{family:<8} visited-nodes ratio (full-dfs / incremental): {:.1}x",
            totals[1] as f64 / totals[0] as f64
        );
    }
    println!("\nsuite comparison (all memory models):\n{report}");
    lines
}
