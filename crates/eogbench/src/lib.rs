//! # zpre-eog-bench — microbenchmarks for the incremental EOG engine
//!
//! Drives [`zpre_smt::OrderGraph`] directly (no SAT solver, no encoder)
//! over synthetic event-order-graph shapes, in both engine modes:
//!
//! - `incremental` — the topological-level two-way search;
//! - `full-dfs` — the pre-existing per-assertion full DFS, kept as the
//!   ablation reference behind [`OrderGraph::set_force_full_dfs`].
//!
//! Four shapes cover the structures the order theory actually sees:
//! `chain` (program order inside one thread), `grid` (per-thread chains
//! cross-linked by synchronisation), `random-dag` (dense interference
//! orderings), and `near-cycle` (an adversarial mix where many inserted
//! edges close or almost close a cycle). Every scenario interleaves
//! insertions with decision levels and backtracking, mirroring how the
//! DPLL(T) loop exercises the engine.
//!
//! All randomness comes from a seeded LCG so runs are reproducible; the
//! `eog-bench` binary appends one NDJSON line per run to `BENCH_EOG.json`
//! to keep a perf trajectory across commits.

#![warn(missing_docs)]

use std::time::Instant;

use zpre_smt::{CycleStats, NodeId, OrderGraph};

/// Deterministic 64-bit LCG (same constants as the solver's phase RNG).
#[derive(Clone, Debug)]
pub struct Lcg(u64);

impl Lcg {
    /// Creates a generator from a non-zero seed.
    pub fn new(seed: u64) -> Lcg {
        Lcg(seed | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// Uniform-ish value in `0..n` (n > 0).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() >> 16) as usize % n
    }
}

/// Synthetic EOG shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shape {
    /// One long program-order chain, edges inserted in shuffled order.
    Chain,
    /// √n × √n grid: right and down edges, shuffled.
    Grid,
    /// Random DAG: ~4·n forward edges over a fixed node order.
    RandomDag,
    /// Chain plus frequent back-edges that close a cycle and are rejected.
    NearCycle,
}

impl Shape {
    /// All shapes, in display order.
    pub const ALL: [Shape; 4] = [
        Shape::Chain,
        Shape::Grid,
        Shape::RandomDag,
        Shape::NearCycle,
    ];

    /// Stable display name (used in JSON and bench IDs).
    pub fn name(self) -> &'static str {
        match self {
            Shape::Chain => "chain",
            Shape::Grid => "grid",
            Shape::RandomDag => "random-dag",
            Shape::NearCycle => "near-cycle",
        }
    }

    /// Edge list for `nodes` nodes, shuffled deterministically by `seed`.
    /// Entries are `(from, to, expect_cycle_possible)`.
    pub fn edges(self, nodes: usize, seed: u64) -> Vec<(usize, usize)> {
        let mut rng = Lcg::new(seed);
        let mut edges: Vec<(usize, usize)> = Vec::new();
        match self {
            Shape::Chain => {
                for i in 0..nodes.saturating_sub(1) {
                    edges.push((i, i + 1));
                }
            }
            Shape::Grid => {
                let k = (nodes as f64).sqrt() as usize;
                let k = k.max(2);
                for r in 0..k {
                    for c in 0..k {
                        let id = r * k + c;
                        if c + 1 < k {
                            edges.push((id, id + 1));
                        }
                        if r + 1 < k {
                            edges.push((id, id + k));
                        }
                    }
                }
            }
            Shape::RandomDag => {
                for _ in 0..nodes * 4 {
                    let a = rng.below(nodes);
                    let b = rng.below(nodes);
                    if a < b {
                        edges.push((a, b));
                    }
                }
            }
            Shape::NearCycle => {
                for i in 0..nodes.saturating_sub(1) {
                    edges.push((i, i + 1));
                    // Every few chain links, a back edge that closes a cycle
                    // over a long suffix of the chain built so far.
                    if i % 4 == 3 {
                        let lo = rng.below(i + 1);
                        edges.push((i + 1, lo));
                    }
                }
            }
        }
        // Fisher–Yates shuffle; NearCycle keeps its order so every back
        // edge actually closes a cycle at insertion time.
        if self != Shape::NearCycle {
            for i in (1..edges.len()).rev() {
                edges.swap(i, rng.below(i + 1));
            }
        }
        edges
    }
}

/// Outcome of one scenario run.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// Shape name.
    pub shape: &'static str,
    /// Node count.
    pub nodes: usize,
    /// `"incremental"` or `"full-dfs"`.
    pub mode: &'static str,
    /// Wall-clock milliseconds for the full insertion/undo sequence.
    pub wall_ms: f64,
    /// Edges offered to the engine.
    pub edges_tried: u64,
    /// Insertions rejected as cycle-closing.
    pub rejected: u64,
    /// Engine counters accumulated over the run.
    pub stats: CycleStats,
}

impl ScenarioResult {
    /// One NDJSON line for `BENCH_EOG.json`.
    pub fn json_line(&self, tag: &str) -> String {
        let s = &self.stats;
        format!(
            "{{\"tag\": \"{}\", \"shape\": \"{}\", \"nodes\": {}, \"mode\": \"{}\", \
             \"wall_ms\": {:.3}, \"edges_tried\": {}, \"rejected\": {}, \
             \"checks\": {}, \"accepted_o1\": {}, \"searched\": {}, \
             \"visited\": {}, \"promoted\": {}}}",
            tag,
            self.shape,
            self.nodes,
            self.mode,
            self.wall_ms,
            self.edges_tried,
            self.rejected,
            s.checks,
            s.accepted_o1,
            s.searched,
            s.visited,
            s.promoted
        )
    }
}

/// Runs one scenario: builds the shape's edge list, then plays it against
/// a fresh engine with a DPLL-style assert+undo mix — every `GROUP` edges
/// open a decision level, and one level in four is backtracked (its edges
/// replayed at the next level, as a restarting solver would).
pub fn run_scenario(shape: Shape, nodes: usize, seed: u64, full_dfs: bool) -> ScenarioResult {
    const GROUP: usize = 8;
    let edges = shape.edges(nodes, seed);
    let mut rng = Lcg::new(seed ^ 0x9E3779B97F4A7C15);

    let mut g = OrderGraph::new();
    for _ in 0..nodes {
        g.add_node();
    }
    g.set_force_full_dfs(full_dfs);

    let mut tried = 0u64;
    let mut rejected = 0u64;
    let t0 = Instant::now();
    let mut level = 0u32;
    let mut i = 0;
    while i < edges.len() {
        g.new_level();
        level += 1;
        let end = (i + GROUP).min(edges.len());
        for &(a, b) in &edges[i..end] {
            tried += 1;
            if g.insert_edge(NodeId(a as u32), NodeId(b as u32), None)
                .is_err()
            {
                rejected += 1;
            }
        }
        // One level in four is undone and replayed: the same edges come
        // back at the next decision level, like a post-conflict re-assert.
        if rng.below(4) == 0 {
            level -= 1;
            g.backtrack_to(level);
        } else {
            i = end;
        }
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    ScenarioResult {
        shape: shape.name(),
        nodes,
        mode: if full_dfs { "full-dfs" } else { "incremental" },
        wall_ms,
        edges_tried: tried,
        rejected,
        stats: g.stats,
    }
}

/// The size ladder: quick mode stops at 10³, full mode reaches 10⁴.
pub fn sizes(quick: bool) -> &'static [usize] {
    if quick {
        &[100, 1000]
    } else {
        &[100, 1000, 10000]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_generate_nonempty_edge_lists() {
        for shape in Shape::ALL {
            let e = shape.edges(100, 7);
            assert!(!e.is_empty(), "{}", shape.name());
            for &(a, b) in &e {
                assert!(a < 100 && b < 100);
            }
        }
    }

    #[test]
    fn near_cycle_rejects_back_edges_and_others_accept_everything() {
        for shape in Shape::ALL {
            let r = run_scenario(shape, 200, 11, false);
            assert_eq!(r.stats.checks, r.edges_tried, "{}", shape.name());
            if shape == Shape::NearCycle {
                assert!(r.rejected > 0, "near-cycle must hit rejections");
            } else {
                assert_eq!(r.rejected, 0, "{} is acyclic", shape.name());
            }
        }
    }

    #[test]
    fn both_modes_agree_on_rejection_counts() {
        for shape in Shape::ALL {
            let inc = run_scenario(shape, 150, 3, false);
            let dfs = run_scenario(shape, 150, 3, true);
            assert_eq!(inc.rejected, dfs.rejected, "{}", shape.name());
            assert_eq!(inc.edges_tried, dfs.edges_tried, "{}", shape.name());
            // The full-DFS reference never takes the O(1) accept.
            assert_eq!(dfs.stats.accepted_o1, 0);
            assert_eq!(dfs.stats.searched, dfs.stats.checks);
        }
    }

    #[test]
    fn incremental_visits_fewer_nodes_than_full_dfs_on_reverse_chains() {
        // A chain inserted back to front is the old engine's worst case:
        // the full DFS re-walks the entire existing suffix on every
        // insertion, while the incremental engine's backward pass sees a
        // node with no in-edges and accepts after constant work.
        let n = 2000u32;
        let mut visited = [0u64; 2];
        for (slot, full_dfs) in [(0usize, false), (1, true)] {
            let mut g = OrderGraph::new();
            for _ in 0..n {
                g.add_node();
            }
            g.set_force_full_dfs(full_dfs);
            for i in (0..n - 1).rev() {
                g.insert_edge(NodeId(i), NodeId(i + 1), None).unwrap();
            }
            visited[slot] = g.stats.visited;
        }
        assert!(
            visited[0] * 5 <= visited[1],
            "expected >=5x visited reduction, got {} vs {}",
            visited[0],
            visited[1]
        );
    }

    #[test]
    fn json_line_is_wellformed() {
        let r = run_scenario(Shape::Grid, 100, 1, false);
        let line = r.json_line("test");
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"shape\": \"grid\""));
        assert!(line.contains("\"mode\": \"incremental\""));
    }
}
