//! Criterion benches for the incremental EOG engine vs the full-DFS
//! reference, over the synthetic shapes at the 10²–10⁴ node ladder.
//!
//! `cargo bench -p zpre-eog-bench` prints mean times per
//! (shape, size, mode); the `eog-bench` binary is the variant that also
//! records the counters into `BENCH_EOG.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use zpre_eog_bench::{run_scenario, Shape};

fn bench_engine(c: &mut Criterion) {
    for shape in Shape::ALL {
        let mut group = c.benchmark_group(format!("eog/{}", shape.name()));
        group.sample_size(10);
        for n in [100usize, 1000, 10000] {
            for (mode, full_dfs) in [("incremental", false), ("full-dfs", true)] {
                // The 10⁴-node full-DFS runs are quadratic; skip them so the
                // bench finishes in sane time (the binary still covers them).
                if full_dfs && n >= 10000 {
                    continue;
                }
                group.bench_function(format!("{n}/{mode}"), |b| {
                    b.iter(|| black_box(run_scenario(shape, n, 0xE06, full_dfs).stats.visited))
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
