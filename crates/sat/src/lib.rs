//! # zpre-sat — a CDCL(T) SAT core with theory hooks and decision guides
//!
//! This crate is the search engine underneath the `zpre` verification stack,
//! a from-scratch reproduction of the solver role Z3 plays in
//! *Interference Relation-Guided SMT Solving for Multi-Threaded Program
//! Verification* (PPoPP 2022).
//!
//! It provides:
//!
//! - a conflict-driven clause-learning SAT solver ([`Solver`]) with
//!   two-watched-literal propagation, first-UIP learning with recursive
//!   minimization, VSIDS + phase saving, LBD-based clause-database
//!   reduction, and Luby restarts;
//! - a background-theory interface ([`Theory`]) for DPLL(T)-style eager
//!   theory integration (used by the event-order theory in `zpre-smt`);
//! - a decision-guide interface ([`DecisionGuide`]) consulted *before* the
//!   built-in VSIDS heuristic — the integration point for the paper's
//!   interference-relation decision order ([`PriorityListGuide`]);
//! - [`dimacs`] reading/writing for interoperability and testing.
//!
//! ## Example
//!
//! ```
//! use zpre_sat::{Solver, SolveResult};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[a.positive(), b.positive()]);
//! s.add_clause(&[a.negative()]);
//! assert_eq!(s.solve(), SolveResult::Sat);
//! assert!(s.model_value(b.positive()).is_true());
//! ```

#![warn(missing_docs)]

pub mod clause;
pub mod dimacs;
pub mod guide;
pub mod heap;
pub mod lit;
pub mod proof;
pub mod share;
pub mod solver;
pub mod stats;
pub mod theory;

pub use clause::{CRef, ClauseDb};
pub use guide::{AssignView, DecisionGuide, NoGuide, PriorityListGuide};
pub use lit::{LBool, Lit, Var};
pub use proof::{Proof, ProofStep};
pub use share::{
    CycleEdgeRaw, MemberEndpoint, ShareClass, ShareConfig, ShareSpec, SharedClause, SharedPool,
};
pub use solver::{RestartStrategy, SolveResult, Solver, SolverConfig};
pub use stats::{Budget, CancelToken, ExhaustionReason, Stats};
pub use theory::{NoTheory, Theory, TheoryConflict, TheoryOut};
