//! Variables, literals and the three-valued assignment domain.
//!
//! A [`Var`] is a dense index into the solver's variable tables. A [`Lit`]
//! packs a variable and a sign into a single `u32` (`var << 1 | sign`), the
//! classic MiniSat layout, so that watch lists and assignment tables can be
//! indexed directly by `lit.code()`.

use std::fmt;

/// A propositional variable, densely numbered from 0.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its dense index.
    #[inline]
    pub const fn new(index: u32) -> Var {
        Var(index)
    }

    /// The dense index of this variable.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    #[inline]
    pub const fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// The negative literal of this variable.
    #[inline]
    pub const fn negative(self) -> Lit {
        Lit::new(self, false)
    }

    /// The literal of this variable with the given sign (`true` = positive).
    #[inline]
    pub const fn lit(self, sign: bool) -> Lit {
        Lit::new(self, sign)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable with a sign. Positive sign means the variable
/// itself, negative sign its negation.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal from a variable and a sign (`true` = positive).
    #[inline]
    pub const fn new(var: Var, sign: bool) -> Lit {
        Lit(var.0 << 1 | sign as u32)
    }

    /// Reconstructs a literal from its packed code (inverse of [`Lit::code`]).
    #[inline]
    pub const fn from_code(code: u32) -> Lit {
        Lit(code)
    }

    /// The packed code of this literal, suitable for dense indexing.
    #[inline]
    pub const fn code(self) -> usize {
        self.0 as usize
    }

    /// The underlying variable.
    #[inline]
    pub const fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` if this is the positive literal of its variable.
    #[inline]
    pub const fn sign(self) -> bool {
        self.0 & 1 == 1
    }

    /// The negation of this literal.
    #[inline]
    #[must_use]
    pub const fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        self.negate()
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}v{}", if self.sign() { "" } else { "!" }, self.0 >> 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Three-valued assignment: true, false or unassigned.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
#[repr(u8)]
pub enum LBool {
    /// Assigned true.
    True = 0,
    /// Assigned false.
    False = 1,
    /// Not assigned.
    #[default]
    Undef = 2,
}

impl LBool {
    /// Converts a `bool` into the corresponding defined value.
    #[inline]
    pub const fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// `true` iff this value is [`LBool::Undef`].
    #[inline]
    pub const fn is_undef(self) -> bool {
        matches!(self, LBool::Undef)
    }

    /// `true` iff this value is [`LBool::True`].
    #[inline]
    pub const fn is_true(self) -> bool {
        matches!(self, LBool::True)
    }

    /// `true` iff this value is [`LBool::False`].
    #[inline]
    pub const fn is_false(self) -> bool {
        matches!(self, LBool::False)
    }

    /// The value of the *negation*: true↦false, false↦true, undef↦undef.
    #[inline]
    #[must_use]
    pub const fn negate(self) -> LBool {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }

    /// XORs a defined value with a sign; undef stays undef. `xor_sign(false)`
    /// is the identity used to evaluate a positive literal, `xor_sign(true)`
    /// evaluates a negated one.
    #[inline]
    #[must_use]
    pub const fn xor_sign(self, flip: bool) -> LBool {
        if flip {
            self.negate()
        } else {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_packing_roundtrip() {
        for idx in [0u32, 1, 2, 17, 1 << 20] {
            let v = Var::new(idx);
            let p = v.positive();
            let n = v.negative();
            assert_eq!(p.var(), v);
            assert_eq!(n.var(), v);
            assert!(p.sign());
            assert!(!n.sign());
            assert_eq!(!p, n);
            assert_eq!(!n, p);
            assert_eq!(!!p, p);
            assert_eq!(Lit::from_code(p.code() as u32), p);
        }
    }

    #[test]
    fn lit_codes_are_dense_and_disjoint() {
        let a = Var::new(0);
        let b = Var::new(1);
        let codes = [
            a.negative().code(),
            a.positive().code(),
            b.negative().code(),
            b.positive().code(),
        ];
        assert_eq!(codes, [0, 1, 2, 3]);
    }

    #[test]
    fn lbool_negation_table() {
        assert_eq!(LBool::True.negate(), LBool::False);
        assert_eq!(LBool::False.negate(), LBool::True);
        assert_eq!(LBool::Undef.negate(), LBool::Undef);
        assert_eq!(LBool::from_bool(true), LBool::True);
        assert_eq!(LBool::from_bool(false), LBool::False);
    }

    #[test]
    fn lbool_xor_sign_evaluates_literals() {
        // A variable assigned true makes its positive literal true and its
        // negative literal false.
        let val = LBool::True;
        assert!(val.xor_sign(false).is_true());
        assert!(val.xor_sign(true).is_false());
        assert!(LBool::Undef.xor_sign(true).is_undef());
    }

    #[test]
    fn var_lit_constructor_matches_sign() {
        let v = Var::new(5);
        assert_eq!(v.lit(true), v.positive());
        assert_eq!(v.lit(false), v.negative());
    }
}
