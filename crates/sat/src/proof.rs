//! DRAT proof logging and a forward RUP checker.
//!
//! When proof logging is enabled, the solver records every derived clause
//! (learnt clauses, root-level strengthenings of input clauses, and the
//! final empty clause on unsatisfiability) plus learnt-clause deletions.
//! The resulting sequence is a standard DRAT proof and can be validated by
//! [`check`] — an independent forward reverse-unit-propagation checker —
//! or exported in the textual DRAT format consumed by external tools.
//!
//! Scope: pure [`check`] is sound for *propositional* solving. Clauses
//! learnt from background-theory conflicts are theory-valid but not
//! RUP-derivable from the CNF alone, so the solver records them as
//! [`ProofStep::Lemma`] steps: `check` rejects them (fail closed), while
//! [`check_with_lemmas`] accepts a lemma exactly when a caller-supplied
//! validator — e.g. the standalone EOG cycle re-walker in `zpre-smt` —
//! re-justifies the clause independently, and then treats it as an axiom
//! for the remaining RUP derivation.

use crate::lit::{LBool, Lit};
use std::fmt::Write as _;

/// One proof step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofStep {
    /// A clause asserted to be redundant (RUP) w.r.t. the current database.
    Add(Vec<Lit>),
    /// A clause removed from the database.
    Delete(Vec<Lit>),
    /// A theory lemma: valid in the background theory but, in general, not
    /// RUP-derivable from the CNF. Only [`check_with_lemmas`] accepts these,
    /// and only after external re-justification.
    Lemma(Vec<Lit>),
}

/// An in-memory DRAT proof.
#[derive(Clone, Debug, Default)]
pub struct Proof {
    /// The steps, in derivation order.
    pub steps: Vec<ProofStep>,
}

impl Proof {
    /// Appends an addition step.
    pub fn add(&mut self, lits: &[Lit]) {
        self.steps.push(ProofStep::Add(lits.to_vec()));
    }

    /// Appends a deletion step.
    pub fn delete(&mut self, lits: &[Lit]) {
        self.steps.push(ProofStep::Delete(lits.to_vec()));
    }

    /// Appends a theory-lemma step.
    pub fn lemma(&mut self, lits: &[Lit]) {
        self.steps.push(ProofStep::Lemma(lits.to_vec()));
    }

    /// The clauses of all [`ProofStep::Lemma`] steps, in order.
    pub fn lemma_clauses(&self) -> Vec<&[Lit]> {
        self.steps
            .iter()
            .filter_map(|s| match s {
                ProofStep::Lemma(c) => Some(c.as_slice()),
                _ => None,
            })
            .collect()
    }

    /// `true` once the proof derives the empty clause.
    pub fn derives_empty(&self) -> bool {
        self.steps
            .iter()
            .any(|s| matches!(s, ProofStep::Add(c) if c.is_empty()))
    }

    /// Serializes to the textual DRAT format (`d` lines for deletions).
    /// Theory lemmas become plain additions preceded by a `c lemma`
    /// comment — external propositional checkers will reject such proofs,
    /// which is the correct fail-closed behaviour (the lemmas need the
    /// theory-side re-justification that only [`check_with_lemmas`] does).
    pub fn to_drat(&self) -> String {
        let mut out = String::new();
        for step in &self.steps {
            let (prefix, lits) = match step {
                ProofStep::Add(c) => ("", c),
                ProofStep::Delete(c) => ("d ", c),
                ProofStep::Lemma(c) => ("c lemma\n", c),
            };
            out.push_str(prefix);
            for &l in lits {
                let n = l.var().index() as i64 + 1;
                let _ = write!(out, "{} ", if l.sign() { n } else { -n });
            }
            out.push_str("0\n");
        }
        out
    }
}

/// Forward RUP check of `proof` against the original `cnf`.
///
/// Returns `Ok(())` when every addition is RUP with respect to the clauses
/// available at that point and the proof ends in the empty clause;
/// `Err(step_index)` names the first failing step. Any [`ProofStep::Lemma`]
/// fails closed — propositional checking cannot justify theory lemmas; use
/// [`check_with_lemmas`] with an external validator instead.
pub fn check(cnf: &[Vec<Lit>], proof: &Proof) -> Result<(), usize> {
    check_with_lemmas(cnf, proof, |_| false)
}

/// Forward RUP check that admits theory lemmas via an external validator.
///
/// Every [`ProofStep::Lemma`] clause is passed to `lemma_ok`; when the
/// validator vouches for it (i.e. re-derives its theory validity
/// independently), the clause joins the database as an axiom for subsequent
/// RUP steps — otherwise the check fails at that step. Everything else
/// behaves exactly like [`check`].
pub fn check_with_lemmas(
    cnf: &[Vec<Lit>],
    proof: &Proof,
    mut lemma_ok: impl FnMut(&[Lit]) -> bool,
) -> Result<(), usize> {
    let mut db: Vec<Vec<Lit>> = cnf.to_vec();
    let mut derived_empty = false;
    for (i, step) in proof.steps.iter().enumerate() {
        match step {
            ProofStep::Add(clause) => {
                if !is_rup(&db, clause) {
                    return Err(i);
                }
                if clause.is_empty() {
                    derived_empty = true;
                }
                db.push(clause.clone());
            }
            ProofStep::Lemma(clause) => {
                if !lemma_ok(clause) {
                    return Err(i);
                }
                db.push(clause.clone());
            }
            ProofStep::Delete(clause) => {
                let mut sorted = clause.clone();
                sorted.sort_unstable();
                if let Some(at) = db.iter().position(|c| {
                    let mut cs = c.clone();
                    cs.sort_unstable();
                    cs == sorted
                }) {
                    db.swap_remove(at);
                }
                // Deleting an absent clause is tolerated (as real DRAT
                // checkers do) — it cannot make the proof unsound.
            }
        }
    }
    if derived_empty {
        Ok(())
    } else {
        Err(proof.steps.len())
    }
}

/// Is `clause` derivable by reverse unit propagation from `db`?
fn is_rup(db: &[Vec<Lit>], clause: &[Lit]) -> bool {
    // Assignment under "assume the negation of the clause".
    let max_var = db
        .iter()
        .chain(std::iter::once(&clause.to_vec()))
        .flat_map(|c| c.iter())
        .map(|l| l.var().index())
        .max()
        .unwrap_or(0);
    let mut assign = vec![LBool::Undef; max_var + 1];
    let set = |assign: &mut Vec<LBool>, l: Lit| -> bool {
        // Returns false on conflict.
        match assign[l.var().index()] {
            LBool::Undef => {
                assign[l.var().index()] = LBool::from_bool(l.sign());
                true
            }
            v => v.is_true() == l.sign(),
        }
    };
    for &l in clause {
        if !set(&mut assign, !l) {
            return true; // the negated clause is itself contradictory
        }
    }
    // Naive unit propagation to fixpoint.
    loop {
        let mut progressed = false;
        for c in db {
            let mut unassigned: Option<Lit> = None;
            let mut satisfied = false;
            let mut unit = true;
            for &l in c {
                match assign[l.var().index()].xor_sign(!l.sign()) {
                    LBool::True => {
                        satisfied = true;
                        break;
                    }
                    LBool::False => {}
                    LBool::Undef => {
                        if unassigned.is_some() {
                            unit = false;
                            break;
                        }
                        unassigned = Some(l);
                    }
                }
            }
            if satisfied {
                continue;
            }
            match (unit, unassigned) {
                (true, None) => return true, // conflict: clause falsified
                (true, Some(l)) => {
                    if !set(&mut assign, l) {
                        return true;
                    }
                    progressed = true;
                }
                _ => {}
            }
        }
        if !progressed {
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lit(i: i64) -> Lit {
        let v = Var::new(i.unsigned_abs() as u32 - 1);
        v.lit(i > 0)
    }

    fn cl(ls: &[i64]) -> Vec<Lit> {
        ls.iter().map(|&i| lit(i)).collect()
    }

    #[test]
    fn rup_detects_trivial_resolvent() {
        // (a ∨ b), (¬a ∨ b) ⊢ (b) by RUP.
        let db = vec![cl(&[1, 2]), cl(&[-1, 2])];
        assert!(is_rup(&db, &cl(&[2])));
        assert!(!is_rup(&db, &cl(&[1])));
    }

    #[test]
    fn rup_empty_clause_needs_conflicting_units() {
        let db = vec![cl(&[1]), cl(&[-1])];
        assert!(is_rup(&db, &[]));
        let db2 = vec![cl(&[1, 2])];
        assert!(!is_rup(&db2, &[]));
    }

    #[test]
    fn full_proof_roundtrip() {
        // UNSAT: (a∨b)(a∨¬b)(¬a∨b)(¬a∨¬b). Proof: derive (a), then ⊥.
        let cnf = vec![cl(&[1, 2]), cl(&[1, -2]), cl(&[-1, 2]), cl(&[-1, -2])];
        let mut proof = Proof::default();
        proof.add(&cl(&[1]));
        proof.add(&[]);
        assert_eq!(check(&cnf, &proof), Ok(()));
        assert!(proof.derives_empty());
    }

    #[test]
    fn bogus_step_is_rejected() {
        let cnf = vec![cl(&[1, 2])];
        let mut proof = Proof::default();
        proof.add(&cl(&[1])); // not RUP from (a ∨ b)
        assert_eq!(check(&cnf, &proof), Err(0));
    }

    #[test]
    fn incomplete_proof_is_rejected() {
        let cnf = vec![cl(&[1]), cl(&[-1])];
        let proof = Proof::default(); // no steps at all
        assert!(check(&cnf, &proof).is_err());
    }

    #[test]
    fn deletions_are_applied() {
        // After deleting (¬a ∨ b), the clause (b) is no longer RUP from the
        // remaining database {(a ∨ b)} alone — the checker must reject the
        // second addition, proving deletions really remove clauses.
        let cnf = vec![cl(&[1, 2]), cl(&[-1, 2])];
        let mut with_delete = Proof::default();
        with_delete.delete(&cl(&[-1, 2]));
        with_delete.add(&cl(&[2]));
        assert_eq!(check(&cnf, &with_delete), Err(1));
        // Without the deletion the same addition is accepted (though the
        // proof is still incomplete — no empty clause).
        let mut without_delete = Proof::default();
        without_delete.add(&cl(&[2]));
        assert_eq!(check(&cnf, &without_delete), Err(1));
    }

    #[test]
    fn drat_text_format() {
        let mut proof = Proof::default();
        proof.add(&cl(&[1, -2]));
        proof.delete(&cl(&[3]));
        proof.add(&[]);
        let text = proof.to_drat();
        assert_eq!(text, "1 -2 0\nd 3 0\n0\n");
    }

    #[test]
    fn plain_check_rejects_lemmas() {
        // The lemma (¬a) would make the proof go through, but `check` must
        // fail closed on theory lemmas it cannot justify propositionally.
        let cnf = vec![cl(&[1, 2]), cl(&[1, -2])];
        let mut proof = Proof::default();
        proof.lemma(&cl(&[-1]));
        proof.add(&[]);
        assert_eq!(check(&cnf, &proof), Err(0));
    }

    #[test]
    fn validated_lemma_acts_as_axiom() {
        // CNF alone is SAT; with the theory lemma (¬a) it becomes UNSAT and
        // the empty clause is RUP. The validator sees exactly the lemma.
        let cnf = vec![cl(&[1, 2]), cl(&[1, -2])];
        let mut proof = Proof::default();
        proof.lemma(&cl(&[-1]));
        proof.add(&[]);
        let mut seen = Vec::new();
        let result = check_with_lemmas(&cnf, &proof, |c| {
            seen.push(c.to_vec());
            true
        });
        assert_eq!(result, Ok(()));
        assert_eq!(seen, vec![cl(&[-1])]);
        assert_eq!(proof.lemma_clauses(), vec![cl(&[-1]).as_slice()]);
    }

    #[test]
    fn refused_lemma_fails_at_its_step() {
        let cnf = vec![cl(&[1, 2]), cl(&[1, -2])];
        let mut proof = Proof::default();
        proof.add(&cl(&[1])); // RUP: resolvent of the two input clauses
        proof.lemma(&cl(&[-1]));
        proof.add(&[]);
        assert_eq!(check_with_lemmas(&cnf, &proof, |_| false), Err(1));
    }

    #[test]
    fn lemma_drat_text_is_commented() {
        let mut proof = Proof::default();
        proof.lemma(&cl(&[-1]));
        assert_eq!(proof.to_drat(), "c lemma\n-1 0\n");
    }
}
