//! Indexed binary max-heap over variable activities (the VSIDS order heap).
//!
//! Supports O(log n) insert/pop and, crucially, O(log n) *decrease/increase
//! key* for an arbitrary variable via an index table — needed because VSIDS
//! bumps activities of variables that are already enqueued.

use crate::lit::Var;

/// Max-heap of variables keyed by an external activity array.
#[derive(Default, Clone)]
pub struct ActivityHeap {
    /// Heap of variable indices.
    heap: Vec<u32>,
    /// `pos[v] == u32::MAX` when v is not in the heap, else its heap slot.
    pos: Vec<u32>,
}

const NOT_IN_HEAP: u32 = u32::MAX;

impl ActivityHeap {
    /// Creates an empty heap.
    pub fn new() -> ActivityHeap {
        ActivityHeap::default()
    }

    /// Extends the index table to cover variables `0..n`.
    pub fn grow_to(&mut self, n: usize) {
        if self.pos.len() < n {
            self.pos.resize(n, NOT_IN_HEAP);
        }
    }

    /// Number of enqueued variables.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no variable is enqueued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// `true` when `v` is currently enqueued.
    #[inline]
    pub fn contains(&self, v: Var) -> bool {
        self.pos.get(v.index()).is_some_and(|&p| p != NOT_IN_HEAP)
    }

    /// Inserts `v` (no-op if already present).
    pub fn insert(&mut self, v: Var, activity: &[f64]) {
        self.grow_to(v.index() + 1);
        if self.contains(v) {
            return;
        }
        let slot = self.heap.len() as u32;
        self.heap.push(v.index() as u32);
        self.pos[v.index()] = slot;
        self.sift_up(slot as usize, activity);
    }

    /// Removes and returns the variable with the highest activity.
    pub fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.pos[top as usize] = NOT_IN_HEAP;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(Var::new(top))
    }

    /// Restores the heap property around `v` after its activity increased.
    pub fn bumped(&mut self, v: Var, activity: &[f64]) {
        if let Some(&p) = self.pos.get(v.index()) {
            if p != NOT_IN_HEAP {
                self.sift_up(p as usize, activity);
            }
        }
    }

    /// Rebuilds the heap from scratch (used after a global activity rescale,
    /// which preserves order, so this is normally unnecessary — kept for
    /// defensive rebuilds).
    pub fn rebuild(&mut self, activity: &[f64]) {
        let n = self.heap.len();
        for i in (0..n / 2).rev() {
            self.sift_down(i, activity);
        }
    }

    #[inline]
    fn better(&self, a: u32, b: u32, activity: &[f64]) -> bool {
        let (aa, ab) = (activity[a as usize], activity[b as usize]);
        aa > ab || (aa == ab && a < b)
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        let x = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 2;
            let p = self.heap[parent];
            if self.better(x, p, activity) {
                self.heap[i] = p;
                self.pos[p as usize] = i as u32;
                i = parent;
            } else {
                break;
            }
        }
        self.heap[i] = x;
        self.pos[x as usize] = i as u32;
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        let x = self.heap[i];
        let n = self.heap.len();
        loop {
            let left = 2 * i + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let child = if right < n && self.better(self.heap[right], self.heap[left], activity) {
                right
            } else {
                left
            };
            let c = self.heap[child];
            if self.better(c, x, activity) {
                self.heap[i] = c;
                self.pos[c as usize] = i as u32;
                i = child;
            } else {
                break;
            }
        }
        self.heap[i] = x;
        self.pos[x as usize] = i as u32;
    }

    #[cfg(test)]
    fn check_invariants(&self, activity: &[f64]) {
        for i in 1..self.heap.len() {
            let parent = (i - 1) / 2;
            assert!(
                !self.better(self.heap[i], self.heap[parent], activity),
                "heap property violated at {i}"
            );
        }
        for (i, &v) in self.heap.iter().enumerate() {
            assert_eq!(self.pos[v as usize], i as u32, "pos table out of sync");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![0.5, 3.0, 1.0, 2.0];
        let mut h = ActivityHeap::new();
        for i in 0..4 {
            h.insert(Var::new(i), &activity);
        }
        h.check_invariants(&activity);
        let order: Vec<usize> = std::iter::from_fn(|| h.pop(&activity))
            .map(|v| v.index())
            .collect();
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let activity = vec![1.0, 2.0];
        let mut h = ActivityHeap::new();
        h.insert(Var::new(0), &activity);
        h.insert(Var::new(0), &activity);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn bump_reorders() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut h = ActivityHeap::new();
        for i in 0..3 {
            h.insert(Var::new(i), &activity);
        }
        activity[0] = 10.0;
        h.bumped(Var::new(0), &activity);
        h.check_invariants(&activity);
        assert_eq!(h.pop(&activity), Some(Var::new(0)));
    }

    #[test]
    fn ties_break_by_lower_index() {
        let activity = vec![1.0; 5];
        let mut h = ActivityHeap::new();
        for i in (0..5).rev() {
            h.insert(Var::new(i), &activity);
        }
        let order: Vec<usize> = std::iter::from_fn(|| h.pop(&activity))
            .map(|v| v.index())
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn interleaved_ops_keep_invariants() {
        // Deterministic pseudo-random stress of insert/pop/bump.
        let mut activity = vec![0.0f64; 64];
        let mut h = ActivityHeap::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2000 {
            let v = Var::new((next() % 64) as u32);
            match next() % 3 {
                0 => h.insert(v, &activity),
                1 => {
                    activity[v.index()] += (next() % 100) as f64;
                    h.bumped(v, &activity);
                }
                _ => {
                    h.pop(&activity);
                }
            }
            h.check_invariants(&activity);
        }
    }
}
