//! The CDCL(T) search engine.
//!
//! A MiniSat-lineage conflict-driven clause-learning solver with:
//!
//! - two-watched-literal propagation with blocker literals;
//! - first-UIP conflict analysis with recursive clause minimization;
//! - VSIDS variable activities with phase saving;
//! - LBD-aware learnt-clause database reduction and arena compaction;
//! - Luby restarts;
//! - a background [`Theory`] (DPLL(T)) asserted eagerly in trail order; and
//! - a pluggable [`DecisionGuide`] consulted *before* VSIDS — the hook used
//!   by the interference-relation decision order of the paper.

use std::sync::Arc;

use zpre_obs::{Event, EventSink};

use crate::clause::{CRef, ClauseDb};
use crate::guide::{AssignView, DecisionGuide, NoGuide};
use crate::lit::{LBool, Lit, Var};
use crate::proof::Proof;
use crate::share::{MemberEndpoint, ShareClass, ShareSpec, SharedClause};
use crate::stats::{Budget, ExhaustionReason, Stats};
use crate::theory::{NoTheory, Theory, TheoryOut};

/// Final verdict of a [`Solver::solve`] run.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying, theory-consistent assignment was found.
    Sat,
    /// The formula is unsatisfiable.
    Unsat,
    /// The budget (conflicts or wall clock) was exhausted.
    Unknown,
}

/// Why a variable is assigned.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Reason {
    /// Not assigned, or a decision.
    None,
    /// Implied by a clause (the implied literal is at position 0).
    Clause(CRef),
    /// Implied by the theory; explanation fetched lazily via
    /// [`Theory::explain`].
    Theory,
}

#[derive(Copy, Clone)]
struct Watcher {
    cref: CRef,
    blocker: Lit,
}

/// A conflict found during propagation, as a clause of false literals.
struct Conflict {
    /// All literals are false under the current assignment.
    lits: Vec<Lit>,
    /// `true` when the theory raised it (the learnt clause then ships to
    /// the share pool under the theory class, not the generic LBD cap).
    from_theory: bool,
}

/// Outcome of a decision attempt.
enum DecideOutcome {
    /// A new decision was enqueued.
    Decided,
    /// Every variable is assigned.
    AllAssigned,
    /// An assumption is falsified; the core has been computed.
    AssumptionConflict,
}

const RESCALE_LIMIT: f64 = 1e100;
const CLA_RESCALE_LIMIT: f32 = 1e20;

/// Restart scheduling policy.
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum RestartStrategy {
    /// Luby sequence times the base interval (the default).
    Luby,
    /// Geometric growth: interval multiplied by `factor` per restart.
    Geometric {
        /// Growth factor (> 1.0).
        factor: f64,
    },
    /// Never restart.
    Never,
}

/// Tunable solver parameters.
#[derive(Copy, Clone, Debug)]
pub struct SolverConfig {
    /// VSIDS variable-activity decay (0 < d < 1); smaller = more aggressive.
    pub var_decay: f64,
    /// Learnt-clause activity decay.
    pub clause_decay: f32,
    /// Restart policy.
    pub restart: RestartStrategy,
    /// Conflicts before the first restart.
    pub restart_base: u64,
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            var_decay: 0.95,
            clause_decay: 0.999,
            restart: RestartStrategy::Luby,
            restart_base: 100,
        }
    }
}

/// The CDCL(T) solver, parameterized by a background theory `T` and a
/// decision guide `G`.
pub struct Solver<T: Theory = NoTheory, G: DecisionGuide = NoGuide> {
    /// The background theory (public: clients register atoms on it).
    pub theory: T,
    /// The decision guide (public: clients may inspect/replace it).
    pub guide: G,

    db: ClauseDb,
    watches: Vec<Vec<Watcher>>,

    assigns: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<Reason>,
    phase: Vec<bool>,
    is_theory_atom: Vec<bool>,

    trail: Vec<Lit>,
    trail_lim: Vec<u32>,
    qhead: usize,

    activity: Vec<f64>,
    var_inc: f64,
    order: crate::heap::ActivityHeap,
    cla_inc: f32,

    ok: bool,
    model: Vec<LBool>,

    // analyze scratch
    seen: Vec<u8>,
    analyze_toclear: Vec<Lit>,
    analyze_stack: Vec<Lit>,
    lbd_stamp: Vec<u32>,
    lbd_counter: u32,

    max_learnts: f64,
    restart_count: u64,

    stats: Stats,
    budget: Budget,
    /// Why the last `solve` call returned `Unknown`, when it did.
    exhaustion: Option<ExhaustionReason>,
    theory_out: TheoryOut,
    proof: Option<Proof>,
    /// Verbatim copy of every clause passed to [`Self::add_clause`] while
    /// proof logging is enabled — the CNF a proof checker must start from.
    logged_cnf: Vec<Vec<Lit>>,
    /// Subset of the last call's assumptions responsible for `Unsat`.
    assumption_core: Vec<Lit>,
    config: SolverConfig,
    /// Structured-event receiver; `None` (the default) keeps every emission
    /// site down to a single branch.
    sink: Option<Arc<dyn EventSink>>,
    /// Portfolio clause-sharing endpoint (`None` outside `--share` runs).
    share: Option<MemberEndpoint>,
    /// Per-variable interference flag: clauses touching a hot variable
    /// export under the relaxed `lbd_max_hot` cap.
    share_hot_var: Vec<bool>,
    /// Set by the budget stride poll when the pool holds unread clauses;
    /// nudges the next restart forward so imports land promptly.
    share_pull_due: bool,
    /// `sh_*` counter values at the last `Event::Share` emission, so each
    /// emission carries deltas.
    share_reported: Stats,
    /// Debug-mode RUP spot-check budget per solve call.
    #[cfg(debug_assertions)]
    share_probes: u32,
}

impl Solver<NoTheory, NoGuide> {
    /// Creates a plain SAT solver (no theory, no guide).
    pub fn new() -> Self {
        Solver::with_parts(NoTheory, NoGuide)
    }
}

impl Default for Solver<NoTheory, NoGuide> {
    fn default() -> Self {
        Solver::new()
    }
}

impl<T: Theory, G: DecisionGuide> Solver<T, G> {
    /// Creates a solver around a theory and a decision guide.
    pub fn with_parts(theory: T, guide: G) -> Self {
        Solver {
            theory,
            guide,
            db: ClauseDb::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            phase: Vec::new(),
            is_theory_atom: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            order: crate::heap::ActivityHeap::new(),
            cla_inc: 1.0,
            ok: true,
            model: Vec::new(),
            seen: Vec::new(),
            analyze_toclear: Vec::new(),
            analyze_stack: Vec::new(),
            lbd_stamp: Vec::new(),
            lbd_counter: 0,
            max_learnts: 0.0,
            restart_count: 0,
            stats: Stats::default(),
            budget: Budget::default(),
            exhaustion: None,
            theory_out: TheoryOut::default(),
            proof: None,
            logged_cnf: Vec::new(),
            assumption_core: Vec::new(),
            config: SolverConfig::default(),
            sink: None,
            share: None,
            share_hot_var: Vec::new(),
            share_pull_due: false,
            share_reported: Stats::default(),
            #[cfg(debug_assertions)]
            share_probes: 0,
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(Reason::None);
        self.phase.push(false);
        self.is_theory_atom.push(false);
        self.activity.push(0.0);
        self.seen.push(0);
        self.lbd_stamp.push(0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.insert(v, &self.activity);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Marks `v` so its assignments are forwarded to the theory.
    pub fn mark_theory_var(&mut self, v: Var) {
        self.is_theory_atom[v.index()] = true;
    }

    /// Sets the solving budget (conflict cap / deadline).
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Installs (or removes) a structured-event sink. With a sink in place
    /// the solver streams decisions, conflicts, restarts, and learnt-DB
    /// reductions to it; without one, each emission site is a single
    /// never-taken branch.
    pub fn set_event_sink(&mut self, sink: Option<Arc<dyn EventSink>>) {
        self.sink = sink;
    }

    #[inline]
    fn emit(&self, ev: Event) {
        if let Some(s) = &self.sink {
            s.emit(ev);
        }
    }

    /// Joins a portfolio share pool: learnt clauses and theory cycle lemmas
    /// export at conflict time, foreign clauses import at restart-to-root
    /// boundaries. Also asks the theory to start capturing shareable lemmas.
    pub fn set_share(&mut self, spec: &ShareSpec) {
        self.share = Some(spec.endpoint());
        self.theory.enable_share_capture();
    }

    /// Flags interference-class (external-RF) variables: clauses touching
    /// one export under the relaxed `lbd_max_hot` cap.
    pub fn set_share_hot_vars(&mut self, hot: &[Var]) {
        for &v in hot {
            if self.share_hot_var.len() <= v.index() {
                self.share_hot_var.resize(v.index() + 1, false);
            }
            self.share_hot_var[v.index()] = true;
        }
    }

    /// The live share endpoint, when sharing is enabled.
    pub fn share_endpoint(&self) -> Option<&MemberEndpoint> {
        self.share.as_ref()
    }

    /// Offers the freshly learnt clause and any captured theory lemmas to
    /// the share outbox. Called at conflict time; never touches the pool
    /// lock (the outbox publishes at the next exchange).
    fn share_export(&mut self, learnt: &[Lit], lbd: u32, from_theory: bool) {
        let Some(mut ep) = self.share.take() else {
            return;
        };
        // Theory cycle lemmas carry their cycle justification, so they stay
        // certifiable on the importing side and bypass the LBD caps.
        let mut lemmas = Vec::new();
        self.theory.drain_shared_lemmas(&mut lemmas);
        for (clause, cycle) in lemmas {
            if ep.offer(ShareClass::Theory, 0, &clause, Some(cycle)) {
                self.stats.sh_exported += 1;
                self.stats.sh_exported_theory += 1;
            } else {
                self.stats.sh_dropped += 1;
            }
        }
        // Learnt clauses are RUP only against *this* member's clause DB, so
        // under proof logging (--certify) they are not exportable: importers
        // could not justify them in a replayable proof. Cycle lemmas above
        // still ship — they re-justify from the journal.
        if self.proof.is_none() && !learnt.is_empty() {
            let class = if from_theory {
                ShareClass::Theory
            } else if learnt.iter().any(|l| {
                self.share_hot_var
                    .get(l.var().index())
                    .copied()
                    .unwrap_or(false)
            }) {
                ShareClass::Interference
            } else {
                ShareClass::Generic
            };
            if ep.offer(class, lbd, learnt, None) {
                self.stats.sh_exported += 1;
                match class {
                    ShareClass::Theory => self.stats.sh_exported_theory += 1,
                    ShareClass::Interference => self.stats.sh_exported_rf += 1,
                    ShareClass::Generic => {}
                }
            } else {
                self.stats.sh_dropped += 1;
            }
        }
        self.share = Some(ep);
    }

    /// Publishes the outbox and attaches every unseen foreign clause. Must
    /// run at decision level 0 (restart-to-root boundary or solve entry) so
    /// units enqueue on the root trail and attachments are trail-safe.
    /// Returns `Some(Unsat)` when an import closes the formula at the root.
    fn share_exchange(&mut self) -> Option<SolveResult> {
        let mut ep = self.share.take()?;
        debug_assert_eq!(self.decision_level(), 0);
        self.share_pull_due = false;
        ep.flush();
        let mut incoming = Vec::new();
        self.stats.sh_dropped += ep.drain_imports(&mut incoming);
        self.share = Some(ep);
        let mut result = None;
        for c in incoming {
            // All members blast one SSA instance, so variable numberings
            // agree; the guard is defensive against misconfigured pools.
            if c.lits.iter().any(|l| l.var().index() >= self.num_vars()) {
                self.stats.sh_dropped += 1;
                continue;
            }
            // Under proof logging only journal-justified cycle lemmas can
            // enter: anything else would leave a hole in the replayed proof.
            if self.proof.is_some() && c.cycle.is_none() {
                self.stats.sh_dropped += 1;
                continue;
            }
            if self.import_clause(&c) {
                self.stats.sh_imported += 1;
            } else {
                self.stats.sh_dropped += 1;
            }
            if !self.ok {
                result = Some(SolveResult::Unsat);
                break;
            }
        }
        self.emit_share_deltas();
        result
    }

    /// Normalizes and attaches one imported clause at the root level, the
    /// same way [`Self::add_clause`] treats input clauses. Returns `false`
    /// if the clause was dropped (tautology or already satisfied at root).
    /// Sets `ok = false` when the import empties at the root.
    fn import_clause(&mut self, shared: &SharedClause) -> bool {
        if self.proof.is_some() {
            // Log the lemma verbatim and hand its justification to the
            // theory journal: `certify_safe` then replays the shared lemma
            // exactly like a locally derived one.
            self.proof_lemma(&shared.lits);
            let cycle = shared.cycle.as_ref().expect("gated by share_exchange");
            self.theory.absorb_shared_lemma(&shared.lits, cycle);
        }
        let mut c = shared.lits.clone();
        c.sort_unstable();
        c.dedup();
        let mut w = 0;
        for i in 0..c.len() {
            let l = c[i];
            if i + 1 < c.len() && c[i + 1] == !l {
                return false; // tautology
            }
            match self.value(l) {
                LBool::True => return false, // satisfied at root
                LBool::False => {}           // drop
                LBool::Undef => {
                    c[w] = l;
                    w += 1;
                }
            }
        }
        c.truncate(w);
        if c.len() < shared.lits.len() {
            // Root-level strengthening: RUP from the logged lemma + units.
            self.proof_add(&c.clone());
        }
        #[cfg(debug_assertions)]
        self.rup_spot_check(&c);
        match c.len() {
            0 => {
                if shared.lits.is_empty() {
                    self.proof_add(&[]);
                }
                self.ok = false;
                true
            }
            1 => {
                let ok = self.enqueue(c[0], Reason::None);
                debug_assert!(ok);
                true
            }
            _ => {
                let cr = self.db.add(&c, true);
                // Theory lemmas arrive without an LBD; length is the
                // conservative stand-in (avoids glue-keeping them all).
                let lbd = if shared.lbd == 0 {
                    c.len() as u32
                } else {
                    shared.lbd
                };
                self.db.set_lbd(cr, lbd);
                self.db.set_activity(cr, self.cla_inc);
                self.db.mark_imported(cr);
                self.attach(cr);
                true
            }
        }
    }

    /// Debug-only soundness probe: asserts the negation of an imported
    /// clause on a throwaway decision level and propagates once. A conflict
    /// confirms the clause is RUP against this member's database; no
    /// conflict is inconclusive (the clause is still a consequence of the
    /// shared instance, just not unit-derivable locally). Either way the
    /// probe must leave no trace on the search state.
    #[cfg(debug_assertions)]
    fn rup_spot_check(&mut self, clause: &[Lit]) {
        const MAX_PROBES: u32 = 8;
        if self.proof.is_some() || self.share_probes >= MAX_PROBES {
            return; // a probe would interleave steps into the DRAT log
        }
        // Probing with unpropagated root units pending could swallow a real
        // root conflict inside the probe's propagate; skip in that case.
        if self.qhead != self.trail.len() || clause.is_empty() {
            return;
        }
        if clause.iter().any(|&l| self.value(l).is_true()) {
            return; // root-satisfied: trivially consistent
        }
        self.share_probes += 1;
        let saved_stats = self.stats;
        self.new_decision_level();
        let mut conflict = false;
        for &l in clause {
            if self.value(l).is_undef() && !self.enqueue(!l, Reason::None) {
                conflict = true;
                break;
            }
        }
        if !conflict {
            conflict = self.propagate().is_some();
        }
        let _ = conflict;
        self.cancel_until(0);
        self.stats = saved_stats;
        debug_assert_eq!(self.decision_level(), 0);
    }

    /// Emits the `sh_*` counter movement since the last emission as one
    /// counter-only [`Event::Share`].
    fn emit_share_deltas(&mut self) {
        if self.sink.is_none() {
            return;
        }
        let s = self.stats;
        let r = self.share_reported;
        if s.sh_exported == r.sh_exported
            && s.sh_imported == r.sh_imported
            && s.sh_dropped == r.sh_dropped
            && s.sh_import_hits == r.sh_import_hits
        {
            return;
        }
        self.emit(Event::Share {
            exported: s.sh_exported - r.sh_exported,
            exported_theory: s.sh_exported_theory - r.sh_exported_theory,
            exported_rf: s.sh_exported_rf - r.sh_exported_rf,
            imported: s.sh_imported - r.sh_imported,
            dropped: s.sh_dropped - r.sh_dropped,
            import_hits: s.sh_import_hits - r.sh_import_hits,
        });
        self.share_reported = s;
    }

    /// End-of-solve share housekeeping: drain any theory lemmas captured
    /// since the last conflict, publish the outbox (the winner's final
    /// lemmas still reach slower members), and flush counter deltas so
    /// `sh_import_hits` reaches the recorder even if this member never
    /// restarted after its last import.
    fn share_finish(&mut self) {
        if self.share.is_none() {
            return;
        }
        self.share_export(&[], 0, false);
        if let Some(ep) = self.share.as_mut() {
            ep.flush();
        }
        self.emit_share_deltas();
    }

    /// Overrides the tunable parameters (decays, restart policy). Call
    /// before `solve`.
    pub fn set_config(&mut self, config: SolverConfig) {
        assert!(config.var_decay > 0.0 && config.var_decay < 1.0);
        assert!(config.clause_decay > 0.0 && config.clause_decay < 1.0);
        if let RestartStrategy::Geometric { factor } = config.restart {
            assert!(factor > 1.0, "geometric factor must exceed 1");
        }
        self.config = config;
    }

    /// The current configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    fn restart_limit(&self) -> u64 {
        match self.config.restart {
            RestartStrategy::Luby => Self::luby(self.restart_count) * self.config.restart_base,
            RestartStrategy::Geometric { factor } => {
                (self.config.restart_base as f64 * factor.powi(self.restart_count as i32)) as u64
            }
            RestartStrategy::Never => u64::MAX,
        }
    }

    /// Enables DRAT proof logging. Clauses learnt from theory conflicts are
    /// recorded as [`crate::proof::ProofStep::Lemma`] steps together with
    /// the input CNF (see [`Self::logged_cnf`]); validate such proofs with
    /// [`crate::proof::check_with_lemmas`] and a theory-side re-checker.
    pub fn enable_proof_logging(&mut self) {
        self.proof = Some(Proof::default());
        self.logged_cnf.clear();
    }

    /// Takes the recorded proof, leaving logging enabled with a fresh log.
    pub fn take_proof(&mut self) -> Option<Proof> {
        self.proof
            .take()
            .inspect(|_| self.proof = Some(Proof::default()))
    }

    /// Every clause added while proof logging was enabled, verbatim — the
    /// CNF against which the recorded proof should be checked.
    pub fn logged_cnf(&self) -> &[Vec<Lit>] {
        &self.logged_cnf
    }

    fn proof_add(&mut self, lits: &[Lit]) {
        if let Some(p) = &mut self.proof {
            p.add(lits);
        }
    }

    fn proof_delete(&mut self, lits: &[Lit]) {
        if let Some(p) = &mut self.proof {
            p.delete(lits);
        }
    }

    fn proof_lemma(&mut self, lits: &[Lit]) {
        if let Some(p) = &mut self.proof {
            p.lemma(lits);
        }
    }

    /// Search statistics so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Current learnt-clause database cap (0 before the first solve). The
    /// cap is rescaled against the problem size at every solve entry, so on
    /// an incremental sweep it tracks clause growth monotonically.
    pub fn learnt_cap(&self) -> f64 {
        self.max_learnts
    }

    /// Why the last `solve`/`solve_with_assumptions` call returned
    /// [`SolveResult::Unknown`]; `None` after a definitive answer.
    pub fn exhaustion(&self) -> Option<ExhaustionReason> {
        self.exhaustion
    }

    /// O(1) estimate of the solver's resident footprint in bytes: the clause
    /// arena (problem + learnt clauses, u32 words), the trail, and the
    /// per-variable bookkeeping (assignment, level, reason, phase, activity,
    /// watch lists, heap slot — ~64 bytes amortized per variable). This is
    /// deliberately an estimate, not an allocator query: it is cheap enough
    /// to consult on the periodic budget stride and deterministic across
    /// platforms, which keeps memory-cap exhaustion reproducible.
    pub fn memory_bytes(&self) -> u64 {
        let arena = self.db.arena_len() as u64 * 4;
        let trail = self.trail.capacity() as u64 * 4;
        let per_var = self.assigns.len() as u64 * 64;
        // Each clause holds two watchers; approximate their storage without
        // walking the watch lists (which would make the stride poll O(vars)).
        let watchers = (self.db.num_problem() + self.db.num_learnt()) as u64
            * 2
            * std::mem::size_of::<Watcher>() as u64;
        // Under `--share`, the member's outbox/dedup set plus the broadcast
        // ring (imported clauses themselves live in the arena, counted
        // above) — keeps the batch harness's memory cap honest.
        let share = self.share.as_ref().map_or(0, |ep| ep.memory_bytes() as u64);
        arena + trail + per_var + watchers + share
    }

    /// Current value of a literal.
    #[inline]
    pub fn value(&self, lit: Lit) -> LBool {
        self.assigns[lit.var().index()].xor_sign(!lit.sign())
    }

    /// Current value of a variable.
    #[inline]
    pub fn var_value(&self, v: Var) -> LBool {
        self.assigns[v.index()]
    }

    /// Value of a literal in the model of the last `Sat` answer.
    pub fn model_value(&self, lit: Lit) -> LBool {
        self.model[lit.var().index()].xor_sign(!lit.sign())
    }

    /// Value of a variable in the model of the last `Sat` answer.
    pub fn model_var_value(&self, v: Var) -> LBool {
        self.model[v.index()]
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause. Returns `false` if the formula became trivially
    /// unsatisfiable (conflicting units at the root level).
    ///
    /// Must be called at decision level 0 (i.e. before `solve`, or between
    /// incremental solves — this solver is single-shot per `solve` call but
    /// clauses may be added after a result to continue).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0, "clauses must be added at level 0");
        if !self.ok {
            return false;
        }
        if self.proof.is_some() {
            self.logged_cnf.push(lits.to_vec());
        }
        // Normalize: sort, dedup, drop false lits, detect tautology/sat.
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort_unstable();
        c.dedup();
        let mut w = 0;
        for i in 0..c.len() {
            let l = c[i];
            if i + 1 < c.len() && c[i + 1] == !l {
                return true; // tautology: v ∨ ¬v
            }
            match self.value(l) {
                LBool::True => return true, // satisfied at root
                LBool::False => {}          // drop
                LBool::Undef => {
                    c[w] = l;
                    w += 1;
                }
            }
        }
        c.truncate(w);
        // Record root-level strengthenings (dropped false/duplicate
        // literals yield a RUP-derivable subset of the input clause).
        if c.len() < lits.len() {
            self.proof_add(&c.clone());
        }
        match c.len() {
            0 => {
                if lits.is_empty() {
                    // Not covered by the strengthening emission above.
                    self.proof_add(&[]);
                }
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(c[0], Reason::None);
                true
            }
            _ => {
                let cr = self.db.add(&c, false);
                self.attach(cr);
                true
            }
        }
    }

    fn attach(&mut self, cr: CRef) {
        let lits = self.db.lits(cr);
        let (w0, w1) = (lits[0], lits[1]);
        self.watches[(!w0).code()].push(Watcher {
            cref: cr,
            blocker: w1,
        });
        self.watches[(!w1).code()].push(Watcher {
            cref: cr,
            blocker: w0,
        });
    }

    /// Assigns `lit` true. Returns `false` if it is already false.
    fn enqueue(&mut self, lit: Lit, reason: Reason) -> bool {
        match self.value(lit) {
            LBool::True => true,
            LBool::False => false,
            LBool::Undef => {
                let v = lit.var().index();
                self.assigns[v] = LBool::from_bool(lit.sign());
                self.level[v] = self.decision_level();
                self.reason[v] = reason;
                self.phase[v] = lit.sign();
                if !matches!(reason, Reason::None) {
                    self.stats.propagations += 1;
                }
                self.trail.push(lit);
                true
            }
        }
    }

    /// Unit propagation + eager theory assertion, to fixpoint.
    fn propagate(&mut self) -> Option<Conflict> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;

            if let Some(confl) = self.propagate_bool(p) {
                self.qhead = self.trail.len();
                return Some(confl);
            }
            if self.is_theory_atom[p.var().index()] {
                if let Some(confl) = self.assert_to_theory(p) {
                    self.qhead = self.trail.len();
                    return Some(confl);
                }
            }
        }
        None
    }

    /// Processes the Boolean watch list of the newly-true literal `p`.
    fn propagate_bool(&mut self, p: Lit) -> Option<Conflict> {
        let mut ws = std::mem::take(&mut self.watches[p.code()]);
        let mut kept = 0usize;
        let mut conflict = None;
        let mut i = 0usize;
        'watchers: while i < ws.len() {
            let w = ws[i];
            i += 1;
            // Fast path: blocker already true.
            if self.value(w.blocker).is_true() {
                ws[kept] = w;
                kept += 1;
                continue;
            }
            let cr = w.cref;
            // Make sure the false watched literal (!p) is at position 1.
            {
                let lits = self.db.lits_mut(cr);
                if lits[0] == !p {
                    lits.swap(0, 1);
                }
                debug_assert_eq!(lits[1], !p);
            }
            let first = self.db.lits(cr)[0];
            if first != w.blocker && self.value(first).is_true() {
                // Satisfied; re-watch with the true literal as blocker.
                ws[kept] = Watcher {
                    cref: cr,
                    blocker: first,
                };
                kept += 1;
                continue;
            }
            // Look for a replacement watch among lits[2..].
            let len = self.db.len(cr);
            for k in 2..len {
                let lk = self.db.lits(cr)[k];
                if !self.value(lk).is_false() {
                    self.db.lits_mut(cr).swap(1, k);
                    self.watches[(!lk).code()].push(Watcher {
                        cref: cr,
                        blocker: first,
                    });
                    continue 'watchers;
                }
            }
            // No replacement: clause is unit or conflicting.
            ws[kept] = Watcher {
                cref: cr,
                blocker: first,
            };
            kept += 1;
            if self.value(first).is_false() {
                // Conflict: copy remaining watchers back before reporting.
                if self.db.is_imported(cr) {
                    self.stats.sh_import_hits += 1;
                }
                conflict = Some(Conflict {
                    lits: self.db.lits(cr).to_vec(),
                    from_theory: false,
                });
                break;
            }
            if self.db.is_imported(cr) {
                self.stats.sh_import_hits += 1;
            }
            let ok = self.enqueue(first, Reason::Clause(cr));
            debug_assert!(ok);
        }
        // Retain unprocessed watchers (after a conflict) and survivors.
        ws.copy_within(i.., kept);
        ws.truncate(kept + ws.len() - i);
        self.watches[p.code()] = ws;
        conflict
    }

    /// Forwards `p` to the theory and integrates its reaction.
    fn assert_to_theory(&mut self, p: Lit) -> Option<Conflict> {
        let mut out = std::mem::take(&mut self.theory_out);
        out.clear();
        let result = self.theory.assert_lit(p, &mut out);
        let confl = match result {
            Err(tc) => {
                self.stats.theory_conflicts += 1;
                let lits: Vec<Lit> = tc.lits.iter().map(|&l| !l).collect();
                self.proof_lemma(&lits);
                Some(Conflict {
                    lits,
                    from_theory: true,
                })
            }
            Ok(()) => {
                let mut found = None;
                for &q in &out.propagations {
                    match self.value(q) {
                        LBool::True => {}
                        LBool::Undef => {
                            self.stats.theory_propagations += 1;
                            // Record the explanation clause eagerly: a
                            // level-0 theory propagation feeding a level-0
                            // conflict never reaches `analyze`, so logging
                            // lazily would leave a hole in the proof.
                            if self.proof.is_some() {
                                let ants = self.theory.explain(q);
                                let mut lits = vec![q];
                                lits.extend(ants.iter().map(|&a| !a));
                                self.proof_lemma(&lits);
                            }
                            let ok = self.enqueue(q, Reason::Theory);
                            debug_assert!(ok);
                        }
                        LBool::False => {
                            // Propagation of a false literal: the explanation
                            // clause (q ∨ ¬a₁ ∨ … ∨ ¬aₖ) is falsified.
                            self.stats.theory_conflicts += 1;
                            let ants = self.theory.explain(q);
                            let mut lits = vec![q];
                            lits.extend(ants.iter().map(|&a| !a));
                            self.proof_lemma(&lits);
                            found = Some(Conflict {
                                lits,
                                from_theory: true,
                            });
                            break;
                        }
                    }
                }
                found
            }
        };
        self.theory_out = out;
        confl
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len() as u32);
        self.theory.new_level();
        self.guide.on_new_level();
    }

    fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let lim = self.trail_lim[target as usize] as usize;
        for i in (lim..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var();
            self.assigns[v.index()] = LBool::Undef;
            self.reason[v.index()] = Reason::None;
            // phase[] keeps the last assigned polarity (phase saving).
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(target as usize);
        self.qhead = lim;
        self.theory.backtrack_to(target);
        self.guide.on_backtrack(target);
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bumped(v, &self.activity);
    }

    fn decay_var_activity(&mut self) {
        self.var_inc /= self.config.var_decay;
    }

    fn bump_clause(&mut self, cr: CRef) {
        let a = self.db.activity(cr) + self.cla_inc;
        self.db.set_activity(cr, a);
        if a > CLA_RESCALE_LIMIT {
            for c in self.db.iter().collect::<Vec<_>>() {
                if self.db.is_learnt(c) {
                    let ca = self.db.activity(c);
                    self.db.set_activity(c, ca * 1e-20);
                }
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn decay_clause_activity(&mut self) {
        self.cla_inc /= self.config.clause_decay;
    }

    /// The literals of the reason for `p` being true, *excluding* `p`
    /// (they are all currently false). Bumps clause activity as a side
    /// effect, as in MiniSat.
    fn reason_lits(&mut self, p: Lit, buf: &mut Vec<Lit>) {
        buf.clear();
        match self.reason[p.var().index()] {
            Reason::None => {}
            Reason::Clause(cr) => {
                if self.db.is_learnt(cr) {
                    self.bump_clause(cr);
                }
                let lits = self.db.lits(cr);
                debug_assert_eq!(lits[0], p, "implied literal must sit at position 0");
                buf.extend_from_slice(&lits[1..]);
            }
            Reason::Theory => {
                let ants = self.theory.explain(p);
                buf.extend(ants.iter().map(|&a| !a));
            }
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first), the backjump level, and the clause LBD.
    fn analyze(&mut self, conflict: Conflict) -> (Vec<Lit>, u32, u32) {
        let current = self.decision_level();
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // slot 0 = UIP
        let mut counter = 0u32;
        let mut index = self.trail.len();
        let mut clause: Vec<Lit> = conflict.lits;
        let mut reason_buf: Vec<Lit> = Vec::new();
        let uip;

        loop {
            #[allow(clippy::needless_range_loop)] // `clause` is swapped below
            for i in 0..clause.len() {
                let q = clause[i];
                debug_assert!(self.value(q).is_false());
                let v = q.var();
                if self.seen[v.index()] == 0 && self.level[v.index()] > 0 {
                    self.seen[v.index()] = 1;
                    self.analyze_toclear.push(q);
                    self.bump_var(v);
                    if self.level[v.index()] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            debug_assert!(counter > 0, "conflict must involve the current level");
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] != 0 {
                    break;
                }
            }
            let pl = self.trail[index];
            // Consume pl: resolve it away (MiniSat clears its mark here so
            // that clause minimization sees exactly the learnt-clause vars).
            self.seen[pl.var().index()] = 0;
            counter -= 1;
            if counter == 0 {
                uip = pl;
                break;
            }
            self.reason_lits(pl, &mut reason_buf);
            std::mem::swap(&mut clause, &mut reason_buf);
        }
        learnt[0] = !uip;

        // Recursive minimization of the non-asserting literals.
        let abstract_levels = learnt[1..].iter().fold(0u32, |acc, l| {
            acc | Self::abstract_level(self.level[l.var().index()])
        });
        let mut j = 1;
        for i in 1..learnt.len() {
            let l = learnt[i];
            let keep = match self.reason[l.var().index()] {
                Reason::None => true,
                _ => !self.lit_redundant(l, abstract_levels),
            };
            if keep {
                learnt[j] = l;
                j += 1;
            } else {
                self.stats.minimized_lits += 1;
            }
        }
        learnt.truncate(j);

        // Find backjump level = max level among learnt[1..]; move it to slot 1.
        let mut back_level = 0;
        if learnt.len() > 1 {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            back_level = self.level[learnt[1].var().index()];
        }

        // LBD: number of distinct decision levels in the learnt clause.
        self.lbd_counter += 1;
        let stamp = self.lbd_counter;
        let mut lbd = 0u32;
        for &l in &learnt {
            let lv = self.level[l.var().index()] as usize;
            if self.lbd_stamp.len() <= lv {
                self.lbd_stamp.resize(lv + 1, 0);
            }
            if self.lbd_stamp[lv] != stamp {
                self.lbd_stamp[lv] = stamp;
                lbd += 1;
            }
        }

        // Clear the seen[] marks.
        for &l in &self.analyze_toclear {
            self.seen[l.var().index()] = 0;
        }
        self.analyze_toclear.clear();

        (learnt, back_level, lbd)
    }

    #[inline]
    fn abstract_level(level: u32) -> u32 {
        1 << (level & 31)
    }

    /// MiniSat's `litRedundant`: can `l` be removed from the learnt clause
    /// because it is implied by other marked literals?
    fn lit_redundant(&mut self, l: Lit, abstract_levels: u32) -> bool {
        self.analyze_stack.clear();
        self.analyze_stack.push(l);
        let top = self.analyze_toclear.len();
        let mut reason_buf: Vec<Lit> = Vec::new();
        while let Some(q) = self.analyze_stack.pop() {
            // Stack literals come from clause bodies, so they are false; the
            // reason of the variable implies the *true* literal ¬q.
            debug_assert!(self.value(q).is_false());
            debug_assert!(!matches!(self.reason[q.var().index()], Reason::None));
            self.reason_lits(!q, &mut reason_buf);
            let antecedents = reason_buf.clone();
            for a in antecedents {
                let v = a.var();
                if self.seen[v.index()] == 0 && self.level[v.index()] > 0 {
                    let has_reason = !matches!(self.reason[v.index()], Reason::None);
                    if has_reason
                        && Self::abstract_level(self.level[v.index()]) & abstract_levels != 0
                    {
                        self.seen[v.index()] = 1;
                        self.analyze_stack.push(a);
                        self.analyze_toclear.push(a);
                    } else {
                        for &x in &self.analyze_toclear[top..] {
                            self.seen[x.var().index()] = 0;
                        }
                        self.analyze_toclear.truncate(top);
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Installs a learnt clause and asserts its UIP literal.
    fn record_learnt(&mut self, learnt: Vec<Lit>, lbd: u32) {
        self.proof_add(&learnt);
        self.stats.learnt_clauses += 1;
        self.stats.learnt_literals += learnt.len() as u64;
        if learnt.len() == 1 {
            debug_assert_eq!(self.decision_level(), 0);
            let ok = self.enqueue(learnt[0], Reason::None);
            debug_assert!(ok);
        } else {
            let cr = self.db.add(&learnt, true);
            self.db.set_lbd(cr, lbd);
            self.db.set_activity(cr, self.cla_inc);
            self.attach(cr);
            let ok = self.enqueue(learnt[0], Reason::Clause(cr));
            debug_assert!(ok);
        }
    }

    /// Halves the learnt-clause database, keeping low-LBD and active clauses,
    /// then compacts the arena.
    fn reduce_db(&mut self) {
        self.stats.reductions += 1;
        let mut learnts: Vec<CRef> = self
            .db
            .iter()
            .filter(|&c| self.db.is_learnt(c) && !self.locked(c))
            .collect();
        // Sort worst-first: high LBD, then low activity.
        learnts.sort_by(|&a, &b| {
            self.db.lbd(b).cmp(&self.db.lbd(a)).then(
                self.db
                    .activity(a)
                    .partial_cmp(&self.db.activity(b))
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        let target = learnts.len() / 2;
        let mut removed = 0;
        for &c in learnts.iter() {
            if removed >= target {
                break;
            }
            if self.db.lbd(c) <= 2 {
                continue; // glue clauses are kept forever
            }
            let lits = self.db.lits(c).to_vec();
            self.proof_delete(&lits);
            self.detach(c);
            self.db.delete(c);
            removed += 1;
        }
        // Compact when a third of the arena is garbage.
        if self.db.wasted() * 3 > self.db.arena_len() {
            self.garbage_collect();
        }
        self.emit(Event::Reduction {
            removed: removed as u64,
        });
    }

    fn locked(&self, cr: CRef) -> bool {
        let first = self.db.lits(cr)[0];
        self.value(first).is_true() && self.reason[first.var().index()] == Reason::Clause(cr)
    }

    fn detach(&mut self, cr: CRef) {
        let lits = self.db.lits(cr);
        let (w0, w1) = (lits[0], lits[1]);
        for w in [w0, w1] {
            let list = &mut self.watches[(!w).code()];
            let pos = list
                .iter()
                .position(|x| x.cref == cr)
                .expect("watched clause present in watch list");
            list.swap_remove(pos);
        }
    }

    fn garbage_collect(&mut self) {
        let mut relocs: std::collections::HashMap<CRef, CRef> = std::collections::HashMap::new();
        self.db.collect(|old, new| {
            relocs.insert(old, new);
        });
        for list in &mut self.watches {
            for w in list.iter_mut() {
                w.cref = relocs[&w.cref];
            }
        }
        for r in &mut self.reason {
            if let Reason::Clause(cr) = r {
                if let Some(&n) = relocs.get(cr) {
                    *cr = n;
                } else {
                    // The clause was deleted; this can only happen for
                    // unlocked reasons of unassigned vars — reset defensively.
                    *r = Reason::None;
                }
            }
        }
    }

    /// Picks and enqueues the next decision. Returns `false` when every
    /// variable is assigned. Assumptions (if any) are asserted first, one
    /// decision level each; a falsified assumption aborts the search via
    /// [`Self::analyze_final`].
    fn decide(&mut self, assumptions: &[Lit]) -> DecideOutcome {
        // 0. Pending assumptions take the next decision levels.
        while (self.decision_level() as usize) < assumptions.len() {
            let a = assumptions[self.decision_level() as usize];
            match self.value(a) {
                LBool::True => {
                    // Already implied: open an empty level to keep the
                    // level↔assumption correspondence.
                    self.new_decision_level();
                }
                LBool::False => {
                    self.analyze_final(!a);
                    return DecideOutcome::AssumptionConflict;
                }
                LBool::Undef => {
                    self.stats.decisions += 1;
                    self.new_decision_level();
                    let ok = self.enqueue(a, Reason::None);
                    debug_assert!(ok);
                    self.emit(Event::Decision {
                        var: a.var().index() as u32,
                        level: self.decision_level(),
                        guided: false,
                    });
                    return DecideOutcome::Decided;
                }
            }
        }
        // 1. The guide (the paper's enhanced decide()).
        let guided = self.guide.next_decision(AssignView::new(&self.assigns));
        if let Some(lit) = guided {
            debug_assert!(self.value(lit).is_undef(), "guide returned an assigned var");
            self.stats.decisions += 1;
            self.stats.guided_decisions += 1;
            self.new_decision_level();
            let ok = self.enqueue(lit, Reason::None);
            debug_assert!(ok);
            self.emit(Event::Decision {
                var: lit.var().index() as u32,
                level: self.decision_level(),
                guided: true,
            });
            return DecideOutcome::Decided;
        }
        // 2. VSIDS with phase saving.
        while let Some(v) = self.order.pop(&self.activity) {
            if self.var_value(v).is_undef() {
                self.stats.decisions += 1;
                self.new_decision_level();
                let ok = self.enqueue(v.lit(self.phase[v.index()]), Reason::None);
                debug_assert!(ok);
                self.emit(Event::Decision {
                    var: v.index() as u32,
                    level: self.decision_level(),
                    guided: false,
                });
                return DecideOutcome::Decided;
            }
        }
        DecideOutcome::AllAssigned
    }

    /// MiniSat's `analyzeFinal`: computes which assumptions imply the
    /// falsified literal `p`, filling [`Self::assumption_core`] with the
    /// conflicting subset (as the original assumption literals).
    fn analyze_final(&mut self, p: Lit) {
        self.assumption_core.clear();
        self.assumption_core.push(!p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[p.var().index()] = 1;
        let mut reason_buf = Vec::new();
        let start = self.trail_lim[0] as usize;
        for i in (start..self.trail.len()).rev() {
            let q = self.trail[i];
            let x = q.var();
            if self.seen[x.index()] == 0 {
                continue;
            }
            if matches!(self.reason[x.index()], Reason::None) {
                debug_assert!(self.level[x.index()] > 0);
                // A decision inside the assumption prefix is an assumption;
                // it is on the trail in exactly the polarity it was given.
                self.assumption_core.push(q);
            } else {
                self.reason_lits(q, &mut reason_buf);
                for l in reason_buf.clone() {
                    if self.level[l.var().index()] > 0 {
                        self.seen[l.var().index()] = 1;
                    }
                }
            }
            self.seen[x.index()] = 0;
        }
        self.seen[p.var().index()] = 0;
    }

    fn luby(mut x: u64) -> u64 {
        // Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
        let mut size: u64 = 1;
        let mut seq: u32 = 0;
        while size < x + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        while size - 1 != x {
            size = (size - 1) / 2;
            seq -= 1;
            x %= size;
        }
        1u64 << seq
    }

    /// Runs the CDCL(T) search to completion or budget exhaustion.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// The subset of the last `solve_with_assumptions` call's assumptions
    /// that was responsible for an `Unsat` answer (empty when the formula
    /// is unsatisfiable regardless of assumptions).
    pub fn assumption_core(&self) -> &[Lit] {
        &self.assumption_core
    }

    /// Solves under the given assumption literals: they are asserted as the
    /// first decisions and retracted afterwards, enabling incremental use.
    /// On `Unsat`, [`Self::assumption_core`] names a conflicting subset.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        let result = self.solve_with_assumptions_inner(assumptions);
        self.share_finish();
        result
    }

    fn solve_with_assumptions_inner(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.assumption_core.clear();
        self.exhaustion = None;
        #[cfg(debug_assertions)]
        {
            self.share_probes = 0;
        }
        if !self.ok {
            return SolveResult::Unsat;
        }
        self.budget.start();
        // Pick up clauses other members published before this call; with a
        // non-empty assumption prefix imports wait for restart-to-root
        // boundaries (which a prefix never reaches), so sharing is
        // effectively per-call for sweep-style incremental use.
        if assumptions.is_empty() {
            if let Some(r) = self.share_exchange() {
                return r;
            }
        }
        // The conflict budget is per call: measure against a snapshot, not
        // the lifetime counter, or the second incremental solve would start
        // pre-exhausted.
        let conflict_base = self.stats.conflicts;
        // Rescale the learnt-DB cap against the *current* problem size
        // (monotone max): clauses added between incremental calls must not
        // leave a sweep thrashing `reduce_db` with a first-call-sized cap.
        self.max_learnts = self
            .max_learnts
            .max((self.db.num_problem() as f64 / 3.0).max(2000.0));
        let mut conflicts_since_restart: u64 = 0;
        let mut restart_limit = self.restart_limit();
        // Deadlines and cancellation must fire even on conflict-free
        // instances, so poll them every `stride` work units (propagations +
        // decisions), amortizing the `Instant::now()` cost. Starting at 0
        // makes a pre-tripped token return before any search happens.
        let mut next_budget_check: u64 = 0;

        loop {
            let work = self.stats.propagations + self.stats.decisions;
            if work >= next_budget_check {
                next_budget_check = work + self.budget.stride();
                if let Some(reason) = self.budget.interrupted_reason() {
                    self.exhaustion = Some(reason);
                    self.cancel_until(0);
                    return SolveResult::Unknown;
                }
                if self.budget.memory_exceeded(self.memory_bytes()) {
                    self.exhaustion = Some(ExhaustionReason::Memory);
                    self.cancel_until(0);
                    return SolveResult::Unknown;
                }
                // One relaxed atomic load: note pending imports so the next
                // restart is pulled forward. Never touches the pool lock.
                if !self.share_pull_due {
                    if let Some(ep) = &self.share {
                        self.share_pull_due = ep.pending();
                    }
                }
            }
            let conflict = match self.propagate() {
                Some(c) => Some(c),
                None => {
                    match self.decide(assumptions) {
                        DecideOutcome::AssumptionConflict => {
                            self.cancel_until(0);
                            return SolveResult::Unsat;
                        }
                        DecideOutcome::Decided => None,
                        DecideOutcome::AllAssigned => {
                            // Complete assignment: theory final check.
                            let mut out = std::mem::take(&mut self.theory_out);
                            out.clear();
                            let r = self.theory.final_check(&mut out);
                            // Eager theories do not propagate in final check.
                            debug_assert!(out.propagations.is_empty());
                            self.theory_out = out;
                            match r {
                                Ok(()) => {
                                    self.model = self.assigns.clone();
                                    self.cancel_until(0);
                                    return SolveResult::Sat;
                                }
                                Err(tc) => {
                                    self.stats.theory_conflicts += 1;
                                    let lits: Vec<Lit> = tc.lits.iter().map(|&l| !l).collect();
                                    self.proof_lemma(&lits);
                                    Some(Conflict {
                                        lits,
                                        from_theory: true,
                                    })
                                }
                            }
                        }
                    }
                }
            };

            match conflict {
                Some(confl) => {
                    self.stats.conflicts += 1;
                    conflicts_since_restart += 1;
                    let conflict_level = self.decision_level();
                    if conflict_level == 0 {
                        self.emit(Event::Conflict { level: 0, lbd: 0 });
                        self.proof_add(&[]);
                        self.ok = false;
                        return SolveResult::Unsat;
                    }
                    let from_theory = confl.from_theory;
                    let (learnt, back_level, lbd) = self.analyze(confl);
                    self.emit(Event::Conflict {
                        level: conflict_level,
                        lbd,
                    });
                    self.cancel_until(back_level);
                    if self.share.is_some() {
                        self.share_export(&learnt, lbd, from_theory);
                    }
                    self.record_learnt(learnt, lbd);
                    self.decay_var_activity();
                    self.decay_clause_activity();
                    if let Some(reason) = self
                        .budget
                        .exhausted_reason(self.stats.conflicts - conflict_base)
                    {
                        self.exhaustion = Some(reason);
                        self.cancel_until(0);
                        return SolveResult::Unknown;
                    }
                }
                None => {
                    // A restart pulled forward by pending imports only pays
                    // off when it reaches the root (prefix 0); hold it back
                    // until the descent has done real work, or constant
                    // import traffic degenerates the restart schedule into
                    // a fixed short fuse and the member thrashes between
                    // root exchanges instead of searching.
                    let share_kick = self.share_pull_due
                        && assumptions.is_empty()
                        && conflicts_since_restart >= restart_limit.clamp(16, 64);
                    if conflicts_since_restart >= restart_limit || share_kick {
                        self.stats.restarts += 1;
                        self.emit(Event::Restart {
                            conflicts: conflicts_since_restart,
                        });
                        self.restart_count += 1;
                        restart_limit = self.restart_limit();
                        conflicts_since_restart = 0;
                        // Restart to the assumption-prefix level (MiniSat
                        // semantics): the prefix stays assigned so the next
                        // descent does not re-decide every assumption.
                        let prefix = (assumptions.len() as u32).min(self.decision_level());
                        self.cancel_until(prefix);
                        self.guide.on_restart();
                        if prefix == 0 {
                            if let Some(r) = self.share_exchange() {
                                return r;
                            }
                        }
                        continue;
                    }
                    // Imported clauses never count against the learnt cap:
                    // importing must not trigger rescales that evict the
                    // member's own learnt clauses (they remain eligible for
                    // reduce_db aging like any learnt clause, though).
                    let own_learnt = self.db.num_learnt() - self.db.num_imported();
                    if own_learnt as f64 >= self.max_learnts {
                        self.max_learnts *= 1.2;
                        self.reduce_db();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::stats::CancelToken;

    fn vars(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn event_sink_mirrors_stats() {
        use zpre_obs::{EventKind, Recorder};
        let rec = Recorder::default();
        let mut s = Solver::new();
        s.set_event_sink(Some(Arc::new(rec.clone())));
        let v = vars(&mut s, 8);
        // A small pigeonhole-ish instance that forces decisions + conflicts.
        for i in 0..4 {
            assert!(s.add_clause(&[v[i].positive(), v[i + 4].positive()]));
            assert!(s.add_clause(&[v[i].negative(), v[i + 4].negative()]));
        }
        assert!(s.add_clause(&[v[0].negative(), v[1].positive()]));
        assert_eq!(s.solve(), SolveResult::Sat);
        let snap = rec.snapshot();
        let stats = s.stats();
        assert_eq!(snap.counters.total_decisions(), stats.decisions);
        assert_eq!(snap.counters.conflicts, stats.conflicts);
        assert_eq!(snap.counters.restarts, stats.restarts);
        assert_eq!(snap.counters.reductions, stats.reductions);
        assert!(snap
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Decision { .. })));
        // Without a sink installed nothing is recorded.
        let rec2 = Recorder::default();
        let mut s2 = Solver::new();
        let v2 = s2.new_var();
        assert!(s2.add_clause(&[v2.positive()]));
        assert_eq!(s2.solve(), SolveResult::Sat);
        assert_eq!(rec2.snapshot().counters.total_decisions(), 0);
    }

    #[test]
    fn single_unit() {
        let mut s = Solver::new();
        let v = s.new_var();
        assert!(s.add_clause(&[v.positive()]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_value(v.positive()).is_true());
    }

    #[test]
    fn conflicting_units_are_unsat() {
        let mut s = Solver::new();
        let v = s.new_var();
        assert!(s.add_clause(&[v.positive()]));
        assert!(!s.add_clause(&[v.negative()]) || s.solve() == SolveResult::Unsat);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn simple_implication_chain() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        // v0, v0→v1, v1→v2, v2→v3
        assert!(s.add_clause(&[v[0].positive()]));
        assert!(s.add_clause(&[v[0].negative(), v[1].positive()]));
        assert!(s.add_clause(&[v[1].negative(), v[2].positive()]));
        assert!(s.add_clause(&[v[2].negative(), v[3].positive()]));
        assert_eq!(s.solve(), SolveResult::Sat);
        for vi in &v {
            assert!(s.model_value(vi.positive()).is_true());
        }
    }

    #[test]
    fn pigeonhole_2_into_1_unsat() {
        // Two pigeons, one hole: p0h0 ∧ p1h0 impossible with at-most-one.
        let mut s = Solver::new();
        let p0 = s.new_var();
        let p1 = s.new_var();
        assert!(s.add_clause(&[p0.positive()]));
        assert!(s.add_clause(&[p1.positive()]));
        assert!(!s.add_clause(&[p0.negative(), p1.negative()]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // PHP(3,2): each pigeon in some hole; no two pigeons share a hole.
        let mut s = Solver::new();
        let n_p = 3;
        let n_h = 2;
        let x: Vec<Vec<Var>> = (0..n_p).map(|_| vars(&mut s, n_h)).collect();
        for p in 0..n_p {
            let clause: Vec<Lit> = (0..n_h).map(|h| x[p][h].positive()).collect();
            assert!(s.add_clause(&clause));
        }
        for h in 0..n_h {
            for p1 in 0..n_p {
                for p2 in p1 + 1..n_p {
                    assert!(s.add_clause(&[x[p1][h].negative(), x[p2][h].negative()]));
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts >= 1);
    }

    #[test]
    fn xor_chain_sat_with_model_check() {
        // x0 ⊕ x1 = 1, x1 ⊕ x2 = 1, x2 ⊕ x0 = 0 — consistent.
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        let xor1 = |s: &mut Solver, a: Var, b: Var| {
            // a ⊕ b = 1  ⇔  (a∨b) ∧ (¬a∨¬b)
            assert!(s.add_clause(&[a.positive(), b.positive()]));
            assert!(s.add_clause(&[a.negative(), b.negative()]));
        };
        let xnor = |s: &mut Solver, a: Var, b: Var| {
            assert!(s.add_clause(&[a.positive(), b.negative()]));
            assert!(s.add_clause(&[a.negative(), b.positive()]));
        };
        xor1(&mut s, v[0], v[1]);
        xor1(&mut s, v[1], v[2]);
        xnor(&mut s, v[2], v[0]);
        assert_eq!(s.solve(), SolveResult::Sat);
        let m: Vec<bool> = v
            .iter()
            .map(|&x| s.model_value(x.positive()).is_true())
            .collect();
        assert!(m[0] != m[1]);
        assert!(m[1] != m[2]);
        assert!(m[2] == m[0]);
    }

    #[test]
    fn xor_cycle_odd_unsat() {
        // x0⊕x1=1, x1⊕x2=1, x2⊕x0=1 has odd parity — unsat.
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        for (a, b) in [(0, 1), (1, 2), (2, 0)] {
            assert!(s.add_clause(&[v[a].positive(), v[b].positive()]));
            assert!(s.add_clause(&[v[a].negative(), v[b].negative()]));
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        assert!(s.add_clause(&[v[0].positive(), v[0].positive()]));
        assert!(s.add_clause(&[v[1].positive(), v[1].negative()])); // tautology
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_value(v[0].positive()).is_true());
    }

    #[test]
    fn budget_conflict_cap_reports_unknown() {
        // PHP(8,7) is hard enough to exceed a 3-conflict budget.
        let mut s = Solver::new();
        let n_p = 8;
        let n_h = 7;
        let x: Vec<Vec<Var>> = (0..n_p).map(|_| vars(&mut s, n_h)).collect();
        for p in 0..n_p {
            let clause: Vec<Lit> = (0..n_h).map(|h| x[p][h].positive()).collect();
            s.add_clause(&clause);
        }
        for h in 0..n_h {
            for p1 in 0..n_p {
                for p2 in p1 + 1..n_p {
                    s.add_clause(&[x[p1][h].negative(), x[p2][h].negative()]);
                }
            }
        }
        s.set_budget(Budget::with_max_conflicts(3));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.exhaustion(), Some(ExhaustionReason::Conflicts));
    }

    #[test]
    fn memory_cap_reports_unknown_with_memory_reason() {
        // PHP(8,7) again, under a cap smaller than the solver's baseline
        // footprint so the very first stride poll trips it. The solver must
        // abort with a structured reason instead of growing without bound.
        let mut s = Solver::new();
        let n_p = 8;
        let n_h = 7;
        let x: Vec<Vec<Var>> = (0..n_p).map(|_| vars(&mut s, n_h)).collect();
        for p in 0..n_p {
            let clause: Vec<Lit> = (0..n_h).map(|h| x[p][h].positive()).collect();
            s.add_clause(&clause);
        }
        for h in 0..n_h {
            for p1 in 0..n_p {
                for p2 in p1 + 1..n_p {
                    s.add_clause(&[x[p1][h].negative(), x[p2][h].negative()]);
                }
            }
        }
        assert!(s.memory_bytes() > 64);
        s.set_budget(Budget::unlimited().with_max_memory(64).with_check_stride(1));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.exhaustion(), Some(ExhaustionReason::Memory));
        // A solvable budget afterwards clears the exhaustion marker.
        s.set_budget(Budget::unlimited());
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert_eq!(s.exhaustion(), None);
    }

    #[test]
    fn cancelled_solve_reports_cancelled_reason() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause(&[v[0].positive(), v[1].positive()]);
        let tok = CancelToken::new();
        tok.cancel();
        s.set_budget(Budget::unlimited().with_cancel(tok).with_check_stride(1));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.exhaustion(), Some(ExhaustionReason::Cancelled));
    }

    #[test]
    fn stats_are_populated() {
        let mut s = Solver::new();
        let v = vars(&mut s, 6);
        for i in 0..5 {
            s.add_clause(&[v[i].negative(), v[i + 1].positive()]);
        }
        s.add_clause(&[v[0].positive()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.stats().propagations >= 5);
        // No conflicts in a Horn chain.
        assert_eq!(s.stats().conflicts, 0);
    }

    #[test]
    fn model_is_cleared_and_reusable_after_more_clauses() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause(&[v[0].positive(), v[1].positive()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        // Forbid the found model and solve again; eventually unsat after
        // forbidding all four assignments.
        for _ in 0..4 {
            let block: Vec<Lit> = v
                .iter()
                .map(|&x| {
                    if s.model_value(x.positive()).is_true() {
                        x.negative()
                    } else {
                        x.positive()
                    }
                })
                .collect();
            if !s.add_clause(&block) {
                break;
            }
            if s.solve() == SolveResult::Unsat {
                break;
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn luby_sequence_prefix() {
        let seq: Vec<u64> = (0..15).map(Solver::<NoTheory, NoGuide>::luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn random_3sat_smoke() {
        // Deterministic pseudo-random 3-SAT instances near the phase
        // transition; verify models of SAT answers.
        let mut state = 0xdeadbeefcafef00du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..30 {
            let n = 20 + (round % 5);
            let m = (n as f64 * 4.2) as usize;
            let mut s = Solver::new();
            let v = vars(&mut s, n);
            let mut clauses = Vec::new();
            let mut ok = true;
            for _ in 0..m {
                let mut c = Vec::new();
                while c.len() < 3 {
                    let vi = (next() % n as u64) as usize;
                    let sign = next() & 1 == 1;
                    let lit = v[vi].lit(sign);
                    if !c.contains(&lit) && !c.contains(&!lit) {
                        c.push(lit);
                    }
                }
                clauses.push(c.clone());
                ok &= s.add_clause(&c);
            }
            let r = if ok { s.solve() } else { SolveResult::Unsat };
            if r == SolveResult::Sat {
                for c in &clauses {
                    assert!(
                        c.iter().any(|&l| s.model_value(l).is_true()),
                        "model violates a clause"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod share_tests {
    use super::*;
    use crate::share::{ShareConfig, SharedPool};

    fn vars(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    fn spec(pool: &Arc<SharedPool>, member: u32) -> ShareSpec {
        ShareSpec {
            pool: Arc::clone(pool),
            member,
            cfg: ShareConfig::default(),
        }
    }

    /// Every watcher must reference a live clause that actually watches the
    /// literal whose list it sits on — the dangling-watcher invariant.
    fn check_watches(s: &Solver) {
        for code in 0..s.watches.len() {
            let watched = !Lit::from_code(code as u32);
            for w in &s.watches[code] {
                assert!(!s.db.is_deleted(w.cref), "watcher on deleted clause");
                let lits = s.db.lits(w.cref);
                assert!(
                    lits[0] == watched || lits[1] == watched,
                    "clause does not watch the literal whose list holds it"
                );
            }
        }
    }

    #[test]
    fn imported_clause_survives_backtracking_and_gc() {
        let pool = SharedPool::new(64);
        let mut exporter = spec(&pool, 0).endpoint();
        let mut s = Solver::new();
        let v = vars(&mut s, 8);
        // xor-ish constraints force decisions, conflicts, and backtracking.
        for i in 0..4 {
            assert!(s.add_clause(&[v[i].positive(), v[i + 4].positive()]));
            assert!(s.add_clause(&[v[i].negative(), v[i + 4].negative()]));
        }
        assert!(exporter.offer(
            ShareClass::Generic,
            2,
            &[v[0].positive(), v[1].positive(), v[2].positive()],
            None,
        ));
        exporter.flush();
        s.set_share(&spec(&pool, 1));
        // The import lands at solve entry; the search then backtracks over
        // it repeatedly before reaching Sat.
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.stats().sh_imported, 1);
        let imported: Vec<CRef> = s.db.iter().filter(|&c| s.db.is_imported(c)).collect();
        assert_eq!(imported.len(), 1);
        assert_eq!(s.db.num_imported(), 1);
        check_watches(&s);
        // Reduce + compact like the search would: the imported clause must
        // relocate without leaving dangling watchers.
        s.reduce_db();
        s.garbage_collect();
        check_watches(&s);
        // Now force-delete it the way reduce_db evicts a clause and compact
        // again: the watcher lists must drop it cleanly.
        let survivor = s.db.iter().find(|&c| s.db.is_imported(c));
        if let Some(cr) = survivor {
            assert!(!s.locked(cr), "nothing is assigned after solve");
            s.detach(cr);
            s.db.delete(cr);
            s.garbage_collect();
            check_watches(&s);
            assert_eq!(s.db.num_imported(), 0);
        }
    }

    #[test]
    fn imported_clause_propagates_and_counts_hits() {
        let pool = SharedPool::new(16);
        let mut exporter = spec(&pool, 0).endpoint();
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        assert!(s.add_clause(&[v[0].negative(), v[1].negative()]));
        // Import (v0 ∨ v1): whichever variable is decided false first makes
        // the imported clause propagate the other — an import hit.
        assert!(exporter.offer(
            ShareClass::Theory,
            0,
            &[v[0].positive(), v[1].positive()],
            None,
        ));
        exporter.flush();
        s.set_share(&spec(&pool, 1));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.stats().sh_imported, 1);
        assert!(s.stats().sh_import_hits >= 1, "imported clause never fired");
        // The model satisfies the imported clause too.
        assert!(
            s.model_value(v[0].positive()).is_true() || s.model_value(v[1].positive()).is_true()
        );
    }

    #[test]
    fn share_round_trip_preserves_verdicts() {
        // Two members, one pool, same UNSAT pigeonhole CNF: the first run
        // exports its learnt clauses (flushed at exit), the second imports
        // them and must still answer Unsat.
        let pool = SharedPool::new(1024);
        let build = |sp: ShareSpec| {
            let mut s = Solver::new();
            let n_p = 4;
            let n_h = 3;
            let x: Vec<Vec<Var>> = (0..n_p).map(|_| vars(&mut s, n_h)).collect();
            for p in x.iter() {
                let c: Vec<Lit> = p.iter().map(|v| v.positive()).collect();
                assert!(s.add_clause(&c));
            }
            for h in 0..n_h {
                for p1 in 0..n_p {
                    for p2 in p1 + 1..n_p {
                        assert!(s.add_clause(&[x[p1][h].negative(), x[p2][h].negative()]));
                    }
                }
            }
            s.set_share(&sp);
            s
        };
        let mut a = build(spec(&pool, 0));
        assert_eq!(a.solve(), SolveResult::Unsat);
        assert!(a.stats().sh_exported > 0, "no clauses exported");
        let mut b = build(spec(&pool, 1));
        assert_eq!(b.solve(), SolveResult::Unsat);
        assert!(b.stats().sh_imported > 0, "no clauses imported");
    }

    #[test]
    fn unit_import_strengthens_at_root() {
        let pool = SharedPool::new(16);
        let mut exporter = spec(&pool, 0).endpoint();
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        assert!(s.add_clause(&[v[0].negative()]));
        // (v0 ∨ v1) strengthens to the unit (v1) against the root trail.
        assert!(exporter.offer(
            ShareClass::Generic,
            1,
            &[v[0].positive(), v[1].positive()],
            None,
        ));
        exporter.flush();
        s.set_share(&spec(&pool, 1));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.stats().sh_imported, 1);
        assert!(s.model_value(v[1].positive()).is_true());
        // Nothing attached: the unit went straight onto the root trail.
        assert_eq!(s.db.num_imported(), 0);
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod assumption_tests {
    use super::*;

    #[test]
    fn sat_under_assumptions_and_unsat_under_others() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        // a → b
        s.add_clause(&[a.negative(), b.positive()]);
        assert_eq!(s.solve_with_assumptions(&[a.positive()]), SolveResult::Sat);
        assert!(s.model_value(b.positive()).is_true());
        // a ∧ ¬b is contradictory.
        assert_eq!(
            s.solve_with_assumptions(&[a.positive(), b.negative()]),
            SolveResult::Unsat
        );
        let core = s.assumption_core().to_vec();
        assert!(!core.is_empty());
        assert!(core
            .iter()
            .all(|l| [a.positive(), b.negative()].contains(l)));
        // The solver is reusable afterwards.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn core_is_a_conflicting_subset() {
        let mut s = Solver::new();
        let v: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        // v0 ∧ v1 → ⊥ via chain; v2, v3 irrelevant.
        s.add_clause(&[v[0].negative(), v[1].negative()]);
        assert_eq!(
            s.solve_with_assumptions(&[
                v[2].positive(),
                v[0].positive(),
                v[3].positive(),
                v[1].positive(),
            ]),
            SolveResult::Unsat
        );
        let core = s.assumption_core().to_vec();
        // The core must mention only the genuinely conflicting assumptions.
        assert!(core.contains(&v[0].positive()) || core.contains(&v[1].positive()));
        assert!(!core.contains(&v[2].positive()));
        assert!(!core.contains(&v[3].positive()));
    }

    #[test]
    fn globally_unsat_gives_empty_core() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[a.positive()]);
        s.add_clause(&[a.negative()]);
        assert_eq!(
            s.solve_with_assumptions(&[a.positive()]),
            SolveResult::Unsat
        );
        assert!(s.assumption_core().is_empty());
    }

    #[test]
    fn incremental_blocking_enumerates_models() {
        // Enumerate all models of (a ∨ b) via assumption-free solving with
        // blocking clauses — exercises solver reuse after Unsat answers.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        let mut models = 0;
        while s.solve() == SolveResult::Sat {
            models += 1;
            let block: Vec<Lit> = [a, b]
                .iter()
                .map(|&v| {
                    if s.model_value(v.positive()).is_true() {
                        v.negative()
                    } else {
                        v.positive()
                    }
                })
                .collect();
            if !s.add_clause(&block) {
                break;
            }
            assert!(models <= 3, "only three models exist");
        }
        assert_eq!(models, 3);
    }

    #[test]
    fn assumptions_already_implied_are_free() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive()]); // a is a unit fact
        assert_eq!(
            s.solve_with_assumptions(&[a.positive(), b.positive()]),
            SolveResult::Sat
        );
        assert!(s.model_value(b.positive()).is_true());
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod config_tests {
    use super::*;

    fn hard_instance(s: &mut Solver) {
        // PHP(7,6): forces many conflicts so restart policies diverge.
        let n_p = 7;
        let n_h = 6;
        let x: Vec<Vec<Var>> = (0..n_p)
            .map(|_| (0..n_h).map(|_| s.new_var()).collect())
            .collect();
        for p in 0..n_p {
            let clause: Vec<Lit> = (0..n_h).map(|h| x[p][h].positive()).collect();
            s.add_clause(&clause);
        }
        for h in 0..n_h {
            for p1 in 0..n_p {
                for p2 in p1 + 1..n_p {
                    s.add_clause(&[x[p1][h].negative(), x[p2][h].negative()]);
                }
            }
        }
    }

    #[test]
    fn all_restart_policies_solve_correctly() {
        for restart in [
            RestartStrategy::Luby,
            RestartStrategy::Geometric { factor: 1.5 },
            RestartStrategy::Never,
        ] {
            let mut s = Solver::new();
            s.set_config(SolverConfig {
                restart,
                ..SolverConfig::default()
            });
            hard_instance(&mut s);
            assert_eq!(s.solve(), SolveResult::Unsat, "{restart:?}");
            if restart == RestartStrategy::Never {
                assert_eq!(s.stats().restarts, 0);
            }
        }
    }

    #[test]
    fn clause_database_reduction_kicks_in_on_hard_instances() {
        // PHP(8,7) produces tens of thousands of learnt clauses — enough to
        // cross the reduction threshold and exercise arena compaction.
        let mut s = Solver::new();
        let n_p = 8;
        let n_h = 7;
        let x: Vec<Vec<Var>> = (0..n_p)
            .map(|_| (0..n_h).map(|_| s.new_var()).collect())
            .collect();
        for p in 0..n_p {
            let clause: Vec<Lit> = (0..n_h).map(|h| x[p][h].positive()).collect();
            s.add_clause(&clause);
        }
        for h in 0..n_h {
            for p1 in 0..n_p {
                for p2 in p1 + 1..n_p {
                    s.add_clause(&[x[p1][h].negative(), x[p2][h].negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(
            s.stats().reductions >= 1 || s.stats().learnt_clauses < 2000,
            "expected a learnt-DB reduction: {} learnt, {} reductions",
            s.stats().learnt_clauses,
            s.stats().reductions
        );
    }

    #[test]
    fn decay_is_configurable() {
        let mut s = Solver::new();
        s.set_config(SolverConfig {
            var_decay: 0.8,
            ..SolverConfig::default()
        });
        hard_instance(&mut s);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    #[should_panic(expected = "geometric factor")]
    fn bad_geometric_factor_rejected() {
        let mut s = Solver::new();
        s.set_config(SolverConfig {
            restart: RestartStrategy::Geometric { factor: 0.5 },
            ..SolverConfig::default()
        });
    }
}
