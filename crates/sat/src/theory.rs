//! The DPLL(T) theory interface.
//!
//! The CDCL core drives a single background theory through this trait. The
//! protocol mirrors the classic lazy-SMT integration:
//!
//! - the solver forwards every newly assigned *theory atom* (a variable the
//!   client marked with [`crate::Solver::mark_theory_var`]) to
//!   [`Theory::assert_lit`] in trail order;
//! - the theory may *propagate* further atoms by pushing them into
//!   [`TheoryOut::propagations`], recording an eager explanation for each;
//! - the theory may report a *conflict*: a set of currently-true literals
//!   whose conjunction is theory-inconsistent. The solver turns it into the
//!   conflicting clause `¬l₁ ∨ … ∨ ¬lₖ` and runs first-UIP analysis on it;
//! - decision levels are mirrored with [`Theory::new_level`] /
//!   [`Theory::backtrack_to`] so the theory can undo assertions;
//! - [`Theory::explain`] must return, for any literal the theory propagated
//!   and that is still on the trail, the antecedent literals (all true,
//!   asserted before it) that imply it.

use crate::lit::Lit;
use crate::share::CycleEdgeRaw;

/// A theory conflict: `lits` are all currently assigned true and jointly
/// inconsistent in the theory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TheoryConflict {
    /// The inconsistent set of true literals.
    pub lits: Vec<Lit>,
}

/// Out-parameters of a theory callback.
#[derive(Debug, Default)]
pub struct TheoryOut {
    /// Literals the theory wants the solver to assign true.
    pub propagations: Vec<Lit>,
}

impl TheoryOut {
    /// Clears the buffer for reuse.
    pub fn clear(&mut self) {
        self.propagations.clear();
    }
}

/// A background theory cooperating with the CDCL core.
pub trait Theory {
    /// Notifies the theory that `lit` (a marked theory atom) became true.
    ///
    /// Returns `Err` on an immediate theory conflict. May push propagations.
    fn assert_lit(&mut self, lit: Lit, out: &mut TheoryOut) -> Result<(), TheoryConflict>;

    /// A new decision level was opened.
    fn new_level(&mut self);

    /// Backtracks to decision `level`, undoing all assertions made at higher
    /// levels. `level` counts from 0 (the root level).
    fn backtrack_to(&mut self, level: u32);

    /// Explains a literal previously pushed into [`TheoryOut::propagations`]:
    /// returns the antecedent literals (all true, asserted strictly before
    /// `lit`) whose conjunction implies `lit`.
    fn explain(&mut self, lit: Lit) -> Vec<Lit>;

    /// Called when the Boolean assignment is complete and no conflict was
    /// found; the theory gets a last chance to object. Eager theories that
    /// check on every assertion can use the default no-op.
    fn final_check(&mut self, out: &mut TheoryOut) -> Result<(), TheoryConflict> {
        let _ = out;
        Ok(())
    }

    /// Asks the theory to start buffering shareable lemmas (conflict-cycle
    /// lemmas, for the order theory) for the solver's share-export hook.
    /// Theories with nothing worth sharing keep the default no-op.
    fn enable_share_capture(&mut self) {}

    /// Drains lemmas buffered since the last drain into `out` as
    /// `(clause, cycle-justification)` pairs in transport form.
    fn drain_shared_lemmas(&mut self, out: &mut Vec<(Vec<Lit>, Vec<CycleEdgeRaw>)>) {
        let _ = out;
    }

    /// Absorbs a lemma imported from another member: the theory records the
    /// justification (e.g. in its certification journal) so downstream
    /// proof replay treats the clause like a locally derived lemma.
    fn absorb_shared_lemma(&mut self, clause: &[Lit], cycle: &[CycleEdgeRaw]) {
        let _ = (clause, cycle);
    }
}

/// The trivial theory: accepts everything. Used for pure-SAT solving.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoTheory;

impl Theory for NoTheory {
    fn assert_lit(&mut self, _lit: Lit, _out: &mut TheoryOut) -> Result<(), TheoryConflict> {
        Ok(())
    }
    fn new_level(&mut self) {}
    fn backtrack_to(&mut self, _level: u32) {}
    fn explain(&mut self, _lit: Lit) -> Vec<Lit> {
        unreachable!("NoTheory never propagates, so it is never asked to explain")
    }
}
