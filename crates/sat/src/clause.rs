//! Clause storage: a flat `u32` arena with compact headers.
//!
//! Clauses live back-to-back in one `Vec<u32>`; a [`CRef`] is an offset into
//! that arena. Each clause is laid out as
//!
//! ```text
//! [ header ][ activity ][ lbd ][ lit 0 ][ lit 1 ] ... [ lit n-1 ]
//! ```
//!
//! where `header` packs the length (lower 27 bits), a *learnt* flag and a
//! *deleted* flag, and `activity` stores an `f32` bit pattern (learnt
//! clauses only use it, but the slot is always present to keep offsets
//! uniform). Deleted clauses are left in place until [`ClauseDb::collect`]
//! compacts the arena and reports the relocation map.

use crate::lit::Lit;

/// Reference to a clause in the arena (offset of its header word).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct CRef(u32);

impl CRef {
    /// A sentinel that never refers to a real clause.
    pub const UNDEF: CRef = CRef(u32::MAX);

    #[inline]
    fn offset(self) -> usize {
        self.0 as usize
    }
}

const LEN_BITS: u32 = 27;
const LEN_MASK: u32 = (1 << LEN_BITS) - 1;
const FLAG_LEARNT: u32 = 1 << 27;
const FLAG_DELETED: u32 = 1 << 28;
const FLAG_IMPORTED: u32 = 1 << 29;
const HEADER_WORDS: usize = 3;

/// The clause arena.
#[derive(Default, Clone)]
pub struct ClauseDb {
    arena: Vec<u32>,
    /// Number of live (non-deleted) learnt clauses.
    num_learnt: usize,
    /// Number of live problem clauses.
    num_problem: usize,
    /// Number of live learnt clauses imported from the share pool (a subset
    /// of `num_learnt`; excluded from the learnt-cap rescale trigger).
    num_imported: usize,
    /// Words occupied by deleted clauses, to decide when compaction pays off.
    wasted: usize,
}

impl ClauseDb {
    /// Creates an empty clause database.
    pub fn new() -> ClauseDb {
        ClauseDb::default()
    }

    /// Appends a clause and returns its reference.
    ///
    /// `lits` must contain at least two literals — unit and empty clauses are
    /// handled at the solver level (units go straight onto the trail).
    pub fn add(&mut self, lits: &[Lit], learnt: bool) -> CRef {
        debug_assert!(lits.len() >= 2, "arena clauses must have >= 2 literals");
        debug_assert!((lits.len() as u32) <= LEN_MASK);
        let at = self.arena.len() as u32;
        let mut header = lits.len() as u32;
        if learnt {
            header |= FLAG_LEARNT;
            self.num_learnt += 1;
        } else {
            self.num_problem += 1;
        }
        self.arena.reserve(HEADER_WORDS + lits.len());
        self.arena.push(header);
        self.arena.push(0f32.to_bits());
        self.arena.push(0); // LBD, set by the solver for learnt clauses
        self.arena.extend(lits.iter().map(|l| l.code() as u32));
        CRef(at)
    }

    /// The literals of clause `c`.
    #[inline]
    pub fn lits(&self, c: CRef) -> &[Lit] {
        let off = c.offset();
        let len = (self.arena[off] & LEN_MASK) as usize;
        let body = &self.arena[off + HEADER_WORDS..off + HEADER_WORDS + len];
        // SAFETY: `Lit` is a transparent-layout wrapper over u32 by
        // construction (single u32 field); codes were produced by Lit::code.
        unsafe { std::slice::from_raw_parts(body.as_ptr().cast::<Lit>(), len) }
    }

    /// Mutable access to the literals of clause `c`.
    #[inline]
    pub fn lits_mut(&mut self, c: CRef) -> &mut [Lit] {
        let off = c.offset();
        let len = (self.arena[off] & LEN_MASK) as usize;
        let body = &mut self.arena[off + HEADER_WORDS..off + HEADER_WORDS + len];
        unsafe { std::slice::from_raw_parts_mut(body.as_mut_ptr().cast::<Lit>(), len) }
    }

    /// Number of literals in clause `c`.
    #[inline]
    pub fn len(&self, c: CRef) -> usize {
        (self.arena[c.offset()] & LEN_MASK) as usize
    }

    /// `true` if the arena holds no clauses at all.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// `true` if clause `c` was added with `learnt = true`.
    #[inline]
    pub fn is_learnt(&self, c: CRef) -> bool {
        self.arena[c.offset()] & FLAG_LEARNT != 0
    }

    /// `true` if clause `c` has been deleted (lazily).
    #[inline]
    pub fn is_deleted(&self, c: CRef) -> bool {
        self.arena[c.offset()] & FLAG_DELETED != 0
    }

    /// Marks clause `c` as imported from the share pool. The flag lives in
    /// the header, so it survives [`ClauseDb::collect`] relocation.
    pub fn mark_imported(&mut self, c: CRef) {
        let off = c.offset();
        debug_assert!(
            self.arena[off] & FLAG_LEARNT != 0,
            "only learnt clauses can be imported"
        );
        if self.arena[off] & FLAG_IMPORTED == 0 {
            self.arena[off] |= FLAG_IMPORTED;
            self.num_imported += 1;
        }
    }

    /// `true` if clause `c` came from the share pool.
    #[inline]
    pub fn is_imported(&self, c: CRef) -> bool {
        self.arena[c.offset()] & FLAG_IMPORTED != 0
    }

    /// Live imported-clause count (subset of [`ClauseDb::num_learnt`]).
    pub fn num_imported(&self) -> usize {
        self.num_imported
    }

    /// Clause activity (used for learnt-clause aging).
    #[inline]
    pub fn activity(&self, c: CRef) -> f32 {
        f32::from_bits(self.arena[c.offset() + 1])
    }

    /// Overwrites clause activity.
    #[inline]
    pub fn set_activity(&mut self, c: CRef, a: f32) {
        self.arena[c.offset() + 1] = a.to_bits();
    }

    /// Literal block distance recorded for this clause (0 if never set).
    #[inline]
    pub fn lbd(&self, c: CRef) -> u32 {
        self.arena[c.offset() + 2]
    }

    /// Records the literal block distance of this clause.
    #[inline]
    pub fn set_lbd(&mut self, c: CRef, lbd: u32) {
        self.arena[c.offset() + 2] = lbd;
    }

    /// Marks clause `c` deleted. Space is reclaimed on [`ClauseDb::collect`].
    pub fn delete(&mut self, c: CRef) {
        let off = c.offset();
        debug_assert!(self.arena[off] & FLAG_DELETED == 0, "double delete");
        if self.arena[off] & FLAG_LEARNT != 0 {
            self.num_learnt -= 1;
            if self.arena[off] & FLAG_IMPORTED != 0 {
                self.num_imported -= 1;
            }
        } else {
            self.num_problem -= 1;
        }
        self.arena[off] |= FLAG_DELETED;
        self.wasted += HEADER_WORDS + (self.arena[off] & LEN_MASK) as usize;
    }

    /// Live learnt-clause count.
    pub fn num_learnt(&self) -> usize {
        self.num_learnt
    }

    /// Live problem-clause count.
    pub fn num_problem(&self) -> usize {
        self.num_problem
    }

    /// Words wasted by deleted clauses.
    pub fn wasted(&self) -> usize {
        self.wasted
    }

    /// Total words in the arena.
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// Iterates over the references of all live clauses.
    pub fn iter(&self) -> impl Iterator<Item = CRef> + '_ {
        let mut off = 0usize;
        std::iter::from_fn(move || {
            while off < self.arena.len() {
                let here = off;
                let header = self.arena[here];
                off += HEADER_WORDS + (header & LEN_MASK) as usize;
                if header & FLAG_DELETED == 0 {
                    return Some(CRef(here as u32));
                }
            }
            None
        })
    }

    /// Compacts the arena, dropping deleted clauses. Calls `moved(old, new)`
    /// for every surviving clause so the caller can patch watch lists and
    /// reason references.
    pub fn collect(&mut self, mut moved: impl FnMut(CRef, CRef)) {
        let mut new_arena = Vec::with_capacity(self.arena.len() - self.wasted);
        let mut off = 0usize;
        while off < self.arena.len() {
            let header = self.arena[off];
            let words = HEADER_WORDS + (header & LEN_MASK) as usize;
            if header & FLAG_DELETED == 0 {
                let new_off = new_arena.len() as u32;
                new_arena.extend_from_slice(&self.arena[off..off + words]);
                moved(CRef(off as u32), CRef(new_off));
            }
            off += words;
        }
        self.arena = new_arena;
        self.wasted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lits(codes: &[u32]) -> Vec<Lit> {
        codes.iter().map(|&c| Lit::from_code(c)).collect()
    }

    #[test]
    fn add_and_read_back() {
        let mut db = ClauseDb::new();
        let c1 = db.add(&lits(&[0, 3]), false);
        let c2 = db.add(&lits(&[2, 5, 7]), true);
        assert_eq!(db.lits(c1), &lits(&[0, 3])[..]);
        assert_eq!(db.lits(c2), &lits(&[2, 5, 7])[..]);
        assert_eq!(db.len(c1), 2);
        assert_eq!(db.len(c2), 3);
        assert!(!db.is_learnt(c1));
        assert!(db.is_learnt(c2));
        assert_eq!(db.num_problem(), 1);
        assert_eq!(db.num_learnt(), 1);
    }

    #[test]
    fn activity_roundtrip() {
        let mut db = ClauseDb::new();
        let c = db.add(&lits(&[0, 2]), true);
        assert_eq!(db.activity(c), 0.0);
        db.set_activity(c, 1.5);
        assert_eq!(db.activity(c), 1.5);
    }

    #[test]
    fn delete_and_iterate() {
        let mut db = ClauseDb::new();
        let c1 = db.add(&lits(&[0, 2]), false);
        let c2 = db.add(&lits(&[4, 6]), true);
        let c3 = db.add(&lits(&[8, 10]), true);
        db.delete(c2);
        let live: Vec<CRef> = db.iter().collect();
        assert_eq!(live, vec![c1, c3]);
        assert!(db.is_deleted(c2));
        assert_eq!(db.num_learnt(), 1);
        assert!(db.wasted() > 0);
    }

    #[test]
    fn collect_compacts_and_reports_moves() {
        let mut db = ClauseDb::new();
        let c1 = db.add(&lits(&[0, 2]), false);
        let c2 = db.add(&lits(&[4, 6, 8]), true);
        let c3 = db.add(&lits(&[10, 12]), true);
        db.delete(c1);
        let mut moves = Vec::new();
        db.collect(|old, new| moves.push((old, new)));
        assert_eq!(moves.len(), 2);
        // c2 moves to the front, c3 follows.
        let (old2, new2) = moves[0];
        let (old3, new3) = moves[1];
        assert_eq!(old2, c2);
        assert_eq!(old3, c3);
        assert_eq!(db.lits(new2), &lits(&[4, 6, 8])[..]);
        assert_eq!(db.lits(new3), &lits(&[10, 12])[..]);
        assert_eq!(db.wasted(), 0);
    }

    #[test]
    fn imported_flag_survives_collect_and_delete_decrements() {
        let mut db = ClauseDb::new();
        let c1 = db.add(&lits(&[0, 2]), true);
        let c2 = db.add(&lits(&[4, 6]), true);
        db.mark_imported(c2);
        db.mark_imported(c2); // idempotent
        assert_eq!(db.num_imported(), 1);
        assert!(db.is_imported(c2));
        assert!(!db.is_imported(c1));
        db.delete(c1);
        let mut relocated = CRef::UNDEF;
        db.collect(|old, new| {
            if old == c2 {
                relocated = new;
            }
        });
        assert!(db.is_imported(relocated));
        assert_eq!(db.num_imported(), 1);
        db.delete(relocated);
        assert_eq!(db.num_imported(), 0);
        assert_eq!(db.num_learnt(), 0);
    }

    #[test]
    fn lits_mut_allows_reordering() {
        let mut db = ClauseDb::new();
        let a = Var::new(0).positive();
        let b = Var::new(1).positive();
        let c = Var::new(2).negative();
        let cr = db.add(&[a, b, c], false);
        db.lits_mut(cr).swap(0, 2);
        assert_eq!(db.lits(cr), &[c, b, a]);
    }
}
