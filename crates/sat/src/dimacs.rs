//! DIMACS CNF reading and writing.
//!
//! Used by the test-suite to exchange instances with reference tools and to
//! dump the CNF produced by the bit-blaster for offline inspection.

use crate::lit::{Lit, Var};
use std::fmt::Write as _;

/// A parsed CNF: number of variables and clauses over [`Lit`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cnf {
    /// Declared variable count (variables are `0..num_vars`).
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Vec<Lit>>,
}

/// Errors from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The `p cnf <vars> <clauses>` header is missing or malformed.
    BadHeader,
    /// A token was not an integer.
    BadToken(String),
    /// A literal referenced a variable beyond the declared count.
    VarOutOfRange(i64),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader => write!(f, "missing or malformed 'p cnf' header"),
            ParseError::BadToken(t) => write!(f, "bad token {t:?}"),
            ParseError::VarOutOfRange(v) => write!(f, "literal {v} out of declared range"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses DIMACS CNF text. Comment lines (`c ...`) are skipped; `%`/`0`
/// trailer lines produced by some generators are tolerated.
pub fn parse(text: &str) -> Result<Cnf, ParseError> {
    let mut num_vars: Option<usize> = None;
    let mut clauses = Vec::new();
    let mut current: Vec<Lit> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if line.starts_with('%') {
            // SATLIB-style end-of-file trailer ("%" then "0"): stop parsing.
            break;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let mut it = rest.split_whitespace();
            if it.next() != Some("cnf") {
                return Err(ParseError::BadHeader);
            }
            let v = it
                .next()
                .and_then(|t| t.parse::<usize>().ok())
                .ok_or(ParseError::BadHeader)?;
            let _c = it
                .next()
                .and_then(|t| t.parse::<usize>().ok())
                .ok_or(ParseError::BadHeader)?;
            num_vars = Some(v);
            continue;
        }
        for tok in line.split_whitespace() {
            let n: i64 = tok
                .parse()
                .map_err(|_| ParseError::BadToken(tok.to_string()))?;
            if n == 0 {
                clauses.push(std::mem::take(&mut current));
                continue;
            }
            let nv = num_vars.ok_or(ParseError::BadHeader)?;
            let idx = n.unsigned_abs() as usize - 1;
            if idx >= nv {
                return Err(ParseError::VarOutOfRange(n));
            }
            current.push(Var::new(idx as u32).lit(n > 0));
        }
    }
    if !current.is_empty() {
        clauses.push(current);
    }
    Ok(Cnf {
        num_vars: num_vars.ok_or(ParseError::BadHeader)?,
        clauses,
    })
}

/// Serializes a CNF to DIMACS text.
pub fn write(cnf: &Cnf) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", cnf.num_vars, cnf.clauses.len());
    for clause in &cnf.clauses {
        for &lit in clause {
            let n = lit.var().index() as i64 + 1;
            let _ = write!(out, "{} ", if lit.sign() { n } else { -n });
        }
        let _ = writeln!(out, "0");
    }
    out
}

/// Loads a CNF into a fresh solver, allocating `num_vars` variables.
/// Returns the solver and whether all clauses were accepted (false means the
/// instance is trivially unsatisfiable at the root).
pub fn load(cnf: &Cnf) -> (crate::Solver, bool) {
    let mut s = crate::Solver::new();
    for _ in 0..cnf.num_vars {
        s.new_var();
    }
    let mut ok = true;
    for clause in &cnf.clauses {
        ok &= s.add_clause(clause);
    }
    (s, ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveResult;

    #[test]
    fn roundtrip() {
        let text = "c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let cnf = parse(text).unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        let again = parse(&write(&cnf)).unwrap();
        assert_eq!(cnf, again);
    }

    #[test]
    fn multiline_clause_and_trailer() {
        let text = "p cnf 2 1\n1\n-2 0\n%\n0\n";
        let cnf = parse(text).unwrap();
        assert_eq!(
            cnf.clauses,
            vec![vec![Var::new(0).positive(), Var::new(1).negative(),]]
        );
    }

    #[test]
    fn rejects_bad_header() {
        assert_eq!(parse("p dnf 1 1\n1 0\n"), Err(ParseError::BadHeader));
        assert_eq!(parse("1 0\n"), Err(ParseError::BadHeader));
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(matches!(
            parse("p cnf 1 1\n2 0\n"),
            Err(ParseError::VarOutOfRange(2))
        ));
    }

    #[test]
    fn load_and_solve() {
        let cnf = parse("p cnf 2 3\n1 2 0\n-1 2 0\n1 -2 0\n").unwrap();
        let (mut s, ok) = load(&cnf);
        assert!(ok);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_value(Var::new(0).positive()).is_true());
        assert!(s.model_value(Var::new(1).positive()).is_true());
    }

    #[test]
    fn load_unsat() {
        let cnf = parse("p cnf 1 2\n1 0\n-1 0\n").unwrap();
        let (mut s, ok) = load(&cnf);
        assert!(!ok || s.solve() == SolveResult::Unsat);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }
}
