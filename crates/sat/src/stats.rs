//! Search statistics and resource budgets.
//!
//! The statistics mirror what Table 2 of the paper reports (decisions,
//! propagations, conflicts) plus bookkeeping useful for diagnosing the
//! solver itself. The budget supports a deterministic conflict cap
//! (reproducible "timeouts"), a wall-clock deadline, and a shared
//! [`CancelToken`] for cooperative cross-thread cancellation (the hook the
//! portfolio engine in the `zpre` core crate uses to stop losing solvers).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counters accumulated during search.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Number of decisions (guided + VSIDS).
    pub decisions: u64,
    /// Decisions answered by the installed [`crate::DecisionGuide`].
    pub guided_decisions: u64,
    /// Implied assignments (Boolean unit propagation + theory propagation).
    pub propagations: u64,
    /// Conflicts encountered (Boolean + theory).
    pub conflicts: u64,
    /// Conflicts raised by the theory.
    pub theory_conflicts: u64,
    /// Literals assigned by theory propagation.
    pub theory_propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses recorded.
    pub learnt_clauses: u64,
    /// Total literals across learnt clauses (after minimization).
    pub learnt_literals: u64,
    /// Literals removed by clause minimization.
    pub minimized_lits: u64,
    /// Learnt-database reductions.
    pub reductions: u64,
    /// EOG cycle checks run by the order theory (one per asserted edge).
    pub eog_checks: u64,
    /// Cycle checks accepted in O(1) by the topological-level invariant.
    pub eog_accepted_o1: u64,
    /// Nodes visited by cycle-check searches.
    pub eog_visited: u64,
    /// Node-level promotions performed by cycle-check forward passes.
    pub eog_promoted: u64,
    /// Clauses exported to the share pool (all classes).
    pub sh_exported: u64,
    /// Order-theory cycle lemmas among the exports.
    pub sh_exported_theory: u64,
    /// External-RF interference clauses among the exports.
    pub sh_exported_rf: u64,
    /// Foreign clauses imported and attached from the share pool.
    pub sh_imported: u64,
    /// Share-pool clauses dropped (filter, duplicate, or ring eviction).
    pub sh_dropped: u64,
    /// Times an imported clause propagated or participated in a conflict.
    pub sh_import_hits: u64,
}

impl Stats {
    /// Component-wise sum, for aggregating across tasks.
    ///
    /// The exhaustive destructuring (no `..` rest pattern) makes this fail to
    /// compile when a counter is added to `Stats` without being aggregated
    /// here — a field can never again be silently dropped from aggregation.
    pub fn accumulate(&mut self, other: &Stats) {
        let Stats {
            decisions,
            guided_decisions,
            propagations,
            conflicts,
            theory_conflicts,
            theory_propagations,
            restarts,
            learnt_clauses,
            learnt_literals,
            minimized_lits,
            reductions,
            eog_checks,
            eog_accepted_o1,
            eog_visited,
            eog_promoted,
            sh_exported,
            sh_exported_theory,
            sh_exported_rf,
            sh_imported,
            sh_dropped,
            sh_import_hits,
        } = *other;
        self.decisions += decisions;
        self.guided_decisions += guided_decisions;
        self.propagations += propagations;
        self.conflicts += conflicts;
        self.theory_conflicts += theory_conflicts;
        self.theory_propagations += theory_propagations;
        self.restarts += restarts;
        self.learnt_clauses += learnt_clauses;
        self.learnt_literals += learnt_literals;
        self.minimized_lits += minimized_lits;
        self.reductions += reductions;
        self.eog_checks += eog_checks;
        self.eog_accepted_o1 += eog_accepted_o1;
        self.eog_visited += eog_visited;
        self.eog_promoted += eog_promoted;
        self.sh_exported += sh_exported;
        self.sh_exported_theory += sh_exported_theory;
        self.sh_exported_rf += sh_exported_rf;
        self.sh_imported += sh_imported;
        self.sh_dropped += sh_dropped;
        self.sh_import_hits += sh_import_hits;
    }
}

/// Why a solve stopped without a verdict.
///
/// Produced by [`Budget::exhausted_reason`] / [`Budget::interrupted_reason`]
/// and surfaced by the solver (and every layer above it: sweep frames,
/// portfolio members, the batch harness) whenever a call returns
/// [`crate::SolveResult::Unknown`]. `Quarantined` is never produced by the
/// solver itself — it is assigned by supervising layers (portfolio, batch
/// harness) when a worker panicked and was caught.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExhaustionReason {
    /// The deterministic conflict cap was reached.
    Conflicts,
    /// The wall-clock deadline passed.
    Time,
    /// The byte-accounted memory cap was exceeded (clause arena + trail +
    /// per-variable bookkeeping), or a pre-blast size estimate rejected the
    /// encoding outright.
    Memory,
    /// A shared [`CancelToken`] was tripped by another thread.
    Cancelled,
    /// The task panicked and was caught by a supervising layer.
    Quarantined,
}

impl ExhaustionReason {
    /// Stable lowercase identifier, used in journals, traces, and JSON.
    pub fn name(self) -> &'static str {
        match self {
            ExhaustionReason::Conflicts => "conflicts",
            ExhaustionReason::Time => "time",
            ExhaustionReason::Memory => "memory",
            ExhaustionReason::Cancelled => "cancelled",
            ExhaustionReason::Quarantined => "quarantined",
        }
    }

    /// Inverse of [`ExhaustionReason::name`], for journal/trace parsing.
    pub fn from_name(s: &str) -> Option<ExhaustionReason> {
        Some(match s {
            "conflicts" => ExhaustionReason::Conflicts,
            "time" => ExhaustionReason::Time,
            "memory" => ExhaustionReason::Memory,
            "cancelled" => ExhaustionReason::Cancelled,
            "quarantined" => ExhaustionReason::Quarantined,
            _ => return None,
        })
    }

    /// Every variant, for exhaustive tests and chaos matrices.
    pub const ALL: [ExhaustionReason; 5] = [
        ExhaustionReason::Conflicts,
        ExhaustionReason::Time,
        ExhaustionReason::Memory,
        ExhaustionReason::Cancelled,
        ExhaustionReason::Quarantined,
    ];
}

impl std::fmt::Display for ExhaustionReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A shared cooperative-cancellation flag.
///
/// Cloning the token shares the underlying flag: any clone may
/// [`cancel`](CancelToken::cancel) and every solver whose [`Budget`] carries
/// a clone observes the trip at its next budget check (a bounded
/// propagation stride away, even on conflict-free instances) and returns
/// [`crate::SolveResult::Unknown`]. This is the mechanism the portfolio
/// verifier uses to stop losing strategies once a winner finishes.
#[derive(Debug, Default, Clone)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trips the token. Irrevocable; all clones observe it.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// `true` once any clone has called [`cancel`](CancelToken::cancel).
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Resource limits for a `solve` call. An exhausted budget makes the solver
/// return [`crate::SolveResult::Unknown`].
///
/// The conflict cap stays deterministic: it is consulted against the
/// conflict counter, which only moves at conflict points. The wall-clock
/// deadline and the cancellation token are *also* polled on a periodic
/// propagation stride inside the search loop, so propagation-heavy or
/// conflict-free solves still stop promptly.
#[derive(Debug, Default, Clone)]
pub struct Budget {
    /// Absolute cap on total conflicts (deterministic "timeout").
    pub max_conflicts: Option<u64>,
    /// Wall-clock allowance, measured from [`Budget::start`].
    pub timeout: Option<Duration>,
    /// Shared cooperative-cancellation flag, if any.
    pub cancel: Option<CancelToken>,
    /// Work units (propagations + decisions) between periodic deadline /
    /// cancellation polls in the search loop. `None` uses
    /// [`Budget::DEFAULT_CHECK_STRIDE`].
    pub check_stride: Option<u64>,
    /// Byte-accounted memory cap. The solver estimates its resident
    /// footprint (clause arena — problem plus learnt — trail capacity, and
    /// per-variable bookkeeping) on the same periodic stride as the
    /// deadline poll; exceeding the cap aborts the solve with
    /// [`ExhaustionReason::Memory`] instead of letting the allocator kill
    /// the process.
    pub max_memory_bytes: Option<u64>,
    deadline: Option<Instant>,
}

impl Budget {
    /// Default work-unit stride between deadline/cancellation polls.
    pub const DEFAULT_CHECK_STRIDE: u64 = 1024;

    /// No limits.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Limits total conflicts to `n`.
    pub fn with_max_conflicts(n: u64) -> Budget {
        Budget {
            max_conflicts: Some(n),
            ..Budget::default()
        }
    }

    /// Limits wall-clock time.
    pub fn with_timeout(t: Duration) -> Budget {
        Budget {
            timeout: Some(t),
            ..Budget::default()
        }
    }

    /// Combines a conflict cap and a wall-clock limit.
    pub fn with_limits(max_conflicts: Option<u64>, timeout: Option<Duration>) -> Budget {
        Budget {
            max_conflicts,
            timeout,
            ..Budget::default()
        }
    }

    /// Attaches a shared cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Budget {
        self.cancel = Some(token);
        self
    }

    /// Overrides the periodic check stride (mainly for tests; the default
    /// amortizes the `Instant::now()` cost to noise).
    pub fn with_check_stride(mut self, stride: u64) -> Budget {
        self.check_stride = Some(stride.max(1));
        self
    }

    /// Caps the solver's estimated resident footprint at `bytes`.
    pub fn with_max_memory(mut self, bytes: u64) -> Budget {
        self.max_memory_bytes = Some(bytes);
        self
    }

    /// `true` when a memory cap is set and `estimated_bytes` exceeds it.
    #[inline]
    pub fn memory_exceeded(&self, estimated_bytes: u64) -> bool {
        matches!(self.max_memory_bytes, Some(cap) if estimated_bytes > cap)
    }

    /// The effective periodic check stride.
    pub fn stride(&self) -> u64 {
        self.check_stride.unwrap_or(Self::DEFAULT_CHECK_STRIDE)
    }

    /// Arms the wall-clock deadline on the first call; later calls are
    /// no-ops. Nested or re-entrant `solve` calls sharing a budget therefore
    /// cannot silently push the deadline out — re-arming is explicit via
    /// [`Budget::restart_deadline`].
    pub fn start(&mut self) {
        if self.deadline.is_none() {
            self.deadline = self.timeout.map(|t| Instant::now() + t);
        }
    }

    /// Explicitly re-arms the wall-clock deadline from *now*, granting a
    /// fresh `timeout` allowance. Used by retry paths (e.g. the portfolio's
    /// bounded baseline retry) that intentionally start a new attempt.
    pub fn restart_deadline(&mut self) {
        self.deadline = self.timeout.map(|t| Instant::now() + t);
    }

    /// `true` once any limit is hit or the cancel token is tripped.
    pub fn exhausted(&self, conflicts: u64) -> bool {
        self.exhausted_reason(conflicts).is_some()
    }

    /// Like [`Budget::exhausted`], but reports *which* limit was hit. The
    /// conflict cap is checked first (deterministic reasons beat wall-clock
    /// ones when both trip in the same poll).
    pub fn exhausted_reason(&self, conflicts: u64) -> Option<ExhaustionReason> {
        if let Some(max) = self.max_conflicts {
            if conflicts >= max {
                return Some(ExhaustionReason::Conflicts);
            }
        }
        self.interrupted_reason()
    }

    /// The non-deterministic half of [`Budget::exhausted`]: cancellation and
    /// the wall-clock deadline, ignoring the conflict cap. This is what the
    /// periodic in-search poll consults.
    pub fn interrupted(&self) -> bool {
        self.interrupted_reason().is_some()
    }

    /// Like [`Budget::interrupted`], but reports the cause. Cancellation is
    /// checked before the deadline: when a portfolio winner cancels the
    /// losers, the loser should report `Cancelled` even if its own deadline
    /// happened to pass in the same stride.
    pub fn interrupted_reason(&self) -> Option<ExhaustionReason> {
        if let Some(tok) = &self.cancel {
            if tok.is_cancelled() {
                return Some(ExhaustionReason::Cancelled);
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Some(ExhaustionReason::Time);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let mut b = Budget::unlimited();
        b.start();
        assert!(!b.exhausted(u64::MAX - 1));
    }

    #[test]
    fn conflict_cap() {
        let mut b = Budget::with_max_conflicts(10);
        b.start();
        assert!(!b.exhausted(9));
        assert!(b.exhausted(10));
        assert!(b.exhausted(11));
    }

    #[test]
    fn deadline_in_past_exhausts() {
        let mut b = Budget::with_timeout(Duration::from_nanos(1));
        b.start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(b.exhausted(0));
    }

    #[test]
    fn timeout_not_armed_until_start() {
        let b = Budget::with_timeout(Duration::from_nanos(1));
        // Without start() there is no deadline.
        assert!(!b.exhausted(0));
    }

    #[test]
    fn start_arms_only_once() {
        let mut b = Budget::with_timeout(Duration::from_millis(1));
        b.start();
        std::thread::sleep(Duration::from_millis(3));
        assert!(b.exhausted(0));
        // A nested/re-entrant start() must not grant a fresh allowance: the
        // original deadline stays in force.
        b.start();
        assert!(b.exhausted(0));
    }

    #[test]
    fn restart_deadline_rearms_explicitly() {
        let mut b = Budget::with_timeout(Duration::from_secs(3600));
        b.start();
        assert!(!b.exhausted(0));
        // Simulate an expired deadline, then explicitly re-arm for a retry.
        b.timeout = Some(Duration::from_nanos(1));
        b.restart_deadline();
        std::thread::sleep(Duration::from_millis(2));
        assert!(b.exhausted(0));
        b.timeout = Some(Duration::from_secs(3600));
        b.restart_deadline();
        assert!(!b.exhausted(0));
    }

    #[test]
    fn exhaustion_reason_names_round_trip() {
        for r in ExhaustionReason::ALL {
            assert_eq!(ExhaustionReason::from_name(r.name()), Some(r));
            assert_eq!(format!("{r}"), r.name());
        }
        assert_eq!(ExhaustionReason::from_name("bogus"), None);
    }

    #[test]
    fn conflict_cap_wins_over_deadline() {
        let mut b = Budget::with_limits(Some(5), Some(Duration::from_nanos(1)));
        b.start();
        std::thread::sleep(Duration::from_millis(2));
        // Both tripped; the deterministic reason is reported.
        assert_eq!(b.exhausted_reason(5), Some(ExhaustionReason::Conflicts));
        assert_eq!(b.exhausted_reason(0), Some(ExhaustionReason::Time));
    }

    #[test]
    fn cancel_reported_before_deadline() {
        let tok = CancelToken::new();
        let mut b = Budget::with_timeout(Duration::from_nanos(1)).with_cancel(tok.clone());
        b.start();
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(b.interrupted_reason(), Some(ExhaustionReason::Time));
        tok.cancel();
        assert_eq!(b.interrupted_reason(), Some(ExhaustionReason::Cancelled));
    }

    #[test]
    fn memory_cap() {
        let b = Budget::unlimited().with_max_memory(1024);
        assert!(!b.memory_exceeded(1024));
        assert!(b.memory_exceeded(1025));
        assert!(!Budget::unlimited().memory_exceeded(u64::MAX));
    }

    #[test]
    fn stats_accumulate() {
        let mut a = Stats {
            decisions: 1,
            conflicts: 2,
            ..Stats::default()
        };
        let b = Stats {
            decisions: 10,
            propagations: 5,
            ..Stats::default()
        };
        a.accumulate(&b);
        assert_eq!(a.decisions, 11);
        assert_eq!(a.conflicts, 2);
        assert_eq!(a.propagations, 5);
    }

    #[test]
    fn stats_accumulate_covers_every_field() {
        // Compile guard: both the literal below and the exhaustive
        // destructuring (no `..` rest pattern) break the build when a counter
        // is added to `Stats`, forcing this test — and `accumulate`, which
        // destructures the same way — to be updated in the same change.
        let one = Stats {
            decisions: 1,
            guided_decisions: 1,
            propagations: 1,
            conflicts: 1,
            theory_conflicts: 1,
            theory_propagations: 1,
            restarts: 1,
            learnt_clauses: 1,
            learnt_literals: 1,
            minimized_lits: 1,
            reductions: 1,
            eog_checks: 1,
            eog_accepted_o1: 1,
            eog_visited: 1,
            eog_promoted: 1,
            sh_exported: 1,
            sh_exported_theory: 1,
            sh_exported_rf: 1,
            sh_imported: 1,
            sh_dropped: 1,
            sh_import_hits: 1,
        };
        let mut acc = Stats::default();
        acc.accumulate(&one);
        acc.accumulate(&one);
        let Stats {
            decisions,
            guided_decisions,
            propagations,
            conflicts,
            theory_conflicts,
            theory_propagations,
            restarts,
            learnt_clauses,
            learnt_literals,
            minimized_lits,
            reductions,
            eog_checks,
            eog_accepted_o1,
            eog_visited,
            eog_promoted,
            sh_exported,
            sh_exported_theory,
            sh_exported_rf,
            sh_imported,
            sh_dropped,
            sh_import_hits,
        } = acc;
        for (name, v) in [
            ("decisions", decisions),
            ("guided_decisions", guided_decisions),
            ("propagations", propagations),
            ("conflicts", conflicts),
            ("theory_conflicts", theory_conflicts),
            ("theory_propagations", theory_propagations),
            ("restarts", restarts),
            ("learnt_clauses", learnt_clauses),
            ("learnt_literals", learnt_literals),
            ("minimized_lits", minimized_lits),
            ("reductions", reductions),
            ("eog_checks", eog_checks),
            ("eog_accepted_o1", eog_accepted_o1),
            ("eog_visited", eog_visited),
            ("eog_promoted", eog_promoted),
            ("sh_exported", sh_exported),
            ("sh_exported_theory", sh_exported_theory),
            ("sh_exported_rf", sh_exported_rf),
            ("sh_imported", sh_imported),
            ("sh_dropped", sh_dropped),
            ("sh_import_hits", sh_import_hits),
        ] {
            assert_eq!(v, 2, "field {name} dropped from accumulate");
        }
    }
}
