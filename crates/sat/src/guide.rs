//! Pluggable decision guides — the hook the paper's *enhanced `decide()`*
//! (Fig. 5 of the paper) plugs into.
//!
//! Before falling back to its default VSIDS + phase-saving heuristic, the
//! solver asks the installed [`DecisionGuide`] for the next decision. The
//! ZPRE guide (in the `zpre` core crate) answers with the first unassigned
//! interference variable under the generated decision order; once all
//! interference variables are assigned it answers `None` and the default
//! heuristics take over — exactly the paper's enhanced DPLL(T) loop.

use crate::lit::{LBool, Lit};

/// A read-only view of the current variable assignment.
#[derive(Copy, Clone)]
pub struct AssignView<'a> {
    assigns: &'a [LBool],
}

impl<'a> AssignView<'a> {
    pub(crate) fn new(assigns: &'a [LBool]) -> AssignView<'a> {
        AssignView { assigns }
    }

    /// Value of variable with dense index `var_index`.
    #[inline]
    pub fn var_value(&self, var_index: usize) -> LBool {
        self.assigns[var_index]
    }

    /// Value of a literal.
    #[inline]
    pub fn lit_value(&self, lit: Lit) -> LBool {
        self.assigns[lit.var().index()].xor_sign(!lit.sign())
    }

    /// Number of variables in the solver.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }
}

/// A decision heuristic consulted before the solver's built-in VSIDS.
pub trait DecisionGuide {
    /// Returns the next decision literal, or `None` to defer to VSIDS.
    /// The returned literal's variable must be unassigned.
    fn next_decision(&mut self, view: AssignView<'_>) -> Option<Lit>;

    /// A new decision level was opened (after the decision was enqueued).
    fn on_new_level(&mut self) {}

    /// The solver backtracked to `level`.
    fn on_backtrack(&mut self, level: u32) {
        let _ = level;
    }

    /// The solver restarted. Under assumptions the restart backtracks to
    /// the assumption-prefix level, not the root, so levels may still be
    /// open when this fires (always after the matching `on_backtrack`).
    fn on_restart(&mut self) {}
}

/// The default guide: always defers to VSIDS.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoGuide;

impl DecisionGuide for NoGuide {
    fn next_decision(&mut self, _view: AssignView<'_>) -> Option<Lit> {
        None
    }
}

/// A guide driven by an explicit priority list of variables.
///
/// `next_decision` returns the first unassigned variable of the list, with a
/// polarity chosen by a seeded xorshift RNG (the paper assigns interference
/// variables "a random Boolean value"). A cursor with per-level snapshots
/// makes the scan amortized O(1) per decision.
#[derive(Debug, Clone)]
pub struct PriorityListGuide {
    /// Variable indices in decision-priority order (highest priority first).
    order: Vec<u32>,
    /// Scan cursor: everything before it is assigned at the current level.
    cursor: usize,
    /// Cursor snapshots, one per open decision level.
    saved: Vec<usize>,
    /// xorshift64* state for polarity choice.
    rng_state: u64,
    /// If `Some(p)`, always use polarity `p` instead of random (ablation).
    fixed_polarity: Option<bool>,
}

impl PriorityListGuide {
    /// Creates a guide deciding `order` (highest priority first) with random
    /// polarities drawn from `seed`.
    pub fn new(order: Vec<u32>, seed: u64) -> PriorityListGuide {
        PriorityListGuide {
            order,
            cursor: 0,
            saved: Vec::new(),
            // xorshift must not start at 0.
            rng_state: seed | 1,
            fixed_polarity: None,
        }
    }

    /// Forces a fixed decision polarity instead of a random one.
    pub fn with_fixed_polarity(mut self, polarity: bool) -> PriorityListGuide {
        self.fixed_polarity = Some(polarity);
        self
    }

    /// The priority list (for inspection/tests).
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Appends variables at the tail of the priority list (lowest
    /// priority), preserving the relative order of everything already
    /// there — frame-k interference variables keep the H1–H4 ranking of
    /// earlier frames ahead of them. Call between solves (root level): the
    /// cursor rewinds so the next scan sees the whole list.
    pub fn extend_order(&mut self, vars: impl IntoIterator<Item = u32>) {
        self.order.extend(vars);
        self.cursor = 0;
        for s in &mut self.saved {
            *s = 0;
        }
    }

    fn next_bool(&mut self) -> bool {
        // xorshift64* — tiny, deterministic, good enough for polarity noise.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        (x.wrapping_mul(0x2545F4914F6CDD1D) >> 63) & 1 == 1
    }
}

impl DecisionGuide for PriorityListGuide {
    fn next_decision(&mut self, view: AssignView<'_>) -> Option<Lit> {
        while self.cursor < self.order.len() {
            let v = self.order[self.cursor] as usize;
            if view.var_value(v).is_undef() {
                let polarity = self.fixed_polarity.unwrap_or_else(|| self.next_bool());
                return Some(crate::lit::Var::new(v as u32).lit(polarity));
            }
            self.cursor += 1;
        }
        None
    }

    fn on_new_level(&mut self) {
        self.saved.push(self.cursor);
    }

    fn on_backtrack(&mut self, level: u32) {
        let level = level as usize;
        if level < self.saved.len() {
            self.cursor = self.saved[level];
            self.saved.truncate(level);
        }
    }

    fn on_restart(&mut self) {
        // Rescan from the front. Levels may still be open (a restart under
        // assumptions keeps the prefix), so zero the snapshots instead of
        // dropping them: a cursor at or before the first unassigned list
        // variable is always valid, it just re-skips assigned vars.
        self.cursor = 0;
        for s in &mut self.saved {
            *s = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn view(assigns: &[LBool]) -> AssignView<'_> {
        AssignView::new(assigns)
    }

    #[test]
    fn no_guide_defers() {
        let assigns = vec![LBool::Undef; 4];
        assert!(NoGuide.next_decision(view(&assigns)).is_none());
    }

    #[test]
    fn priority_guide_picks_first_unassigned() {
        let mut assigns = vec![LBool::Undef; 4];
        let mut g = PriorityListGuide::new(vec![2, 0, 3], 7).with_fixed_polarity(true);
        assert_eq!(
            g.next_decision(view(&assigns)),
            Some(Var::new(2).positive())
        );
        assigns[2] = LBool::True;
        assert_eq!(
            g.next_decision(view(&assigns)),
            Some(Var::new(0).positive())
        );
        assigns[0] = LBool::False;
        assigns[3] = LBool::True;
        assert_eq!(g.next_decision(view(&assigns)), None);
    }

    #[test]
    fn cursor_restores_on_backtrack() {
        let mut assigns = vec![LBool::Undef; 3];
        let mut g = PriorityListGuide::new(vec![0, 1, 2], 7).with_fixed_polarity(false);
        // level 0 decision: var 0
        assert_eq!(
            g.next_decision(view(&assigns)),
            Some(Var::new(0).negative())
        );
        assigns[0] = LBool::False;
        g.on_new_level();
        assert_eq!(
            g.next_decision(view(&assigns)),
            Some(Var::new(1).negative())
        );
        assigns[1] = LBool::False;
        g.on_new_level();
        assert_eq!(
            g.next_decision(view(&assigns)),
            Some(Var::new(2).negative())
        );
        // Backtrack to level 1: vars 1,2 unassigned again.
        assigns[1] = LBool::Undef;
        assigns[2] = LBool::Undef;
        g.on_backtrack(1);
        assert_eq!(
            g.next_decision(view(&assigns)),
            Some(Var::new(1).negative())
        );
    }

    #[test]
    fn restart_rescans_from_front() {
        let mut assigns = vec![LBool::Undef; 2];
        let mut g = PriorityListGuide::new(vec![0, 1], 7).with_fixed_polarity(true);
        assigns[0] = LBool::True;
        assert_eq!(
            g.next_decision(view(&assigns)),
            Some(Var::new(1).positive())
        );
        assigns[0] = LBool::Undef;
        g.on_restart();
        assert_eq!(
            g.next_decision(view(&assigns)),
            Some(Var::new(0).positive())
        );
    }

    #[test]
    fn extend_order_appends_at_lowest_priority_and_rescans() {
        let mut assigns = vec![LBool::Undef; 4];
        let mut g = PriorityListGuide::new(vec![1], 7).with_fixed_polarity(true);
        assigns[1] = LBool::True;
        assert_eq!(g.next_decision(view(&assigns)), None);
        // New frame registers vars 3 and 0 behind the existing order.
        g.extend_order([3, 0]);
        assert_eq!(g.order(), &[1, 3, 0]);
        assert_eq!(
            g.next_decision(view(&assigns)),
            Some(Var::new(3).positive())
        );
        // Earlier-frame vars regain priority once unassigned again.
        assigns[1] = LBool::Undef;
        g.extend_order([2]);
        assert_eq!(
            g.next_decision(view(&assigns)),
            Some(Var::new(1).positive())
        );
    }

    #[test]
    fn restart_with_open_assumption_levels_keeps_snapshots_valid() {
        // Mirror of the solver's assumption-prefix restart: backtrack to
        // level 1 (not 0), then on_restart with a level still open.
        let mut assigns = vec![LBool::Undef; 3];
        let mut g = PriorityListGuide::new(vec![0, 1, 2], 7).with_fixed_polarity(true);
        assigns[0] = LBool::True; // assumption at level 1
        g.on_new_level();
        assert_eq!(
            g.next_decision(view(&assigns)),
            Some(Var::new(1).positive())
        );
        assigns[1] = LBool::True;
        g.on_new_level();
        assigns[2] = LBool::True;
        // Restart keeping the assumption: levels 2.. are undone.
        assigns[1] = LBool::Undef;
        assigns[2] = LBool::Undef;
        g.on_backtrack(1);
        g.on_restart();
        assert_eq!(
            g.next_decision(view(&assigns)),
            Some(Var::new(1).positive())
        );
        // A later backtrack to level 1 must restore a valid cursor.
        assigns[1] = LBool::True;
        g.on_new_level();
        assigns[2] = LBool::True;
        assigns[1] = LBool::Undef;
        assigns[2] = LBool::Undef;
        g.on_backtrack(1);
        assert_eq!(
            g.next_decision(view(&assigns)),
            Some(Var::new(1).positive())
        );
    }

    #[test]
    fn random_polarity_is_deterministic_per_seed() {
        let assigns = vec![LBool::Undef; 1];
        let mut g1 = PriorityListGuide::new(vec![0], 42);
        let mut g2 = PriorityListGuide::new(vec![0], 42);
        assert_eq!(
            g1.next_decision(view(&assigns)),
            g2.next_decision(view(&assigns))
        );
    }

    /// Property: after any interleaving of decisions, propagations,
    /// backtracks, and restarts (sequenced exactly as the solver sequences
    /// its guide callbacks), `next_decision` equals a naive scan-from-zero
    /// over the priority list. Guards the per-level cursor snapshots.
    mod cursor_semantics {
        use super::*;
        use proptest::prelude::*;

        /// Solver-side mirror: assignment array + per-variable level.
        struct Sim {
            assigns: Vec<LBool>,
            assigned_level: Vec<usize>,
            level: usize,
        }

        impl Sim {
            fn new(num_vars: usize) -> Sim {
                Sim {
                    assigns: vec![LBool::Undef; num_vars],
                    assigned_level: vec![0; num_vars],
                    level: 0,
                }
            }

            fn assign(&mut self, v: usize) {
                self.assigns[v] = LBool::True;
                self.assigned_level[v] = self.level;
            }

            fn first_unassigned(&self) -> Option<usize> {
                self.assigns.iter().position(|a| a.is_undef())
            }

            fn undo_above(&mut self, target: usize) {
                for v in 0..self.assigns.len() {
                    if !self.assigns[v].is_undef() && self.assigned_level[v] > target {
                        self.assigns[v] = LBool::Undef;
                    }
                }
            }
        }

        /// The specification `next_decision` must match: first variable of
        /// the priority list unassigned in the current view.
        fn naive_scan(order: &[u32], assigns: &[LBool]) -> Option<usize> {
            order
                .iter()
                .map(|&v| v as usize)
                .find(|&v| assigns[v].is_undef())
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            #[test]
            fn next_decision_matches_naive_scan(
                num_vars in 4usize..10,
                // Priority list over a subset of the vars; duplicates are
                // harmless and stress the skip-assigned path.
                order in prop::collection::vec(0u32..10, 1..12),
                // (op kind, operand) pairs; operands are reduced modulo
                // whatever is legal when the op runs.
                ops in prop::collection::vec((0usize..5, 0usize..16), 1..60),
            ) {
                let order: Vec<u32> =
                    order.into_iter().filter(|&v| (v as usize) < num_vars).collect();
                prop_assume!(!order.is_empty());
                let mut g =
                    PriorityListGuide::new(order.clone(), 0xDECADE).with_fixed_polarity(true);
                let mut sim = Sim::new(num_vars);
                for &(op, operand) in &ops {
                    match op {
                        // Decision: guide consulted first, then the level
                        // opens (on_new_level), then the enqueue — the
                        // solver's decide() ordering.
                        0 => {
                            let got = g.next_decision(view(&sim.assigns));
                            let expect = naive_scan(&order, &sim.assigns);
                            prop_assert_eq!(
                                got.map(|l| l.var().index()),
                                expect,
                                "decision disagrees with naive scan"
                            );
                            let decided = got.map(|l| l.var().index()).or_else(|| {
                                // VSIDS fallback decides some non-list var.
                                sim.first_unassigned()
                            });
                            if let Some(v) = decided {
                                g.on_new_level();
                                sim.level += 1;
                                sim.assign(v);
                            }
                        }
                        // Propagation: an implied assignment at the current
                        // level, no guide callback.
                        1 => {
                            let unassigned: Vec<usize> = (0..num_vars)
                                .filter(|&v| sim.assigns[v].is_undef())
                                .collect();
                            if !unassigned.is_empty() {
                                sim.assign(unassigned[operand % unassigned.len()]);
                            }
                        }
                        // Backtrack to a strictly lower level.
                        2 => {
                            if sim.level > 0 {
                                let target = operand % sim.level;
                                sim.undo_above(target);
                                sim.level = target;
                                g.on_backtrack(target as u32);
                            }
                        }
                        // Restart: cancel_until(0) then on_restart, as in
                        // the solver's assumption-free restart path.
                        3 => {
                            if sim.level > 0 {
                                sim.undo_above(0);
                                sim.level = 0;
                                g.on_backtrack(0);
                            }
                            g.on_restart();
                        }
                        // Assumption-prefix restart: backtrack to some
                        // still-open level, then on_restart — levels stay
                        // open across the restart.
                        _ => {
                            if sim.level > 0 {
                                let target = operand % sim.level;
                                sim.undo_above(target);
                                sim.level = target;
                                g.on_backtrack(target as u32);
                            }
                            g.on_restart();
                        }
                    }
                    // Invariant after every op, probed on a clone so the
                    // check itself cannot mask cursor corruption.
                    let mut probe = g.clone();
                    let got = probe.next_decision(view(&sim.assigns));
                    let expect = naive_scan(&order, &sim.assigns);
                    prop_assert_eq!(got.map(|l| l.var().index()), expect);
                    if let Some(lit) = got {
                        prop_assert!(lit.sign(), "fixed polarity true must be honored");
                    }
                }
            }
        }
    }
}
