//! Cross-member learnt-clause sharing for the parallel portfolio.
//!
//! Every portfolio member solves the *same* CNF+theory instance (one SSA
//! blast, one variable numbering), so any clause learnt by one member is a
//! logical consequence valid for all of them. This module is the transport:
//! a sequence-stamped broadcast pool ([`SharedPool`]) that members export
//! into at conflict time and import from at restart boundaries, through a
//! per-member [`MemberEndpoint`] that batches exports in a bounded outbox
//! and deduplicates imports by clause fingerprint.
//!
//! Lock discipline: the propagate/decide hot path never touches the pool.
//! The only lock-free probe is [`MemberEndpoint::pending`] (one relaxed
//! atomic load, used by the solver's budget stride poll); the pool mutex is
//! taken only inside [`MemberEndpoint::flush`]/[`MemberEndpoint::drain_imports`],
//! which the solver calls at restart-to-root boundaries.
//!
//! Export is filtered by an interference-aware policy ([`ShareClass`]):
//! order-theory EOG-cycle lemmas always ship (they carry their cycle
//! justification so certification replays), clauses over external-RF
//! interference variables ship up to `lbd_max_hot`, and generic learnt
//! clauses only up to the stricter `lbd_max`.

use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::lit::Lit;

/// Sentinel `tag_code` in [`CycleEdgeRaw`] for an untagged (fixed) edge.
pub const NO_TAG: u32 = u32::MAX;

/// Interference class of a shared clause — decides its export LBD cap.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ShareClass {
    /// An order-theory EOG-cycle lemma; carries a cycle justification and
    /// always ships (cycle lemmas are the expensive-to-rediscover ones).
    Theory,
    /// A learnt clause mentioning at least one external-RF interference
    /// variable; ships up to the hot LBD cap.
    Interference,
    /// Any other learnt clause; ships only up to the strict LBD cap.
    Generic,
}

impl ShareClass {
    /// Short stable name for telemetry.
    pub fn name(self) -> &'static str {
        match self {
            ShareClass::Theory => "theory",
            ShareClass::Interference => "rf",
            ShareClass::Generic => "generic",
        }
    }
}

/// One EOG-cycle edge in transport form: raw node indices plus the packed
/// code of the tagging literal ([`NO_TAG`] when the edge is fixed). Keeps
/// `zpre-sat` free of any dependency on the theory's node types.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CycleEdgeRaw {
    /// Source node index of the edge.
    pub from: u32,
    /// Destination node index of the edge.
    pub to: u32,
    /// Packed [`Lit::code`] of the literal that asserted the edge, or
    /// [`NO_TAG`] for a fixed (program-order) edge.
    pub tag_code: u32,
}

/// A clause published to the pool, with enough metadata for the importer to
/// filter, attach, and (for theory lemmas) re-justify it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SharedClause {
    /// Index of the exporting member (importers skip their own exports).
    pub from_member: u32,
    /// Interference class the exporter assigned.
    pub class: ShareClass,
    /// LBD at export time (0 for theory lemmas, which are not learnt via
    /// conflict analysis).
    pub lbd: u32,
    /// The clause literals, as learnt (unsorted).
    pub lits: Vec<Lit>,
    /// EOG-cycle justification for [`ShareClass::Theory`] lemmas.
    pub cycle: Option<Vec<CycleEdgeRaw>>,
}

/// Export/import policy knobs; `--share-lbd-max N` maps to
/// [`ShareConfig::with_lbd_max`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ShareConfig {
    /// LBD cap for [`ShareClass::Generic`] exports.
    pub lbd_max: u32,
    /// LBD cap for [`ShareClass::Interference`] exports (higher: the
    /// interference relation marks these as worth rediscovery cost).
    pub lbd_max_hot: u32,
    /// Hard length cap on any exported clause.
    pub max_clause_len: usize,
    /// Bounded per-member outbox: oldest pending exports are dropped first.
    pub outbox_cap: usize,
    /// Bounded broadcast pool ring: oldest published clauses are evicted.
    pub pool_cap: usize,
    /// Per-exchange import budget: a member returning to the root reads at
    /// most this many pool entries per drain, so a long stretch away from
    /// level 0 cannot flood the clause database (and its watch lists) with
    /// the pool's entire backlog in one exchange. The cursor parks where
    /// the read stopped; anything the ring evicts before the member
    /// catches up is counted as dropped — natural backpressure on slow
    /// members.
    pub import_cap: usize,
}

impl Default for ShareConfig {
    fn default() -> ShareConfig {
        ShareConfig {
            // Glue-level default: only near-glue clauses are worth the
            // propagation cost they impose on every importer (looser caps
            // measurably slow heavily contended proofs).
            lbd_max: 2,
            lbd_max_hot: 4,
            max_clause_len: 64,
            outbox_cap: 256,
            pool_cap: 4096,
            import_cap: 128,
        }
    }
}

impl ShareConfig {
    /// Policy with a custom generic LBD cap; the hot cap scales to `2n` so
    /// interference clauses keep their relative advantage.
    pub fn with_lbd_max(n: u32) -> ShareConfig {
        ShareConfig {
            lbd_max: n,
            lbd_max_hot: n.saturating_mul(2),
            ..ShareConfig::default()
        }
    }
}

/// Stable fingerprint of a clause, invariant under literal order: hashes
/// the sorted packed literal codes with a splitmix-style mixer.
pub fn fingerprint(lits: &[Lit]) -> u64 {
    let mut codes: Vec<u32> = lits.iter().map(|l| l.code() as u32).collect();
    codes.sort_unstable();
    codes.dedup();
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15 ^ (codes.len() as u64);
    for c in codes {
        h ^= c as u64;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
    }
    h
}

fn clause_bytes(c: &SharedClause) -> u64 {
    let cycle = c
        .cycle
        .as_ref()
        .map_or(0, |cy| cy.len() * std::mem::size_of::<CycleEdgeRaw>());
    (std::mem::size_of::<SharedClause>() + c.lits.len() * std::mem::size_of::<Lit>() + cycle) as u64
}

struct PoolInner {
    items: VecDeque<Arc<SharedClause>>,
    /// Sequence number of `items[0]`; readers behind it have missed evicted
    /// clauses (counted as drops on their side).
    base: u64,
}

/// The broadcast pool: a bounded ring of published clauses, stamped with a
/// monotone sequence number readable without the lock.
pub struct SharedPool {
    /// Next sequence number to assign == count of clauses ever published.
    seq: AtomicU64,
    /// Approximate bytes held by the ring (updated under the lock, read
    /// lock-free by [`SharedPool::memory_bytes`]).
    approx_bytes: AtomicU64,
    cap: usize,
    inner: Mutex<PoolInner>,
}

impl std::fmt::Debug for SharedPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedPool")
            .field("published", &self.published())
            .field("cap", &self.cap)
            .finish()
    }
}

impl SharedPool {
    /// New empty pool holding at most `cap` clauses.
    pub fn new(cap: usize) -> Arc<SharedPool> {
        Arc::new(SharedPool {
            seq: AtomicU64::new(0),
            approx_bytes: AtomicU64::new(0),
            cap: cap.max(1),
            inner: Mutex::new(PoolInner {
                items: VecDeque::new(),
                base: 0,
            }),
        })
    }

    /// Count of clauses ever published — one relaxed load, no lock. A
    /// member whose cursor is behind this has imports pending.
    pub fn published(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Approximate bytes held by the ring — one relaxed load, no lock.
    pub fn memory_bytes(&self) -> usize {
        self.approx_bytes.load(Ordering::Relaxed) as usize
    }

    /// Publish a batch, evicting the oldest clauses beyond the ring cap.
    pub fn publish(&self, batch: Vec<SharedClause>) {
        if batch.is_empty() {
            return;
        }
        let mut inner = self.inner.lock().expect("share pool poisoned");
        let mut bytes = self.approx_bytes.load(Ordering::Relaxed);
        let mut seq = self.seq.load(Ordering::Relaxed);
        for c in batch {
            bytes += clause_bytes(&c);
            inner.items.push_back(Arc::new(c));
            seq += 1;
            while inner.items.len() > self.cap {
                let evicted = inner.items.pop_front().expect("non-empty over cap");
                bytes = bytes.saturating_sub(clause_bytes(&evicted));
                inner.base += 1;
            }
        }
        self.approx_bytes.store(bytes, Ordering::Relaxed);
        // Release pairs with the relaxed `published` probe: readers that see
        // the new seq take the lock before touching the items.
        self.seq.store(seq, Ordering::Release);
    }

    /// Copy up to `limit` clauses published at or after `cursor` into `out`
    /// and return the new cursor (parked where the read stopped when the
    /// limit bites). Clauses evicted before the cursor could read them are
    /// skipped; the second return value counts them.
    pub fn read_from(
        &self,
        cursor: u64,
        limit: usize,
        out: &mut Vec<Arc<SharedClause>>,
    ) -> (u64, u64) {
        let inner = self.inner.lock().expect("share pool poisoned");
        let end = inner.base + inner.items.len() as u64;
        let start = cursor.max(inner.base);
        let missed = start - cursor;
        let end = end.min(start + limit as u64);
        for i in start..end {
            out.push(Arc::clone(&inner.items[(i - inner.base) as usize]));
        }
        (end, missed)
    }
}

/// Everything a portfolio member needs to join a pool: carried in
/// `VerifyOptions`, turned into a live [`MemberEndpoint`] inside the solver.
#[derive(Clone, Debug)]
pub struct ShareSpec {
    /// The shared broadcast pool, one per portfolio run.
    pub pool: Arc<SharedPool>,
    /// This member's index (exports are stamped with it; own exports are
    /// skipped on import).
    pub member: u32,
    /// Export/import policy.
    pub cfg: ShareConfig,
}

impl ShareSpec {
    /// Materialize the member's live endpoint.
    pub fn endpoint(&self) -> MemberEndpoint {
        MemberEndpoint {
            pool: Arc::clone(&self.pool),
            member: self.member,
            cfg: self.cfg,
            outbox: VecDeque::new(),
            cursor: 0,
            seen: HashSet::new(),
        }
    }
}

/// Per-member side of the pool: a bounded export outbox, a read cursor, and
/// the fingerprint set that deduplicates both directions.
pub struct MemberEndpoint {
    pool: Arc<SharedPool>,
    member: u32,
    cfg: ShareConfig,
    outbox: VecDeque<SharedClause>,
    cursor: u64,
    seen: HashSet<u64>,
}

impl std::fmt::Debug for MemberEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemberEndpoint")
            .field("member", &self.member)
            .field("outbox", &self.outbox.len())
            .field("cursor", &self.cursor)
            .finish()
    }
}

impl MemberEndpoint {
    /// This member's index.
    pub fn member(&self) -> u32 {
        self.member
    }

    /// The policy this endpoint filters with.
    pub fn config(&self) -> &ShareConfig {
        &self.cfg
    }

    /// Offer a clause for export. Applies the interference-aware filter
    /// (theory lemmas: length cap only; interference: `lbd_max_hot`;
    /// generic: `lbd_max`) and skips clauses already seen in either
    /// direction. Returns `true` if the clause entered the outbox.
    pub fn offer(
        &mut self,
        class: ShareClass,
        lbd: u32,
        lits: &[Lit],
        cycle: Option<Vec<CycleEdgeRaw>>,
    ) -> bool {
        if lits.is_empty() || lits.len() > self.cfg.max_clause_len {
            return false;
        }
        let cap = match class {
            ShareClass::Theory => u32::MAX,
            ShareClass::Interference => self.cfg.lbd_max_hot,
            ShareClass::Generic => self.cfg.lbd_max,
        };
        if lbd > cap {
            return false;
        }
        if !self.seen.insert(fingerprint(lits)) {
            return false;
        }
        while self.outbox.len() >= self.cfg.outbox_cap {
            self.outbox.pop_front();
        }
        self.outbox.push_back(SharedClause {
            from_member: self.member,
            class,
            lbd,
            lits: lits.to_vec(),
            cycle,
        });
        true
    }

    /// Publish the pending outbox to the pool (no-op when empty).
    pub fn flush(&mut self) {
        if self.outbox.is_empty() {
            return;
        }
        let batch: Vec<SharedClause> = self.outbox.drain(..).collect();
        self.pool.publish(batch);
    }

    /// `true` if the pool holds clauses this member has not read yet. One
    /// relaxed atomic load — safe to call from the budget stride poll.
    pub fn pending(&self) -> bool {
        self.pool.published() > self.cursor
    }

    /// Pull unseen foreign clauses published since the last drain, at most
    /// [`ShareConfig::import_cap`] pool entries per call (the cursor parks
    /// where the read stopped, so the next exchange resumes there).
    /// Returns the count of clauses dropped (own exports, duplicates, and
    /// ring evictions the cursor missed).
    pub fn drain_imports(&mut self, out: &mut Vec<Arc<SharedClause>>) -> u64 {
        let mut raw = Vec::new();
        let (cursor, missed) = self
            .pool
            .read_from(self.cursor, self.cfg.import_cap, &mut raw);
        self.cursor = cursor;
        let mut dropped = missed;
        for c in raw {
            if c.from_member == self.member || !self.seen.insert(fingerprint(&c.lits)) {
                dropped += 1;
                continue;
            }
            out.push(c);
        }
        dropped
    }

    /// Bytes attributable to this member's view of the sharing layer: its
    /// outbox and dedup set, plus the broadcast ring itself (counted in
    /// full per member — a deliberate over-estimate that keeps the batch
    /// harness's memory cap honest under `--share`).
    pub fn memory_bytes(&self) -> usize {
        let outbox: u64 = self.outbox.iter().map(clause_bytes).sum();
        outbox as usize
            + self.seen.capacity() * std::mem::size_of::<u64>() * 2
            + self.pool.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lits(codes: &[u32]) -> Vec<Lit> {
        codes.iter().map(|&c| Lit::from_code(c)).collect()
    }

    fn spec(pool: &Arc<SharedPool>, member: u32) -> ShareSpec {
        ShareSpec {
            pool: Arc::clone(pool),
            member,
            cfg: ShareConfig::default(),
        }
    }

    #[test]
    fn fingerprint_is_order_invariant_and_discriminates() {
        let a = Var::new(0).positive();
        let b = Var::new(1).negative();
        let c = Var::new(2).positive();
        assert_eq!(fingerprint(&[a, b, c]), fingerprint(&[c, a, b]));
        assert_ne!(fingerprint(&[a, b]), fingerprint(&[a, c]));
        assert_ne!(fingerprint(&[a]), fingerprint(&[!a]));
    }

    #[test]
    fn pool_round_trip_skips_own_and_duplicate_clauses() {
        let pool = SharedPool::new(64);
        let mut alice = spec(&pool, 0).endpoint();
        let mut bob = spec(&pool, 1).endpoint();

        assert!(alice.offer(ShareClass::Generic, 2, &lits(&[2, 5]), None));
        // Same clause, different literal order: deduplicated at offer time.
        assert!(!alice.offer(ShareClass::Generic, 2, &lits(&[5, 2]), None));
        alice.flush();
        assert!(bob.pending());

        let mut got = Vec::new();
        let dropped = bob.drain_imports(&mut got);
        assert_eq!(got.len(), 1);
        assert_eq!(dropped, 0);
        assert_eq!(got[0].lits, lits(&[2, 5]));
        assert!(!bob.pending());

        // Alice skips her own export on drain.
        let mut own = Vec::new();
        let dropped = alice.drain_imports(&mut own);
        assert!(own.is_empty());
        assert_eq!(dropped, 1);

        // Bob re-offering the imported clause does not echo it back.
        assert!(!bob.offer(ShareClass::Generic, 2, &lits(&[2, 5]), None));
    }

    #[test]
    fn lbd_policy_is_class_aware() {
        let pool = SharedPool::new(64);
        let mut e = spec(&pool, 0).endpoint();
        // Generic capped at lbd_max = 2.
        assert!(!e.offer(ShareClass::Generic, 3, &lits(&[2, 4]), None));
        // Interference ships at the hot cap (4).
        assert!(e.offer(ShareClass::Interference, 3, &lits(&[2, 4]), None));
        // Theory lemmas ignore LBD entirely.
        assert!(e.offer(ShareClass::Theory, 99, &lits(&[6, 8]), None));
        // Length cap applies to everything.
        let long: Vec<Lit> = (0..65).map(|i| Var::new(i).positive()).collect();
        assert!(!e.offer(ShareClass::Theory, 0, &long, None));
    }

    #[test]
    fn ring_evicts_oldest_and_reports_missed() {
        let pool = SharedPool::new(4);
        let mut w = spec(&pool, 0).endpoint();
        let mut r = spec(&pool, 1).endpoint();
        for i in 0..10u32 {
            assert!(w.offer(ShareClass::Theory, 0, &lits(&[2 * i, 2 * i + 1]), None));
        }
        w.flush();
        assert_eq!(pool.published(), 10);
        let mut got = Vec::new();
        let dropped = r.drain_imports(&mut got);
        // Ring cap 4: the first 6 publishes were evicted before the read.
        assert_eq!(got.len(), 4);
        assert_eq!(dropped, 6);
        assert_eq!(got[0].lits, lits(&[12, 13]));
    }

    #[test]
    fn outbox_is_bounded() {
        let pool = SharedPool::new(1024);
        let mut e = ShareSpec {
            pool: Arc::clone(&pool),
            member: 0,
            cfg: ShareConfig {
                outbox_cap: 2,
                ..ShareConfig::default()
            },
        }
        .endpoint();
        for i in 0..5u32 {
            e.offer(ShareClass::Theory, 0, &lits(&[2 * i, 2 * i + 1]), None);
        }
        assert_eq!(e.outbox.len(), 2);
        e.flush();
        assert_eq!(pool.published(), 2);
    }

    #[test]
    fn memory_bytes_tracks_ring_contents() {
        let pool = SharedPool::new(4);
        assert_eq!(pool.memory_bytes(), 0);
        let mut w = spec(&pool, 0).endpoint();
        w.offer(ShareClass::Generic, 1, &lits(&[2, 4, 6]), None);
        w.flush();
        let one = pool.memory_bytes();
        assert!(one > 0);
        for i in 2..10u32 {
            w.offer(
                ShareClass::Generic,
                1,
                &lits(&[2 * i, 2 * i + 2, 2 * i + 4]),
                None,
            );
        }
        w.flush();
        // Ring held at cap: bytes bounded by ~4 equal-sized clauses.
        assert_eq!(pool.memory_bytes(), 4 * one);
        assert!(w.memory_bytes() >= pool.memory_bytes());
    }

    #[test]
    fn import_cap_bounds_each_drain_and_parks_the_cursor() {
        let pool = SharedPool::new(1024);
        let mut w = spec(&pool, 0).endpoint();
        let mut r = ShareSpec {
            pool: Arc::clone(&pool),
            member: 1,
            cfg: ShareConfig {
                import_cap: 3,
                ..ShareConfig::default()
            },
        }
        .endpoint();
        for i in 0..8u32 {
            assert!(w.offer(ShareClass::Theory, 0, &lits(&[2 * i, 2 * i + 1]), None));
        }
        w.flush();
        // Three drains of at most 3: the cursor resumes where it parked,
        // nothing is lost, and the reader stays `pending` until caught up.
        let mut got = Vec::new();
        assert_eq!(r.drain_imports(&mut got), 0);
        assert_eq!(got.len(), 3);
        assert!(r.pending());
        assert_eq!(r.drain_imports(&mut got), 0);
        assert_eq!(got.len(), 6);
        assert_eq!(r.drain_imports(&mut got), 0);
        assert_eq!(got.len(), 8);
        assert!(!r.pending());
        assert_eq!(got[7].lits, lits(&[14, 15]));
    }

    #[test]
    fn share_config_with_lbd_max_scales_hot_cap() {
        let cfg = ShareConfig::with_lbd_max(3);
        assert_eq!(cfg.lbd_max, 3);
        assert_eq!(cfg.lbd_max_hot, 6);
    }
}
