//! Cooperative cancellation and wall-clock deadlines.
//!
//! The budget's non-deterministic limits (deadline, cancel token) are polled
//! on a periodic work-unit stride inside the search loop, so they must fire
//! promptly even on instances that never conflict. These tests drive the
//! solver through a deliberately slow theory to make "wall-clock time per
//! work unit" large and observable.

use std::time::{Duration, Instant};
use zpre_sat::{Budget, CancelToken, Lit, SolveResult, Solver, Theory, TheoryConflict, TheoryOut};

/// A theory that accepts everything but sleeps on each assertion: a stand-in
/// for expensive theory propagation, making solves slow without conflicts.
struct SleepyTheory {
    nap: Duration,
}

impl Theory for SleepyTheory {
    fn assert_lit(&mut self, _lit: Lit, _out: &mut TheoryOut) -> Result<(), TheoryConflict> {
        std::thread::sleep(self.nap);
        Ok(())
    }
    fn new_level(&mut self) {}
    fn backtrack_to(&mut self, _level: u32) {}
    fn explain(&mut self, _lit: Lit) -> Vec<Lit> {
        unreachable!("SleepyTheory never propagates")
    }
}

/// A solver over `n` free theory variables: zero conflicts, one decision +
/// one slow theory assertion per variable.
fn slow_conflict_free_solver(n: usize, nap: Duration) -> Solver<SleepyTheory, zpre_sat::NoGuide> {
    let mut s = Solver::with_parts(SleepyTheory { nap }, zpre_sat::NoGuide);
    for _ in 0..n {
        let v = s.new_var();
        s.mark_theory_var(v);
    }
    s
}

#[test]
fn conflict_free_solve_honors_short_deadline() {
    // Untimed, this solve would take ~4000 x 500 us = 2 s of theory naps.
    let mut s = slow_conflict_free_solver(4000, Duration::from_micros(500));
    s.set_budget(Budget::with_timeout(Duration::from_millis(50)).with_check_stride(16));
    let t0 = Instant::now();
    let result = s.solve();
    let elapsed = t0.elapsed();
    assert_eq!(result, SolveResult::Unknown);
    assert_eq!(s.stats().conflicts, 0, "instance must be conflict-free");
    // Overshoot is bounded by one check stride of work (16 units x 500 us
    // naps = 8 ms); anything near the untimed runtime means the deadline was
    // only honored at conflicts.
    assert!(
        elapsed < Duration::from_millis(500),
        "deadline overshoot: solve ran {elapsed:?} against a 50 ms deadline"
    );
}

#[test]
fn pre_tripped_token_stops_before_any_search() {
    let mut s = slow_conflict_free_solver(100, Duration::from_micros(100));
    let token = CancelToken::new();
    token.cancel();
    s.set_budget(Budget::unlimited().with_cancel(token));
    assert_eq!(s.solve(), SolveResult::Unknown);
    assert_eq!(
        s.stats().decisions,
        0,
        "cancelled before the first decision"
    );
    assert_eq!(s.stats().propagations, 0);
}

#[test]
fn cross_thread_cancellation_fires_mid_solve() {
    let token = CancelToken::new();
    let cancel_after = Duration::from_millis(20);
    let (result, elapsed) = std::thread::scope(|scope| {
        let solver_token = token.clone();
        let handle = scope.spawn(move || {
            // Untimed runtime ~4000 x 500 us = 2 s.
            let mut s = slow_conflict_free_solver(4000, Duration::from_micros(500));
            s.set_budget(
                Budget::unlimited()
                    .with_cancel(solver_token)
                    .with_check_stride(16),
            );
            let t0 = Instant::now();
            let r = s.solve();
            (r, t0.elapsed())
        });
        std::thread::sleep(cancel_after);
        token.cancel();
        handle.join().expect("solver thread panicked")
    });
    assert_eq!(result, SolveResult::Unknown);
    assert!(
        elapsed < Duration::from_millis(500),
        "cancellation latency too high: solver ran {elapsed:?} after a 20 ms cancel"
    );
}

#[test]
fn conflict_cap_determinism_is_stride_independent() {
    // The periodic poll only consults the non-deterministic limits, so the
    // deterministic conflict cap must yield identical stats at any stride.
    fn php_solver(stride: u64) -> (SolveResult, u64) {
        let mut s: Solver = Solver::new();
        // Pigeonhole PHP(6,5): unsatisfiable, needs many conflicts.
        let holes = 5;
        let pigeons = 6;
        let vars: Vec<Vec<_>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for p in &vars {
            let clause: Vec<Lit> = p.iter().map(|v| v.positive()).collect();
            s.add_clause(&clause);
        }
        for (i, p1) in vars.iter().enumerate() {
            for p2 in &vars[i + 1..] {
                for (a, b) in p1.iter().zip(p2) {
                    s.add_clause(&[a.negative(), b.negative()]);
                }
            }
        }
        s.set_budget(Budget::with_max_conflicts(20).with_check_stride(stride));
        let r = s.solve();
        (r, s.stats().conflicts)
    }
    let (r1, c1) = php_solver(1);
    let (r2, c2) = php_solver(Budget::DEFAULT_CHECK_STRIDE);
    assert_eq!(r1, SolveResult::Unknown);
    assert_eq!(r1, r2);
    assert_eq!(
        c1, c2,
        "conflict cap must stay deterministic across strides"
    );
}
