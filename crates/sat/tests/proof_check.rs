//! End-to-end DRAT proof validation: unsatisfiability proofs produced by
//! the solver are checked by the independent forward-RUP checker.

use zpre_sat::{proof, Lit, SolveResult, Solver, Var};

fn php(pigeons: usize, holes: usize) -> (Vec<Vec<Lit>>, usize) {
    let mut clauses = Vec::new();
    let var = |p: usize, h: usize| Var::new((p * holes + h) as u32);
    for p in 0..pigeons {
        clauses.push((0..holes).map(|h| var(p, h).positive()).collect());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                clauses.push(vec![var(p1, h).negative(), var(p2, h).negative()]);
            }
        }
    }
    (clauses, pigeons * holes)
}

fn solve_with_proof(clauses: &[Vec<Lit>], num_vars: usize) -> (SolveResult, zpre_sat::Proof) {
    let mut s = Solver::new();
    s.enable_proof_logging();
    for _ in 0..num_vars {
        s.new_var();
    }
    let mut ok = true;
    for c in clauses {
        ok &= s.add_clause(c);
    }
    let result = if ok { s.solve() } else { SolveResult::Unsat };
    (result, s.take_proof().expect("logging enabled"))
}

#[test]
fn pigeonhole_proofs_validate() {
    for (p, h) in [(2, 1), (3, 2), (4, 3), (5, 4)] {
        let (clauses, nv) = php(p, h);
        let (result, pr) = solve_with_proof(&clauses, nv);
        assert_eq!(result, SolveResult::Unsat, "php({p},{h})");
        assert!(pr.derives_empty(), "php({p},{h}) proof incomplete");
        assert_eq!(
            proof::check(&clauses, &pr),
            Ok(()),
            "php({p},{h}) proof invalid"
        );
    }
}

#[test]
fn xor_cycle_proof_validates() {
    // Odd xor cycle — unsat with small clauses.
    let v: Vec<Var> = (0..3).map(Var::new).collect();
    let mut clauses = Vec::new();
    for (a, b) in [(0, 1), (1, 2), (2, 0)] {
        clauses.push(vec![v[a].positive(), v[b].positive()]);
        clauses.push(vec![v[a].negative(), v[b].negative()]);
    }
    let (result, pr) = solve_with_proof(&clauses, 3);
    assert_eq!(result, SolveResult::Unsat);
    assert_eq!(proof::check(&clauses, &pr), Ok(()));
}

#[test]
fn random_unsat_instances_produce_valid_proofs() {
    // Deterministic pseudo-random unsat instances: a random 3-SAT core
    // plus all eight sign patterns over one triple (guaranteed unsat).
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for round in 0..10 {
        let n = 8 + (round % 4);
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        // All sign patterns over vars 0,1,2 — unsat by itself, but buried
        // among random clauses to make the solver work.
        for mask in 0..8u32 {
            clauses.push(
                (0..3)
                    .map(|i| Var::new(i).lit(mask >> i & 1 == 1))
                    .collect(),
            );
        }
        for _ in 0..(n * 3) {
            let mut c = Vec::new();
            while c.len() < 3 {
                let v = Var::new((next() % n as u64) as u32);
                let l = v.lit(next() & 1 == 1);
                if !c.contains(&l) && !c.contains(&!l) {
                    c.push(l);
                }
            }
            clauses.push(c);
        }
        let (result, pr) = solve_with_proof(&clauses, n);
        assert_eq!(result, SolveResult::Unsat, "round {round}");
        assert_eq!(proof::check(&clauses, &pr), Ok(()), "round {round}");
    }
}

#[test]
fn sat_instances_never_derive_empty() {
    let v: Vec<Var> = (0..4).map(Var::new).collect();
    let clauses = vec![
        vec![v[0].positive(), v[1].positive()],
        vec![v[2].negative(), v[3].positive()],
    ];
    let (result, pr) = solve_with_proof(&clauses, 4);
    assert_eq!(result, SolveResult::Sat);
    assert!(!pr.derives_empty());
}

#[test]
fn drat_text_is_parseable_shape() {
    let (clauses, nv) = php(3, 2);
    let (_, pr) = solve_with_proof(&clauses, nv);
    let text = pr.to_drat();
    assert!(text.lines().all(|l| l.ends_with(" 0") || l == "0"));
    assert!(text.lines().last().unwrap().trim_end().ends_with('0'));
}
