//! Regression tests for incremental (multi-call) solver use: per-call
//! conflict budgets, assumption-prefix restarts, and learnt-cap rescaling.
//!
//! Each test fails on the pre-fix code:
//! - the budget used the *lifetime* conflict counter, pre-exhausting the
//!   second call;
//! - restarts cancelled to level 0, re-deciding every assumption after
//!   every restart;
//! - `max_learnts` armed once behind an `== 0.0` guard, so clauses added
//!   between calls never grew the learnt-DB cap.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use zpre_obs::{Event, EventSink};
use zpre_sat::{Budget, Lit, SolveResult, Solver, Var};

fn vars(s: &mut Solver, n: usize) -> Vec<Var> {
    (0..n).map(|_| s.new_var()).collect()
}

/// PHP(pigeons, holes) clauses, each guarded by `¬g ∨ …` so the instance
/// is only active under the assumption `g` and the solver stays reusable
/// after the Unsat answer.
fn add_guarded_php(s: &mut Solver, g: Lit, pigeons: usize, holes: usize) {
    let x: Vec<Vec<Var>> = (0..pigeons).map(|_| vars(s, holes)).collect();
    for p in 0..pigeons {
        let mut clause: Vec<Lit> = vec![!g];
        clause.extend((0..holes).map(|h| x[p][h].positive()));
        assert!(s.add_clause(&clause));
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                assert!(s.add_clause(&[!g, x[p1][h].negative(), x[p2][h].negative()]));
            }
        }
    }
}

/// Builds the two-instance solver used by the budget regression: a hard
/// PHP(7,6) behind `g1` and an easy PHP(3,2) behind `g2`.
fn budget_fixture() -> (Solver, Lit, Lit) {
    let mut s = Solver::new();
    let g1 = s.new_var().positive();
    let g2 = s.new_var().positive();
    add_guarded_php(&mut s, g1, 7, 6);
    add_guarded_php(&mut s, g2, 3, 2);
    (s, g1, g2)
}

/// The conflict budget is per solve call, not per solver lifetime: after a
/// first call that spends `c1` conflicts, a second call under the same
/// `max_conflicts` cap must still get its full budget.
#[test]
fn conflict_budget_is_per_call() {
    // Measure the hard call's conflict count on an identically-built
    // solver — the search is deterministic.
    let (mut probe, g1, _) = budget_fixture();
    assert_eq!(probe.solve_with_assumptions(&[g1]), SolveResult::Unsat);
    let c1 = probe.stats().conflicts;
    assert!(c1 >= 2, "hard instance must produce conflicts, got {c1}");

    let (mut s, g1, g2) = budget_fixture();
    // c1 + 1: the final budget check of call 1 runs after its last
    // conflict, so the cap must sit strictly above c1 for it to complete.
    s.set_budget(Budget::with_max_conflicts(c1 + 1));
    assert_eq!(s.solve_with_assumptions(&[g1]), SolveResult::Unsat);
    assert_eq!(s.stats().conflicts, c1);
    assert!(s.assumption_core().contains(&g1));

    // The easy instance needs far fewer than c1 conflicts. With a lifetime
    // counter this call starts pre-exhausted and reports Unknown at its
    // first conflict.
    assert_eq!(s.solve_with_assumptions(&[g2]), SolveResult::Unsat);
    assert!(s.assumption_core().contains(&g2));
    let c2 = s.stats().conflicts - c1;
    assert!(c2 >= 1 && c2 <= c1, "easy call spent {c2} conflicts");
}

/// Counts solver decisions on a contiguous variable range, plus restarts.
struct DecisionCounter {
    lo: u32,
    hi: u32,
    decisions: AtomicU64,
    restarts: AtomicU64,
}

impl EventSink for DecisionCounter {
    fn emit(&self, ev: Event) {
        match ev {
            Event::Decision { var, .. } if var >= self.lo && var < self.hi => {
                self.decisions.fetch_add(1, Ordering::Relaxed);
            }
            Event::Restart { .. } => {
                self.restarts.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }
}

/// Restarts back off to the assumption-prefix level, not the root: the
/// assumptions stay assigned, so they are not re-decided after every
/// restart. Verdict, core, and restart accounting are unchanged.
#[test]
fn restarts_keep_the_assumption_prefix_assigned() {
    const A: usize = 50;
    let mut s = Solver::new();
    // The assumption variables come first (dense indices 0..A) and appear
    // in no clause, so conflict analysis never touches them: any re-decide
    // beyond the first descent (or a unit-learnt backjump to the root) is
    // restart churn.
    let asm_vars = vars(&mut s, A);
    let assumptions: Vec<Lit> = asm_vars.iter().map(|v| v.positive()).collect();
    let g = s.new_var().positive();
    add_guarded_php(&mut s, g, 7, 6);

    let counter = Arc::new(DecisionCounter {
        lo: 0,
        hi: A as u32,
        decisions: AtomicU64::new(0),
        restarts: AtomicU64::new(0),
    });
    s.set_event_sink(Some(counter.clone()));
    // Restart as often as possible so prefix churn dominates pre-fix.
    s.set_config(zpre_sat::SolverConfig {
        restart_base: 1,
        ..zpre_sat::SolverConfig::default()
    });

    let mut all = assumptions.clone();
    all.push(g);
    assert_eq!(s.solve_with_assumptions(&all), SolveResult::Unsat);
    // Core preserved: only the guard is responsible, never the free vars.
    assert_eq!(s.assumption_core(), &[g]);

    let restarts = counter.restarts.load(Ordering::Relaxed);
    assert_eq!(restarts, s.stats().restarts, "restart telemetry preserved");
    assert!(
        restarts >= 10,
        "restart_base=1 must restart often: {restarts}"
    );

    // Pre-fix every restart re-decides all A assumptions, giving at least
    // A * restarts decisions on the prefix range; post-fix only the first
    // descent and root-level backjumps (unit learnts) do.
    let asm_decisions = counter.decisions.load(Ordering::Relaxed);
    assert!(
        asm_decisions < (A as u64) * restarts / 2,
        "assumption prefix re-decided on restarts: {asm_decisions} decisions \
         over {restarts} restarts"
    );

    // A satisfiable call under the same prefix still works and honors it.
    s.set_event_sink(None);
    assert_eq!(s.solve_with_assumptions(&assumptions), SolveResult::Sat);
    for a in &assumptions {
        assert!(s.model_value(*a).is_true());
    }
}

/// The learnt-DB cap rescales against the problem size at every solve
/// entry: clauses added between incremental calls grow the cap instead of
/// leaving a first-call-sized cap to thrash `reduce_db`.
#[test]
fn learnt_cap_rescales_with_clause_growth() {
    let mut s = Solver::new();
    let a = s.new_var();
    assert!(s.add_clause(&[a.positive()]));
    assert_eq!(s.solve(), SolveResult::Sat);
    assert_eq!(s.learnt_cap(), 2000.0, "floor cap after a tiny first call");

    // Grow the problem 10×-plus between calls: 30k binary clauses.
    let v = vars(&mut s, 600);
    let mut added = 0usize;
    'outer: for i in 0..v.len() {
        for j in i + 1..v.len() {
            assert!(s.add_clause(&[v[i].positive(), v[j].positive()]));
            added += 1;
            if added == 30_000 {
                break 'outer;
            }
        }
    }
    assert_eq!(s.solve(), SolveResult::Sat);
    assert!(
        s.learnt_cap() >= 30_000.0 / 3.0,
        "cap must track problem growth, got {}",
        s.learnt_cap()
    );
}

/// The cap never shrinks: growth earned by `reduce_db` pressure survives
/// later solve entries (monotone max).
#[test]
fn learnt_cap_is_monotone() {
    let mut s = Solver::new();
    let v = vars(&mut s, 60);
    for i in 0..v.len() - 1 {
        assert!(s.add_clause(&[v[i].positive(), v[i + 1].positive()]));
    }
    assert_eq!(s.solve(), SolveResult::Sat);
    let cap1 = s.learnt_cap();
    assert_eq!(s.solve(), SolveResult::Sat);
    assert!(s.learnt_cap() >= cap1);
}
