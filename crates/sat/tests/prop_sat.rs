//! Property tests: the CDCL solver against brute-force enumeration.

use proptest::prelude::*;
use zpre_sat::{dimacs, Lit, SolveResult, Solver, Var};

/// Brute-force satisfiability by enumerating all 2^n assignments.
fn brute_force_sat(num_vars: usize, clauses: &[Vec<Lit>]) -> bool {
    assert!(num_vars <= 16);
    'outer: for m in 0u32..(1 << num_vars) {
        for c in clauses {
            let sat = c
                .iter()
                .any(|l| ((m >> l.var().index()) & 1 == 1) == l.sign());
            if !sat {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

fn arb_clause(num_vars: usize, max_len: usize) -> impl Strategy<Value = Vec<Lit>> {
    prop::collection::vec((0..num_vars, any::<bool>()), 1..=max_len).prop_map(|lits| {
        lits.into_iter()
            .map(|(v, s)| Var::new(v as u32).lit(s))
            .collect()
    })
}

fn arb_formula() -> impl Strategy<Value = (usize, Vec<Vec<Lit>>)> {
    (3usize..=10).prop_flat_map(|n| {
        prop::collection::vec(arb_clause(n, 4), 1..40).prop_map(move |cs| (n, cs))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solver_agrees_with_brute_force((n, clauses) in arb_formula()) {
        let mut s = Solver::new();
        for _ in 0..n {
            s.new_var();
        }
        let mut ok = true;
        for c in &clauses {
            ok &= s.add_clause(c);
        }
        let result = if ok { s.solve() } else { SolveResult::Unsat };
        let expected = brute_force_sat(n, &clauses);
        match result {
            SolveResult::Sat => {
                prop_assert!(expected);
                // The model must satisfy every clause.
                for c in &clauses {
                    prop_assert!(c.iter().any(|&l| s.model_value(l).is_true()));
                }
            }
            SolveResult::Unsat => prop_assert!(!expected),
            SolveResult::Unknown => prop_assert!(false, "no budget was set"),
        }
    }

    #[test]
    fn solving_twice_is_consistent((n, clauses) in arb_formula()) {
        let mut s = Solver::new();
        for _ in 0..n {
            s.new_var();
        }
        let mut ok = true;
        for c in &clauses {
            ok &= s.add_clause(c);
        }
        if ok {
            let r1 = s.solve();
            let r2 = s.solve();
            prop_assert_eq!(r1, r2);
        }
    }

    #[test]
    fn dimacs_roundtrip((n, clauses) in arb_formula()) {
        let cnf = dimacs::Cnf { num_vars: n, clauses };
        let text = dimacs::write(&cnf);
        let parsed = dimacs::parse(&text).unwrap();
        prop_assert_eq!(cnf, parsed);
    }
}
