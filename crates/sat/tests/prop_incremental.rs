//! Property test for incremental solver use: random interleavings of
//! `add_clause` / `new_var` / `solve_with_assumptions` against a
//! fresh-solver-per-call oracle.
//!
//! Invariants checked at every solve point of the sequence:
//! - the incremental verdict equals a fresh solver given the same clause
//!   set and assumptions (learnt clauses and saved phases must never
//!   change satisfiability);
//! - every returned `assumption_core` is itself unsatisfiable when
//!   re-asserted as units on a fresh solver over the same clauses;
//! - `Sat` models satisfy all clauses and all assumptions.

use proptest::prelude::*;
use zpre_sat::{Lit, SolveResult, Solver, Var};

/// One step of an incremental session.
#[derive(Clone, Debug)]
enum Op {
    /// Allocate `n` fresh variables.
    NewVars(usize),
    /// Add a clause drawn over the variables allocated so far.
    AddClause(Vec<(usize, bool)>),
    /// Solve under assumptions drawn over the variables so far.
    Solve(Vec<(usize, bool)>),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1usize..4).prop_map(Op::NewVars),
        prop::collection::vec((0usize..64, any::<bool>()), 1..5).prop_map(Op::AddClause),
        prop::collection::vec((0usize..64, any::<bool>()), 0..4).prop_map(Op::Solve),
    ]
}

/// Projects raw `(index, sign)` pairs onto the live variable range.
fn lits(raw: &[(usize, bool)], num_vars: usize) -> Vec<Lit> {
    raw.iter()
        .map(|&(v, s)| Var::new((v % num_vars) as u32).lit(s))
        .collect()
}

/// Fresh-solver oracle: verdict of `clauses` under `assumptions`.
fn oracle(num_vars: usize, clauses: &[Vec<Lit>], assumptions: &[Lit]) -> SolveResult {
    let mut s = Solver::new();
    for _ in 0..num_vars {
        s.new_var();
    }
    let mut ok = true;
    for c in clauses {
        ok &= s.add_clause(c);
    }
    if !ok {
        return SolveResult::Unsat;
    }
    s.solve_with_assumptions(assumptions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn incremental_session_matches_fresh_solver_oracle(
        ops in prop::collection::vec(arb_op(), 1..24),
    ) {
        let mut s = Solver::new();
        let mut num_vars = 0usize;
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        // Track trivial-unsat reports from add_clause: after one, the
        // solver is permanently Unsat — so is the oracle's clause set.
        let mut ok = true;

        // Always start with at least one variable so clause projection
        // is well-defined.
        s.new_var();
        num_vars += 1;

        for op in &ops {
            match op {
                Op::NewVars(n) => {
                    for _ in 0..*n {
                        s.new_var();
                    }
                    num_vars += n;
                    prop_assert_eq!(s.num_vars(), num_vars);
                }
                Op::AddClause(raw) => {
                    let c = lits(raw, num_vars);
                    ok &= s.add_clause(&c);
                    clauses.push(c);
                }
                Op::Solve(raw) => {
                    let assumptions = lits(raw, num_vars);
                    let got = s.solve_with_assumptions(&assumptions);
                    let want = oracle(num_vars, &clauses, &assumptions);
                    prop_assert_eq!(got, want, "verdict diverged from fresh solver");
                    if !ok {
                        prop_assert_eq!(got, SolveResult::Unsat);
                    }
                    match got {
                        SolveResult::Sat => {
                            for c in &clauses {
                                prop_assert!(
                                    c.iter().any(|&l| s.model_value(l).is_true()),
                                    "model violates a clause"
                                );
                            }
                            for &a in &assumptions {
                                prop_assert!(s.model_value(a).is_true());
                            }
                        }
                        SolveResult::Unsat => {
                            let core = s.assumption_core().to_vec();
                            for l in &core {
                                prop_assert!(
                                    assumptions.contains(l),
                                    "core literal {l:?} is not an assumption"
                                );
                            }
                            // The core must be unsatisfiable when re-asserted.
                            prop_assert_eq!(
                                oracle(num_vars, &clauses, &core),
                                SolveResult::Unsat,
                                "assumption core is not actually conflicting"
                            );
                        }
                        SolveResult::Unknown => prop_assert!(false, "no budget was set"),
                    }
                }
            }
        }
    }
}
