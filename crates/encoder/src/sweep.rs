//! Frame encoding for incremental bound sweeps.
//!
//! A sweep encodes the program **once** at the horizon bound `K` (the
//! marker-instrumented unrolling from `zpre_prog::unroll_program_sweep`)
//! and then derives every bound `k = 1..=K` as a *frame*: a fresh
//! activation variable `g_k` plus the guarded clauses
//!
//! ```text
//! g_k → ¬m    for every unwinding marker m with remaining count ≤ K − k
//! ```
//!
//! solved under the assumptions `[g_k, ¬g_1, …, ¬g_{k−1}]`. Forcing a
//! marker false forces its iteration's path guard false (the SSA `assume`
//! contributes `guard → m`), which is exactly the unwinding assumption
//! `parent_guard → ¬cond` the scratch bound-`k` unrolling would emit — at
//! every nesting depth, because nested loops unroll to their enclosing
//! copy's remaining count. The frames are therefore equisatisfiable with
//! the per-bound scratch encodings while sharing one solver: learnt
//! clauses, saved phases, EVSIDS activity, and the order theory's fixed
//! program-order skeleton all carry over between bounds.
//!
//! Soundness of the shared base instance (see DESIGN.md §6d):
//!
//! - every memory-model constraint (`rf`, `rf_some`, `ws`, `fr`, mutex and
//!   atomic serialization) is conditioned on event guards, so events of
//!   disabled iterations impose nothing;
//! - the error disjunction `⋁ (guard ∧ ¬cond)` over the horizon-`K`
//!   assertions collapses under a frame to the bound-`k` disjunction (the
//!   extra disjuncts have false guards), so the base encoding's unit
//!   `err` assert needs no per-frame re-emission;
//! - `rf_some` covering clauses likewise need no re-emission: candidate
//!   writes of disabled iterations are excluded by their `rf → guard(w)`
//!   clauses, and the enabled candidates are a superset of none — they
//!   match the scratch candidate set up to provably-impossible pruning;
//! - enabled markers stay free inputs: a model that sets one false simply
//!   describes an execution whose loop exits early, which the scratch
//!   encoding admits too.

use crate::encode::{try_encode_opts, EncodeError, Encoded};
use zpre_analysis::prune::PruneReport;
use zpre_obs::Recorder;
use zpre_prog::ssa::SsaProgram;
use zpre_prog::{sweep_marker_remaining, MemoryModel};
use zpre_sat::{DecisionGuide, Lit, Solver};
use zpre_smt::{OrderTheory, VarKind};

/// A base encoding at the sweep horizon plus the per-bound frame state.
pub struct SweepEncoded {
    /// The horizon-`K` base encoding (shared by every frame).
    pub base: Encoded,
    /// The sweep horizon `K`.
    pub max_bound: u32,
    /// `(remaining count, literal)` of every unwinding marker found in the
    /// blasted instance, i.e. every boolean input named `ndb!zpre!uw!…`.
    pub markers: Vec<(u32, Lit)>,
    /// Activation literal `g_k` of each encoded frame (`frames[k-1]`).
    frames: Vec<Lit>,
}

/// Encodes `ssa` (the horizon-`K` sweep unrolling) once and collects its
/// unwinding markers. The solver must be fresh, exactly as for
/// [`crate::try_encode`].
pub fn encode_sweep<G: DecisionGuide>(
    ssa: &SsaProgram,
    mm: MemoryModel,
    max_bound: u32,
    solver: &mut Solver<OrderTheory, G>,
    rec: Option<&Recorder>,
) -> Result<SweepEncoded, EncodeError> {
    encode_sweep_opts(ssa, mm, max_bound, solver, rec, None)
}

/// [`encode_sweep`] with an optional static-pruning report for the base
/// encoding. Pruning is frame-sound for the same reason the base instance
/// is (DESIGN.md §6d): every pruning justification rests on fixed
/// program-order edges and guard implications, neither of which a frame's
/// `g_k → ¬m` clauses weaken — frames only remove models, which preserves
/// both directions of the pruned/unpruned equisatisfiability argument.
pub fn encode_sweep_opts<G: DecisionGuide>(
    ssa: &SsaProgram,
    mm: MemoryModel,
    max_bound: u32,
    solver: &mut Solver<OrderTheory, G>,
    rec: Option<&Recorder>,
    prune: Option<&PruneReport>,
) -> Result<SweepEncoded, EncodeError> {
    let base = try_encode_opts(ssa, mm, solver, rec, prune)?;
    let mut markers: Vec<(u32, Lit)> = base
        .blaster
        .bool_inputs
        .iter()
        .filter_map(|(name, &lit)| sweep_marker_remaining(name).map(|r| (r, lit)))
        .collect();
    // Deterministic clause emission order regardless of hash-map iteration.
    markers.sort_by_key(|&(r, l)| (r, l.var().index()));
    Ok(SweepEncoded {
        base,
        max_bound,
        markers,
        frames: Vec::new(),
    })
}

impl SweepEncoded {
    /// Encodes frame `k` (bounds must be encoded in order `1..=K`): creates
    /// the activation variable `g_k` and asserts `g_k → ¬m` for every
    /// marker with remaining count `≤ K − k`. Returns `g_k`.
    ///
    /// The clauses are permanent, but inactive frames cost nothing: solved
    /// under `¬g_j` their guarded clauses are satisfied outright.
    pub fn encode_frame<G: DecisionGuide>(
        &mut self,
        k: u32,
        solver: &mut Solver<OrderTheory, G>,
    ) -> Lit {
        assert!(
            k >= 1 && k <= self.max_bound,
            "frame {k} outside the sweep horizon {}",
            self.max_bound
        );
        assert_eq!(
            self.frames.len() as u32 + 1,
            k,
            "frames must be encoded in order"
        );
        let v = solver.new_var();
        self.base
            .registry
            .register(v, VarKind::Ssa, format!("frame!g{k}"));
        let g = v.positive();
        let cutoff = self.max_bound - k;
        for &(r, m) in &self.markers {
            if r <= cutoff {
                solver.add_clause(&[!g, !m]);
            }
        }
        self.frames.push(g);
        g
    }

    /// The assumption set for frame `k`: `[g_k, ¬g_1, …, ¬g_{k−1}]`. The
    /// frame must already be encoded.
    pub fn assumptions(&self, k: u32) -> Vec<Lit> {
        let idx = k as usize - 1;
        let g = self.frames[idx];
        let mut asm = vec![g];
        asm.extend(self.frames[..idx].iter().map(|&f| !f));
        asm
    }

    /// Activation literals of the frames encoded so far.
    pub fn frame_lits(&self) -> &[Lit] {
        &self.frames
    }

    /// Number of markers a frame at bound `k` would force off.
    pub fn disabled_markers(&self, k: u32) -> usize {
        let cutoff = self.max_bound - k.min(self.max_bound);
        self.markers.iter().filter(|&&(r, _)| r <= cutoff).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zpre_prog::build::*;
    use zpre_prog::{to_ssa, unroll_program, unroll_program_sweep, Program};
    use zpre_sat::{NoGuide, SolveResult};

    /// `x` starts at 0 and is incremented while `x < 3`; the assertion
    /// `x != 3` fails exactly at bound k* = 3.
    fn kstar3() -> Program {
        ProgramBuilder::new("kstar3")
            .width(8)
            .shared("x", 0)
            .main(vec![
                while_(lt(v("x"), c(3)), vec![assign("x", add(v("x"), c(1)))]),
                assert_(ne(v("x"), c(3))),
            ])
            .build()
    }

    fn scratch_verdict(p: &Program, k: u32) -> SolveResult {
        let ssa = to_ssa(&unroll_program(p, k));
        let mut solver: Solver<OrderTheory, NoGuide> =
            Solver::with_parts(OrderTheory::new(), NoGuide);
        crate::encode(&ssa, MemoryModel::Sc, &mut solver);
        solver.solve()
    }

    #[test]
    fn frames_match_scratch_bounds() {
        const K: u32 = 5;
        let p = kstar3();
        let sw = unroll_program_sweep(&p, K);
        let ssa = to_ssa(&sw.program);
        let mut solver: Solver<OrderTheory, NoGuide> =
            Solver::with_parts(OrderTheory::new(), NoGuide);
        let mut enc = encode_sweep(&ssa, MemoryModel::Sc, K, &mut solver, None).unwrap();
        assert_eq!(enc.markers.len(), K as usize, "one marker per iteration");
        for k in 1..=K {
            let _g = enc.encode_frame(k, &mut solver);
            let got = solver.solve_with_assumptions(&enc.assumptions(k));
            let want = scratch_verdict(&p, k);
            assert_eq!(got, want, "bound {k}");
            // k* = 3: the violation needs exactly three iterations.
            let expect = if k >= 3 {
                SolveResult::Sat
            } else {
                SolveResult::Unsat
            };
            assert_eq!(got, expect, "bound {k}");
        }
    }

    #[test]
    fn frames_can_revisit_lower_bounds() {
        // Assumption literals are per-call, so bounds can be re-solved in
        // any order once their frames exist.
        const K: u32 = 4;
        let p = kstar3();
        let sw = unroll_program_sweep(&p, K);
        let ssa = to_ssa(&sw.program);
        let mut solver: Solver<OrderTheory, NoGuide> =
            Solver::with_parts(OrderTheory::new(), NoGuide);
        let mut enc = encode_sweep(&ssa, MemoryModel::Sc, K, &mut solver, None).unwrap();
        for k in 1..=K {
            enc.encode_frame(k, &mut solver);
        }
        assert_eq!(
            solver.solve_with_assumptions(&enc.assumptions(4)),
            SolveResult::Sat
        );
        assert_eq!(
            solver.solve_with_assumptions(&enc.assumptions(2)),
            SolveResult::Unsat
        );
        assert_eq!(
            solver.solve_with_assumptions(&enc.assumptions(3)),
            SolveResult::Sat
        );
    }

    #[test]
    fn loop_free_program_has_no_markers() {
        let p = ProgramBuilder::new("straight")
            .shared("x", 0)
            .main(vec![assign("x", c(1)), assert_(eq(v("x"), c(1)))])
            .build();
        let sw = unroll_program_sweep(&p, 3);
        let ssa = to_ssa(&sw.program);
        let mut solver: Solver<OrderTheory, NoGuide> =
            Solver::with_parts(OrderTheory::new(), NoGuide);
        let mut enc = encode_sweep(&ssa, MemoryModel::Sc, 3, &mut solver, None).unwrap();
        assert!(enc.markers.is_empty());
        for k in 1..=3 {
            enc.encode_frame(k, &mut solver);
            assert_eq!(enc.disabled_markers(k), 0);
            assert_eq!(
                solver.solve_with_assumptions(&enc.assumptions(k)),
                SolveResult::Unsat,
                "bound {k}"
            );
        }
    }
}
