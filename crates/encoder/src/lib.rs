//! # zpre-encoder — partial-order verification-condition encoding
//!
//! Encodes an SSA-form multi-threaded program (from `zpre-prog`) as a
//! CDCL(T) problem over the event-order theory (from `zpre-smt`) with a
//! bit-blasted data path (from `zpre-bv`), under SC, TSO or PSO:
//!
//! Φ = Φ_ssa ∧ Φ_po ∧ Φ_rf ∧ Φ_rf_some ∧ Φ_ws ∧ Φ_fr ∧ Φ_err
//!
//! exactly following §3.1 of *Interference Relation-Guided SMT Solving for
//! Multi-Threaded Program Verification* (PPoPP'22), with mutexes and
//! `__VERIFIER_atomic` sections encoded by interference-class
//! serialization selectors (see DESIGN.md for the substitution note).
//!
//! The encoder also produces the variable taxonomy (`V_ssa`, `V_ord`,
//! `V_rf`, `V_ws`) that the decision-order generator in the `zpre` core
//! crate consumes.

#![warn(missing_docs)]

pub mod encode;
pub mod smtlib;
pub mod sweep;

pub use encode::{
    access_analysis, encode, estimate_cnf, try_encode, try_encode_opts, try_encode_traced,
    AccessAnalysis, CnfEstimate, EncodeError, Encoded, ResolvedRead, RfVar, WsVar,
};
// The program-order machinery moved to `zpre-analysis` (it is a static
// analysis, not an encoding concern); re-exported here so downstream
// `zpre_encoder::po_pairs` call sites keep compiling.
pub use smtlib::dump_smtlib;
pub use sweep::{encode_sweep, encode_sweep_opts, SweepEncoded};
pub use zpre_analysis::{po_pairs, preserved, PoClosure};
