//! The verification-condition encoder: Φ = Φ_ssa ∧ Φ_po ∧ Φ_rf ∧ Φ_rf_some
//! ∧ Φ_ws ∧ Φ_fr ∧ Φ_err (§3.1 of the paper), extended with mutex
//! critical-section serialization and atomic-section exclusion constraints
//! (the lock-aware analogue of write serialization; see DESIGN.md).
//!
//! The encoding is emitted directly into a CDCL(T) solver whose theory is
//! the event-order graph:
//!
//! - data-path constraints and guards are bit-blasted (Φ_ssa, Φ_err);
//! - Φ_po becomes *fixed* EOG edges;
//! - each `clk(e₁) < clk(e₂)` atom becomes a registered two-sided ordering
//!   atom (`V_ord`);
//! - each read-from selector `rf` (`V_rf`) gets the paper's clauses
//!   `rf → value equality`, `rf → order`, `rf → guard(write)`, plus the
//!   `Φ_rf_some` covering clause per read;
//! - each write-serialization selector (`V_ws`) *is* a two-sided ordering
//!   atom over its write pair (true ⇔ first write first), so `¬ws` yields
//!   the reverse order exactly as in the paper;
//! - Φ_fr emits `rf ∧ ws ∧ guard(other) → read-before-other` clauses.
//!
//! Every created variable is classified in a [`VarRegistry`] under the
//! paper's taxonomy; interference variables get the paper's name scheme
//! (`rf_<rt>_<ri>_<wt>_<wi>`), which is how the frontend communicates
//! thread information to the solver-side decision-order generator.

use std::collections::HashMap;
use zpre_analysis::prune::PruneReport;
use zpre_analysis::{po_pairs, PoClosure};
use zpre_bv::{Blaster, ClauseSink, Sort, TermId, TermKind, TermStore};
use zpre_obs::{Phase, Recorder};
use zpre_prog::ssa::{EventKind, SsaProgram};
use zpre_prog::MemoryModel;
use zpre_sat::{DecisionGuide, Lit, Solver, Var};
use zpre_smt::{rf_name, ws_name, NodeId, OrderTheory, VarKind, VarRegistry};

/// An emitted read-from selector.
#[derive(Clone, Copy, Debug)]
pub struct RfVar {
    /// The solver variable.
    pub var: Var,
    /// Read event id.
    pub read: usize,
    /// Write event id.
    pub write: usize,
}

/// An emitted write-serialization selector; `var` true ⇔ `first` before
/// `second`.
#[derive(Clone, Copy, Debug)]
pub struct WsVar {
    /// The solver variable (a two-sided ordering atom).
    pub var: Var,
    /// First write event id.
    pub first: usize,
    /// Second write event id.
    pub second: usize,
}

/// A read whose value the pruning pass resolved statically: no rf
/// selectors are emitted for it; Φ_ssa gets an if-then-else chain over
/// `chain` instead (the read's value is the last executed write's value).
#[derive(Clone, Debug)]
pub struct ResolvedRead {
    /// The read event id.
    pub read: usize,
    /// Surviving candidate writes in must-happen-before order; at least
    /// one has a constant-true guard.
    pub chain: Vec<usize>,
}

/// Everything the verifier needs back from the encoding.
pub struct Encoded {
    /// Variable classification (drives the decision order).
    pub registry: VarRegistry,
    /// The bit-blaster (holds input-bit maps for model extraction).
    pub blaster: Blaster,
    /// EOG node of each event (index = event id).
    pub event_nodes: Vec<NodeId>,
    /// Guard literal of each event.
    pub guard_lits: Vec<Lit>,
    /// Read-from selectors.
    pub rf_vars: Vec<RfVar>,
    /// Write-serialization selectors.
    pub ws_vars: Vec<WsVar>,
    /// Critical-section and atomic-block serialization selectors
    /// (documented substitution — the paper's benchmarks model locks via
    /// these interference-class variables).
    pub sync_vars: Vec<Var>,
    /// Mutex critical sections: `(thread, mutex, lock event, unlock event)`.
    pub critical_sections: Vec<(usize, usize, usize, usize)>,
    /// The literal asserting the error condition (always asserted true).
    pub err_lit: Lit,
    /// `true` when the error condition is statically false (no reachable
    /// assertion) — the formula is then trivially unsatisfiable.
    pub trivially_safe: bool,
    /// Reads the pruning pass resolved directly in Φ_ssa (empty when
    /// encoding without a [`PruneReport`]).
    pub resolved_reads: Vec<ResolvedRead>,
    /// Write pairs whose serialization polarity was fixed statically, in
    /// both key orders: `(a, b) → true` means `a` definitely before `b`.
    pub ws_fixed: HashMap<(usize, usize), bool>,
}

/// A structural problem with the encoding input, reported instead of a
/// panic so callers (portfolio members, services) can degrade gracefully.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EncodeError {
    /// [`try_encode`] was handed a solver that already has variables.
    SolverNotFresh {
        /// Number of pre-existing variables.
        vars: usize,
    },
    /// The program-order edges of the input form a cycle — the SSA event
    /// stream is malformed.
    CyclicProgramOrder,
    /// An `Unlock` event has no matching `Lock` on the same mutex.
    UnlockWithoutLock {
        /// Thread containing the unmatched unlock.
        thread: usize,
        /// Event id of the unmatched unlock.
        event: usize,
    },
    /// The pre-blast size estimate ([`estimate_cnf`]) exceeds the caller's
    /// memory cap: blasting the encoding would likely OOM, so it is refused
    /// up front. Callers treat this like in-search memory exhaustion and
    /// degrade (smaller bound, `Unknown`) instead of dying.
    EncodingTooLarge {
        /// Estimated resident bytes the encoding would need.
        estimated_bytes: u64,
        /// The cap the estimate was checked against.
        cap_bytes: u64,
    },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::SolverNotFresh { vars } => {
                write!(f, "encode requires a fresh solver ({vars} variables exist)")
            }
            EncodeError::CyclicProgramOrder => {
                write!(f, "program order must be acyclic")
            }
            EncodeError::UnlockWithoutLock { thread, event } => {
                write!(
                    f,
                    "unlock without lock in SSA event stream (thread {thread}, event {event})"
                )
            }
            EncodeError::EncodingTooLarge {
                estimated_bytes,
                cap_bytes,
            } => {
                write!(
                    f,
                    "encoding too large: estimated {estimated_bytes} bytes exceeds the \
                     {cap_bytes}-byte memory cap"
                )
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Sink wrapper that classifies every blaster-created variable as `V_ssa`.
struct RegSink<'a, G: DecisionGuide> {
    solver: &'a mut Solver<OrderTheory, G>,
    registry: &'a mut VarRegistry,
}

impl<G: DecisionGuide> ClauseSink for RegSink<'_, G> {
    fn new_aux_var(&mut self) -> Var {
        let v = self.solver.new_var();
        self.registry
            .register(v, VarKind::Ssa, format!("aux{}", v.index()));
        v
    }
    fn new_input_var(&mut self, name: &str) -> Var {
        let v = self.solver.new_var();
        self.registry.register(v, VarKind::Ssa, name);
        v
    }
    fn add_clause_sink(&mut self, lits: &[Lit]) -> bool {
        self.solver.add_clause(lits)
    }
}

/// Encodes `ssa` under `mm` into `solver`. The solver must be fresh (no
/// variables yet) and its theory empty. Panics on malformed input; use
/// [`try_encode`] to get a typed [`EncodeError`] instead.
pub fn encode<G: DecisionGuide>(
    ssa: &SsaProgram,
    mm: MemoryModel,
    solver: &mut Solver<OrderTheory, G>,
) -> Encoded {
    match try_encode(ssa, mm, solver) {
        Ok(enc) => enc,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible variant of [`encode`]: structural problems with the input
/// (cyclic program order, unmatched unlocks, a non-fresh solver) come back
/// as [`EncodeError`] values instead of panics.
pub fn try_encode<G: DecisionGuide>(
    ssa: &SsaProgram,
    mm: MemoryModel,
    solver: &mut Solver<OrderTheory, G>,
) -> Result<Encoded, EncodeError> {
    try_encode_traced(ssa, mm, solver, None)
}

/// [`try_encode`] under `zpre-obs` phase spans: the whole encoding runs in an
/// `encode` span labeled with the memory model, and the bit-blasting of the
/// data path (Φ_ssa, event guards, Φ_err) in a nested `blast` span.
pub fn try_encode_traced<G: DecisionGuide>(
    ssa: &SsaProgram,
    mm: MemoryModel,
    solver: &mut Solver<OrderTheory, G>,
    rec: Option<&Recorder>,
) -> Result<Encoded, EncodeError> {
    try_encode_opts(ssa, mm, solver, rec, None)
}

/// [`try_encode_traced`] with an optional [`PruneReport`] from
/// `zpre-analysis`. Without a report the encoding is exactly the historic
/// one; with a report the Φ_rf candidate sets come from the report,
/// resolved reads become if-then-else chains in Φ_ssa, statically fixed ws
/// pairs get no selector, and mutex-serialized ws pairs ride on plain
/// ordering atoms (`V_ord`) instead of interference variables. The report
/// must have been computed for the same `ssa` and `mm`.
pub fn try_encode_opts<G: DecisionGuide>(
    ssa: &SsaProgram,
    mm: MemoryModel,
    solver: &mut Solver<OrderTheory, G>,
    rec: Option<&Recorder>,
    prune: Option<&PruneReport>,
) -> Result<Encoded, EncodeError> {
    let _encode_span = rec.map(|r| r.span_labeled(Phase::Encode, Some(mm.name())));
    debug_assert!(
        prune.is_none_or(|p| p.mm == mm && p.candidates.len() == ssa.events.len()),
        "prune report computed for a different program or memory model"
    );
    if solver.num_vars() != 0 {
        return Err(EncodeError::SolverNotFresh {
            vars: solver.num_vars(),
        });
    }
    let mut registry = VarRegistry::new();
    let mut blaster = Blaster::new();
    let ts = &ssa.store;

    // --- EOG nodes (one per event) and Φ_po -------------------------------
    let event_nodes: Vec<NodeId> = ssa
        .events
        .iter()
        .map(|_| solver.theory.add_node())
        .collect();
    let pairs = po_pairs(ssa, mm);
    for &(a, b) in &pairs {
        let ok = solver.theory.add_fixed_edge(event_nodes[a], event_nodes[b]);
        if !ok {
            return Err(EncodeError::CyclicProgramOrder);
        }
    }
    let closure = PoClosure::new(ssa.events.len(), &pairs);

    // --- Φ_ssa -------------------------------------------------------------
    let blast_span = rec.map(|r| r.span(Phase::Blast));
    {
        let mut sink = RegSink {
            solver,
            registry: &mut registry,
        };
        for &cst in &ssa.constraints {
            blaster.assert_true(ts, cst, &mut sink);
        }
    }

    // --- Event guards ------------------------------------------------------
    let guard_lits: Vec<Lit> = {
        let mut sink = RegSink {
            solver,
            registry: &mut registry,
        };
        ssa.events
            .iter()
            .map(|e| blaster.blast_bool(ts, e.guard, &mut sink))
            .collect()
    };

    // --- Φ_err --------------------------------------------------------------
    // err = ⋁ (guard ∧ ¬cond); assert it (SAT ⇔ property violated). The
    // working clone `ts2` is shared with the resolved-read chains below:
    // the blaster memoizes by `TermId`, so every term created after the
    // clone must come from the *same* store or ids would collide.
    let mut ts2 = ts.clone();
    let (err_lit, trivially_safe) = {
        let mut err = ts2.fls();
        for &(g, cond) in &ssa.assertions {
            let nc = ts2.not(cond);
            let violated = ts2.and(g, nc);
            err = ts2.or(err, violated);
        }
        let trivially_safe = matches!(ts2.kind(err), TermKind::BoolConst(false));
        let mut sink = RegSink {
            solver,
            registry: &mut registry,
        };
        let lit = blaster.blast_bool(&ts2, err, &mut sink);
        sink.add_clause_sink(&[lit]);
        (lit, trivially_safe)
    };

    // --- Resolved reads (pruning pass) ---------------------------------------
    // A resolved read's value is the last executed write of its chain:
    // guard(r) → value(r) = ite(guard(wₙ), value(wₙ), … value(w₀) …).
    let mut resolved_reads: Vec<ResolvedRead> = Vec::new();
    if let Some(rep) = prune {
        let value_of = |eid: usize| -> TermId {
            match ssa.events[eid].kind {
                EventKind::Read { value, .. } | EventKind::Write { value, .. } => value,
                _ => unreachable!("value of a non-access event"),
            }
        };
        let ite = |ts2: &mut TermStore, c: TermId, t: TermId, e: TermId| match ts2.sort(t) {
            Sort::Bool => ts2.bool_ite(c, t, e),
            Sort::Bv(_) => ts2.bv_ite(c, t, e),
        };
        for (r, chain) in rep.resolved.iter().enumerate() {
            let Some(chain) = chain else { continue };
            let mut val = value_of(chain[0]);
            for &w in &chain[1..] {
                val = ite(&mut ts2, ssa.events[w].guard, value_of(w), val);
            }
            let eq = match ts2.sort(val) {
                Sort::Bool => ts2.iff(value_of(r), val),
                Sort::Bv(_) => ts2.eq(value_of(r), val),
            };
            let imp = ts2.implies(ssa.events[r].guard, eq);
            let mut sink = RegSink {
                solver,
                registry: &mut registry,
            };
            blaster.assert_true(&ts2, imp, &mut sink);
            resolved_reads.push(ResolvedRead {
                read: r,
                chain: chain.clone(),
            });
        }
    }
    if let Some(s) = blast_span {
        s.close();
    }

    // --- Ordering-atom cache (V_ord) ----------------------------------------
    // One two-sided atom per unordered node pair; `lit` means a→b.
    let mut ord_cache: HashMap<(usize, usize), Lit> = HashMap::new();
    let mut get_ord = |a: usize,
                       b: usize,
                       solver: &mut Solver<OrderTheory, G>,
                       registry: &mut VarRegistry|
     -> Lit {
        if let Some(&l) = ord_cache.get(&(a, b)) {
            return l;
        }
        let v = solver.new_var();
        registry.register(v, VarKind::Ord, format!("ord_{a}_{b}"));
        solver
            .theory
            .register_atom(v, NodeId(a as u32), NodeId(b as u32));
        solver.mark_theory_var(v);
        ord_cache.insert((a, b), v.positive());
        ord_cache.insert((b, a), v.negative());
        v.positive()
    };

    // --- Reads, writes per shared variable ----------------------------------
    let analysis = access_analysis(ssa, &closure);
    let num_vars = ssa.shared_names.len();
    let writes_of = &analysis.writes_of;
    let value_of = |eid: usize| -> TermId {
        match ssa.events[eid].kind {
            EventKind::Read { value, .. } | EventKind::Write { value, .. } => value,
            _ => unreachable!("value of a non-access event"),
        }
    };

    // --- Φ_rf and Φ_rf_some ---------------------------------------------------
    let mut rf_vars: Vec<RfVar> = Vec::new();
    let mut rf_of_read: Vec<Vec<usize>> = vec![Vec::new(); ssa.events.len()];
    let _ = num_vars;
    for reads in &analysis.reads_of {
        for &r in reads {
            // With a prune report: resolved reads were handled in Φ_ssa
            // above, and surviving candidate sets (a subset of the plain
            // MHB filtering) refine the `#write` count H4 sees.
            if prune.is_some_and(|rep| rep.resolved[r].is_some()) {
                continue;
            }
            let candidates: &[usize] = match prune {
                Some(rep) => &rep.candidates[r],
                None => &analysis.candidates[r],
            };
            let writes = candidates.len() as u32;
            let rev = &ssa.events[r];
            let mut some_clause: Vec<Lit> = vec![!guard_lits[r]];
            for &w in candidates {
                let wev = &ssa.events[w];
                let var = solver.new_var();
                registry.register(
                    var,
                    VarKind::Rf {
                        external: wev.thread != rev.thread,
                        writes,
                    },
                    rf_name(rev.thread, rev.pos, wev.thread, wev.pos),
                );
                let f = var.positive();
                // rf → (value_r = value_w)
                {
                    let mut sink = RegSink {
                        solver,
                        registry: &mut registry,
                    };
                    blaster.assert_implies_eq(ts, &[f], value_of(r), value_of(w), &mut sink);
                }
                // rf → clk(w) < clk(r)   (skip when program order already
                // guarantees it — the atom would be fixed anyway).
                if !closure.reaches(w, r) {
                    let ord = get_ord(w, r, solver, &mut registry);
                    solver.add_clause(&[!f, ord]);
                }
                // rf → guard(w)
                solver.add_clause(&[!f, guard_lits[w]]);
                rf_of_read[r].push(rf_vars.len());
                rf_vars.push(RfVar {
                    var,
                    read: r,
                    write: w,
                });
                some_clause.push(f);
            }
            // Φ_rf_some: an executed read takes its value from some write.
            solver.add_clause(&some_clause);
        }
    }

    // --- Φ_ws ------------------------------------------------------------------
    let mut ws_vars: Vec<WsVar> = Vec::new();
    let mut ws_lit: HashMap<(usize, usize), Lit> = HashMap::new();
    let mut ws_fixed: HashMap<(usize, usize), bool> = HashMap::new();
    for ws in writes_of.iter() {
        for i in 0..ws.len() {
            for j in i + 1..ws.len() {
                let (w1, w2) = (ws[i], ws[j]);
                if let Some(rep) = prune {
                    // Statically fixed pair: no selector at all; Φ_fr
                    // consults the fixed polarity instead.
                    if let Some(&first) = rep.ws_fixed.get(&(w1, w2)) {
                        ws_fixed.insert((w1, w2), first);
                        ws_fixed.insert((w2, w1), !first);
                        continue;
                    }
                    // Mutex-serialized pair: same two-sided ordering-atom
                    // semantics, but classified `V_ord` — the section
                    // serialization selectors already decide it, so it is
                    // not an interference variable.
                    if rep.ws_serialized.contains(&(w1, w2)) {
                        let l = get_ord(w1, w2, solver, &mut registry);
                        ws_lit.insert((w1, w2), l);
                        ws_lit.insert((w2, w1), !l);
                        continue;
                    }
                }
                let var = solver.new_var();
                let (e1, e2) = (&ssa.events[w1], &ssa.events[w2]);
                registry.register(
                    var,
                    VarKind::Ws,
                    ws_name(e1.thread, e1.pos, e2.thread, e2.pos),
                );
                // The ws selector *is* a two-sided ordering atom:
                // true ⇒ clk(w1)<clk(w2), false ⇒ clk(w2)<clk(w1).
                solver
                    .theory
                    .register_atom(var, event_nodes[w1], event_nodes[w2]);
                solver.mark_theory_var(var);
                ws_lit.insert((w1, w2), var.positive());
                ws_lit.insert((w2, w1), var.negative());
                ws_vars.push(WsVar {
                    var,
                    first: w1,
                    second: w2,
                });
            }
        }
    }

    // --- Φ_fr -------------------------------------------------------------------
    // rf(w,r) ∧ (w before k) ∧ guard(k) → clk(r) < clk(k).
    for &rf in &rf_vars {
        let v = ssa.events[rf.read].kind.var().expect("read event");
        for &k in &writes_of[v] {
            if k == rf.write {
                continue;
            }
            let f = rf.var.positive();
            // `w before k` is a selector literal, an ordering atom
            // (mutex-serialized pair), or a statically fixed polarity.
            let before = match ws_lit.get(&(rf.write, k)) {
                Some(&l) => Some(l),
                None => match ws_fixed.get(&(rf.write, k)) {
                    // Fixed true: the antecedent literal is settled, emit
                    // the clause without it.
                    Some(true) => None,
                    // Fixed false (or an unreachable gap): the clause is
                    // vacuously satisfied.
                    Some(false) | None => continue,
                },
            };
            if closure.reaches(rf.read, k) {
                continue; // order already guaranteed by po
            }
            let mut clause = vec![!f, !guard_lits[k]];
            if let Some(before) = before {
                clause.push(!before);
            }
            let ord = get_ord(rf.read, k, solver, &mut registry);
            clause.push(ord);
            solver.add_clause(&clause);
        }
    }

    // --- Mutex critical sections ---------------------------------------------
    let mut sync_vars: Vec<Var> = Vec::new();
    let mut critical_sections: Vec<(usize, usize, usize, usize)> = Vec::new();
    {
        // Collect critical sections per (thread, mutex) by a per-mutex stack.
        #[derive(Clone)]
        struct Cs {
            thread: usize,
            mutex: usize,
            lock: usize,
            unlock: usize,
        }
        let mut sections: Vec<Cs> = Vec::new();
        for t in 0..ssa.num_threads() {
            let mut stacks: HashMap<usize, Vec<usize>> = HashMap::new();
            for e in ssa.thread_events(t) {
                match e.kind {
                    EventKind::Lock { mutex } => stacks.entry(mutex).or_default().push(e.id),
                    EventKind::Unlock { mutex } => {
                        let Some(lock) = stacks.entry(mutex).or_default().pop() else {
                            return Err(EncodeError::UnlockWithoutLock {
                                thread: t,
                                event: e.id,
                            });
                        };
                        critical_sections.push((t, mutex, lock, e.id));
                        sections.push(Cs {
                            thread: t,
                            mutex,
                            lock,
                            unlock: e.id,
                        });
                    }
                    _ => {}
                }
            }
        }
        for i in 0..sections.len() {
            for j in i + 1..sections.len() {
                let (a, b) = (sections[i].clone(), sections[j].clone());
                if a.mutex != b.mutex || a.thread == b.thread {
                    continue;
                }
                let var = solver.new_var();
                registry.register(
                    var,
                    VarKind::Ws,
                    format!("ws_cs_{}_{}_{}_{}", a.thread, a.lock, b.thread, b.lock),
                );
                sync_vars.push(var);
                let s = var.positive();
                let (ga, gb) = (guard_lits[a.lock], guard_lits[b.lock]);
                //  s → clk(unlock_a) < clk(lock_b) ; ¬s → clk(unlock_b) < clk(lock_a)
                let o1 = get_ord(a.unlock, b.lock, solver, &mut registry);
                let o2 = get_ord(b.unlock, a.lock, solver, &mut registry);
                solver.add_clause(&[!ga, !gb, !s, o1]);
                solver.add_clause(&[!ga, !gb, s, o2]);
            }
        }
    }

    // --- Atomic sections -------------------------------------------------------
    for (bi, blk) in ssa.atomic_blocks.iter().enumerate() {
        for e in &ssa.events {
            if e.thread == blk.thread {
                continue;
            }
            let Some(v) = e.kind.var() else { continue };
            if !blk.vars.contains(&v) {
                continue;
            }
            let var = solver.new_var();
            registry.register(
                var,
                VarKind::Ws,
                format!("ws_at_{}_{}_{}", bi, e.thread, e.pos),
            );
            sync_vars.push(var);
            let s = var.positive();
            let (ge, gb) = (guard_lits[e.id], guard_lits[blk.begin]);
            // s → e before the block ; ¬s → e after the block.
            let o1 = get_ord(e.id, blk.begin, solver, &mut registry);
            let o2 = get_ord(blk.end, e.id, solver, &mut registry);
            solver.add_clause(&[!ge, !gb, !s, o1]);
            solver.add_clause(&[!ge, !gb, s, o2]);
        }
    }

    Ok(Encoded {
        registry,
        blaster,
        event_nodes,
        guard_lits,
        rf_vars,
        ws_vars,
        sync_vars,
        critical_sections,
        err_lit,
        trivially_safe,
        resolved_reads,
        ws_fixed,
    })
}

/// Read/write inventory and read-from candidate sets, shared between the
/// solver-level encoding and the SMT-LIB dump.
pub struct AccessAnalysis {
    /// Write event ids per shared variable.
    pub writes_of: Vec<Vec<usize>>,
    /// Read event ids per shared variable.
    pub reads_of: Vec<Vec<usize>>,
    /// Read-from candidate writes per *read event id* (empty for
    /// non-reads): writes not program-order after the read and not provably
    /// shadowed by an always-executed intermediate write.
    pub candidates: Vec<Vec<usize>>,
}

/// Computes the access inventory of `ssa` with respect to the program-order
/// closure.
pub fn access_analysis(ssa: &SsaProgram, closure: &PoClosure) -> AccessAnalysis {
    let ts = &ssa.store;
    let num_vars = ssa.shared_names.len();
    let mut writes_of: Vec<Vec<usize>> = vec![Vec::new(); num_vars];
    let mut reads_of: Vec<Vec<usize>> = vec![Vec::new(); num_vars];
    for e in &ssa.events {
        match e.kind {
            EventKind::Write { var, .. } => writes_of[var].push(e.id),
            EventKind::Read { var, .. } => reads_of[var].push(e.id),
            _ => {}
        }
    }
    let always_true_guard =
        |eid: usize| matches!(ts.kind(ssa.events[eid].guard), TermKind::BoolConst(true));
    let mut candidates: Vec<Vec<usize>> = vec![Vec::new(); ssa.events.len()];
    for (v, reads) in reads_of.iter().enumerate() {
        for &r in reads {
            candidates[r] = writes_of[v]
                .iter()
                .copied()
                .filter(|&w| !closure.reaches(r, w))
                .filter(|&w| {
                    !writes_of[v].iter().any(|&w2| {
                        w2 != w
                            && always_true_guard(w2)
                            && closure.reaches(w, w2)
                            && closure.reaches(w2, r)
                    })
                })
                .collect();
        }
    }
    AccessAnalysis {
        writes_of,
        reads_of,
        candidates,
    }
}

/// A coarse pre-blast size estimate of the verification condition.
///
/// Produced by [`estimate_cnf`] *without* running the blaster, so callers
/// with a memory budget can refuse a pathological encoding before it
/// allocates anything. The numbers are deliberate over-approximations
/// (within a small constant factor of the real CNF): the estimate only has
/// to catch encodings that are orders of magnitude too big, not to be
/// precise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CnfEstimate {
    /// Estimated solver variables (SSA bits + interference selectors).
    pub vars: u64,
    /// Estimated CNF clauses across Φ_ssa ∧ Φ_po ∧ Φ_rf ∧ Φ_ws ∧ Φ_fr ∧ Φ_err.
    pub clauses: u64,
    /// Estimated read-from selectors (Σ per-read candidate writes).
    pub rf_selectors: u64,
    /// Estimated write-serialization selectors (Σ per-var write pairs).
    pub ws_selectors: u64,
}

impl CnfEstimate {
    /// Estimated resident bytes of the blasted encoding inside the solver,
    /// using the same per-variable and per-clause accounting as
    /// `Solver::memory_bytes` (64 bytes/var bookkeeping, ~32 bytes/clause
    /// for arena words plus watchers at the observed mean clause width).
    pub fn bytes(&self) -> u64 {
        self.vars * 64 + self.clauses * 32
    }
}

/// Estimates the blasted size of `ssa`'s verification condition under `mm`
/// without creating a solver or a blaster. Runs the same program-order
/// closure and access analysis as [`try_encode`], then prices each
/// constraint family:
///
/// - data path: one variable per bit-vector bit, ~8 clauses per bit for
///   linear circuits and ~4·w² for multipliers;
/// - Φ_rf: one selector per (read, candidate write) plus a value-equality
///   ladder of ~2 clauses per bit;
/// - Φ_ws: one two-sided ordering selector per unordered same-variable
///   write pair;
/// - Φ_fr: one clause per (rf candidate, other write of the variable).
///
/// Errors mirror [`try_encode`]'s structural checks where they can be
/// detected this early (a cyclic program order).
pub fn estimate_cnf(ssa: &SsaProgram, mm: MemoryModel) -> Result<CnfEstimate, EncodeError> {
    let ts = &ssa.store;
    let pairs = po_pairs(ssa, mm);
    // Kahn pre-check: `PoClosure::new` asserts acyclicity, so detect the
    // malformed case here and report it as the typed error instead.
    {
        let n = ssa.events.len();
        let mut indeg = vec![0usize; n];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in &pairs {
            adj[a].push(b);
            indeg[b] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0usize;
        while let Some(x) = queue.pop() {
            seen += 1;
            for &y in &adj[x] {
                indeg[y] -= 1;
                if indeg[y] == 0 {
                    queue.push(y);
                }
            }
        }
        if seen != n {
            return Err(EncodeError::CyclicProgramOrder);
        }
    }
    let closure = PoClosure::new(ssa.events.len(), &pairs);
    let analysis = access_analysis(ssa, &closure);

    // Data path: price every hash-consed term once (the blaster memoizes).
    let mut vars: u64 = 0;
    let mut clauses: u64 = 0;
    for i in 0..ts.len() {
        let t = TermId(i as u32);
        let w = match ts.sort(t) {
            zpre_bv::Sort::Bool => 1u64,
            zpre_bv::Sort::Bv(w) => w as u64,
        };
        vars += w;
        clauses += match ts.kind(t) {
            TermKind::BvMul(_, _) => 4 * w * w,
            _ => 8 * w,
        };
    }

    // Interference selectors and their clause families.
    let width_of = |eid: usize| -> u64 {
        match ssa.events[eid].kind {
            EventKind::Read { value, .. } | EventKind::Write { value, .. } => {
                match ts.sort(value) {
                    zpre_bv::Sort::Bool => 1,
                    zpre_bv::Sort::Bv(w) => w as u64,
                }
            }
            _ => 1,
        }
    };
    let mut rf_selectors: u64 = 0;
    for (r, cands) in analysis.candidates.iter().enumerate() {
        if cands.is_empty() {
            continue;
        }
        rf_selectors += cands.len() as u64;
        // rf → value-eq (~2 clauses/bit), rf → order, rf → guard, and the
        // Φ_rf_some covering clause; Φ_fr adds one clause per other write.
        let w = width_of(r);
        clauses += cands.len() as u64 * (2 * w + 2) + 1;
    }
    let mut ws_selectors: u64 = 0;
    for writes in &analysis.writes_of {
        // One selector per same-variable write pair (po-ordered pairs are
        // settled by theory propagation but still get a selector).
        let n = writes.len() as u64;
        let pairs = n * n.saturating_sub(1) / 2;
        ws_selectors += pairs;
        clauses += pairs * 2;
    }
    for (v, reads) in analysis.reads_of.iter().enumerate() {
        let writes = analysis.writes_of[v].len() as u64;
        clauses += reads.len() as u64 * writes.saturating_mul(writes.saturating_sub(1));
    }
    vars += rf_selectors + ws_selectors;
    // Ordering atoms: at most one per rf (read↔write order) beyond the ws
    // selectors, which are ordering atoms themselves.
    vars += rf_selectors;

    Ok(CnfEstimate {
        vars,
        clauses,
        rf_selectors,
        ws_selectors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zpre_prog::build::*;
    use zpre_prog::{to_ssa, unroll_program, Program};
    use zpre_sat::{NoGuide, SolveResult};
    use zpre_smt::ClassCounts;

    fn fig2() -> Program {
        ProgramBuilder::new("fig2")
            .shared("x", 0)
            .shared("y", 0)
            .shared("m", 0)
            .shared("n", 0)
            .thread(
                "t1",
                vec![assign("x", add(v("y"), c(1))), assign("m", v("y"))],
            )
            .thread(
                "t2",
                vec![assign("y", add(v("x"), c(1))), assign("n", v("x"))],
            )
            .main(vec![
                spawn(1),
                spawn(2),
                join(1),
                join(2),
                assert_(not(and(eq(v("m"), c(0)), eq(v("n"), c(0))))),
            ])
            .build()
    }

    fn solve(p: &Program, mm: MemoryModel) -> SolveResult {
        let u = unroll_program(p, 2);
        let ssa = to_ssa(&u);
        let mut solver: Solver<OrderTheory, NoGuide> =
            Solver::with_parts(OrderTheory::new(), NoGuide);
        let _enc = encode(&ssa, mm, &mut solver);
        solver.solve()
    }

    #[test]
    fn fig2_safe_under_sc() {
        // The paper's example: unsat (safe) under SC.
        assert_eq!(solve(&fig2(), MemoryModel::Sc), SolveResult::Unsat);
    }

    #[test]
    fn registry_has_all_classes() {
        let u = unroll_program(&fig2(), 2);
        let ssa = to_ssa(&u);
        let mut solver: Solver<OrderTheory, NoGuide> =
            Solver::with_parts(OrderTheory::new(), NoGuide);
        let enc = encode(&ssa, MemoryModel::Sc, &mut solver);
        let ClassCounts {
            ssa: nssa,
            ord,
            rf,
            ws,
            ..
        } = enc.registry.class_counts();
        assert!(nssa > 0, "ssa vars");
        assert!(ord > 0, "ord vars");
        assert!(rf > 0, "rf vars");
        assert!(ws > 0, "ws vars");
        assert_eq!(rf, enc.rf_vars.len());
        assert_eq!(ws, enc.ws_vars.len());
    }

    #[test]
    fn rf_names_follow_paper_recipe() {
        let u = unroll_program(&fig2(), 2);
        let ssa = to_ssa(&u);
        let mut solver: Solver<OrderTheory, NoGuide> =
            Solver::with_parts(OrderTheory::new(), NoGuide);
        let enc = encode(&ssa, MemoryModel::Sc, &mut solver);
        let rf = enc.rf_vars[0];
        let name = &enc.registry.info(rf.var).unwrap().name;
        assert!(name.starts_with("rf_"), "{name}");
        assert_eq!(name.split('_').count(), 5, "{name}");
    }

    /// Racy counter: SAT (bug) in every memory model.
    #[test]
    fn racy_counter_found_unsafe() {
        let inc = vec![assign("r", v("cnt")), assign("cnt", add(v("r"), c(1)))];
        let p = ProgramBuilder::new("race")
            .shared("cnt", 0)
            .thread("w1", inc.clone())
            .thread("w2", inc)
            .main(vec![
                spawn(1),
                spawn(2),
                join(1),
                join(2),
                assert_(eq(v("cnt"), c(2))),
            ])
            .build();
        for mm in MemoryModel::ALL {
            assert_eq!(solve(&p, mm), SolveResult::Sat, "{mm}");
        }
    }

    /// Mutex-protected counter: UNSAT (safe) everywhere.
    #[test]
    fn locked_counter_safe() {
        let inc = vec![
            lock("m"),
            assign("r", v("cnt")),
            assign("cnt", add(v("r"), c(1))),
            unlock("m"),
        ];
        let p = ProgramBuilder::new("locked")
            .shared("cnt", 0)
            .mutex("m")
            .thread("w1", inc.clone())
            .thread("w2", inc)
            .main(vec![
                spawn(1),
                spawn(2),
                join(1),
                join(2),
                assert_(eq(v("cnt"), c(2))),
            ])
            .build();
        for mm in MemoryModel::ALL {
            assert_eq!(solve(&p, mm), SolveResult::Unsat, "{mm}");
        }
    }

    /// Atomic-section counter: UNSAT (safe) everywhere.
    #[test]
    fn atomic_counter_safe() {
        let inc = atomic(vec![
            assign("r", v("cnt")),
            assign("cnt", add(v("r"), c(1))),
        ]);
        let p = ProgramBuilder::new("atomic")
            .shared("cnt", 0)
            .thread("w1", inc.clone())
            .thread("w2", inc)
            .main(vec![
                spawn(1),
                spawn(2),
                join(1),
                join(2),
                assert_(eq(v("cnt"), c(2))),
            ])
            .build();
        for mm in MemoryModel::ALL {
            assert_eq!(solve(&p, mm), SolveResult::Unsat, "{mm}");
        }
    }

    /// Store buffering: safe under SC, buggy under TSO/PSO; fences repair it.
    #[test]
    fn store_buffering_across_models() {
        let mk = |fenced: bool| {
            let t1 = if fenced {
                vec![assign("x", c(1)), fence(), assign("r1", v("y"))]
            } else {
                vec![assign("x", c(1)), assign("r1", v("y"))]
            };
            let t2 = if fenced {
                vec![assign("y", c(1)), fence(), assign("r2", v("x"))]
            } else {
                vec![assign("y", c(1)), assign("r2", v("x"))]
            };
            ProgramBuilder::new("sb")
                .shared("x", 0)
                .shared("y", 0)
                .shared("r1", 0)
                .shared("r2", 0)
                .thread("t1", t1)
                .thread("t2", t2)
                .main(vec![
                    spawn(1),
                    spawn(2),
                    join(1),
                    join(2),
                    assert_(not(and(eq(v("r1"), c(0)), eq(v("r2"), c(0))))),
                ])
                .build()
        };
        assert_eq!(solve(&mk(false), MemoryModel::Sc), SolveResult::Unsat);
        assert_eq!(solve(&mk(false), MemoryModel::Tso), SolveResult::Sat);
        assert_eq!(solve(&mk(false), MemoryModel::Pso), SolveResult::Sat);
        assert_eq!(solve(&mk(true), MemoryModel::Tso), SolveResult::Unsat);
        assert_eq!(solve(&mk(true), MemoryModel::Pso), SolveResult::Unsat);
    }

    /// Message passing: safe under SC and TSO, buggy under PSO.
    #[test]
    fn message_passing_across_models() {
        let p = ProgramBuilder::new("mp")
            .shared("data", 0)
            .shared("flag", 0)
            .shared("seen", 0)
            .shared("val", 0)
            .thread(
                "producer",
                vec![assign("data", c(42)), assign("flag", c(1))],
            )
            .thread(
                "consumer",
                vec![assign("seen", v("flag")), assign("val", v("data"))],
            )
            .main(vec![
                spawn(1),
                spawn(2),
                join(1),
                join(2),
                assert_(or(eq(v("seen"), c(0)), eq(v("val"), c(42)))),
            ])
            .build();
        assert_eq!(solve(&p, MemoryModel::Sc), SolveResult::Unsat);
        assert_eq!(solve(&p, MemoryModel::Tso), SolveResult::Unsat);
        assert_eq!(solve(&p, MemoryModel::Pso), SolveResult::Sat);
    }

    /// Nondeterminism + assume interplay.
    #[test]
    fn nondet_and_assume() {
        let p = ProgramBuilder::new("nd")
            .shared("x", 0)
            .main(vec![
                assign("x", nondet("k")),
                assume(lt(v("x"), c(4))),
                assert_(ne(v("x"), c(3))),
            ])
            .build();
        assert_eq!(solve(&p, MemoryModel::Sc), SolveResult::Sat); // x = 3 violates
        let p2 = ProgramBuilder::new("nd2")
            .shared("x", 0)
            .main(vec![
                assign("x", nondet("k")),
                assume(lt(v("x"), c(3))),
                assert_(ne(v("x"), c(3))),
            ])
            .build();
        assert_eq!(solve(&p2, MemoryModel::Sc), SolveResult::Unsat);
    }

    #[test]
    fn trivially_safe_flag() {
        let p = ProgramBuilder::new("noassert")
            .shared("x", 0)
            .main(vec![assign("x", c(1))])
            .build();
        let u = unroll_program(&p, 1);
        let ssa = to_ssa(&u);
        let mut solver: Solver<OrderTheory, NoGuide> =
            Solver::with_parts(OrderTheory::new(), NoGuide);
        let enc = encode(&ssa, MemoryModel::Sc, &mut solver);
        assert!(enc.trivially_safe);
        assert_eq!(solver.solve(), SolveResult::Unsat);
    }

    #[test]
    fn estimate_tracks_real_encoding_within_constant_factor() {
        // The estimator must (a) never undercount interference selectors,
        // and (b) stay within a small constant factor of the real solver
        // footprint, so a memory cap gated on it is meaningful.
        let u = unroll_program(&fig2(), 2);
        let ssa = to_ssa(&u);
        for mm in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
            let est = estimate_cnf(&ssa, mm).unwrap();
            let mut solver: Solver<OrderTheory, NoGuide> =
                Solver::with_parts(OrderTheory::new(), NoGuide);
            let enc = encode(&ssa, mm, &mut solver);
            assert!(
                est.rf_selectors >= enc.rf_vars.len() as u64,
                "{mm:?}: rf estimate {} < actual {}",
                est.rf_selectors,
                enc.rf_vars.len()
            );
            assert!(
                est.ws_selectors >= enc.ws_vars.len() as u64,
                "{mm:?}: ws estimate {} < actual {}",
                est.ws_selectors,
                enc.ws_vars.len()
            );
            let actual = solver.memory_bytes();
            assert!(
                est.bytes() >= actual / 8,
                "{mm:?}: estimate {} implausibly below footprint {actual}",
                est.bytes()
            );
            assert!(
                est.bytes() <= actual.saturating_mul(64),
                "{mm:?}: estimate {} implausibly above footprint {actual}",
                est.bytes()
            );
        }
    }

    #[test]
    fn estimate_grows_with_unroll_bound() {
        let e1 = {
            let ssa = to_ssa(&unroll_program(&fig2(), 1));
            estimate_cnf(&ssa, MemoryModel::Sc).unwrap()
        };
        let e4 = {
            let ssa = to_ssa(&unroll_program(&fig2(), 4));
            estimate_cnf(&ssa, MemoryModel::Sc).unwrap()
        };
        assert!(e4.bytes() >= e1.bytes());
        assert!(e1.bytes() > 0);
    }

    #[test]
    fn try_encode_rejects_a_used_solver() {
        let p = ProgramBuilder::new("fresh")
            .shared("x", 0)
            .main(vec![assign("x", c(1))])
            .build();
        let u = unroll_program(&p, 1);
        let ssa = to_ssa(&u);
        let mut solver: Solver<OrderTheory, NoGuide> =
            Solver::with_parts(OrderTheory::new(), NoGuide);
        solver.new_var();
        assert!(matches!(
            try_encode(&ssa, MemoryModel::Sc, &mut solver),
            Err(EncodeError::SolverNotFresh { vars: 1 })
        ));
    }
}
