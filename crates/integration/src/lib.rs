pub(crate) fn _placeholder() {}
