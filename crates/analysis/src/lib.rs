//! # zpre-analysis — pre-encoding static analyses
//!
//! The source-level analysis layer that runs between SSA conversion and
//! the partial-order encoder. It owns everything that can be decided about
//! a program *before* the solver sees a single clause:
//!
//! - [`memory_model`] — preserved program order per memory model
//!   (SC/TSO/PSO), spawn/join synchronization edges, and the dense
//!   transitive closure [`PoClosure`] (the static must-happen-before
//!   relation);
//! - [`prune`] — the interference-pruning pass: must-happen-before,
//!   lockset and thread-locality analyses cooperate to shrink the
//!   `V_rf`/`V_ws` selector sets the encoder would otherwise emit, each
//!   removal carrying a machine-checkable [`Justification`];
//! - [`check`] — an independent re-checker for those justifications, used
//!   by `--certify` and the debug oracle: every pruned pair's evidence is
//!   re-walked against the raw SSA event stream without trusting the
//!   closure that produced it.
//!
//! The encoder consumes a [`PruneReport`]; nothing in this crate depends
//! on the solver, the theory, or the bit-blaster, so the pass is reusable
//! by any downstream encoding.

#![warn(missing_docs)]

pub mod check;
pub mod memory_model;
pub mod prune;

pub use check::check_report;
pub use memory_model::{po_pairs, preserved, PoClosure};
pub use prune::{analyze, guard_implies, Justification, PruneCounters, PruneReport};
