//! Independent re-verification of a [`PruneReport`].
//!
//! The checker trusts nothing derived: it rebuilds the fixed program-order
//! *edge set* from [`po_pairs`] (no closure), re-scans the raw event
//! stream for lock/unlock brackets, and then walks every justification
//! step by step:
//!
//! - paths are verified edge by edge against the fixed-edge set;
//! - shadow killers must really write the same variable with a
//!   constant-true (or guard-identical) path condition;
//! - lockset witnesses must really bracket their events on the claimed
//!   mutex, in the claimed threads;
//! - resolved chains must be pairwise path-connected and end before their
//!   read.
//!
//! It also checks *completeness*: every same-variable `(read, write)` pair
//! is accounted for — either kept as a candidate or pruned with evidence —
//! so a buggy pass cannot silently drop a feasible interference.
//!
//! `--certify` runs this before solving; a failure is a certification
//! error, never a wrong verdict.

use crate::memory_model::po_pairs;
use crate::prune::{guard_implies, Justification, PruneReport};
use std::collections::HashSet;
use zpre_bv::TermKind;
use zpre_prog::ssa::{EventKind, SsaProgram};

/// Re-verifies every justification in `report` against `ssa`. Returns the
/// number of justifications checked, or a description of the first piece
/// of evidence that does not hold.
pub fn check_report(ssa: &SsaProgram, report: &PruneReport) -> Result<usize, String> {
    let edges: HashSet<(usize, usize)> = po_pairs(ssa, report.mm).into_iter().collect();
    let ts = &ssa.store;
    let n = ssa.events.len();
    let always_true =
        |eid: usize| matches!(ts.kind(ssa.events[eid].guard), TermKind::BoolConst(true));
    let written_var = |eid: usize| match ssa.events[eid].kind {
        EventKind::Write { var, .. } => Some(var),
        _ => None,
    };
    let read_var = |eid: usize| match ssa.events[eid].kind {
        EventKind::Read { var, .. } => Some(var),
        _ => None,
    };
    let check_path = |path: &[usize], from: usize, to: usize| -> Result<(), String> {
        if path.first() != Some(&from) || path.last() != Some(&to) {
            return Err(format!("path {path:?} does not connect {from} to {to}"));
        }
        for w in path.windows(2) {
            if !edges.contains(&(w[0], w[1])) {
                return Err(format!(
                    "path step {} -> {} is not a fixed program-order edge",
                    w[0], w[1]
                ));
            }
        }
        Ok(())
    };
    // Lock/unlock bracket check straight off the event stream: `lock` and
    // `unlock` are Lock/Unlock events of `mutex` in one thread, `e` lies
    // between them in program order, and the bracket is properly matched
    // (no unbalanced unlock of the same mutex in between).
    let check_section =
        |(lock, unlock): (usize, usize), mutex: usize, e: usize| -> Result<(), String> {
            if lock >= n || unlock >= n || e >= n {
                return Err(format!("section ({lock},{unlock}) out of range"));
            }
            let (le, ue, ev) = (&ssa.events[lock], &ssa.events[unlock], &ssa.events[e]);
            if !matches!(le.kind, EventKind::Lock { mutex: m } if m == mutex) {
                return Err(format!("event {lock} is not lock({mutex})"));
            }
            if !matches!(ue.kind, EventKind::Unlock { mutex: m } if m == mutex) {
                return Err(format!("event {unlock} is not unlock({mutex})"));
            }
            if le.thread != ue.thread || le.thread != ev.thread {
                return Err(format!(
                    "section ({lock},{unlock}) and event {e} span threads"
                ));
            }
            if !(le.pos < ev.pos && ev.pos < ue.pos) {
                return Err(format!("event {e} is not inside section ({lock},{unlock})"));
            }
            let mut depth = 0i64;
            for o in ssa.thread_events(le.thread) {
                if o.pos <= le.pos || o.pos >= ue.pos {
                    continue;
                }
                match o.kind {
                    EventKind::Lock { mutex: m } if m == mutex => depth += 1,
                    EventKind::Unlock { mutex: m } if m == mutex => depth -= 1,
                    _ => {}
                }
                if depth < 0 {
                    return Err(format!(
                        "section ({lock},{unlock}) is not a matched bracket on mutex {mutex}"
                    ));
                }
            }
            Ok(())
        };

    let mut checked = 0usize;
    for (r, w, just) in &report.pruned_rf {
        let (r, w) = (*r, *w);
        let rv = read_var(r).ok_or_else(|| format!("pruned rf: event {r} is not a read"))?;
        if written_var(w) != Some(rv) {
            return Err(format!("pruned rf ({r},{w}): write variable mismatch"));
        }
        match just {
            Justification::WriteAfterRead { path } => check_path(path, r, w)?,
            Justification::Shadowed {
                killer,
                path_to_killer,
                path_to_read,
            } => {
                if written_var(*killer) != Some(rv) || *killer == w {
                    return Err(format!(
                        "shadow killer {killer} is not another write of the variable"
                    ));
                }
                if !always_true(*killer) {
                    return Err(format!("shadow killer {killer} is not always executed"));
                }
                check_path(path_to_killer, w, *killer)?;
                check_path(path_to_read, *killer, r)?;
            }
            Justification::LocksetShadow {
                killer,
                mutex,
                write_section,
                read_section,
                path_to_killer,
            } => {
                if written_var(*killer) != Some(rv) || *killer == w {
                    return Err(format!(
                        "lockset killer {killer} is not another write of the variable"
                    ));
                }
                if !(always_true(*killer)
                    || guard_implies(ts, ssa.events[w].guard, ssa.events[*killer].guard))
                {
                    return Err(format!(
                        "lockset killer {killer} may execute less often than write {w}"
                    ));
                }
                check_section(*write_section, *mutex, w)?;
                check_section(*write_section, *mutex, *killer)?;
                check_section(*read_section, *mutex, r)?;
                if !guard_implies(ts, ssa.events[w].guard, ssa.events[write_section.0].guard) {
                    return Err(format!("write {w} may execute without taking its lock"));
                }
                if !guard_implies(ts, ssa.events[r].guard, ssa.events[read_section.0].guard) {
                    return Err(format!("read {r} may execute without taking its lock"));
                }
                if ssa.events[write_section.0].thread == ssa.events[read_section.0].thread {
                    return Err(format!(
                        "lockset sections of ({r},{w}) are in the same thread"
                    ));
                }
                check_path(path_to_killer, w, *killer)?;
            }
            other => {
                return Err(format!(
                    "rf pair ({r},{w}) carries a ws justification {other:?}"
                ));
            }
        }
        checked += 1;
    }

    for (w1, w2, just) in &report.pruned_ws {
        let (w1, w2) = (*w1, *w2);
        let v1 = written_var(w1).ok_or_else(|| format!("pruned ws: event {w1} is not a write"))?;
        if written_var(w2) != Some(v1) {
            return Err(format!("pruned ws ({w1},{w2}): variable mismatch"));
        }
        match just {
            Justification::MhbOrdered {
                first_before_second,
                path,
            } => {
                let (from, to) = if *first_before_second {
                    (w1, w2)
                } else {
                    (w2, w1)
                };
                check_path(path, from, to)?;
            }
            Justification::MutexSerialized {
                mutex,
                first_section,
                second_section,
            } => {
                check_section(*first_section, *mutex, w1)?;
                check_section(*second_section, *mutex, w2)?;
                if ssa.events[first_section.0].thread == ssa.events[second_section.0].thread {
                    return Err(format!(
                        "serialized ws ({w1},{w2}): sections share a thread"
                    ));
                }
            }
            other => {
                return Err(format!(
                    "ws pair ({w1},{w2}) carries an rf justification {other:?}"
                ));
            }
        }
        checked += 1;
    }

    // Completeness: every same-variable (read, write) pair is either a
    // surviving candidate or pruned with evidence.
    let mut pruned_pairs: HashSet<(usize, usize)> = HashSet::new();
    for (r, w, _) in &report.pruned_rf {
        pruned_pairs.insert((*r, *w));
    }
    for e in &ssa.events {
        let Some(v) = read_var(e.id) else { continue };
        for o in &ssa.events {
            if written_var(o.id) != Some(v) {
                continue;
            }
            let kept = report.candidates[e.id].contains(&o.id);
            let pruned = pruned_pairs.contains(&(e.id, o.id));
            if !kept && !pruned {
                return Err(format!(
                    "rf pair (read {}, write {}) neither kept nor justified",
                    e.id, o.id
                ));
            }
            if kept && pruned {
                return Err(format!(
                    "rf pair (read {}, write {}) both kept and pruned",
                    e.id, o.id
                ));
            }
        }
    }

    // Resolved chains: exactly the surviving candidates, pairwise
    // path-connected in chain order, every link ending before the read.
    let edge_reach = |from: usize, to: usize| -> bool {
        // Forward DFS over the raw edge set — independent of PoClosure.
        let mut stack = vec![from];
        let mut seen = vec![false; n];
        seen[from] = true;
        while let Some(x) = stack.pop() {
            if x == to {
                return true;
            }
            for &(a, b) in edges.iter().filter(|&&(a, _)| a == x) {
                debug_assert_eq!(a, x);
                if !seen[b] {
                    seen[b] = true;
                    stack.push(b);
                }
            }
        }
        false
    };
    for (r, chain) in report.resolved.iter().enumerate() {
        let Some(chain) = chain else { continue };
        let mut sorted_candidates = report.candidates[r].clone();
        sorted_candidates.sort_unstable();
        let mut sorted_chain = chain.clone();
        sorted_chain.sort_unstable();
        if sorted_chain != sorted_candidates {
            return Err(format!("resolved read {r}: chain differs from candidates"));
        }
        if !chain.iter().any(|&w| always_true(w)) {
            return Err(format!(
                "resolved read {r}: no always-executed write in chain"
            ));
        }
        for pair in chain.windows(2) {
            if !edge_reach(pair[0], pair[1]) {
                return Err(format!(
                    "resolved read {r}: chain writes {} and {} are not ordered",
                    pair[0], pair[1]
                ));
            }
        }
        if let Some(&last) = chain.last() {
            if !edge_reach(last, r) {
                return Err(format!(
                    "resolved read {r}: chain does not end before the read"
                ));
            }
        }
        checked += 1;
    }

    Ok(checked)
}
