//! Static interference pruning: shrink `V_rf`/`V_ws` before encoding.
//!
//! Three cooperating analyses over the unrolled SSA event stream decide,
//! per interference pair, whether the solver ever needs a selector for it:
//!
//! 1. **Must-happen-before (MHB)** — the transitive order induced by
//!    preserved program order plus spawn/join edges ([`PoClosure`]). An rf
//!    pair `(w, r)` dies when `r →⁺ w` (the write can only come after the
//!    read), or when an always-executed write `w'` with `w →⁺ w' →⁺ r`
//!    shadows it. A ws pair dies symmetrically: `w₁ →⁺ w₂` fixes the
//!    selector's polarity, so no variable is emitted.
//! 2. **Lockset analysis** — accesses inside critical sections of a common
//!    mutex are mutually exclusive. An rf pair whose write is shadowed by
//!    a later write *inside the same critical section* is dead for any
//!    read that holds the same mutex in another thread: whenever the read
//!    could observe the write, the killer write has already intervened
//!    before the section was released. Cross-section write pairs need no
//!    free ws selector either — the section-serialization constraints
//!    already decide their order, so the encoder represents them with a
//!    plain ordering atom instead of an interference variable.
//! 3. **Thread-locality** — a read whose surviving candidates form an MHB
//!    chain ending before the read (the common case for variables touched
//!    by a single thread after unrolling) is *resolved directly*: its
//!    value is the chain's last executed write, encodable in Φ_ssa with no
//!    interference variables at all.
//!
//! Every removal carries a [`Justification`] that
//! [`crate::check::check_report`] re-verifies independently; soundness of
//! each rule is argued in DESIGN.md §6h.

use crate::memory_model::{po_pairs, PoClosure};
use std::collections::{HashMap, HashSet};
use zpre_bv::{TermId, TermKind, TermStore};
use zpre_prog::ssa::{EventKind, SsaProgram};
use zpre_prog::MemoryModel;

/// Syntactic guard implication: `a → b` holds because `b` is constant
/// true, `a` equals `b`, or `b` appears as a conjunct somewhere in `a`'s
/// `And` spine. Guards are built by conjoining branch conditions onto the
/// enclosing guard, so an event's guard literally contains every enclosing
/// guard as a subterm — which makes this check complete enough for the
/// lockset rule while staying trivially sound.
pub fn guard_implies(ts: &TermStore, a: TermId, b: TermId) -> bool {
    if a == b || matches!(ts.kind(b), TermKind::BoolConst(true)) {
        return true;
    }
    match ts.kind(a) {
        TermKind::And(x, y) => {
            let (x, y) = (*x, *y);
            guard_implies(ts, x, b) || guard_implies(ts, y, b)
        }
        _ => false,
    }
}

/// Machine-checkable evidence that an interference pair is redundant.
///
/// Paths are sequences of event ids in which every consecutive pair is a
/// *direct* fixed program-order edge (as emitted by [`po_pairs`]), so a
/// checker can verify them by edge-set membership without recomputing any
/// closure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Justification {
    /// rf `(w, r)`: the write is MHB-*after* the read; `path` walks
    /// `r →⁺ w` over fixed edges.
    WriteAfterRead {
        /// Fixed-edge path from the read to the write.
        path: Vec<usize>,
    },
    /// rf `(w, r)`: an always-executed write `killer` to the same variable
    /// sits MHB-between the write and the read.
    Shadowed {
        /// The intervening write event (constant-true guard).
        killer: usize,
        /// Fixed-edge path `w →⁺ killer`.
        path_to_killer: Vec<usize>,
        /// Fixed-edge path `killer →⁺ r`.
        path_to_read: Vec<usize>,
    },
    /// rf `(w, r)`: a later write in the write's own critical section
    /// shadows it for this read, which holds the same mutex in another
    /// thread.
    LocksetShadow {
        /// The shadowing write inside the same critical section.
        killer: usize,
        /// The common mutex.
        mutex: usize,
        /// `(lock, unlock)` events of the section containing `w` and
        /// `killer`.
        write_section: (usize, usize),
        /// `(lock, unlock)` events of the section containing the read.
        read_section: (usize, usize),
        /// Fixed-edge path `w →⁺ killer`.
        path_to_killer: Vec<usize>,
    },
    /// ws `(w₁, w₂)`: fixed program order already decides the pair;
    /// `first_before_second` is the settled polarity and `path` walks the
    /// deciding direction.
    MhbOrdered {
        /// `true` when `w₁ →⁺ w₂`, `false` when `w₂ →⁺ w₁`.
        first_before_second: bool,
        /// Fixed-edge path in the deciding direction.
        path: Vec<usize>,
    },
    /// ws `(w₁, w₂)`: the writes live in same-mutex critical sections of
    /// different threads, so the section-serialization selector decides
    /// their order; the pair rides on a plain ordering atom.
    MutexSerialized {
        /// The common mutex.
        mutex: usize,
        /// `(lock, unlock)` of the section containing `w₁`.
        first_section: (usize, usize),
        /// `(lock, unlock)` of the section containing `w₂`.
        second_section: (usize, usize),
    },
}

/// Aggregate prune statistics, streamed into `zpre-obs` as `pr_*` counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PruneCounters {
    /// Read-from pairs removed beyond what plain candidate filtering keeps.
    pub rf_pruned: u64,
    /// Read-from selectors the encoder still has to emit.
    pub rf_kept: u64,
    /// Write-serialization pairs with a statically fixed polarity.
    pub ws_pruned: u64,
    /// Write-serialization pairs demoted to plain ordering atoms by mutual
    /// exclusion.
    pub ws_serialized: u64,
    /// Reads resolved directly in Φ_ssa (no selectors at all).
    pub reads_resolved: u64,
    /// Shared variables whose non-initializer accesses stay in one thread.
    pub local_vars: u64,
}

/// Output of the pruning pass; the encoder consumes it verbatim.
#[derive(Clone, Debug)]
pub struct PruneReport {
    /// Memory model the analysis ran under (MHB depends on it).
    pub mm: MemoryModel,
    /// Surviving rf candidate writes per read event id (empty vectors for
    /// non-read events).
    pub candidates: Vec<Vec<usize>>,
    /// Per event id: for resolved reads, the surviving candidates sorted
    /// in MHB order (the read's value is the chain's last executed write).
    pub resolved: Vec<Option<Vec<usize>>>,
    /// Statically fixed ws polarities, keyed by the write pair in
    /// event-id order: `true` ⇔ the lower-id write comes first.
    pub ws_fixed: HashMap<(usize, usize), bool>,
    /// Write pairs (event-id order) serialized by a mutex: encode with an
    /// ordering atom instead of a ws selector.
    pub ws_serialized: HashSet<(usize, usize)>,
    /// Pruned rf pairs `(read, write, why)`.
    pub pruned_rf: Vec<(usize, usize, Justification)>,
    /// Pruned ws pairs `(w₁, w₂, why)` in event-id order.
    pub pruned_ws: Vec<(usize, usize, Justification)>,
    /// Per shared variable: all non-initializer accesses in one thread.
    pub local_vars: Vec<bool>,
    /// Same-variable write pairs that still need a real ws selector.
    pub ws_unsettled: u64,
    /// Aggregate statistics.
    pub counters: PruneCounters,
}

impl PruneReport {
    /// Interference variables the encoder will emit under this report:
    /// surviving rf selectors plus unsettled ws pairs.
    pub fn interference_vars(&self) -> u64 {
        self.counters.rf_kept + self.ws_unsettled
    }

    /// Interference variables an encoder without the lockset/locality
    /// rules would emit (the seed behavior: candidate filtering only, a ws
    /// selector for every same-variable write pair). The MHB rf rules
    /// predate the pass, so rf selectors pruned by them are *not* added
    /// back here — the difference against [`Self::interference_vars`] is
    /// exactly what this pass saves.
    pub fn unpruned_interference_vars(&self) -> u64 {
        let lockset_rf: u64 = self
            .pruned_rf
            .iter()
            .filter(|(_, _, j)| matches!(j, Justification::LocksetShadow { .. }))
            .count() as u64;
        let resolved_rf: u64 = self
            .resolved
            .iter()
            .flatten()
            .map(|chain| chain.len() as u64)
            .sum();
        self.counters.rf_kept
            + lockset_rf
            + resolved_rf
            + self.ws_unsettled
            + self.counters.ws_pruned
            + self.counters.ws_serialized
    }
}

/// A critical section instance: `lock`/`unlock` bracket events of `mutex`
/// in `thread`, matched by a per-mutex stack scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Section {
    /// Owning thread.
    pub thread: usize,
    /// Mutex index.
    pub mutex: usize,
    /// `Lock` event id.
    pub lock: usize,
    /// `Unlock` event id.
    pub unlock: usize,
}

/// Collects critical-section instances by a per-(thread, mutex) stack
/// scan. Unmatched unlocks are ignored here — the encoder reports them as
/// a typed error.
pub fn sections(ssa: &SsaProgram) -> Vec<Section> {
    let mut out = Vec::new();
    for t in 0..ssa.num_threads() {
        let mut stacks: HashMap<usize, Vec<usize>> = HashMap::new();
        for e in ssa.thread_events(t) {
            match e.kind {
                EventKind::Lock { mutex } => stacks.entry(mutex).or_default().push(e.id),
                EventKind::Unlock { mutex } => {
                    if let Some(lock) = stacks.entry(mutex).or_default().pop() {
                        out.push(Section {
                            thread: t,
                            mutex,
                            lock,
                            unlock: e.id,
                        });
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// `true` when `e` lies strictly inside `s` (same thread, between the
/// bracket events in program order).
fn inside(ssa: &SsaProgram, s: &Section, e: usize) -> bool {
    let ev = &ssa.events[e];
    ev.thread == s.thread && ssa.events[s.lock].pos < ev.pos && ev.pos < ssa.events[s.unlock].pos
}

/// Runs the pruning pass on `ssa` under `mm`.
pub fn analyze(ssa: &SsaProgram, mm: MemoryModel) -> PruneReport {
    let n = ssa.events.len();
    let pairs = po_pairs(ssa, mm);
    let closure = PoClosure::new(n, &pairs);
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in &pairs {
        adj[a].push(b);
    }
    let path = |from: usize, to: usize| -> Vec<usize> {
        bfs_path(&adj, from, to).expect("closure-confirmed path must exist over fixed edges")
    };
    let ts = &ssa.store;
    let always_true =
        |eid: usize| matches!(ts.kind(ssa.events[eid].guard), TermKind::BoolConst(true));
    let secs = sections(ssa);
    let section_of = |e: usize| secs.iter().find(|s| inside(ssa, s, e));

    // Access inventory.
    let num_shared = ssa.shared_names.len();
    let mut writes_of: Vec<Vec<usize>> = vec![Vec::new(); num_shared];
    let mut reads_of: Vec<Vec<usize>> = vec![Vec::new(); num_shared];
    for e in &ssa.events {
        match e.kind {
            EventKind::Write { var, .. } => writes_of[var].push(e.id),
            EventKind::Read { var, .. } => reads_of[var].push(e.id),
            _ => {}
        }
    }

    // Thread-locality: the initializer writes (the first `num_shared`
    // events, owned by main) don't count against locality.
    let mut local_vars = vec![true; num_shared];
    for v in 0..num_shared {
        let mut owner: Option<usize> = None;
        for &e in writes_of[v].iter().chain(&reads_of[v]) {
            if e < num_shared {
                continue;
            }
            let t = ssa.events[e].thread;
            if *owner.get_or_insert(t) != t {
                local_vars[v] = false;
                break;
            }
        }
    }

    let mut report = PruneReport {
        mm,
        candidates: vec![Vec::new(); n],
        resolved: vec![None; n],
        ws_fixed: HashMap::new(),
        ws_serialized: HashSet::new(),
        pruned_rf: Vec::new(),
        pruned_ws: Vec::new(),
        local_vars: local_vars.clone(),
        counters: PruneCounters {
            local_vars: local_vars.iter().filter(|&&l| l).count() as u64,
            ..PruneCounters::default()
        },
        ws_unsettled: 0,
    };

    // --- rf pruning -------------------------------------------------------
    for (v, reads) in reads_of.iter().enumerate() {
        for &r in reads {
            let mut surviving: Vec<usize> = Vec::new();
            'cand: for &w in &writes_of[v] {
                // Rule 1 (MHB): the write can only happen after the read.
                if closure.reaches(r, w) {
                    report.pruned_rf.push((
                        r,
                        w,
                        Justification::WriteAfterRead { path: path(r, w) },
                    ));
                    continue;
                }
                // Rule 2 (MHB shadow): an always-executed write intervenes.
                if let Some(&killer) = writes_of[v].iter().find(|&&w2| {
                    w2 != w && always_true(w2) && closure.reaches(w, w2) && closure.reaches(w2, r)
                }) {
                    report.pruned_rf.push((
                        r,
                        w,
                        Justification::Shadowed {
                            killer,
                            path_to_killer: path(w, killer),
                            path_to_read: path(killer, r),
                        },
                    ));
                    continue;
                }
                // Rule 3 (lockset shadow): a later write in the same
                // critical section shadows `w` for any reader holding the
                // same mutex in another thread. The guard-implication
                // checks make sure the bracket events really execute
                // whenever the access does (a conditionally taken lock
                // does not protect an unconditional access).
                if let Some(ws) = section_of(w) {
                    let w_locked =
                        guard_implies(ts, ssa.events[w].guard, ssa.events[ws.lock].guard);
                    for &w2 in &writes_of[v] {
                        let guard_ok = always_true(w2)
                            || guard_implies(ts, ssa.events[w].guard, ssa.events[w2].guard);
                        if w_locked
                            && w2 != w
                            && guard_ok
                            && inside(ssa, ws, w2)
                            && ssa.events[w].pos < ssa.events[w2].pos
                        {
                            if let Some(rs) = secs.iter().find(|s| {
                                s.mutex == ws.mutex
                                    && s.thread != ws.thread
                                    && inside(ssa, s, r)
                                    && guard_implies(
                                        ts,
                                        ssa.events[r].guard,
                                        ssa.events[s.lock].guard,
                                    )
                            }) {
                                report.pruned_rf.push((
                                    r,
                                    w,
                                    Justification::LocksetShadow {
                                        killer: w2,
                                        mutex: ws.mutex,
                                        write_section: (ws.lock, ws.unlock),
                                        read_section: (rs.lock, rs.unlock),
                                        path_to_killer: path(w, w2),
                                    },
                                ));
                                continue 'cand;
                            }
                        }
                    }
                }
                surviving.push(w);
            }
            debug_assert!(
                !surviving.is_empty(),
                "read {r} of shared var {v} lost every rf candidate"
            );
            // Direct resolution: every candidate MHB-before the read, all
            // candidates totally MHB-ordered, and at least one always
            // executed (so the resolved value is always defined).
            let chain_ok = !surviving.is_empty()
                && surviving.iter().all(|&w| closure.reaches(w, r))
                && surviving.iter().enumerate().all(|(i, &a)| {
                    surviving[i + 1..]
                        .iter()
                        .all(|&b| closure.reaches(a, b) || closure.reaches(b, a))
                })
                && surviving.iter().any(|&w| always_true(w));
            if chain_ok {
                let mut chain = surviving.clone();
                chain.sort_by(|&a, &b| {
                    if closure.reaches(a, b) {
                        std::cmp::Ordering::Less
                    } else {
                        std::cmp::Ordering::Greater
                    }
                });
                report.counters.reads_resolved += 1;
                report.counters.rf_pruned += surviving.len() as u64;
                report.resolved[r] = Some(chain);
            } else {
                report.counters.rf_kept += surviving.len() as u64;
            }
            report.candidates[r] = surviving;
        }
    }
    report.counters.rf_pruned += report.pruned_rf.len() as u64;

    // --- ws pruning -------------------------------------------------------
    for ws in &writes_of {
        for i in 0..ws.len() {
            for j in i + 1..ws.len() {
                let (w1, w2) = (ws[i], ws[j]);
                if closure.reaches(w1, w2) || closure.reaches(w2, w1) {
                    let first = closure.reaches(w1, w2);
                    let (from, to) = if first { (w1, w2) } else { (w2, w1) };
                    report.ws_fixed.insert((w1, w2), first);
                    report.pruned_ws.push((
                        w1,
                        w2,
                        Justification::MhbOrdered {
                            first_before_second: first,
                            path: path(from, to),
                        },
                    ));
                    report.counters.ws_pruned += 1;
                    continue;
                }
                let serialized = section_of(w1).and_then(|s1| {
                    secs.iter()
                        .find(|s2| {
                            s2.mutex == s1.mutex && s2.thread != s1.thread && inside(ssa, s2, w2)
                        })
                        .map(|s2| (*s1, *s2))
                });
                if let Some((s1, s2)) = serialized {
                    report.ws_serialized.insert((w1, w2));
                    report.pruned_ws.push((
                        w1,
                        w2,
                        Justification::MutexSerialized {
                            mutex: s1.mutex,
                            first_section: (s1.lock, s1.unlock),
                            second_section: (s2.lock, s2.unlock),
                        },
                    ));
                    report.counters.ws_serialized += 1;
                    continue;
                }
                report.ws_unsettled += 1;
            }
        }
    }

    report
}

/// Shortest fixed-edge path `from →⁺ to` by BFS, inclusive of endpoints.
fn bfs_path(adj: &[Vec<usize>], from: usize, to: usize) -> Option<Vec<usize>> {
    let mut prev: Vec<Option<usize>> = vec![None; adj.len()];
    let mut queue = std::collections::VecDeque::from([from]);
    let mut seen = vec![false; adj.len()];
    seen[from] = true;
    while let Some(x) = queue.pop_front() {
        if x == to {
            let mut p = vec![to];
            let mut cur = to;
            while let Some(q) = prev[cur] {
                p.push(q);
                cur = q;
            }
            p.reverse();
            return Some(p);
        }
        for &y in &adj[x] {
            if !seen[y] {
                seen[y] = true;
                prev[y] = Some(x);
                queue.push_back(y);
            }
        }
    }
    None
}
