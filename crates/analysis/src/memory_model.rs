//! Program-order computation per memory model (Φ_po of §3.1).
//!
//! Given the SSA event list, this module decides which intra-thread event
//! pairs keep their *preserved program order* (ppo) under SC / TSO / PSO,
//! and adds the thread-creation/join synchronization edges:
//!
//! - **SC** keeps every intra-thread pair (adjacent edges suffice — the
//!   order theory closes paths transitively);
//! - **TSO** relaxes write→read pairs over *different* variables
//!   (store buffers commit in order, reads may overtake pending writes);
//! - **PSO** additionally relaxes write→write pairs over different
//!   variables (per-variable buffers).
//!
//! Since ppo under weak models is *not* transitive (`W x → R y` may be
//! relaxed while both `W x → W z` and `W z → R y` are kept), the weak
//! models emit every preserved pair explicitly — the blow-up the paper
//! points at when explaining why its tactic pays off more under WMM ("in
//! weak memory models, more program orders need to be explicitly encoded").
//!
//! Fence-like events (fences, lock/unlock, atomic-section boundaries,
//! spawn/join) order everything across them in every model.
//!
//! The module also computes the transitive closure of the fixed edges,
//! used to filter read-from candidates and to seed the decision order.

use zpre_prog::ssa::{Event, EventKind, SsaProgram};
use zpre_prog::MemoryModel;

/// `true` if the order of `e1` before `e2` (same thread, `pos` ascending)
/// is preserved directly by the memory model.
pub fn preserved(mm: MemoryModel, e1: &Event, e2: &Event) -> bool {
    debug_assert_eq!(e1.thread, e2.thread);
    debug_assert!(e1.pos < e2.pos);
    let fence_like = |e: &Event| {
        matches!(
            e.kind,
            EventKind::Lock { .. }
                | EventKind::Unlock { .. }
                | EventKind::Fence
                | EventKind::AtomicBegin { .. }
                | EventKind::AtomicEnd { .. }
                | EventKind::Spawn { .. }
                | EventKind::Join { .. }
        )
    };
    if fence_like(e1) || fence_like(e2) {
        return true;
    }
    match mm {
        MemoryModel::Sc => true,
        MemoryModel::Tso => {
            // Relax W→R over different variables.
            !(e1.kind.is_write() && e2.kind.is_read() && e1.kind.var() != e2.kind.var())
        }
        MemoryModel::Pso => {
            // Relax W→R and W→W over different variables.
            !(e1.kind.is_write() && e1.kind.var() != e2.kind.var())
        }
    }
}

/// Fixed program-order edge list (event-id pairs) for `ssa` under `mm`,
/// including spawn/join synchronization edges.
pub fn po_pairs(ssa: &SsaProgram, mm: MemoryModel) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    // Intra-thread ppo.
    for t in 0..ssa.num_threads() {
        let evs: Vec<&Event> = ssa.thread_events(t).collect();
        match mm {
            MemoryModel::Sc => {
                for w in evs.windows(2) {
                    pairs.push((w[0].id, w[1].id));
                }
            }
            MemoryModel::Tso | MemoryModel::Pso => {
                for i in 0..evs.len() {
                    for j in i + 1..evs.len() {
                        if preserved(mm, evs[i], evs[j]) {
                            pairs.push((evs[i].id, evs[j].id));
                        }
                    }
                }
            }
        }
    }
    // Spawn: the spawn event happens before every event of the child.
    // Join: every event of the child happens before the join event.
    for e in &ssa.events {
        match e.kind {
            EventKind::Spawn { child } => {
                for c in ssa.thread_events(child) {
                    pairs.push((e.id, c.id));
                }
            }
            EventKind::Join { child } => {
                for c in ssa.thread_events(child) {
                    pairs.push((c.id, e.id));
                }
            }
            _ => {}
        }
    }
    pairs
}

/// Reachability over the fixed program-order edges (dense bitset closure).
pub struct PoClosure {
    n: usize,
    words: usize,
    bits: Vec<u64>,
}

impl PoClosure {
    /// Builds the closure of `pairs` over `n` events.
    pub fn new(n: usize, pairs: &[(usize, usize)]) -> PoClosure {
        let words = n.div_ceil(64);
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indeg = vec![0usize; n];
        for &(a, b) in pairs {
            adj[a].push(b);
            indeg[b] += 1;
        }
        // Kahn topological order (the po graph is a DAG by construction).
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(x) = queue.pop() {
            topo.push(x);
            for &y in &adj[x] {
                indeg[y] -= 1;
                if indeg[y] == 0 {
                    queue.push(y);
                }
            }
        }
        assert_eq!(topo.len(), n, "program order must be acyclic");
        // Propagate reachability in reverse topological order.
        let mut bits = vec![0u64; n * words];
        for &x in topo.iter().rev() {
            for &y in &adj[x] {
                bits[x * words + y / 64] |= 1 << (y % 64);
                // reach(x) |= reach(y)
                let (xs, ys) = (x * words, y * words);
                for w in 0..words {
                    let v = bits[ys + w];
                    bits[xs + w] |= v;
                }
            }
        }
        PoClosure { n, words, bits }
    }

    /// `true` if a fixed-edge path `a →⁺ b` exists.
    pub fn reaches(&self, a: usize, b: usize) -> bool {
        debug_assert!(a < self.n && b < self.n);
        self.bits[a * self.words + b / 64] >> (b % 64) & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zpre_prog::build::*;
    use zpre_prog::{to_ssa, Program};

    /// Thread with W x; R y; W z; R x — exercising all relaxation cases.
    fn prog() -> Program {
        ProgramBuilder::new("pp")
            .shared("x", 0)
            .shared("y", 0)
            .shared("z", 0)
            .thread(
                "t",
                vec![
                    assign("x", c(1)),   // W x
                    assign("a", v("y")), // R y
                    assign("z", c(2)),   // W z
                    assign("b", v("x")), // R x
                ],
            )
            .build()
    }

    fn t1_events(ssa: &zpre_prog::SsaProgram) -> Vec<zpre_prog::Event> {
        ssa.thread_events(1).cloned().collect()
    }

    #[test]
    fn sc_preserves_everything() {
        let ssa = to_ssa(&prog());
        let evs = t1_events(&ssa);
        for i in 0..evs.len() {
            for j in i + 1..evs.len() {
                assert!(preserved(MemoryModel::Sc, &evs[i], &evs[j]));
            }
        }
    }

    #[test]
    fn tso_relaxes_write_read_different_var() {
        let ssa = to_ssa(&prog());
        let evs = t1_events(&ssa); // [W x, R y, W z, R x]
                                   // W x → R y : different vars, relaxed.
        assert!(!preserved(MemoryModel::Tso, &evs[0], &evs[1]));
        // W x → W z : write-write, kept under TSO.
        assert!(preserved(MemoryModel::Tso, &evs[0], &evs[2]));
        // W x → R x : same var, kept.
        assert!(preserved(MemoryModel::Tso, &evs[0], &evs[3]));
        // R y → W z and R y → R x : reads ordered before everything after.
        assert!(preserved(MemoryModel::Tso, &evs[1], &evs[2]));
        assert!(preserved(MemoryModel::Tso, &evs[1], &evs[3]));
        // W z → R x : different vars, relaxed.
        assert!(!preserved(MemoryModel::Tso, &evs[2], &evs[3]));
    }

    #[test]
    fn pso_additionally_relaxes_write_write() {
        let ssa = to_ssa(&prog());
        let evs = t1_events(&ssa);
        // W x → W z : different vars, relaxed under PSO but not TSO.
        assert!(!preserved(MemoryModel::Pso, &evs[0], &evs[2]));
        assert!(preserved(MemoryModel::Tso, &evs[0], &evs[2]));
        // Same-var W→R still kept.
        assert!(preserved(MemoryModel::Pso, &evs[0], &evs[3]));
    }

    #[test]
    fn fences_restore_order() {
        let p = ProgramBuilder::new("f")
            .shared("x", 0)
            .shared("y", 0)
            .thread("t", vec![assign("x", c(1)), fence(), assign("a", v("y"))])
            .build();
        let ssa = to_ssa(&p);
        let evs: Vec<_> = ssa.thread_events(1).cloned().collect(); // W x, F, R y
        assert!(preserved(MemoryModel::Pso, &evs[0], &evs[1])); // W→fence
        assert!(preserved(MemoryModel::Pso, &evs[1], &evs[2])); // fence→R
                                                                // The relaxed pair W x → R y is restored via the fence *path*; the
                                                                // direct pair stays relaxed (path transitivity covers it).
        assert!(!preserved(MemoryModel::Pso, &evs[0], &evs[2]));
        // Closure sees the path.
        let pairs = po_pairs(&ssa, MemoryModel::Pso);
        let clo = PoClosure::new(ssa.events.len(), &pairs);
        assert!(clo.reaches(evs[0].id, evs[2].id));
    }

    #[test]
    fn wmm_emits_more_explicit_pairs_than_sc_needs() {
        // §5.2's observation: ordering constraints grow under WMM while
        // interference variables stay put.
        let ssa = to_ssa(&prog());
        let sc = po_pairs(&ssa, MemoryModel::Sc).len();
        let tso = po_pairs(&ssa, MemoryModel::Tso).len();
        // SC: adjacency only; TSO: all preserved pairs.
        assert!(tso > sc, "tso {tso} vs sc {sc}");
    }

    #[test]
    fn spawn_join_edges_cross_threads() {
        let p = ProgramBuilder::new("sj")
            .shared("x", 0)
            .thread("t", vec![assign("x", c(1))])
            .main(vec![spawn(1), join(1), assert_(eq(v("x"), c(1)))])
            .build();
        let ssa = to_ssa(&p);
        let pairs = po_pairs(&ssa, MemoryModel::Sc);
        let clo = PoClosure::new(ssa.events.len(), &pairs);
        let spawn_ev = ssa
            .events
            .iter()
            .find(|e| matches!(e.kind, zpre_prog::EventKind::Spawn { .. }))
            .unwrap();
        let join_ev = ssa
            .events
            .iter()
            .find(|e| matches!(e.kind, zpre_prog::EventKind::Join { .. }))
            .unwrap();
        let child_write = ssa.thread_events(1).next().unwrap();
        assert!(clo.reaches(spawn_ev.id, child_write.id));
        assert!(clo.reaches(child_write.id, join_ev.id));
        // Init writes of main reach the child's write.
        assert!(clo.reaches(0, child_write.id));
    }

    #[test]
    fn closure_reachability_is_transitive_and_irreflexive() {
        let pairs = vec![(0, 1), (1, 2), (2, 3)];
        let clo = PoClosure::new(4, &pairs);
        assert!(clo.reaches(0, 3));
        assert!(clo.reaches(1, 3));
        assert!(!clo.reaches(3, 0));
        assert!(!clo.reaches(0, 0));
    }

    #[test]
    #[should_panic(expected = "acyclic")]
    fn closure_panics_on_cycle() {
        let _ = PoClosure::new(2, &[(0, 1), (1, 0)]);
    }
}
