//! Property test: pretty-printing followed by parsing is the identity on
//! program structure (names, declarations, statements) — including the
//! synchronization constructs (`lock`/`unlock`, `spawn`/`join`, balanced
//! `atomic_begin`/`atomic_end` sections).

use proptest::prelude::*;
use zpre_prog::build::*;
use zpre_prog::{parse_program, pretty::pretty_program, BoolExpr, IntExpr, Program, Stmt};

fn arb_int(depth: u32) -> BoxedStrategy<IntExpr> {
    let leaf = prop_oneof![
        (0..16u64).prop_map(IntExpr::Const),
        prop_oneof![Just("x"), Just("y"), Just("loc")].prop_map(|n| IntExpr::Var(n.to_string())),
        Just(IntExpr::Nondet("nd1".to_string())),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = arb_int(depth - 1);
    prop_oneof![
        leaf,
        (inner.clone(), inner.clone()).prop_map(|(a, b)| IntExpr::Add(a.into(), b.into())),
        (inner.clone(), inner.clone()).prop_map(|(a, b)| IntExpr::Sub(a.into(), b.into())),
        (inner.clone(), inner.clone()).prop_map(|(a, b)| IntExpr::Mul(a.into(), b.into())),
        (inner.clone(), inner.clone()).prop_map(|(a, b)| IntExpr::BitAnd(a.into(), b.into())),
        (inner.clone(), inner.clone()).prop_map(|(a, b)| IntExpr::BitXor(a.into(), b.into())),
        (inner.clone(), 1..3u32).prop_map(|(a, by)| IntExpr::Shl(a.into(), by)),
        (arb_bool(depth - 1), inner.clone(), inner).prop_map(|(c, a, b)| IntExpr::Ite(
            c.into(),
            a.into(),
            b.into()
        )),
    ]
    .boxed()
}

fn arb_bool(depth: u32) -> BoxedStrategy<BoolExpr> {
    let ints = arb_int(depth.saturating_sub(1));
    let leaf = prop_oneof![
        (ints.clone(), ints.clone()).prop_map(|(a, b)| BoolExpr::Eq(a.into(), b.into())),
        (ints.clone(), ints.clone()).prop_map(|(a, b)| BoolExpr::Ne(a.into(), b.into())),
        (ints.clone(), ints.clone()).prop_map(|(a, b)| BoolExpr::Lt(a.into(), b.into())),
        (ints.clone(), ints).prop_map(|(a, b)| BoolExpr::Ge(a.into(), b.into())),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = arb_bool(depth - 1);
    prop_oneof![
        leaf,
        inner.clone().prop_map(|a| BoolExpr::Not(a.into())),
        (inner.clone(), inner.clone()).prop_map(|(a, b)| BoolExpr::And(a.into(), b.into())),
        (inner.clone(), inner).prop_map(|(a, b)| BoolExpr::Or(a.into(), b.into())),
    ]
    .boxed()
}

fn arb_stmt(depth: u32) -> BoxedStrategy<Stmt> {
    let simple = prop_oneof![
        (prop_oneof![Just("x"), Just("y"), Just("loc")], arb_int(1))
            .prop_map(|(n, e)| Stmt::Assign(n.to_string(), e)),
        arb_bool(1).prop_map(Stmt::Assert),
        arb_bool(1).prop_map(Stmt::Assume),
        prop_oneof![Just("m"), Just("m2")].prop_map(|m| Stmt::Lock(m.to_string())),
        prop_oneof![Just("m"), Just("m2")].prop_map(|m| Stmt::Unlock(m.to_string())),
        Just(Stmt::Fence),
        Just(Stmt::Skip),
    ];
    if depth == 0 {
        return simple.boxed();
    }
    let body = prop::collection::vec(arb_stmt(depth - 1), 0..3);
    prop_oneof![
        simple,
        (arb_bool(1), body.clone(), body.clone()).prop_map(|(c, t, e)| Stmt::If(c, t, e)),
        (arb_bool(1), body).prop_map(|(c, b)| Stmt::While(c, b)),
    ]
    .boxed()
}

/// A statement sequence that may wrap a prefix in a balanced
/// `atomic_begin`/`atomic_end` section.
fn arb_body(depth: u32) -> impl Strategy<Value = Vec<Stmt>> {
    (prop::collection::vec(arb_stmt(depth), 1..5), any::<bool>()).prop_map(
        |(stmts, wrap_atomic)| {
            if wrap_atomic {
                atomic(stmts)
            } else {
                stmts
            }
        },
    )
}

fn arb_program() -> impl Strategy<Value = Program> {
    (arb_body(2), arb_body(2), arb_body(2), any::<bool>()).prop_map(
        |(t1, t2, main_tail, interleave)| {
            // Two worker threads exercise both spawn/join shapes the
            // pretty-printer emits: nested (spawn-spawn-join-join) and
            // sequential (spawn-join-spawn-join).
            let mut main = if interleave {
                vec![spawn(1), join(1), spawn(2), join(2)]
            } else {
                vec![spawn(1), spawn(2), join(1), join(2)]
            };
            main.extend(main_tail);
            ProgramBuilder::new("prop")
                .width(8)
                .shared("x", 3)
                .shared("y", 0)
                .mutex("m")
                .mutex("m2")
                .thread("t1", t1)
                .thread("t2", t2)
                .main(main)
                .build()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// pretty ∘ parse ∘ pretty = pretty (structural fixpoint), and the
    /// parsed program preserves declarations and thread structure.
    #[test]
    fn pretty_parse_roundtrip(program in arb_program()) {
        let text = pretty_program(&program);
        let parsed = parse_program(&text)
            .unwrap_or_else(|e| panic!("{e}\n--- source ---\n{text}"));
        prop_assert_eq!(&parsed.shared, &program.shared);
        prop_assert_eq!(&parsed.mutexes, &program.mutexes);
        prop_assert_eq!(parsed.word_width, program.word_width);
        prop_assert_eq!(parsed.threads.len(), program.threads.len());
        // Fixpoint after one roundtrip.
        let text2 = pretty_program(&parsed);
        let parsed2 = parse_program(&text2).expect("second parse");
        prop_assert_eq!(&parsed2.threads, &parsed.threads);
    }
}
